"""Destination-chooser tests."""

import pytest

from repro.sim import make_rng
from repro.traffic.patterns import (
    hotspot_chooser,
    neighbor_chooser,
    permutation_chooser,
    uniform_chooser,
)

MODULES = ["m0", "m1", "m2", "m3"]


class TestUniform:
    def test_never_self(self):
        choose = uniform_chooser("m0", MODULES, make_rng(1, "t"))
        assert all(choose() != "m0" for _ in range(200))

    def test_covers_all_peers(self):
        choose = uniform_chooser("m0", MODULES, make_rng(1, "t"))
        seen = {choose() for _ in range(300)}
        assert seen == {"m1", "m2", "m3"}

    def test_no_peers_raises(self):
        with pytest.raises(ValueError):
            uniform_chooser("m0", ["m0"], make_rng(1, "t"))

    def test_deterministic_with_seed(self):
        a = [uniform_chooser("m0", MODULES, make_rng(5, "x"))() for _ in range(5)]
        b = [uniform_chooser("m0", MODULES, make_rng(5, "x"))() for _ in range(5)]
        assert a == b


class TestHotspot:
    def test_hotspot_dominates(self):
        choose = hotspot_chooser("m0", MODULES, make_rng(1, "t"),
                                 hotspot="m3", hot_fraction=0.8)
        picks = [choose() for _ in range(1000)]
        assert picks.count("m3") > 600

    def test_zero_fraction_is_uniform(self):
        choose = hotspot_chooser("m0", MODULES, make_rng(1, "t"),
                                 hotspot="m3", hot_fraction=0.0)
        picks = [choose() for _ in range(600)]
        assert 120 < picks.count("m3") < 280

    def test_source_as_hotspot_falls_back(self):
        choose = hotspot_chooser("m0", MODULES, make_rng(1, "t"),
                                 hotspot="m0", hot_fraction=0.9)
        assert all(choose() != "m0" for _ in range(100))

    def test_invalid_fraction_raises(self):
        with pytest.raises(ValueError):
            hotspot_chooser("m0", MODULES, make_rng(1, "t"), "m1", 1.5)


class TestNeighbor:
    def test_ring_successor(self):
        assert neighbor_chooser("m0", MODULES)() == "m1"
        assert neighbor_chooser("m3", MODULES)() == "m0"

    def test_singleton_raises(self):
        with pytest.raises(ValueError):
            neighbor_chooser("m0", ["m0"])


class TestPermutation:
    def test_random_permutation_is_derangement(self):
        for src in MODULES:
            choose = permutation_chooser(src, MODULES, make_rng(3, "p"))
            assert choose() != src

    def test_explicit_permutation(self):
        perm = ["m1", "m0", "m3", "m2"]
        choose = permutation_chooser("m2", MODULES, make_rng(1, "t"),
                                     permutation=perm)
        assert choose() == "m3"

    def test_self_mapping_raises(self):
        perm = ["m0", "m1", "m2", "m3"]  # identity
        with pytest.raises(ValueError):
            permutation_chooser("m0", MODULES, make_rng(1, "t"),
                                permutation=perm)

    def test_stable_across_calls(self):
        choose = permutation_chooser("m1", MODULES, make_rng(9, "p"))
        assert len({choose() for _ in range(20)}) == 1
