"""Application-workload tests."""

import pytest

from repro.arch import ARCHITECTURES, build_architecture
from repro.traffic.apps import automotive_workload, network_workload, video_pipeline


class TestVideoPipeline:
    def test_stage_wiring(self):
        arch = build_architecture("rmboc")
        gens = video_pipeline(arch, stop=2000)
        assert len(gens) == 3  # 4 modules -> 3 stage links
        assert [g.dst for g in gens] == ["m1", "m2", "m3"]

    def test_streams_flow(self):
        arch = build_architecture("rmboc")
        gens = video_pipeline(arch, stop=2000)
        arch.sim.run(2000)
        arch.run_to_completion()
        for g in gens:
            assert len(g.sent) == 10
            assert g.all_delivered()

    def test_needs_two_modules(self):
        arch = build_architecture("dynoc", num_modules=1)
        with pytest.raises(ValueError):
            video_pipeline(arch)


class TestAutomotive:
    def test_control_loops_meet_deadlines_on_buscom(self):
        """The BUS-COM design goal: guaranteed real-time slots."""
        arch = build_architecture("buscom")
        gens = automotive_workload(arch, stop=4000)
        arch.sim.run(4000)
        arch.run_to_completion(max_cycles=100_000)
        control = [g for g in gens if g.name.startswith("auto.ctrl")]
        assert control
        for g in control:
            assert g.deadline_met_ratio() >= 0.95

    def test_runs_on_all_architectures(self):
        for name in ARCHITECTURES:
            arch = build_architecture(name)
            automotive_workload(arch, stop=1000)
            arch.sim.run(1000)
            arch.run_to_completion(max_cycles=200_000)
            assert arch.log.all_delivered()


class TestNetwork:
    def test_hot_sink_receives_most(self):
        arch = build_architecture("conochi")
        network_workload(arch, sink="m3", stop=3000)
        arch.sim.run(3000)
        arch.run_to_completion(max_cycles=200_000)
        by_dst = {}
        for m in arch.log.delivered():
            by_dst[m.dst] = by_dst.get(m.dst, 0) + 1
        assert by_dst.get("m3", 0) == max(by_dst.values())

    def test_sink_does_not_send(self):
        arch = build_architecture("conochi")
        gens = network_workload(arch, sink="m3", stop=500)
        assert all(g.port.module != "m3" for g in gens)

    def test_deterministic(self):
        def run():
            arch = build_architecture("conochi")
            network_workload(arch, stop=1500, seed=13)
            arch.sim.run(1500)
            arch.run_to_completion(max_cycles=200_000)
            return arch.log.total

        assert run() == run()
