"""Traffic-generator tests (driven against BUS-COM, the cheapest arch)."""

import pytest

from repro.arch import build_architecture
from repro.sim import make_rng
from repro.traffic.generators import (
    BurstyGenerator,
    PeriodicStream,
    RandomTraffic,
    TraceReplay,
)
from repro.traffic.patterns import uniform_chooser


@pytest.fixture
def arch():
    return build_architecture("buscom")


class TestPeriodicStream:
    def test_injection_rate(self, arch):
        gen = PeriodicStream("s", arch.ports["m0"], "m1",
                             period=50, payload_bytes=16, stop=500)
        arch.sim.add(gen)
        arch.sim.run(500)
        assert len(gen.sent) == 10

    def test_phase_offsets_first_injection(self, arch):
        gen = PeriodicStream("s", arch.ports["m0"], "m1",
                             period=50, payload_bytes=16, phase=20, stop=100)
        arch.sim.add(gen)
        arch.sim.run(100)
        assert gen.sent[0].created_cycle == 20

    def test_start_stop_window(self, arch):
        gen = PeriodicStream("s", arch.ports["m0"], "m1",
                             period=10, payload_bytes=8,
                             start=100, stop=200)
        arch.sim.add(gen)
        arch.sim.run(400)
        assert all(100 <= m.created_cycle < 200 for m in gen.sent)
        assert len(gen.sent) == 10

    def test_deadline_accounting(self, arch):
        gen = PeriodicStream("s", arch.ports["m0"], "m1",
                             period=100, payload_bytes=8, stop=500,
                             deadline=200)
        arch.sim.add(gen)
        arch.sim.run(500)
        arch.run_to_completion()
        assert gen.deadline_misses() == 0
        assert gen.deadline_met_ratio() == 1.0

    def test_deadline_miss_detected(self, arch):
        gen = PeriodicStream("s", arch.ports["m0"], "m1",
                             period=100, payload_bytes=8, stop=150,
                             deadline=1)  # impossible deadline
        arch.sim.add(gen)
        arch.sim.run(150)
        arch.run_to_completion()
        assert gen.deadline_misses() == len(gen.sent) > 0

    def test_no_deadline_raises(self, arch):
        gen = PeriodicStream("s", arch.ports["m0"], "m1",
                             period=100, payload_bytes=8)
        with pytest.raises(ValueError):
            gen.deadline_misses()

    def test_invalid_params_raise(self, arch):
        with pytest.raises(ValueError):
            PeriodicStream("s", arch.ports["m0"], "m1", period=0,
                           payload_bytes=8)
        with pytest.raises(ValueError):
            PeriodicStream("s", arch.ports["m0"], "m1", period=1,
                           payload_bytes=0)


class TestRandomTraffic:
    def test_rate_controls_volume(self, arch):
        choose = uniform_chooser("m0", list(arch.modules), make_rng(1, "c"))
        gen = RandomTraffic("g", arch.ports["m0"], choose,
                            make_rng(1, "r"), rate=0.1,
                            payload_bytes=8, stop=2000)
        arch.sim.add(gen)
        arch.sim.run(2000)
        assert 140 <= len(gen.sent) <= 260  # ~200 expected

    def test_zero_rate_sends_nothing(self, arch):
        choose = uniform_chooser("m0", list(arch.modules), make_rng(1, "c"))
        gen = RandomTraffic("g", arch.ports["m0"], choose,
                            make_rng(1, "r"), rate=0.0, stop=500)
        arch.sim.add(gen)
        arch.sim.run(500)
        assert not gen.sent

    def test_invalid_rate_raises(self, arch):
        choose = uniform_chooser("m0", list(arch.modules), make_rng(1, "c"))
        with pytest.raises(ValueError):
            RandomTraffic("g", arch.ports["m0"], choose,
                          make_rng(1, "r"), rate=1.5)

    def test_deterministic_with_seed(self):
        def run():
            arch = build_architecture("buscom")
            choose = uniform_chooser("m0", list(arch.modules),
                                     make_rng(2, "c"))
            gen = RandomTraffic("g", arch.ports["m0"], choose,
                                make_rng(2, "r"), rate=0.05, stop=1000)
            arch.sim.add(gen)
            arch.sim.run(1000)
            arch.run_to_completion()
            return [(m.created_cycle, m.dst, m.latency) for m in gen.sent]

        assert run() == run()


class TestBurstyGenerator:
    def test_duty_cycle_formula(self, arch):
        choose = uniform_chooser("m0", list(arch.modules), make_rng(1, "c"))
        gen = BurstyGenerator("g", arch.ports["m0"], choose,
                              make_rng(1, "r"), p_on=0.1, p_off=0.3)
        assert gen.duty_cycle == pytest.approx(0.25)

    def test_burstiness(self, arch):
        """Messages cluster: consecutive-cycle sends are common."""
        choose = uniform_chooser("m0", list(arch.modules), make_rng(1, "c"))
        gen = BurstyGenerator("g", arch.ports["m0"], choose,
                              make_rng(1, "r"), p_on=0.02, p_off=0.2,
                              payload_bytes=8, stop=3000)
        arch.sim.add(gen)
        arch.sim.run(3000)
        cycles = [m.created_cycle for m in gen.sent]
        assert len(cycles) > 10
        consecutive = sum(
            1 for a, b in zip(cycles, cycles[1:]) if b - a == 1
        )
        assert consecutive / len(cycles) > 0.3

    def test_invalid_probs_raise(self, arch):
        choose = uniform_chooser("m0", list(arch.modules), make_rng(1, "c"))
        with pytest.raises(ValueError):
            BurstyGenerator("g", arch.ports["m0"], choose,
                            make_rng(1, "r"), p_on=0.0, p_off=0.5)


class TestTraceReplay:
    def test_replays_in_order(self, arch):
        trace = [(5, "m1", 8), (10, "m2", 16), (10, "m3", 8)]
        gen = TraceReplay("g", arch.ports["m0"], trace)
        arch.sim.add(gen)
        arch.sim.run(20)
        assert [m.created_cycle for m in gen.sent] == [5, 10, 10]
        assert gen.exhausted()

    def test_unsorted_trace_is_sorted(self, arch):
        trace = [(10, "m1", 8), (2, "m2", 8)]
        gen = TraceReplay("g", arch.ports["m0"], trace)
        arch.sim.add(gen)
        arch.sim.run(20)
        assert [m.dst for m in gen.sent] == ["m2", "m1"]

    def test_all_delivered_helper(self, arch):
        gen = TraceReplay("g", arch.ports["m0"], [(0, "m1", 8)])
        arch.sim.add(gen)
        arch.sim.run(5)
        assert not gen.all_delivered()
        arch.run_to_completion()
        assert gen.all_delivered()
        assert len(gen.latencies()) == 1
