"""Trace capture / cross-architecture replay tests."""

import pytest

from repro.arch import build_architecture
from repro.sim import make_rng
from repro.traffic.generators import RandomTraffic
from repro.traffic.patterns import uniform_chooser
from repro.traffic.trace import capture_trace, compare_on_trace, replay_trace


def generate_workload(seed=5, horizon=1500):
    """A reference run on BUS-COM whose trace we capture."""
    arch = build_architecture("buscom", seed=seed)
    for src in arch.modules:
        arch.sim.add(RandomTraffic(
            f"g.{src}", arch.ports[src],
            uniform_chooser(src, list(arch.modules), make_rng(seed, src, "c")),
            make_rng(seed, src, "r"), rate=0.01, payload_bytes=48,
            stop=horizon))
    arch.sim.run(horizon)
    arch.run_to_completion(max_cycles=100_000)
    return arch


class TestCapture:
    def test_trace_matches_log(self):
        arch = generate_workload()
        trace = capture_trace(arch.log)
        assert len(trace) == arch.log.total
        assert trace == sorted(trace)
        assert all(nbytes == 48 for _, _, _, nbytes in trace)

    def test_empty_log_empty_trace(self):
        arch = build_architecture("buscom")
        assert capture_trace(arch.log) == []


class TestReplay:
    def test_replay_reproduces_identical_run(self):
        """Replaying a trace on the same architecture type yields the
        exact same delivery schedule (determinism check)."""
        ref = generate_workload()
        trace = capture_trace(ref.log)
        replayed = build_architecture("buscom")
        result = replay_trace(replayed, trace)
        assert result.messages == len(trace)
        ref_lats = sorted(ref.log.latencies())
        new_lats = sorted(replayed.log.latencies())
        assert ref_lats == new_lats

    def test_replay_on_different_architecture(self):
        ref = generate_workload()
        trace = capture_trace(ref.log)
        result = replay_trace(build_architecture("conochi"), trace)
        assert result.messages == len(trace)
        assert result.mean_latency > 0

    def test_unknown_module_raises(self):
        with pytest.raises(KeyError):
            replay_trace(build_architecture("buscom", num_modules=2),
                         [(0, "m0", "m3", 8)])


class TestCompare:
    def test_compare_all_four(self):
        ref = generate_workload(horizon=800)
        trace = capture_trace(ref.log)
        results = compare_on_trace(trace)
        assert set(results) == {"rmboc", "buscom", "dynoc", "conochi"}
        for result in results.values():
            assert result.messages == len(trace)
