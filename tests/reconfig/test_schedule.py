"""Scenario/timeline tests, including manager install/remove."""

import pytest

from repro.arch import build_architecture
from repro.fabric.device import get_device
from repro.fabric.geometry import Rect
from repro.reconfig import (
    ModuleSpec,
    OpKind,
    ReconfigurationManager,
    Scenario,
    ScheduledOp,
)

R0 = Rect(0, 0, 4, 96)
R1 = Rect(4, 0, 4, 96)


def make(arch_name="buscom", num_modules=4):
    arch = build_architecture(arch_name, num_modules=num_modules)
    mgr = ReconfigurationManager(arch, get_device("XC2V6000"))
    return arch, mgr


class TestManagerInstallRemove:
    def test_install_into_free_slot(self):
        arch, mgr = make("rmboc", num_modules=4)
        arch.detach("m3")
        rec = mgr.install(ModuleSpec("fresh"), R1, xp=3)
        arch.sim.run_until(lambda s: rec.done, max_cycles=2_000_000)
        assert "fresh" in arch.modules
        msg = arch.ports["m0"].send("fresh", 32)
        arch.run_to_completion()
        assert msg.delivered

    def test_remove_blanks_module(self):
        arch, mgr = make()
        rec = mgr.remove("m3", R1)
        arch.sim.run_until(lambda s: rec.done, max_cycles=2_000_000)
        assert "m3" not in arch.modules
        assert rec.reconfig_cycles > 0

    def test_remove_waits_for_quiesce(self):
        arch, mgr = make()
        msg = arch.ports["m3"].send("m0", 512)
        rec = mgr.remove("m3", R1)
        arch.sim.run_until(lambda s: rec.done, max_cycles=2_000_000)
        assert msg.delivered
        assert rec.detach_cycle >= msg.delivered_cycle

    def test_install_counter(self):
        arch, mgr = make("rmboc")
        arch.detach("m3")
        rec = mgr.install(ModuleSpec("x"), R1, xp=3)
        arch.sim.run_until(lambda s: rec.done, max_cycles=2_000_000)
        assert arch.sim.stats.counter("reconfig.installs").value == 1


class TestScheduledOp:
    def test_validation(self):
        with pytest.raises(ValueError):
            ScheduledOp(-1, OpKind.REMOVE, R0, module_out="m")
        with pytest.raises(ValueError):
            ScheduledOp(0, OpKind.SWAP, R0, module_in=ModuleSpec("x"))
        with pytest.raises(ValueError):
            ScheduledOp(0, OpKind.INSTALL, R0)


class TestScenario:
    def test_ordered_timeline_runs(self):
        arch, mgr = make()
        sc = (Scenario(mgr)
              .swap(100, "m0", ModuleSpec("m0b"), R0)
              .remove(200, "m3", R1))
        sc.run_to_completion()
        assert sc.done
        assert set(arch.modules) == {"m0b", "m1", "m2"}
        assert len(sc.records) == 2

    def test_ops_sorted_by_cycle(self):
        arch, mgr = make()
        sc = Scenario(mgr)
        sc.remove(500, "m3", R1)
        sc.swap(100, "m0", ModuleSpec("m0b"), R0)
        assert [op.at_cycle for op in sc.ops] == [100, 500]

    def test_overlapping_requests_serialize_on_config_port(self):
        arch, mgr = make()
        sc = (Scenario(mgr)
              .swap(0, "m0", ModuleSpec("m0b"), R0)
              .swap(1, "m1", ModuleSpec("m1b"), R1))
        sc.run_to_completion()
        first, second = sorted(sc.records, key=lambda r: r.requested_cycle)
        assert second.detach_cycle >= first.attach_cycle

    def test_cannot_modify_after_arm(self):
        arch, mgr = make()
        sc = Scenario(mgr).remove(10, "m3", R1)
        sc.arm()
        with pytest.raises(RuntimeError):
            sc.remove(20, "m2", R0)
        with pytest.raises(RuntimeError):
            sc.arm()

    def test_report_lists_operations(self):
        arch, mgr = make()
        sc = Scenario(mgr).swap(50, "m0", ModuleSpec("m0b"), R0)
        sc.run_to_completion()
        text = sc.report()
        assert "m0 -> m0b" in text
        assert "done" in text

    def test_install_then_swap_same_slot(self):
        arch, mgr = make("rmboc")
        arch.detach("m3")
        sc = (Scenario(mgr)
              .install(10, ModuleSpec("a"), R1, xp=3)
              .swap(20, "a", ModuleSpec("b"), R1))
        sc.run_to_completion()
        assert "b" in arch.modules and "a" not in arch.modules
