"""Reconfiguration-manager tests: swaps on every architecture."""

import pytest

from repro.arch import ARCHITECTURES, build_architecture
from repro.fabric.device import get_device
from repro.fabric.geometry import Rect
from repro.reconfig import ModuleSpec, ReconfigurationManager
from repro.sim import SimError


REGION = Rect(0, 0, 4, 96)


def manager_for(arch):
    return ReconfigurationManager(arch, get_device("XC2V6000"))


@pytest.mark.parametrize("name", ARCHITECTURES)
class TestSwap:
    def test_swap_replaces_module(self, name):
        arch = build_architecture(name)
        mgr = manager_for(arch)
        record = mgr.swap("m0", ModuleSpec("m0b"), REGION)
        arch.sim.run_until(lambda s: record.done, max_cycles=2_000_000)
        assert "m0b" in arch.modules
        assert "m0" not in arch.modules

    def test_new_module_is_reachable(self, name):
        arch = build_architecture(name)
        mgr = manager_for(arch)
        record = mgr.swap("m0", ModuleSpec("m0b"), REGION)
        arch.sim.run_until(lambda s: record.done, max_cycles=2_000_000)
        msg = arch.ports["m1"].send("m0b", 16)
        arch.run_to_completion()
        assert msg.delivered

    def test_swap_waits_for_quiesce(self, name):
        """A swap requested while the module is mid-transfer must not
        detach it until the transfer drains."""
        arch = build_architecture(name)
        mgr = manager_for(arch)
        msg = arch.ports["m0"].send("m1", 512)
        record = mgr.swap("m0", ModuleSpec("m0b"), REGION)
        arch.sim.run_until(lambda s: record.done, max_cycles=2_000_000)
        assert msg.delivered
        assert record.detach_cycle >= msg.delivered_cycle

    def test_record_accounting(self, name):
        arch = build_architecture(name)
        mgr = manager_for(arch)
        record = mgr.swap("m0", ModuleSpec("m0b"), REGION)
        arch.sim.run_until(lambda s: record.done, max_cycles=2_000_000)
        assert record.reconfig_cycles > 0
        assert record.downtime_cycles >= record.reconfig_cycles
        assert record.total_cycles >= record.downtime_cycles
        assert arch.sim.stats.counter("reconfig.swaps").value == 1

    def test_bystander_traffic_survives(self, name):
        """§4: communication between unaffected modules continues."""
        arch = build_architecture(name)
        mgr = manager_for(arch)
        record = mgr.swap("m0", ModuleSpec("m0b"), REGION)
        sent = []
        # inject bystander messages periodically during the swap
        def pump(sim):
            if not record.done:
                sent.append(arch.ports["m2"].send("m3", 16))
                sim.after(200, pump)

        arch.sim.after(10, pump)
        arch.sim.run_until(lambda s: record.done, max_cycles=2_000_000)
        arch.sim.run_until(
            lambda s: all(m.delivered for m in sent) and arch.idle(),
            max_cycles=2_000_000,
        )
        assert sent and all(m.delivered for m in sent)


class TestSerialization:
    def test_two_swaps_share_the_config_port(self):
        arch = build_architecture("buscom")
        mgr = manager_for(arch)
        r1 = mgr.swap("m0", ModuleSpec("m0b"), REGION)
        r2 = mgr.swap("m1", ModuleSpec("m1b"), Rect(4, 0, 4, 96))
        arch.sim.run_until(lambda s: r1.done and r2.done,
                           max_cycles=4_000_000)
        # strictly serialized: second starts after the first finishes
        assert r2.detach_cycle >= r1.attach_cycle
        assert set(arch.modules) == {"m0b", "m1b", "m2", "m3"}

    def test_busy_flag(self):
        arch = build_architecture("buscom")
        mgr = manager_for(arch)
        assert not mgr.busy
        record = mgr.swap("m0", ModuleSpec("m0b"), REGION)
        assert mgr.busy
        arch.sim.run_until(lambda s: record.done, max_cycles=2_000_000)
        assert not mgr.busy


class TestTiming:
    def test_reconfig_cycles_match_bitstream_model(self):
        arch = build_architecture("rmboc")
        mgr = manager_for(arch)
        expected = mgr.timing.cycles(REGION, arch.fmax_hz())
        record = mgr.swap("m0", ModuleSpec("m0b"), REGION)
        arch.sim.run_until(lambda s: record.done, max_cycles=2_000_000)
        assert record.reconfig_cycles == expected

    def test_wider_region_longer_downtime(self):
        def downtime(cols):
            arch = build_architecture("buscom")
            mgr = manager_for(arch)
            record = mgr.swap("m0", ModuleSpec("m0b"),
                              Rect(0, 0, cols, 96))
            arch.sim.run_until(lambda s: record.done, max_cycles=4_000_000)
            return record.downtime_cycles

        assert downtime(8) > downtime(2)

    def test_quiesce_timeout_aborts_gracefully(self):
        """Traffic that never stops trips the deadline; by default the
        swap is dropped with an alert and the system keeps running on
        the old module instead of raising mid-simulation."""
        arch = build_architecture("buscom")
        mgr = ReconfigurationManager(arch, get_device("XC2V6000"),
                                     quiesce_timeout=500)

        def pump(sim):
            # large back-to-back frames keep m0's inbound traffic
            # permanently in flight
            arch.ports["m1"].send("m0", 2048)
            sim.after(10, pump)

        arch.sim.after(0, pump)
        record = mgr.swap("m0", ModuleSpec("m0b"), REGION)
        arch.sim.run(5_000)
        assert record.aborted
        assert not record.done
        assert "m0" in arch.modules          # old module still in service
        assert "m0b" not in arch.modules
        assert not mgr.busy                  # config port freed for later ops
        assert arch.sim.stats.counter(
            "reconfig.quiesce_aborted").value == 1

    def test_quiesce_timeout_raises_in_strict_mode(self):
        """strict_quiesce=True restores the raising behaviour."""
        arch = build_architecture("buscom")
        mgr = ReconfigurationManager(arch, get_device("XC2V6000"),
                                     quiesce_timeout=500,
                                     strict_quiesce=True)

        def pump(sim):
            arch.ports["m1"].send("m0", 2048)
            sim.after(10, pump)

        arch.sim.after(0, pump)
        mgr.swap("m0", ModuleSpec("m0b"), REGION)
        with pytest.raises(SimError):
            arch.sim.run(5_000)


class TestModuleSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ModuleSpec("")
        with pytest.raises(ValueError):
            ModuleSpec("x", width=0)
        with pytest.raises(ValueError):
            ModuleSpec("x", slices=-1)

    def test_cells_and_fit(self):
        spec = ModuleSpec("x", width=3, height=2, slices=100)
        assert spec.cells == 6
        assert spec.fits_in_slices(100)
        assert not spec.fits_in_slices(99)
