"""Online 2D placer tests."""

import pytest

from repro.fabric.geometry import Rect
from repro.reconfig import FreeRectPlacer, PlacementError


class TestFind:
    def test_first_fit_bottom_left(self):
        p = FreeRectPlacer(8, 8)
        assert p.find(2, 2) == Rect(0, 0, 2, 2)

    def test_margin_respected(self):
        p = FreeRectPlacer(8, 8, margin=1)
        rect = p.find(2, 2)
        assert rect == Rect(1, 1, 2, 2)

    def test_no_space_returns_none(self):
        p = FreeRectPlacer(4, 4)
        assert p.find(5, 1) is None

    def test_best_fit_prefers_origin(self):
        p = FreeRectPlacer(8, 8)
        p.place("a", 2, 2)
        rect = p.find(2, 2, strategy="best")
        assert rect is not None
        assert rect.x + rect.y <= 4

    def test_unknown_strategy_raises(self):
        p = FreeRectPlacer(4, 4)
        with pytest.raises(ValueError):
            p.find(1, 1, strategy="random")

    def test_degenerate_footprint_raises(self):
        with pytest.raises(ValueError):
            FreeRectPlacer(4, 4).find(0, 1)


class TestPlaceRemove:
    def test_place_commits(self):
        p = FreeRectPlacer(6, 6)
        rect = p.place("a", 2, 3)
        assert p.placements == {"a": rect}
        assert p.free_cells == 36 - 6

    def test_no_overlap_between_placements(self):
        p = FreeRectPlacer(6, 6)
        a = p.place("a", 3, 3)
        b = p.place("b", 3, 3)
        assert not a.overlaps(b)

    def test_gap_enforced(self):
        p = FreeRectPlacer(8, 8, gap=1)
        a = p.place("a", 2, 2)
        b = p.place("b", 2, 2)
        # rects must not even touch
        assert not a.overlaps(b) and not a.adjacent(b)

    def test_full_area_raises(self):
        p = FreeRectPlacer(4, 4)
        p.place("a", 4, 4)
        with pytest.raises(PlacementError):
            p.place("b", 1, 1)

    def test_duplicate_name_raises(self):
        p = FreeRectPlacer(4, 4)
        p.place("a", 1, 1)
        with pytest.raises(PlacementError):
            p.place("a", 1, 1)

    def test_remove_frees_space(self):
        p = FreeRectPlacer(4, 4)
        p.place("a", 4, 4)
        p.remove("a")
        assert p.free_cells == 16
        p.place("b", 4, 4)  # fits again

    def test_remove_unknown_raises(self):
        with pytest.raises(PlacementError):
            FreeRectPlacer(4, 4).remove("ghost")

    def test_commit_validates(self):
        p = FreeRectPlacer(4, 4)
        p.place("a", 2, 2)
        with pytest.raises(PlacementError):
            p.commit("b", Rect(1, 1, 2, 2))

    def test_forbidden_cells(self):
        p = FreeRectPlacer(4, 4, forbidden=[(0, 0), (1, 0)])
        rect = p.find(2, 1)
        assert rect != Rect(0, 0, 2, 1)

    def test_utilization(self):
        p = FreeRectPlacer(4, 4)
        assert p.utilization() == 0.0
        p.place("a", 2, 2)
        assert p.utilization() == pytest.approx(0.25)


class TestValidation:
    def test_degenerate_area_raises(self):
        with pytest.raises(ValueError):
            FreeRectPlacer(0, 4)

    def test_negative_margin_raises(self):
        with pytest.raises(ValueError):
            FreeRectPlacer(4, 4, margin=-1)
