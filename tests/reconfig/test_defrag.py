"""Defragmentation planner tests."""

import pytest

from repro.fabric.geometry import Rect
from repro.reconfig.defrag import (
    Move,
    execute_plan,
    fragmentation,
    largest_free_rectangle,
    plan_compaction,
)
from repro.reconfig.placement import FreeRectPlacer, PlacementError


def fragmented_placer():
    """8x4 area with two 2x4 modules leaving two disjoint 2-wide gaps:
    8 free cells in each gap but no 4-wide rectangle."""
    p = FreeRectPlacer(8, 4)
    p.commit("a", Rect(2, 0, 2, 4))
    p.commit("b", Rect(6, 0, 2, 4))
    return p


class TestMetrics:
    def test_largest_free_rectangle_empty_area(self):
        p = FreeRectPlacer(6, 4)
        rect = largest_free_rectangle(p)
        assert rect.area_clbs == 24

    def test_largest_free_rectangle_fragmented(self):
        p = fragmented_placer()
        rect = largest_free_rectangle(p)
        assert rect.area_clbs == 8  # a 2x4 gap
        assert rect.w == 2

    def test_fragmentation_zero_when_contiguous(self):
        p = FreeRectPlacer(6, 4)
        assert fragmentation(p) == 0.0
        p.commit("edge", Rect(0, 0, 2, 4))
        assert fragmentation(p) == 0.0  # remaining space still one block

    def test_fragmentation_positive_when_split(self):
        p = fragmented_placer()
        # 16 free cells, largest usable 8
        assert fragmentation(p) == pytest.approx(0.5)

    def test_fragmentation_full_area(self):
        p = FreeRectPlacer(4, 4)
        p.commit("all", Rect(0, 0, 4, 4))
        assert fragmentation(p) == 0.0


class TestPlanning:
    def test_no_moves_needed_when_fits(self):
        p = FreeRectPlacer(8, 4)
        assert plan_compaction(p, 4, 4) == []

    def test_single_move_consolidates(self):
        p = fragmented_placer()
        moves = plan_compaction(p, 4, 4)
        assert len(moves) >= 1
        # the original placer must be untouched by planning
        assert p.placements["a"] == Rect(2, 0, 2, 4)

    def test_impossible_target_raises(self):
        p = fragmented_placer()
        with pytest.raises(PlacementError):
            plan_compaction(p, 9, 4)

    def test_max_moves_respected(self):
        p = fragmented_placer()
        with pytest.raises(PlacementError):
            plan_compaction(p, 4, 4, max_moves=0)

    def test_move_distance(self):
        m = Move("x", Rect(0, 0, 1, 1), Rect(3, 2, 1, 1))
        assert m.distance == 5


class TestExecution:
    def test_execute_plan_applies_moves(self):
        p = fragmented_placer()
        moves = plan_compaction(p, 4, 4)
        relocations = []
        execute_plan(p, moves,
                     lambda name, src, dst: relocations.append((name, dst)))
        assert len(relocations) == len(moves)
        # after execution, the target fits in the live placer
        assert p.find(4, 4) is not None

    def test_execute_against_conochi_migration(self):
        """End-to-end: plan over a CoNoChi free area, relocate modules
        by re-placing their grid rectangles."""
        from repro.arch import build_architecture

        arch = build_architecture("conochi")
        # model the module row (y=0) as the placement area
        placer = FreeRectPlacer(arch.grid.cols, 1)
        for name, rect in arch.grid.modules.items():
            placer.commit(name, Rect(rect.x, 0, rect.w, 1), force=True)

        def relocate(name, src, dst):
            grid_rect = arch.grid.modules[name]
            arch.grid.remove_module(name)
            arch.grid.place_module(
                name, Rect(dst.x, grid_rect.y, grid_rect.w, grid_rect.h)
            )

        moves = plan_compaction(placer, 2, 1)
        execute_plan(placer, moves, relocate)
        assert placer.find(2, 1) is not None
