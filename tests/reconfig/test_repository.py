"""Module-repository tests."""

import pytest

from repro.reconfig.module import ModuleSpec
from repro.reconfig.repository import (ModuleRepository, RepositoryError,
                                       Variant)


def stocked_repo():
    repo = ModuleRepository()
    repo.add("fir", Variant(ModuleSpec("fir_small", width=2, height=2,
                                       slices=400), performance=1.0,
                            bitstream_bytes=40_000))
    repo.add("fir", Variant(ModuleSpec("fir_fast", width=4, height=4,
                                       slices=1600), performance=3.0,
                            bitstream_bytes=160_000))
    repo.add("fft", Variant(ModuleSpec("fft_v1", width=3, height=3,
                                       slices=900), performance=1.0))
    return repo


class TestCatalog:
    def test_functions_sorted(self):
        assert stocked_repo().functions == ["fft", "fir"]

    def test_duplicate_variant_name_raises(self):
        repo = stocked_repo()
        with pytest.raises(ValueError):
            repo.add("fir", Variant(ModuleSpec("fir_small")))

    def test_unknown_function_raises(self):
        with pytest.raises(KeyError):
            stocked_repo().variants("aes")

    def test_total_bitstream_bytes(self):
        assert stocked_repo().total_bitstream_bytes() == 200_000

    def test_invalid_variant_raises(self):
        with pytest.raises(ValueError):
            Variant(ModuleSpec("x"), performance=0)
        with pytest.raises(ValueError):
            Variant(ModuleSpec("x"), bitstream_bytes=-1)

    def test_add_specs_bulk(self):
        repo = ModuleRepository()
        repo.add_specs("aes", [ModuleSpec("aes_a"), ModuleSpec("aes_b")])
        assert len(repo.variants("aes")) == 2


class TestSelection:
    def test_fastest_fitting_variant_wins(self):
        repo = stocked_repo()
        assert repo.select("fir").spec.name == "fir_fast"

    def test_slice_budget_forces_small_variant(self):
        repo = stocked_repo()
        assert repo.select("fir", max_slices=500).spec.name == "fir_small"

    def test_footprint_constraints(self):
        repo = stocked_repo()
        v = repo.select("fir", max_width=3, max_height=3)
        assert v.spec.name == "fir_small"

    def test_nothing_fits_raises_with_diagnosis(self):
        repo = stocked_repo()
        with pytest.raises(LookupError) as err:
            repo.select("fir", max_slices=100)
        assert "fir_small" in str(err.value)
        assert "fir_fast" in str(err.value)

    def test_select_for_region(self):
        repo = stocked_repo()
        v = repo.select_for_region("fir", region_slices=1000,
                                   region_w=4, region_h=4)
        assert v.spec.name == "fir_small"


class TestErrorsAndLoad:
    def test_unknown_function_is_typed_and_named(self):
        with pytest.raises(RepositoryError) as err:
            stocked_repo().variants("aes")
        assert err.value.function == "aes"
        assert "aes" in str(err.value)
        assert "fir" in str(err.value)          # known functions listed
        # stays catchable through the builtin hierarchy
        assert isinstance(err.value, KeyError)
        assert isinstance(err.value, LookupError)

    def test_no_fit_is_typed_and_named(self):
        with pytest.raises(RepositoryError) as err:
            stocked_repo().select("fir", max_slices=100)
        assert err.value.function == "fir"

    def test_message_not_repr_quoted(self):
        err = RepositoryError("plain words", function="f")
        assert str(err) == "plain words"

    def good_record(self, **over):
        rec = {"function": "aes", "name": "aes_v1", "width": 2,
               "height": 2, "slices": 300, "performance": 1.5,
               "bitstream_bytes": 30_000}
        rec.update(over)
        return rec

    def test_load_valid_records(self):
        repo = ModuleRepository()
        n = repo.load([self.good_record(),
                       self.good_record(name="aes_v2", performance=2.0)])
        assert n == 2
        assert repo.select("aes").spec.name == "aes_v2"
        assert repo.total_bitstream_bytes() == 60_000

    def test_load_missing_field_names_module(self):
        rec = self.good_record()
        del rec["slices"]
        with pytest.raises(RepositoryError) as err:
            ModuleRepository().load([rec])
        assert err.value.function == "aes"
        assert "slices" in str(err.value)

    def test_load_unknown_field_rejected(self):
        with pytest.raises(RepositoryError) as err:
            ModuleRepository().load([self.good_record(checksum="beef")])
        assert "checksum" in str(err.value)

    def test_load_invalid_value_wrapped(self):
        with pytest.raises(RepositoryError) as err:
            ModuleRepository().load([self.good_record(performance=0)])
        assert err.value.function == "aes"

    def test_load_validates_before_adding(self):
        """A bad record later in the manifest must not leave earlier
        records half-loaded."""
        repo = ModuleRepository()
        bad = self.good_record(name="aes_v2")
        del bad["width"]
        with pytest.raises(RepositoryError):
            repo.load([self.good_record(), bad])
        assert repo.functions == []


class TestSystemIntegration:
    def test_variant_selected_for_slot_then_swapped_in(self):
        """End-to-end: pick the variant fitting a real slot and swap it
        into a live system."""
        from repro.system import ReconfigurableSystem

        system = ReconfigurableSystem("rmboc")
        slot_slices = system.region_of("m2").area_slices
        repo = stocked_repo()
        variant = repo.select_for_region("fir", slot_slices)
        record = system.swap("m2", variant.spec)
        system.sim.run_until(lambda s: record.done, max_cycles=2_000_000)
        assert variant.spec.name in system.arch.modules
