"""Sweep-driver tests."""

import pytest

from repro.analysis.sweeps import SweepGrid, render_sweep, run_sweep


class TestSweepGrid:
    def test_cartesian_size(self):
        grid = SweepGrid(arch=["buscom"], width=[8, 32],
                         payload_bytes=[16, 64, 256])
        assert len(grid) == 6
        assert len(list(grid.points())) == 6

    def test_requires_arch_axis(self):
        with pytest.raises(ValueError):
            SweepGrid(width=[8])

    def test_empty_axis_raises(self):
        with pytest.raises(ValueError):
            SweepGrid(arch=[])

    def test_points_carry_all_axes(self):
        grid = SweepGrid(arch=["buscom"], width=[32])
        point = next(grid.points())
        assert point == {"arch": "buscom", "width": 32}


class TestRunSweep:
    def test_runs_every_point(self):
        grid = SweepGrid(arch=["buscom", "conochi"], width=[32],
                         payload_bytes=[32])
        points = run_sweep(grid)
        assert len(points) == 2
        assert {p.params["arch"] for p in points} == {"buscom", "conochi"}

    def test_narrower_width_slower(self):
        grid = SweepGrid(arch=["buscom"], width=[8, 32],
                         payload_bytes=[64])
        points = {p.params["width"]: p for p in run_sweep(grid)}
        assert points[8].mean_latency > points[32].mean_latency

    def test_scenario_axes_forwarded(self):
        grid = SweepGrid(arch=["buscom"], payload_bytes=[16, 256])
        points = {p.params["payload_bytes"]: p for p in run_sweep(grid)}
        assert points[256].mean_latency > points[16].mean_latency

    def test_render_contains_axes_and_metrics(self):
        grid = SweepGrid(arch=["buscom"], width=[32])
        text = render_sweep(grid, run_sweep(grid))
        assert "arch" in text and "mean lat" in text and "buscom" in text
