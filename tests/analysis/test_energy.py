"""Energy-model and E8 accounting tests."""

import math

import pytest

from repro.analysis.energy import EnergyReport, InterconnectGeometry, measure_energy
from repro.arch import build_architecture
from repro.fabric.power import EnergyModel


class TestEnergyModel:
    def test_wire_energy_linear_in_length_and_bits(self):
        m = EnergyModel()
        assert m.wire_pj(100, 10) == pytest.approx(2 * m.wire_pj(100, 5))
        assert m.wire_pj(200, 10) == pytest.approx(2 * m.wire_pj(100, 10))

    def test_bus_broadcast_exceeds_plain_wire(self):
        m = EnergyModel()
        assert m.bus_broadcast_pj(100, 88) > m.wire_pj(100, 88)

    def test_noc_hop_includes_switch(self):
        m = EnergyModel()
        assert m.noc_hop_pj(100, 4) > m.wire_pj(100, 4)

    def test_crosspoint_cheaper_than_switch(self):
        """RMBoC cross-points have no buffering/table lookup."""
        m = EnergyModel()
        assert m.crosspoint_pj_per_bit < m.switch_pj_per_bit

    def test_invalid_coefficients_raise(self):
        with pytest.raises(ValueError):
            EnergyModel(wire_pj_per_bit_mm=0)
        with pytest.raises(ValueError):
            InterconnectGeometry(bus_length_clbs=-1)


class TestMeasurement:
    @pytest.mark.parametrize("name", ["rmboc", "buscom", "dynoc", "conochi"])
    def test_energy_positive_after_traffic(self, name):
        arch = build_architecture(name)
        arch.ports["m0"].send("m1", 64)
        arch.run_to_completion()
        report = measure_energy(arch)
        assert report.total_pj > 0
        assert report.pj_per_payload_byte > 0

    def test_no_traffic_nan_per_byte(self):
        arch = build_architecture("buscom")
        report = measure_energy(arch)
        assert report.total_pj == 0
        assert math.isnan(report.pj_per_payload_byte)

    def test_energy_scales_with_distance_on_rmboc(self):
        def run(dst):
            arch = build_architecture("rmboc")
            arch.ports["m0"].send(dst, 256)
            arch.run_to_completion()
            return measure_energy(arch).total_pj

        assert run("m3") > run("m1")

    def test_buscom_energy_independent_of_distance(self):
        """Broadcast bus: receiver position is irrelevant."""
        def run(dst):
            arch = build_architecture("buscom")
            arch.ports["m0"].send(dst, 64)
            arch.run_to_completion()
            return measure_energy(arch).total_pj

        assert run("m1") == pytest.approx(run("m3"))

    def test_dynoc_energy_scales_with_hops(self):
        def run(dst):
            arch = build_architecture("dynoc", num_modules=4, mesh=(4, 1))
            arch.ports["m0"].send(dst, 64)
            arch.run_to_completion()
            return measure_energy(arch).total_pj

        assert run("m3") > run("m1")

    def test_geometry_scales_wire_cost(self):
        arch = build_architecture("buscom")
        arch.ports["m0"].send("m1", 64)
        arch.run_to_completion()
        short = measure_energy(
            arch, geometry=InterconnectGeometry(bus_length_clbs=10))
        long = measure_energy(
            arch, geometry=InterconnectGeometry(bus_length_clbs=100))
        assert long.total_pj > short.total_pj
