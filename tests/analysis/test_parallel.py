"""Tests for the parallel experiment runner and its result cache."""

import os
import pickle

import pytest

from repro.analysis import parallel as P
from repro.analysis.sweeps import SweepGrid, run_sweep


def test_config_hash_is_stable_and_kwarg_sensitive():
    a = P.Job("e1")
    b = P.Job("e1")
    c = P.Job("e1", kwargs={"bus_count": 8})
    d = P.Job("e2")
    assert P.config_hash(a) == P.config_hash(b)
    assert P.config_hash(a) != P.config_hash(c)
    assert P.config_hash(a) != P.config_hash(d)


def test_registry_covers_experiments_and_ablations():
    names = P.registry()
    for name in ("e1", "e12", "a1", "a7"):
        assert name in names


def test_unknown_job_raises_keyerror():
    with pytest.raises(KeyError, match="nope"):
        P._execute(P.Job("nope"))


def test_serial_run_caches_result(tmp_path):
    cache = str(tmp_path / "cache")
    first = P.run_named(["e1"], max_workers=0, cache_dir=cache)
    # sharded content-addressed layout: objects/<2-hex>/<name>-<hash>.pkl
    path = P._cache_path(cache, P.Job("e1"))
    digest = P.config_hash(P.Job("e1"))
    assert os.path.isfile(path)
    assert os.path.basename(os.path.dirname(path)) == digest[:2]
    assert os.path.basename(path) == f"e1-{digest}.pkl"
    assert os.path.dirname(os.path.dirname(path)) \
        == os.path.join(cache, P.OBJECTS_SUBDIR)
    # second run must be a pure cache hit returning an equal object
    second = P.run_named(["e1"], max_workers=0, cache_dir=cache)
    assert repr(first["e1"]) == repr(second["e1"])


def test_config_hash_keys_on_schema_not_release(monkeypatch):
    """Package releases must not invalidate same-schema entries."""
    import repro

    job = P.Job("e1")
    before = P.config_hash(job)
    monkeypatch.setattr(repro, "__version__", "999.0.0")
    assert P.config_hash(job) == before
    monkeypatch.setattr(P, "RESULT_SCHEMA", P.RESULT_SCHEMA + 1)
    assert P.config_hash(job) != before


def test_cache_hit_refreshes_mtime_for_lru(tmp_path):
    cache = str(tmp_path / "cache")
    job = P.Job("e1")
    path = P._cache_path(cache, job)
    P._cache_store(path, "sentinel")
    stale = 1_000_000_000.0
    os.utime(path, (stale, stale))
    assert P._cache_load(path) == ("hit", "sentinel")
    assert os.path.getmtime(path) > stale


def test_cache_hit_skips_execution(tmp_path, monkeypatch):
    cache = str(tmp_path / "cache")
    job = P.Job("e1")
    P._cache_store(P._cache_path(cache, job), "sentinel-result")
    calls = []
    monkeypatch.setattr(P, "_execute", lambda j: calls.append(j))
    out = P.run_jobs([job], max_workers=0, cache_dir=cache)
    assert out == ["sentinel-result"]
    assert calls == []


@pytest.mark.parametrize("garbage", [
    b"not a pickle",
    b"garbage\n",   # parses as protocol-0 opcodes -> ValueError
    b"",
])
def test_corrupted_cache_recomputes(tmp_path, garbage):
    cache = str(tmp_path / "cache")
    job = P.Job("e1")
    path = P._cache_path(cache, job)
    os.makedirs(os.path.dirname(path))
    with open(path, "wb") as fh:
        fh.write(garbage)
    result = P.run_jobs([job], max_workers=0, cache_dir=cache)[0]
    assert result is not None
    # and the good result replaced the corrupt entry
    with open(path, "rb") as fh:
        assert repr(pickle.load(fh)) == repr(result)


def test_no_cache_leaves_disk_untouched(tmp_path, monkeypatch):
    # the run ledger is opt-out too: disable it so *nothing* writes
    monkeypatch.setenv("REPRO_LEDGER", "0")
    cache = str(tmp_path / "cache")
    P.run_named(["e1"], max_workers=0, cache_dir=cache, use_cache=False)
    assert not os.path.exists(cache)


def test_executed_job_leaves_run_record(tmp_path):
    from repro.obs.ledger import RUN_SCHEMA, RunLedger

    P.run_named(["e1"], max_workers=0, cache_dir=str(tmp_path / "c"),
                use_cache=False)
    ledger = RunLedger()  # conftest points this at the test tmp dir
    ids = ledger.ids()
    assert len(ids) == 1
    rec = ledger.load(ids[0])
    assert rec["schema"] == RUN_SCHEMA
    assert rec["kind"] == "experiment" and rec["name"] == "e1"


def test_cache_dir_env_override(tmp_path, monkeypatch):
    monkeypatch.setenv(P.CACHE_DIR_ENV, str(tmp_path / "envcache"))
    assert P.default_cache_dir() == str(tmp_path / "envcache")
    monkeypatch.delenv(P.CACHE_DIR_ENV)
    assert P.default_cache_dir() == P.DEFAULT_CACHE_DIR


def test_parallel_pool_matches_serial(tmp_path):
    serial = P.run_named(["e1", "a4"], max_workers=0,
                         cache_dir=str(tmp_path / "s"))
    pooled = P.run_named(["e1", "a4"], max_workers=2,
                         cache_dir=str(tmp_path / "p"))
    assert repr(serial["e1"]) == repr(pooled["e1"])
    assert repr(serial["a4"]) == repr(pooled["a4"])


def test_run_sweep_parallel_matches_serial():
    grid = SweepGrid(arch=["sharedbus", "staticmesh"], width=[16, 32],
                     payload_bytes=[64])
    serial = run_sweep(grid)
    pooled = P.run_sweep_parallel(grid, max_workers=2)
    assert pooled == serial
