"""Experiment-harness regression tests: each paper claim must hold.

These are the paper-vs-measured assertions EXPERIMENTS.md reports; they
use reduced sizes where the full benchmark sweeps would be slow.
"""

import math

import pytest

from repro.analysis import experiments as E


class TestE1RmbocSetup:
    @pytest.fixture(scope="class")
    def result(self):
        return E.e1_rmboc_setup()

    def test_min_setup_is_8(self, result):
        assert result.min_setup == 8

    def test_measured_matches_model(self, result):
        assert result.matches_paper
        for dist, measured, model in result.rows:
            assert measured == model == 2 * dist + 6

    def test_upper_bound_2m_plus_4(self, result):
        assert result.upper_bound == result.model_upper_bound == 12


class TestE2Parallelism:
    @pytest.fixture(scope="class")
    def result(self):
        return E.e2_parallelism()

    def test_rmboc_reaches_s_times_k(self, result):
        observed, theoretical = result.rows["rmboc"]
        assert theoretical == 12
        assert observed == 12

    def test_buscom_limited_to_k(self, result):
        observed, theoretical = result.rows["buscom"]
        assert theoretical == 4
        assert observed == 4

    def test_rmboc_beats_buscom(self, result):
        assert result.rmboc_beats_buscom

    def test_nocs_within_link_bound(self, result):
        for key in ("dynoc", "conochi"):
            observed, theoretical = result.rows[key]
            assert 0 < observed <= theoretical


class TestE3EffectiveBandwidth:
    @pytest.fixture(scope="class")
    def result(self):
        return E.e3_effective_bandwidth()

    def test_buscom_90pct(self, result):
        assert result.close_to_claim("buscom")

    def test_conochi_90pct(self, result):
        assert result.close_to_claim("conochi")

    def test_rmboc_negligible_overhead(self, result):
        assert result.rows["rmboc"] > 0.99

    def test_sweep_monotone_in_payload(self, result):
        effs = [e for _, e in result.conochi_sweep]
        assert effs == sorted(effs)
        assert effs[-1] > 0.98  # 1024-byte packets nearly free


class TestE4LatencyScaling:
    @pytest.fixture(scope="class")
    def result(self):
        return E.e4_latency_scaling()

    def test_dynoc_latency_grows_with_module_size(self, result):
        assert result.dynoc_latency_grows
        hops = [h for _, h, _ in result.dynoc_rows]
        assert hops == sorted(hops)

    def test_conochi_flat(self, result):
        assert result.conochi_latency_flat

    def test_rmboc_circuit_one_cycle_per_word(self, result):
        assert result.rmboc_established_cpw == 1.0


class TestE5AreaScaling:
    @pytest.fixture(scope="class")
    def result(self):
        return E.e5_area_scaling()

    def test_table3_point_embedded(self, result):
        by4 = {k: dict(v)[4] for k, v in result.by_modules.items()}
        assert by4 == {"rmboc": 5084, "buscom": 1294,
                       "dynoc": 1480, "conochi": 1640}

    def test_conochi_beats_dynoc_for_large_modules(self, result):
        """§4.1: 'for a larger number of modules and larger module
        sizes, the area overhead of CoNoChi will be less than for
        DyNoC'."""
        assert result.conochi_beats_dynoc_for_large_modules

    def test_dynoc_grows_with_module_size_conochi_does_not(self, result):
        dynoc = [a for _, a in result.dynoc_by_size]
        conochi = [a for _, a in result.conochi_by_size]
        assert dynoc[-1] > dynoc[0]
        assert conochi[-1] == conochi[0]

    def test_all_grow_with_module_count(self, result):
        for series in result.by_modules.values():
            areas = [a for _, a in series]
            assert areas == sorted(areas)


class TestE6Reconfiguration:
    @pytest.fixture(scope="class")
    def result(self):
        return E.e6_reconfiguration()

    def test_all_architectures_swap(self, result):
        assert set(result.rows) == {"rmboc", "buscom", "dynoc", "conochi"}
        for row in result.rows.values():
            assert row["reconfig_cycles"] > 0

    def test_bystanders_survive_everywhere(self, result):
        for key in result.rows:
            assert result.survived(key)

    def test_bystander_latency_reasonable_during_swap(self, result):
        for key, row in result.rows.items():
            assert not math.isnan(row["bystander_mean_latency_during"])
            assert row["bystander_mean_latency_during"] < 200


class TestE6bConochiTopology:
    def test_switch_add_remove_without_stall(self):
        r = E.e6b_conochi_topology_change()
        assert r.added_ok and r.removed_ok
        assert r.messages_delivered > 50
        # latency must not degrade from the insertion
        assert r.mean_latency_after_add <= r.mean_latency_before * 1.2


class TestE7Load:
    def test_latency_increases_with_load(self):
        r = E.e7_bus_vs_noc(rates=(0.002, 0.04), horizon=2000)
        for series in r.rows.values():
            assert series[-1][1] >= series[0][1] * 0.9  # no magic speedup

    def test_module_scaling_buses_degrade_most(self):
        """§2.2: bus bandwidth shared as components increase; NoCs add
        links per module."""
        r = E.e7b_module_scaling(module_counts=(4, 8), horizon=2000)
        assert r.degradation("buscom") > r.degradation("dynoc")
