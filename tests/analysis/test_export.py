"""JSON-export tests."""

import json
import math
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Tuple

import numpy as np
import pytest

from repro.analysis.export import dumps, to_jsonable


class Color(Enum):
    RED = 1


@dataclass
class Inner:
    value: float


@dataclass
class Outer:
    name: str
    inner: Inner
    table: Dict[Tuple[int, int], int]


class TestToJsonable:
    def test_dataclass_nesting(self):
        obj = Outer("x", Inner(1.5), {(1, 2): 3})
        out = to_jsonable(obj)
        assert out == {"name": "x", "inner": {"value": 1.5},
                       "table": {"(1, 2)": 3}}

    def test_enum(self):
        assert to_jsonable(Color.RED) == "RED"

    def test_numpy_scalars_and_arrays(self):
        assert to_jsonable(np.int64(5)) == 5
        assert to_jsonable(np.float64(2.5)) == 2.5
        assert to_jsonable(np.array([1, 2])) == [1, 2]

    def test_non_finite_floats(self):
        assert to_jsonable(float("nan")) == "nan"
        assert to_jsonable(float("inf")) == "inf"
        assert to_jsonable(float("-inf")) == "-inf"

    def test_tuples_become_lists(self):
        assert to_jsonable((1, (2, 3))) == [1, [2, 3]]

    def test_dumps_round_trips(self):
        obj = Outer("x", Inner(float("nan")), {(0, 0): 1})
        parsed = json.loads(dumps(obj))
        assert parsed["inner"]["value"] == "nan"


class TestExperimentResults:
    def test_every_experiment_result_serializes(self):
        """Spot-check: the cheap experiment results all JSON-encode."""
        from repro.analysis.experiments import (
            e1_rmboc_setup,
            e5_area_scaling,
            e8_energy,
        )

        for result in (e1_rmboc_setup(), e5_area_scaling(), e8_energy()):
            json.loads(dumps(result))
