"""Figure-renderer tests: drawings must match live model state."""

from repro.arch import build_architecture
from repro.analysis.render import (
    render_buscom_figure,
    render_conochi_figure,
    render_dynoc_figure,
    render_rmboc_figure,
)
from repro.fabric.geometry import Rect


class TestFigure1:
    def test_shows_modules_and_crosspoints(self):
        text = render_rmboc_figure(build_architecture("rmboc"))
        for token in ("m0", "m3", "XP0", "XP3", "bus0", "bus3"):
            assert token in text

    def test_reserved_segments_marked(self):
        arch = build_architecture("rmboc")
        arch.ports["m0"].send("m3", 4096)
        arch.sim.run(20)  # circuit established, streaming
        text = render_rmboc_figure(arch)
        assert "#" in text  # reserved lanes drawn differently

    def test_free_slot_rendered(self):
        arch = build_architecture("rmboc")
        arch.detach("m1")
        assert "(free)" in render_rmboc_figure(arch)


class TestFigure2:
    def test_shows_interfaces_and_arbiter(self):
        text = render_buscom_figure(build_architecture("buscom"))
        assert text.count("BUS-COM") == 4
        assert "Arbiter" in text
        assert "16 static / 16 dynamic" in text


class TestFigure3:
    def test_mesh_dimensions(self):
        arch = build_architecture("dynoc", num_modules=0, mesh=(5, 5))
        text = render_dynoc_figure(arch)
        assert len(text.splitlines()) == 6  # 5 rows + legend

    def test_obstacle_routers_absent(self):
        arch = build_architecture("dynoc", num_modules=0, mesh=(5, 5))
        arch.attach("a", rect=Rect(1, 1, 2, 2))
        text = render_dynoc_figure(arch)
        # module interior rendered lower-case without R
        assert "a " in text
        assert "·R" in text


class TestFigure4:
    def test_tile_symbols(self):
        text = render_conochi_figure(build_architecture("conochi"))
        assert "S" in text and "M" in text and "0" in text
        assert "m0@(1, 1)" in text

    def test_wire_tiles_after_topology_change(self):
        from repro.fabric.tiles import TileType

        arch = build_architecture("conochi")
        arch.add_switch((2, 3), wires=[((2, 2), TileType.VWIRE)])
        text = render_conochi_figure(arch)
        assert "V" in text
