"""Fleet-scale batched sweeps: seed-major batching is pure packaging.

Per-seed results depend only on ``(arch, seed, workload)`` — never on
the engine, never on how seeds are grouped into fleets, never on
whether a process pool or the batched loop ran them.
"""

import pytest

from repro.analysis.batch import (
    FleetResult,
    render_fleet,
    run_seed,
    run_seed_fleet,
    run_seed_fleet_pool,
)

#: small-but-nontrivial workload so the whole module stays fast
WORKLOAD = dict(cycles=3_000, bursts=2, burst_size=10, burst_gap=900,
                payloads=(64, 256))


def test_fleet_equals_per_seed_runs():
    seeds = range(4)
    fleet = run_seed_fleet("dynoc", seeds, engine="vec", **WORKLOAD)
    solo = [run_seed("dynoc", s, engine="vec", **WORKLOAD) for s in seeds]
    assert [r.key() for r in fleet.results] == [r.key() for r in solo]
    assert fleet.seeds == list(seeds)
    assert fleet.delivered_total == sum(r.delivered for r in solo)


@pytest.mark.parametrize("key", ("dynoc", "sharedbus", "rmboc"))
def test_seed_results_engine_independent(key):
    for seed in (0, 11):
        obj = run_seed(key, seed, engine="object", **WORKLOAD)
        vec = run_seed(key, seed, engine="vec", **WORKLOAD)
        assert obj.key() == vec.key()


def test_fleet_grouping_irrelevant():
    whole = run_seed_fleet("sharedbus", range(4), engine="vec", **WORKLOAD)
    first = run_seed_fleet("sharedbus", range(2), engine="vec", **WORKLOAD)
    second = run_seed_fleet("sharedbus", range(2, 4), engine="vec",
                            **WORKLOAD)
    assert ([r.key() for r in whole.results]
            == [r.key() for r in first.results]
            + [r.key() for r in second.results])


def test_pool_matches_batched_fleet():
    seeds = range(3)
    batched = run_seed_fleet("buscom", seeds, engine="vec", **WORKLOAD)
    pooled = run_seed_fleet_pool("buscom", seeds, engine="vec",
                                 max_workers=1, **WORKLOAD)
    assert ([r.key() for r in batched.results]
            == [r.key() for r in pooled.results])


def test_results_are_nontrivial():
    res = run_seed("dynoc", 0, engine="vec", **WORKLOAD)
    assert res.sent == 2 * 10            # bursts x burst_size
    assert 0 < res.delivered <= res.sent
    assert res.mean_latency > 0
    assert res.max_latency >= res.mean_latency


def test_summary_and_render():
    fleet = run_seed_fleet("sharedbus", range(2), engine="vec", **WORKLOAD)
    s = fleet.summary()
    assert s["seeds"] == 2
    assert s["arch"] == "sharedbus"
    assert s["engine"] == "vec"
    assert s["wall_seconds"] > 0
    assert s["seeds_per_second"] > 0
    line = render_fleet(fleet)
    assert "sharedbus" in line and "2 seeds" in line and "vec" in line


def test_empty_fleet_summary_is_safe():
    fleet = FleetResult(arch="dynoc", engine=None)
    s = fleet.summary()
    assert s["seeds"] == 0
    assert s["delivered_total"] == 0
    assert s["seeds_per_second"] == float("inf")
