"""Ablation-harness tests (reduced sizes; full sweeps live in benchmarks)."""

import pytest

from repro.analysis import ablations as A


class TestSeries:
    def test_monotone_decreasing(self):
        s = A.AblationSeries("x", "m", [(1, 5.0), (2, 3.0), (3, 3.0)])
        assert s.monotone_decreasing()
        s2 = A.AblationSeries("x", "m", [(1, 3.0), (2, 5.0)])
        assert not s2.monotone_decreasing()

    def test_best(self):
        s = A.AblationSeries("x", "m", [(1, 5.0), (2, 3.0), (3, 4.0)])
        assert s.best() == (2, 3.0)


class TestA1:
    def test_more_buses_fewer_cancels(self):
        result = A.a1_rmboc_bus_count(ks=(1, 4))
        cancels = dict(result["cancels"].points)
        assert cancels[4] < cancels[1]

    def test_more_buses_faster_completion(self):
        result = A.a1_rmboc_bus_count(ks=(1, 4))
        completion = dict(result["completion"].points)
        assert completion[4] < completion[1]


class TestA2:
    def test_static_slots_bound_victim_latency(self):
        result = A.a2_buscom_static_split(splits=(0, 32), horizon=4000)
        worst = dict(result["periodic_worst"].points)
        assert worst[32] < worst[0] / 10

    def test_static_slots_slow_bursts(self):
        result = A.a2_buscom_static_split(splits=(0, 32), horizon=4000)
        burst = dict(result["bursty_mean"].points)
        assert burst[32] > burst[0]


class TestA3:
    def test_update_latency_never_stalls_traffic(self):
        result = A.a3_conochi_table_update_latency(latencies=(1, 256),
                                                   horizon=2000)
        vals = dict(result.points)
        assert vals[256] >= vals[1]
        assert vals[256] - vals[1] < 10


class TestA4:
    def test_linear_in_pipeline_depth(self):
        result = A.a4_dynoc_router_latency(depths=(1, 3, 5))
        pts = dict(result.points)
        assert pts[3] - pts[1] == pts[5] - pts[3]


class TestA5:
    def test_adaptivity_helps_hot_stream(self):
        result = A.a5_buscom_adaptivity(horizon=8000)
        assert result["adaptive"] < result["static"]


class TestA6:
    def test_saf_slower_for_large_packets(self):
        result = A.a6_dynoc_switching_mode(payload_bytes=(4, 256))
        vct = dict(result["vct"].points)
        saf = dict(result["saf"].points)
        assert saf[256] > vct[256]
        assert saf[4] - vct[4] < saf[256] - vct[256]

    def test_invalid_switching_mode_raises(self):
        import pytest

        from repro.arch.dynoc import DyNoCConfig

        with pytest.raises(ValueError):
            DyNoCConfig(switching="wormhole")


class TestA7:
    def test_backoff_increases_latency_not_fairness(self):
        result = A.a7_rmboc_fairness(backoffs=(2, 128), horizon=3000)
        lat = dict(result["mean_latency"].points)
        assert lat[128] > lat[2]
        for _, v in result["fairness"].points:
            assert 0.0 < v <= 1.0
