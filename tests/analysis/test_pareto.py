"""Pareto-frontier tests."""

import pytest

from repro.analysis.pareto import (
    dominated_by,
    dominates,
    pareto_frontier,
    render_frontier,
)
from repro.analysis.sweeps import SweepGrid, SweepPoint, run_sweep


def make_point(arch, area, latency, dmax=1):
    return SweepPoint(
        params={"arch": arch},
        mean_latency=latency,
        max_latency=int(latency),
        total_cycles=100,
        observed_dmax=dmax,
        area_slices=area,
        fmax_mhz=100.0,
    )


class TestDominance:
    def test_strict_dominance(self):
        assert dominates((1, 1), (2, 2))
        assert dominates((1, 2), (1, 3))
        assert not dominates((1, 3), (2, 1))  # trade-off
        assert not dominates((1, 1), (1, 1))  # equal is not dominance


class TestFrontier:
    def test_extracts_non_dominated(self):
        points = [
            make_point("cheap_slow", area=100, latency=50.0),
            make_point("dear_fast", area=500, latency=10.0),
            make_point("dominated", area=600, latency=60.0),
        ]
        frontier = pareto_frontier(points)
        names = [e.point.params["arch"] for e in frontier]
        assert names == ["cheap_slow", "dear_fast"]

    def test_single_point_is_frontier(self):
        points = [make_point("only", 100, 10.0)]
        assert len(pareto_frontier(points)) == 1

    def test_unknown_objective_raises(self):
        with pytest.raises(KeyError):
            pareto_frontier([make_point("x", 1, 1.0)],
                            objectives=("area", "beauty"))

    def test_dominated_by_mapping(self):
        points = [
            make_point("winner", area=100, latency=10.0),
            make_point("loser", area=200, latency=20.0),
        ]
        mapping = dominated_by(points)
        assert mapping == {"winner": ["loser"]}

    def test_parallelism_objective(self):
        a = make_point("par", area=100, latency=10.0, dmax=8)
        b = make_point("ser", area=100, latency=10.0, dmax=1)
        frontier = pareto_frontier([a, b],
                                   objectives=("area", "neg_dmax"))
        names = [e.point.params["arch"] for e in frontier]
        assert names == ["par"]


class TestOnRealSweep:
    def test_frontier_from_live_sweep(self):
        grid = SweepGrid(
            arch=["rmboc", "buscom", "dynoc", "conochi", "sharedbus"],
            payload_bytes=[64],
        )
        points = run_sweep(grid)
        frontier = pareto_frontier(points, objectives=("area", "latency"))
        names = {e.point.params["arch"] for e in frontier}
        # the shared bus is the cheapest => always on the frontier;
        # at least one parallel interconnect joins it on latency
        assert "sharedbus" in names
        assert len(names) >= 2
        text = render_frontier(frontier, ("area", "latency"))
        assert "Pareto frontier" in text
