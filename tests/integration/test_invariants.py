"""Property-based system invariants under randomized traffic.

These are the conservation and cleanliness laws every interconnect must
obey regardless of workload: nothing lost, nothing duplicated, no
resource leaks after drain, determinism per seed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import build_architecture
from repro.arch.buscom.schedule import SlotKind

# (src, dst, payload) triples over 4 modules; src != dst enforced below
message_sets = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(1, 600)),
    min_size=1,
    max_size=25,
)


def _inject(arch, triples):
    sent = 0
    for src, dst, size in triples:
        if src == dst:
            continue
        arch.ports[f"m{src}"].send(f"m{dst}", size)
        sent += size
    return sent


@settings(max_examples=25, deadline=None)
@given(triples=message_sets)
def test_rmboc_conservation_and_lane_cleanup(triples):
    arch = build_architecture("rmboc")
    sent = _inject(arch, triples)
    if sent:
        arch.run_to_completion(max_cycles=2_000_000)
    # conservation: every payload byte injected is delivered exactly once
    assert arch.sim.stats.counter("delivered.bytes").value == sent
    # no leaked lanes or channels after drain
    assert arch.lanes_in_use() == 0
    assert arch.idle()
    # protocol accounting balances
    stats = arch.sim.stats
    opened = stats.counter("rmboc.channels.requested").value
    closed = (stats.counter("rmboc.channels.destroyed").value
              + stats.counter("rmboc.channels.cancelled").value)
    assert opened == closed


@settings(max_examples=25, deadline=None)
@given(triples=message_sets)
def test_buscom_conservation_and_slot_invariant(triples):
    arch = build_architecture("buscom")
    sent = _inject(arch, triples)
    if sent:
        arch.run_to_completion(max_cycles=2_000_000)
    assert arch.sim.stats.counter("delivered.bytes").value == sent
    assert arch.idle()
    # the TDMA table never changes shape by itself
    statics = sum(
        1
        for b in range(arch.table.num_buses)
        for s in range(arch.table.slots_per_bus)
        if arch.table.entry(b, s).kind is SlotKind.STATIC
    )
    assert statics == arch.cfg.static_slots * arch.cfg.num_buses


@settings(max_examples=25, deadline=None)
@given(triples=message_sets)
def test_dynoc_conservation(triples):
    arch = build_architecture("dynoc")
    sent = _inject(arch, triples)
    if sent:
        arch.run_to_completion(max_cycles=2_000_000)
    assert arch.sim.stats.counter("delivered.bytes").value == sent
    assert arch.idle()
    assert not arch._arrivals and not arch._deliveries


@settings(max_examples=25, deadline=None)
@given(triples=message_sets)
def test_conochi_conservation(triples):
    arch = build_architecture("conochi")
    sent = _inject(arch, triples)
    if sent:
        arch.run_to_completion(max_cycles=2_000_000)
    assert arch.sim.stats.counter("delivered.bytes").value == sent
    assert arch.idle()
    assert not arch._landed_fragments  # no orphaned fragments


@settings(max_examples=10, deadline=None)
@given(triples=message_sets, seed=st.integers(0, 2**16))
def test_per_message_delivery_is_exactly_once(triples, seed):
    """Each message object is delivered to exactly one port exactly once."""
    arch = build_architecture("buscom", seed=seed)
    for src, dst, size in triples:
        if src != dst:
            arch.ports[f"m{src}"].send(f"m{dst}", size)
    if arch.log.total:
        arch.run_to_completion(max_cycles=2_000_000)
    received = []
    for port in arch.ports.values():
        received.extend(port.take_received())
    assert sorted(m.mid for m in received) == sorted(
        m.mid for m in arch.log.messages
    )


@settings(max_examples=8, deadline=None)
@given(ops=st.lists(st.tuples(st.integers(0, 3), st.integers(0, 31),
                              st.integers(0, 4)),
                    min_size=1, max_size=20))
def test_buscom_reassignment_preserves_slot_count(ops):
    """Arbitrary reassignment sequences keep 32 slots per bus — slots
    change owner or kind, never number."""
    arch = build_architecture("buscom")
    modules = list(arch.modules)
    for bus, slot, owner_idx in ops:
        owner = modules[owner_idx] if owner_idx < len(modules) else None
        arch.reassign_slot(bus, slot, owner)
    arch.sim.run(arch.cfg.reassign_latency + len(ops) + 2)
    for b in range(arch.table.num_buses):
        kinds = [arch.table.entry(b, s).kind for s in range(32)]
        assert len(kinds) == 32
    # traffic still flows afterwards
    msg = arch.ports["m0"].send("m1", 32)
    arch.run_to_completion(max_cycles=500_000)
    assert msg.delivered
