"""Cross-architecture integration tests: the paper's qualitative
comparisons hold end-to-end on the minimal 4-module system."""

import pytest

from repro.arch import build_all, build_architecture
from repro.core.scenario import minimal_scenario


@pytest.fixture(scope="module")
def ring_results():
    return {
        name: minimal_scenario(arch, payload_bytes=64, pattern="ring")
        for name, arch in build_all().items()
    }


class TestQualitativeComparisons:
    def test_established_bus_latency_beats_multihop_noc(self, ring_results):
        """§4.2: 'the lowest latency ... is achieved by the bus-based
        architectures' for established connections; NoC path latency
        scales with switches. On short transfers + setup the bus still
        wins against the 5-cycle-per-switch CoNoChi."""
        assert (ring_results["buscom"].mean_latency
                < ring_results["conochi"].mean_latency)

    def test_all_deliver_everything(self, ring_results):
        for name, result in ring_results.items():
            assert result.messages == 4, name
            assert len(result.latencies) == 4, name

    def test_area_ordering_matches_table3(self):
        archs = build_all()
        areas = {k: a.area_slices() for k, a in archs.items()}
        assert areas["buscom"] < areas["dynoc"] < areas["conochi"] < areas["rmboc"]

    def test_parallelism_ordering(self):
        """d_max: RMBoC (s*k) > BUS-COM (k); NoCs link-bound."""
        archs = build_all()
        assert archs["rmboc"].theoretical_dmax() == 12
        assert archs["buscom"].theoretical_dmax() == 4
        assert archs["dynoc"].theoretical_dmax() >= 4
        assert archs["conochi"].theoretical_dmax() >= 4


class TestHeavyTraffic:
    @pytest.mark.parametrize("name", ["rmboc", "buscom", "dynoc", "conochi"])
    def test_sustained_all_pairs_load(self, name):
        """Hundreds of messages across all pairs complete and drain."""
        arch = build_architecture(name)
        for rep in range(10):
            for i in range(4):
                for j in range(4):
                    if i != j:
                        arch.ports[f"m{i}"].send(f"m{j}", 48)
        arch.run_to_completion(max_cycles=500_000)
        assert arch.log.total == 120
        assert arch.log.all_delivered()
        assert arch.idle()

    @pytest.mark.parametrize("name", ["rmboc", "buscom", "dynoc", "conochi"])
    def test_interleaved_sizes(self, name):
        arch = build_architecture(name)
        sizes = [1, 7, 64, 255, 256, 720, 1024]
        for k, size in enumerate(sizes):
            arch.ports[f"m{k % 4}"].send(f"m{(k + 1) % 4}", size)
        arch.run_to_completion(max_cycles=500_000)
        delivered = sorted(m.payload_bytes for m in arch.log.delivered())
        assert delivered == sorted(sizes)


class TestDeterminism:
    @pytest.mark.parametrize("name", ["rmboc", "buscom", "dynoc", "conochi"])
    def test_identical_runs_identical_results(self, name):
        def run():
            arch = build_architecture(name, seed=3)
            r = minimal_scenario(arch, payload_bytes=96,
                                 pattern="all-pairs", repeats=2)
            return (r.total_cycles, tuple(r.latencies), r.observed_dmax)

        assert run() == run()
