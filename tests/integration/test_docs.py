"""Documentation-rot guards: README snippets execute, doc links exist."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).parents[2]


class TestReadmeSnippets:
    def test_python_snippets_execute(self):
        """All ```python blocks in the README run top-to-bottom in one
        namespace (later blocks may use earlier blocks' names)."""
        text = (ROOT / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", text, re.S)
        assert blocks, "README lost its python examples"
        namespace = {}
        for block in blocks:
            exec(compile(block, "<README>", "exec"), namespace)

    def test_published_numbers_present(self):
        text = (ROOT / "README.md").read_text()
        for number in ("5084", "1294", "1480", "1640"):
            assert number in text


class TestDocTree:
    def test_index_links_resolve(self):
        index = (ROOT / "docs" / "README.md").read_text()
        for target in re.findall(r"\]\((\w+\.md)\)", index):
            assert (ROOT / "docs" / target).exists(), target

    def test_every_doc_is_indexed(self):
        index = (ROOT / "docs" / "README.md").read_text()
        for doc in (ROOT / "docs").glob("*.md"):
            if doc.name != "README.md":
                assert doc.name in index, f"{doc.name} not in docs index"

    def test_design_experiment_index_matches_benchmarks(self):
        """Every bench target named in DESIGN.md §4 exists on disk."""
        design = (ROOT / "DESIGN.md").read_text()
        targets = re.findall(r"`benchmarks/(bench_\w+\.py)`", design)
        assert targets
        for target in targets:
            assert (ROOT / "benchmarks" / target).exists(), target

    def test_experiments_md_covers_all_ids(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for exp in ("E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8",
                    "E9", "E10", "E11"):
            assert f"## {exp} " in text or f"## {exp}/" in text or \
                f"## {exp} —" in text, exp
