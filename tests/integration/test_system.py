"""ReconfigurableSystem facade tests."""

import pytest

from repro.reconfig import ModuleSpec
from repro.system import ReconfigurableSystem


class TestConstruction:
    @pytest.mark.parametrize("name", ["rmboc", "buscom", "dynoc", "conochi"])
    def test_builds_on_default_device(self, name):
        system = ReconfigurableSystem(name)
        assert system.device.name == "XC2V6000"
        assert len(system.arch.modules) == 4

    def test_slot_floorplan_for_buses(self):
        system = ReconfigurableSystem("rmboc")
        assert system.floorplan is not None
        assert len(system.floorplan) == 4

    def test_no_slot_floorplan_for_nocs(self):
        system = ReconfigurableSystem("conochi")
        assert system.floorplan is None


class TestRegions:
    def test_bus_regions_are_full_height_slots(self):
        system = ReconfigurableSystem("buscom")
        region = system.region_of("m0")
        assert region.h == system.device.clb_rows

    def test_bus_regions_disjoint(self):
        system = ReconfigurableSystem("rmboc")
        regions = [system.region_of(m) for m in system.arch.modules]
        for a in regions:
            for b in regions:
                if a != b:
                    assert not a.overlaps(b)

    def test_noc_regions_scale_tiles_to_clbs(self):
        system = ReconfigurableSystem("dynoc")
        region = system.region_of("m0")
        assert region.w == 4 and region.h == 4  # 1 PE = 4x4 CLBs

    def test_conochi_module_region(self):
        system = ReconfigurableSystem("conochi")
        region = system.region_of("m0")
        assert region.area_clbs == 16

    def test_unknown_module_raises(self):
        system = ReconfigurableSystem("rmboc")
        with pytest.raises(KeyError):
            system.region_of("ghost")


class TestSwap:
    @pytest.mark.parametrize("name", ["rmboc", "buscom", "dynoc", "conochi"])
    def test_one_call_swap(self, name):
        system = ReconfigurableSystem(name)
        record = system.swap("m0", ModuleSpec("m0b"))
        system.sim.run_until(lambda s: record.done, max_cycles=2_000_000)
        assert "m0b" in system.arch.modules

    def test_floorplan_tracks_occupant(self):
        system = ReconfigurableSystem("rmboc")
        record = system.swap("m1", ModuleSpec("fancy"))
        system.sim.run_until(lambda s: record.done, max_cycles=2_000_000)
        system.sim.run(128)  # bookkeeping poll
        assert system.floorplan.slot_of("fancy").index == 1

    def test_slot_frozen_during_swap(self):
        system = ReconfigurableSystem("rmboc")
        system.swap("m1", ModuleSpec("fancy"))
        assert system.floorplan.slot_of("m1").frozen


class TestReporting:
    def test_module_fits(self):
        system = ReconfigurableSystem("rmboc")
        slot_slices = system.region_of("m0").area_slices
        assert system.module_fits(ModuleSpec("ok", slices=slot_slices), "m0")
        assert not system.module_fits(
            ModuleSpec("big", slices=slot_slices + 1), "m0"
        )

    def test_interconnect_utilization_in_published_range(self):
        """RMBoC's §3.1 range: 4-15 % of the XC2V6000."""
        system = ReconfigurableSystem("rmboc")
        assert 0.04 <= system.interconnect_utilization() <= 0.155

    def test_report_text(self):
        system = ReconfigurableSystem("buscom")
        text = system.report()
        assert "XC2V6000" in text
        assert "m0" in text and "m3" in text
        assert "%" in text
