"""Every example must run clean — examples are executable documentation
and rot silently otherwise. Run in-process (runpy) for speed; each
example ends with its own assertions."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    p.name for p in (Path(__file__).parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script, capsys, monkeypatch):
    path = Path(__file__).parents[2] / "examples" / script
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_example_inventory():
    """The README promises the demo set; keep it in sync."""
    expected = {
        "quickstart.py",
        "video_pipeline.py",
        "automotive_buscom.py",
        "network_conochi.py",
        "dynoc_placement.py",
        "choose_architecture.py",
        "trace_comparison.py",
        "job_marketplace.py",
        "conochi_fault_tolerance.py",
        "congestion_monitor.py",
        "failover_demo.py",
        "adaptive_failover.py",
    }
    assert expected <= set(EXAMPLES)
