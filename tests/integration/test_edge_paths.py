"""Edge-path coverage: failure modes and rarely-hit branches."""

import pytest

from repro.arch import build_architecture
from repro.sim import SimError


class TestRunToCompletionFailure:
    def test_undeliverable_traffic_fails_loudly(self):
        """A message to a permanently absent destination trips the
        cycle bound instead of hanging."""
        arch = build_architecture("buscom")
        arch.detach("m3")
        arch.ports["m0"].send("m3", 16)
        with pytest.raises(SimError):
            arch.run_to_completion(max_cycles=2_000)


class TestBuilderEdges:
    def test_dynoc_full_mesh_rejects_extra_module(self):
        arch = build_architecture("dynoc", num_modules=4)  # 2x2 full
        with pytest.raises(ValueError):
            arch.attach("extra")

    def test_conochi_standard_grid_overrides(self):
        from repro.arch.conochi.arch import standard_grid

        grid = standard_grid(3, cols=10, rows=6)
        assert grid.cols == 10 and grid.rows == 6
        assert len(grid.switches()) == 3

    def test_conochi_ladder_grid_split(self):
        from repro.arch.conochi.arch import ladder_grid

        grid = ladder_grid(9)
        assert len(grid.switches()) == 9
        assert grid.is_connected()

    def test_conochi_too_few_switches_raises(self):
        from repro.arch.conochi import build_conochi
        from repro.arch.conochi.arch import standard_grid

        with pytest.raises(ValueError):
            build_conochi(num_modules=5, grid=standard_grid(3))

    def test_rmboc_explicit_config_object(self):
        from repro.arch.rmboc import RMBoCConfig, build_rmboc

        cfg = RMBoCConfig(num_modules=3, num_buses=2, width=16)
        arch = build_rmboc(cfg=cfg)
        assert arch.modules == ("m0", "m1", "m2")
        assert arch.width == 16


class TestPortEdges:
    def test_send_to_self_raises(self):
        arch = build_architecture("buscom")
        with pytest.raises(ValueError):
            arch.ports["m0"].send("m0", 8)

    def test_send_zero_bytes_raises(self):
        arch = build_architecture("buscom")
        with pytest.raises(ValueError):
            arch.ports["m0"].send("m1", 0)


class TestConfigEdges:
    def test_buscom_empty_minislot_with_zero_guard(self):
        from repro.arch.buscom import BusComConfig

        cfg = BusComConfig(guard_cycles=0)
        assert cfg.empty_dynamic_slot_cycles == 1  # never zero-length

    def test_dynoc_ttl_budget(self):
        from repro.arch.dynoc import DyNoCConfig

        cfg = DyNoCConfig(mesh_cols=5, mesh_rows=3)
        assert cfg.ttl_hops == 8 * 8

    def test_conochi_single_fragment_boundary(self):
        from repro.arch.conochi import CoNoChiConfig

        cfg = CoNoChiConfig()
        assert cfg.fragments(cfg.max_payload_bytes) == 1
        assert cfg.fragments(cfg.max_payload_bytes + 1) == 2
