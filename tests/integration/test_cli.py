"""CLI integration tests."""

import pytest

from repro.cli import main, make_parser


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args([])

    def test_scenario_defaults(self):
        args = make_parser().parse_args(["scenario"])
        assert args.arch == "conochi"
        assert args.pattern == "ring"


class TestCommands:
    def test_scenario(self, capsys):
        assert main(["scenario", "-a", "buscom", "-b", "32"]) == 0
        out = capsys.readouterr().out
        assert "architecture : buscom" in out
        assert "latency" in out

    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        for token in ("Figure 1", "Figure 2", "Figure 3", "Figure 4"):
            assert token in out

    def test_experiment_e1(self, capsys):
        assert main(["experiment", "e1"]) == 0
        assert "E1Result" in capsys.readouterr().out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "e99"]) == 2

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 4" in out
        assert "5084" in out  # Table 3 RMBoC


class TestNewCommands:
    def test_sweep(self, capsys):
        assert main(["sweep", "--archs", "buscom", "--widths", "32",
                     "--payloads", "32"]) == 0
        out = capsys.readouterr().out
        assert "buscom" in out and "mean lat" in out

    def test_advise(self, capsys):
        assert main(["advise", "--variable-shape"]) == 0
        out = capsys.readouterr().out
        assert "recommendation:" in out
        assert "VETO" in out  # buses vetoed by variable shape

    def test_experiment_json(self, capsys):
        import json

        assert main(["experiment", "e8", "--json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert set(parsed["rows"]) == {"rmboc", "buscom", "dynoc",
                                       "conochi"}

    def test_report(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "# repro run report" in out
        assert "Tables 1-4" in out
        assert "E10" in out
        assert "5084" in out

    def test_validate_fast(self, capsys):
        assert main(["validate", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "checks passed" in out
        assert "FAIL" not in out
