"""Cross-validation: analytic models vs measured behaviour.

These tests close the loop between the closed-form expressions the
paper (or our config layer) states and what the cycle-level simulators
actually do.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.arch import build_architecture
from repro.arch.rmboc import RMBoCConfig
from repro.core.metrics import probe_single_message


class TestRmbocFormula:
    @given(m=st.integers(3, 8), k=st.integers(1, 6),
           dist=st.integers(1, 7))
    @settings(max_examples=30, deadline=None)
    def test_setup_formula_holds_for_any_m_k(self, m, k, dist):
        """setup(d) = 2d+6 for every uncontended geometry."""
        if dist >= m:
            return
        arch = build_architecture("rmboc", num_modules=m, num_buses=k)
        probe = probe_single_message(arch, "m0", f"m{dist}", 32)
        assert probe.setup_cycles == 2 * dist + 6
        assert probe.setup_cycles == RMBoCConfig(
            num_modules=m, num_buses=k
        ).setup_latency(dist)

    @given(payload=st.integers(1, 2000))
    @settings(max_examples=30, deadline=None)
    def test_total_latency_closed_form(self, payload):
        """latency = setup + ceil(8·payload/width), exactly."""
        arch = build_architecture("rmboc")
        probe = probe_single_message(arch, "m0", "m1", payload)
        words = -(-payload * 8 // 32)
        assert probe.total_cycles == 8 + words


class TestConochiAnalyticRoutes:
    @given(src=st.integers(0, 3), dst=st.integers(0, 3))
    @settings(max_examples=20, deadline=None)
    def test_route_latency_predicts_header_arrival(self, src, dst):
        """The control unit's analytic path latency equals the measured
        single-word message latency minus the NI injection and final
        local-port serialization."""
        if src == dst:
            return
        arch = build_architecture("conochi")
        phys = arch.control.resolve(f"m{dst}")
        analytic = arch.control.route_latency(
            arch._module_switch[f"m{src}"], phys,
            switch_latency=arch.cfg.switch_latency,
        )
        probe = probe_single_message(arch, f"m{src}", f"m{dst}", 4)
        words = arch.cfg.header_words + 1
        # measured = 1 (NI) + link + analytic-without-last-local + words
        # Validate the relationship by recomputing from components:
        expected = 1 + arch.cfg.link_latency + analytic + words
        assert probe.total_cycles == expected


class TestBuscomRoundArithmetic:
    @given(offset=st.integers(0, 700))
    @settings(max_examples=25, deadline=None)
    def test_latency_bounded_by_round_length(self, offset):
        """An 8-byte frame never waits longer than one full TDMA round
        plus its own slot (the static-slot guarantee)."""
        arch = build_architecture("buscom")
        cfg = arch.cfg
        arch.sim.run(offset)
        msg = arch.ports["m0"].send("m1", 8)
        arch.run_to_completion(max_cycles=100_000)
        round_cycles = (
            cfg.static_slots * cfg.static_slot_cycles
            + (cfg.slots_per_bus - cfg.static_slots)
            * cfg.empty_dynamic_slot_cycles
        )
        assert msg.latency <= round_cycles + cfg.static_slot_cycles
