"""Unit tests for measurement primitives."""

import math

import pytest

from repro.sim.stats import Counter, Histogram, StatsRegistry, TimeSeries


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("c").value == 0

    def test_inc(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_inc_raises(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_int_conversion(self):
        c = Counter("c")
        c.inc(3)
        assert int(c) == 3


class TestHistogram:
    def test_empty_stats_are_nan(self):
        h = Histogram("h")
        assert math.isnan(h.mean)
        assert math.isnan(h.min)
        assert math.isnan(h.percentile(50))

    def test_mean_min_max(self):
        h = Histogram("h")
        h.extend([1, 2, 3, 4])
        assert h.mean == 2.5
        assert h.min == 1
        assert h.max == 4
        assert h.count == 4

    def test_percentiles_exact(self):
        h = Histogram("h")
        h.extend(range(101))
        assert h.percentile(50) == 50
        assert h.percentile(95) == 95

    def test_summary_keys(self):
        h = Histogram("h")
        h.add(1.0)
        s = h.summary()
        assert set(s) == {"count", "mean", "std", "min", "p50", "p95",
                          "p99", "max"}

    def test_samples_immutable_copy(self):
        h = Histogram("h")
        h.add(1)
        samples = h.samples
        assert isinstance(samples, tuple)


class TestTimeSeries:
    def test_record_and_read(self):
        ts = TimeSeries("t")
        ts.record(0, 1.0)
        ts.record(5, 2.0)
        assert list(ts.cycles) == [0, 5]
        assert list(ts.values) == [1.0, 2.0]
        assert len(ts) == 2

    def test_non_monotonic_raises(self):
        ts = TimeSeries("t")
        ts.record(5, 1.0)
        with pytest.raises(ValueError):
            ts.record(4, 1.0)

    def test_window_mean(self):
        ts = TimeSeries("t")
        for c, v in [(0, 1.0), (10, 3.0), (20, 5.0)]:
            ts.record(c, v)
        assert ts.window_mean(0, 15) == 2.0
        assert math.isnan(ts.window_mean(100, 200))

    def test_same_cycle_allowed(self):
        ts = TimeSeries("t")
        ts.record(3, 1.0)
        ts.record(3, 2.0)
        assert len(ts) == 2


class TestStatsRegistry:
    def test_counter_is_memoized(self):
        reg = StatsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_histogram_is_memoized(self):
        reg = StatsRegistry()
        assert reg.histogram("x") is reg.histogram("x")

    def test_series_is_memoized(self):
        reg = StatsRegistry()
        assert reg.series("x") is reg.series("x")

    def test_counters_prefix_filter(self):
        reg = StatsRegistry()
        reg.counter("a.x").inc()
        reg.counter("a.y").inc(2)
        reg.counter("b.z").inc(3)
        assert reg.counters("a.") == {"a.x": 1, "a.y": 2}

    def test_get_missing_returns_none(self):
        reg = StatsRegistry()
        assert reg.get_counter("nope") is None
        assert reg.get_histogram("nope") is None


class TestCounterSnapshot:
    def test_delta_since_snapshot(self):
        from repro.sim.stats import CounterSnapshot

        reg = StatsRegistry()
        reg.counter("a").inc(5)
        snap = CounterSnapshot(reg)
        reg.counter("a").inc(3)
        reg.counter("b").inc(1)
        assert snap.delta() == {"a": 3, "b": 1}

    def test_unchanged_counters_omitted(self):
        from repro.sim.stats import CounterSnapshot

        reg = StatsRegistry()
        reg.counter("a").inc()
        snap = CounterSnapshot(reg)
        assert snap.delta() == {}

    def test_prefix_filter(self):
        from repro.sim.stats import CounterSnapshot

        reg = StatsRegistry()
        snap = CounterSnapshot(reg, prefix="x.")
        reg.counter("x.a").inc()
        reg.counter("y.b").inc()
        assert snap.delta() == {"x.a": 1}

    def test_rebase(self):
        from repro.sim.stats import CounterSnapshot

        reg = StatsRegistry()
        snap = CounterSnapshot(reg)
        reg.counter("a").inc(2)
        snap.rebase()
        assert snap.delta() == {}

    def test_new_counter_after_baseline_included(self):
        from repro.sim.stats import CounterSnapshot

        reg = StatsRegistry()
        reg.counter("a").inc()
        snap = CounterSnapshot(reg)
        reg.counter("b").inc(7)
        assert snap.delta() == {"b": 7}

    def test_rebase_picks_up_new_counters(self):
        from repro.sim.stats import CounterSnapshot

        reg = StatsRegistry()
        snap = CounterSnapshot(reg)
        reg.counter("a").inc(2)
        reg.counter("b").inc(3)
        snap.rebase()
        reg.counter("a").inc(1)
        assert snap.delta() == {"a": 1}


class TestLogBuckets:
    def test_zero_has_its_own_bucket(self):
        from repro.sim.stats import bucket_value, log_bucket

        assert log_bucket(0) == 0
        assert bucket_value(0) == 0.0

    def test_keys_order_like_values(self):
        from repro.sim.stats import log_bucket

        values = [-100.0, -1.5, -0.01, 0.0, 0.02, 1.0, 3.0, 4096.0]
        keys = [log_bucket(v) for v in values]
        assert keys == sorted(keys)

    def test_midpoint_relative_error_bounded(self):
        from repro.sim.stats import bucket_value, log_bucket

        for v in [1, 7, 100, 12345, 0.001, 3.7e6]:
            mid = bucket_value(log_bucket(v))
            assert abs(mid - v) / v < 1 / 8  # 8 sub-buckets per octave

    def test_deterministic(self):
        from repro.sim.stats import log_bucket

        assert [log_bucket(v) for v in (1.0, 2.5, 9.9)] == \
            [log_bucket(v) for v in (1.0, 2.5, 9.9)]


class TestStreamingHistogram:
    def _make(self, cap=4):
        from repro.sim.stats import StreamingHistogram

        return StreamingHistogram(cap)

    def test_exact_under_cap(self):
        h = self._make(cap=10)
        h.extend([5, 1, 3])
        assert h.exact
        assert h.percentile(50) == 3
        assert h.mean == 3
        assert (h.min, h.max) == (1, 5)

    def test_aggregates_stay_exact_past_cap(self):
        h = self._make(cap=4)
        h.extend(range(1, 101))
        assert not h.exact
        assert h.count == 100
        assert h.total == 5050
        assert (h.min, h.max) == (1, 100)
        assert h.mean == 50.5

    def test_percentile_approximate_past_cap(self):
        h = self._make(cap=4)
        h.extend(range(1, 1001))
        p99 = h.percentile(99)
        assert abs(p99 - 990) / 990 < 0.15

    def test_invalid_cap_raises(self):
        import pytest

        from repro.sim.stats import StreamingHistogram

        with pytest.raises(ValueError):
            StreamingHistogram(0)

    def test_as_dict_deterministic(self):
        h1, h2 = self._make(), self._make()
        for h in (h1, h2):
            h.extend([9, 1, 55, 7, 3, 1000, 2])
        assert h1.as_dict() == h2.as_dict()
        assert h1.as_dict()["mode"] == "bucketed"

    def test_summary_keys_match_histogram(self):
        h = self._make()
        h.add(1.0)
        assert set(h.summary()) == {"count", "mean", "std", "min", "p50",
                                    "p95", "p99", "max"}


class TestBucketedHistogramMode:
    def test_default_mode_is_exact(self):
        assert Histogram("h").mode == "exact"

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="unknown mode"):
            Histogram("h", mode="approximate")

    def test_bucketed_bounds_memory(self):
        h = Histogram("h", mode="bucketed", exact_cap=16)
        h.extend(range(10_000))
        assert len(h.samples) == 16  # verbatim head only
        assert h.count == 10_000
        assert h.total == sum(range(10_000))

    def test_bucketed_summary_aggregates_exact(self):
        h = Histogram("h", mode="bucketed", exact_cap=2)
        h.extend([1, 2, 3, 4])
        assert h.mean == 2.5
        assert (h.min, h.max) == (1, 4)

    def test_registry_mode_selection_and_conflict(self):
        reg = StatsRegistry()
        h = reg.histogram("x", mode="bucketed")
        assert reg.histogram("x") is h  # no mode: existing returned
        assert reg.histogram("x", mode="bucketed") is h
        with pytest.raises(ValueError, match="already exists"):
            reg.histogram("x", mode="exact")

    def test_snapshot_shape_per_mode(self):
        reg = StatsRegistry()
        reg.histogram("e").add(1)
        reg.histogram("b", mode="bucketed").add(1)
        snap = reg.snapshot()["histograms"]
        assert snap["e"] == [1.0]
        assert isinstance(snap["b"], dict)
        assert snap["b"]["count"] == 1
