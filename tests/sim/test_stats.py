"""Unit tests for measurement primitives."""

import math

import pytest

from repro.sim.stats import Counter, Histogram, StatsRegistry, TimeSeries


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("c").value == 0

    def test_inc(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_inc_raises(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_int_conversion(self):
        c = Counter("c")
        c.inc(3)
        assert int(c) == 3


class TestHistogram:
    def test_empty_stats_are_nan(self):
        h = Histogram("h")
        assert math.isnan(h.mean)
        assert math.isnan(h.min)
        assert math.isnan(h.percentile(50))

    def test_mean_min_max(self):
        h = Histogram("h")
        h.extend([1, 2, 3, 4])
        assert h.mean == 2.5
        assert h.min == 1
        assert h.max == 4
        assert h.count == 4

    def test_percentiles_exact(self):
        h = Histogram("h")
        h.extend(range(101))
        assert h.percentile(50) == 50
        assert h.percentile(95) == 95

    def test_summary_keys(self):
        h = Histogram("h")
        h.add(1.0)
        s = h.summary()
        assert set(s) == {"count", "mean", "std", "min", "p50", "p95",
                          "p99", "max"}

    def test_samples_immutable_copy(self):
        h = Histogram("h")
        h.add(1)
        samples = h.samples
        assert isinstance(samples, tuple)


class TestTimeSeries:
    def test_record_and_read(self):
        ts = TimeSeries("t")
        ts.record(0, 1.0)
        ts.record(5, 2.0)
        assert list(ts.cycles) == [0, 5]
        assert list(ts.values) == [1.0, 2.0]
        assert len(ts) == 2

    def test_non_monotonic_raises(self):
        ts = TimeSeries("t")
        ts.record(5, 1.0)
        with pytest.raises(ValueError):
            ts.record(4, 1.0)

    def test_window_mean(self):
        ts = TimeSeries("t")
        for c, v in [(0, 1.0), (10, 3.0), (20, 5.0)]:
            ts.record(c, v)
        assert ts.window_mean(0, 15) == 2.0
        assert math.isnan(ts.window_mean(100, 200))

    def test_same_cycle_allowed(self):
        ts = TimeSeries("t")
        ts.record(3, 1.0)
        ts.record(3, 2.0)
        assert len(ts) == 2


class TestStatsRegistry:
    def test_counter_is_memoized(self):
        reg = StatsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_histogram_is_memoized(self):
        reg = StatsRegistry()
        assert reg.histogram("x") is reg.histogram("x")

    def test_series_is_memoized(self):
        reg = StatsRegistry()
        assert reg.series("x") is reg.series("x")

    def test_counters_prefix_filter(self):
        reg = StatsRegistry()
        reg.counter("a.x").inc()
        reg.counter("a.y").inc(2)
        reg.counter("b.z").inc(3)
        assert reg.counters("a.") == {"a.x": 1, "a.y": 2}

    def test_get_missing_returns_none(self):
        reg = StatsRegistry()
        assert reg.get_counter("nope") is None
        assert reg.get_histogram("nope") is None


class TestCounterSnapshot:
    def test_delta_since_snapshot(self):
        from repro.sim.stats import CounterSnapshot

        reg = StatsRegistry()
        reg.counter("a").inc(5)
        snap = CounterSnapshot(reg)
        reg.counter("a").inc(3)
        reg.counter("b").inc(1)
        assert snap.delta() == {"a": 3, "b": 1}

    def test_unchanged_counters_omitted(self):
        from repro.sim.stats import CounterSnapshot

        reg = StatsRegistry()
        reg.counter("a").inc()
        snap = CounterSnapshot(reg)
        assert snap.delta() == {}

    def test_prefix_filter(self):
        from repro.sim.stats import CounterSnapshot

        reg = StatsRegistry()
        snap = CounterSnapshot(reg, prefix="x.")
        reg.counter("x.a").inc()
        reg.counter("y.b").inc()
        assert snap.delta() == {"x.a": 1}

    def test_rebase(self):
        from repro.sim.stats import CounterSnapshot

        reg = StatsRegistry()
        snap = CounterSnapshot(reg)
        reg.counter("a").inc(2)
        snap.rebase()
        assert snap.delta() == {}

    def test_new_counter_after_baseline_included(self):
        from repro.sim.stats import CounterSnapshot

        reg = StatsRegistry()
        reg.counter("a").inc()
        snap = CounterSnapshot(reg)
        reg.counter("b").inc(7)
        assert snap.delta() == {"b": 7}

    def test_rebase_picks_up_new_counters(self):
        from repro.sim.stats import CounterSnapshot

        reg = StatsRegistry()
        snap = CounterSnapshot(reg)
        reg.counter("a").inc(2)
        reg.counter("b").inc(3)
        snap.rebase()
        reg.counter("a").inc(1)
        assert snap.delta() == {"a": 1}
