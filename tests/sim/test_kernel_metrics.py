"""Kernel self-metrics: wake reasons, fast-forward, commits, tick counts.

These are scheduler *introspection* numbers (``sim.kmetrics``), kept
deliberately outside ``StatsRegistry.snapshot()`` — the fast and slow
paths schedule differently by design, so kernel metrics may differ
between them while every model-visible statistic stays bit-identical.
"""

import pytest

from repro.sim import SLEEP, Component, KernelMetrics, Simulator, Wire
from repro.sim.engine import WAKE_REASONS


class Sleeper(Component):
    """Returns a fixed quiescence hint every tick."""

    def __init__(self, name="sleeper", hint=SLEEP):
        super().__init__(name)
        self.hint = hint

    def tick(self, sim):
        return self.hint


class Napper(Component):
    """Sleeps ``period`` cycles at a time (timed wakes)."""

    def __init__(self, name="napper", period=5):
        super().__init__(name)
        self.period = period

    def tick(self, sim):
        return sim.cycle + self.period


class SelfWaker(Component):
    """Requests a channel-style wake for next cycle while awake, then
    sleeps — exercising the pending-wake clamp."""

    def tick(self, sim):
        sim.wake_at(self, sim.cycle + 1)
        return SLEEP


class Driver(Component):
    """Drives a wire for the first ``n`` cycles, then sleeps."""

    def __init__(self, wire, n, name="driver"):
        super().__init__(name)
        self.wire = wire
        self.n = n

    def tick(self, sim):
        if self.n > 0:
            self.n -= 1
            self.wire.drive(sim.cycle)
            return None
        return SLEEP


class TestWakeReasons:
    def test_timed_wakes(self):
        sim = Simulator(fast_path=True)
        sim.add(Napper(period=5))
        sim.run(21)
        # sleeps at 0,5,10,15,20; wakes at 5,10,15,20
        assert sim.kmetrics.wakes_by_reason()["timed"] == 4
        assert sim.kmetrics.sleeps == 5

    def test_explicit_wake(self):
        sim = Simulator(fast_path=True)
        c = sim.add(Sleeper())
        sim.run(3)
        assert c._asleep
        sim.wake(c)
        assert sim.kmetrics.wakes_by_reason()["explicit"] == 1
        sim.wake(c)  # already awake: not double-counted
        assert sim.kmetrics.wakes_by_reason()["explicit"] == 1

    def test_channel_wake_immediate_and_scheduled(self):
        sim = Simulator(fast_path=True)
        c = sim.add(Sleeper())
        sim.run(3)
        sim.wake_at(c, sim.cycle)  # due now: immediate wake
        assert sim.kmetrics.wakes_by_reason()["channel"] == 1
        sim.run(2)
        assert c._asleep
        sim.wake_at(c, sim.cycle + 3)  # future: via the wake heap
        sim.run(5)
        assert sim.kmetrics.wakes_by_reason()["channel"] == 2

    def test_channel_wake_via_watched_wire(self):
        sim = Simulator(fast_path=True)
        wire = Wire(sim, "w")
        consumer = sim.add(Sleeper(name="consumer"))
        wire.subscribe(consumer)
        driver = Driver(wire, n=0, name="idle")
        sim.add(driver)
        sim.run(3)
        assert consumer._asleep
        driver.n = 1  # wake the producer side manually
        sim.wake(driver)
        sim.run(3)
        assert sim.kmetrics.wakes_by_reason()["channel"] >= 1

    def test_pending_wake_clamp_counted(self):
        sim = Simulator(fast_path=True)
        sim.add(SelfWaker("sw"))
        sim.run(4)
        # every tick the sleep hint is clamped by the pending wake
        assert sim.kmetrics.wakes_by_reason()["pending"] == 4
        assert sim.kmetrics.sleeps == 0

    def test_reason_names_stable(self):
        assert WAKE_REASONS == ("timed", "channel", "explicit", "pending")
        m = KernelMetrics()
        assert set(m.wakes_by_reason()) == set(WAKE_REASONS)


class TestFastForward:
    def test_jumps_and_skipped_cycles_accounted(self):
        sim = Simulator(fast_path=True)
        sim.add(Sleeper())
        fired = []
        sim.at(50, lambda s: fired.append(s.cycle))
        sim.run(100)
        assert fired == [50]
        m = sim.kmetrics
        assert m.ff_jumps == 2  # 1->50 and 51->100
        assert m.ff_cycles_skipped + m.cycles_stepped == 100

    def test_slow_path_never_jumps(self):
        sim = Simulator(fast_path=False)
        sim.add(Sleeper())
        sim.run(100)
        assert sim.kmetrics.ff_jumps == 0
        assert sim.kmetrics.cycles_stepped == 100


class TestCommitMetrics:
    def test_dirty_commit_batches(self):
        sim = Simulator(fast_path=True)
        wire = Wire(sim, "w")
        sim.add(Driver(wire, n=3))
        sim.run(6)
        m = sim.kmetrics
        assert m.commit_batches == 3
        assert m.commit_elements == 3
        assert m.commit_max == 1

    def test_slow_path_commits_not_batched(self):
        sim = Simulator(fast_path=False)
        wire = Wire(sim, "w")
        sim.add(Driver(wire, n=3))
        sim.run(6)
        assert sim.kmetrics.commit_batches == 0


class TestTickCounts:
    def test_live_components_counted(self):
        sim = Simulator(fast_path=True)
        sim.add(Sleeper("a"))
        sim.add(Napper("b", period=3))
        sim.run(10)
        counts = sim.tick_counts()
        assert counts["a"] == 1  # slept immediately
        assert counts["b"] > 1
        assert sim.kmetrics.ticks_total == sum(counts.values())

    def test_removed_component_ticks_retired(self):
        sim = Simulator(fast_path=True)
        n = Napper("n", period=2)
        sim.add(n)
        sim.run(5)
        before = sim.tick_counts()["n"]
        sim.remove(n)
        assert sim.kmetrics.retired_ticks["n"] == before
        assert sim.tick_counts()["n"] == before

    def test_retired_ticks_merge_with_same_name(self):
        sim = Simulator(fast_path=False)
        a = sim.add(Sleeper("x"))
        sim.run(2)
        sim.remove(a)
        sim.add(Sleeper("x"))
        sim.run(3)
        assert sim.tick_counts()["x"] == 2 + 3


class TestIsolationFromSnapshot:
    def test_kernel_metrics_not_in_stats_snapshot(self):
        sim = Simulator(fast_path=True)
        sim.add(Napper(period=3))
        sim.stats.counter("model.x").inc()
        sim.run(20)
        snap = sim.stats.snapshot()
        assert set(snap) == {"counters", "histograms", "series"}
        assert all("kernel" not in name for name in snap["counters"])

    def test_as_dict_keys(self):
        m = KernelMetrics()
        d = m.as_dict()
        for key in ("cycles_stepped", "ticks_total", "sleeps",
                    "wakes_total", "ff_jumps", "ff_cycles_skipped",
                    "commit_batches", "commit_elements", "commit_max"):
            assert key in d
        for reason in WAKE_REASONS:
            assert f"wakes_{reason}" in d
