"""Unit tests for wires and FIFOs (commit semantics)."""

import pytest

from repro.sim import FIFO, PulseWire, SimError, Simulator, Wire


@pytest.fixture
def sim():
    return Simulator()


class TestWire:
    def test_initial_value(self, sim):
        assert Wire(sim, "w", init=7).value == 7

    def test_drive_not_visible_before_commit(self, sim):
        w = Wire(sim, "w", init=0)
        w.drive(1)
        assert w.value == 0

    def test_drive_visible_after_step(self, sim):
        w = Wire(sim, "w", init=0)
        w.drive(1)
        sim.step()
        assert w.value == 1

    def test_holds_value_when_not_driven(self, sim):
        w = Wire(sim, "w", init=3)
        sim.run(5)
        assert w.value == 3

    def test_double_drive_raises(self, sim):
        w = Wire(sim, "w")
        w.drive(1)
        with pytest.raises(SimError):
            w.drive(2)

    def test_driven_flag(self, sim):
        w = Wire(sim, "w")
        assert not w.driven()
        w.drive(1)
        assert w.driven()
        sim.step()
        assert not w.driven()

    def test_redrive_after_commit(self, sim):
        w = Wire(sim, "w", init=0)
        for v in (1, 2, 3):
            w.drive(v)
            sim.step()
            assert w.value == v


class TestPulseWire:
    def test_clears_to_default(self, sim):
        p = PulseWire(sim, "p", default=False)
        p.drive(True)
        sim.step()
        assert p.value is True
        sim.step()
        assert p.value is False

    def test_default_value(self, sim):
        p = PulseWire(sim, "p", default=0)
        sim.run(3)
        assert p.value == 0


class TestFIFO:
    def test_push_visible_next_cycle(self, sim):
        f = FIFO(sim, "f")
        f.push("a")
        assert len(f) == 0
        sim.step()
        assert len(f) == 1
        assert f.pop() == "a"

    def test_fifo_order(self, sim):
        f = FIFO(sim, "f")
        for x in (1, 2, 3):
            f.push(x)
        sim.step()
        assert [f.pop() for _ in range(3)] == [1, 2, 3]

    def test_pop_empty_raises(self, sim):
        with pytest.raises(SimError):
            FIFO(sim, "f").pop()

    def test_try_pop_empty_returns_none(self, sim):
        assert FIFO(sim, "f").try_pop() is None

    def test_peek(self, sim):
        f = FIFO(sim, "f")
        assert f.peek() is None
        f.push("x")
        sim.step()
        assert f.peek() == "x"
        assert len(f) == 1  # peek does not consume

    def test_capacity_overflow_raises(self, sim):
        f = FIFO(sim, "f", capacity=2)
        f.push(1)
        f.push(2)
        with pytest.raises(SimError):
            f.push(3)

    def test_capacity_counts_staged_and_committed(self, sim):
        f = FIFO(sim, "f", capacity=2)
        f.push(1)
        sim.step()
        f.push(2)
        assert not f.can_push()

    def test_try_push_respects_capacity(self, sim):
        f = FIFO(sim, "f", capacity=1)
        assert f.try_push(1)
        assert not f.try_push(2)

    def test_unbounded_by_default(self, sim):
        f = FIFO(sim, "f")
        for i in range(1000):
            f.push(i)
        sim.step()
        assert len(f) == 1000

    def test_clear_drops_everything(self, sim):
        f = FIFO(sim, "f")
        f.push(1)
        sim.step()
        f.push(2)
        f.clear()
        sim.step()
        assert len(f) == 0

    def test_occupancy_and_pending(self, sim):
        f = FIFO(sim, "f")
        f.push(1)
        assert f.pending == 1
        assert f.occupancy == 1
        sim.step()
        assert f.pending == 0
        assert f.occupancy == 1

    def test_bool_and_iter(self, sim):
        f = FIFO(sim, "f")
        assert not f
        f.push(1)
        f.push(2)
        sim.step()
        assert f
        assert list(f) == [1, 2]

    def test_pop_then_push_same_cycle(self, sim):
        f = FIFO(sim, "f")
        f.push("a")
        sim.step()
        assert f.pop() == "a"
        f.push("b")
        sim.step()
        assert f.pop() == "b"


class TestPushAll:
    """can_push(n)/push_all symmetry: batched staging cannot overcommit."""

    def test_push_all_stages_whole_batch(self, sim):
        f = FIFO(sim, "f")
        f.push_all([1, 2, 3])
        assert f.pending == 3
        sim.step()
        assert [f.pop() for _ in range(3)] == [1, 2, 3]

    def test_push_all_respects_capacity_atomically(self, sim):
        f = FIFO(sim, "f", capacity=3)
        f.push(1)
        with pytest.raises(SimError, match="overflow"):
            f.push_all([2, 3, 4])
        # nothing from the failed batch was staged
        assert f.pending == 1
        sim.step()
        assert len(f) == 1

    def test_can_push_n_matches_push_all(self, sim):
        f = FIFO(sim, "f", capacity=4)
        f.push(1)
        assert f.can_push(3)
        assert not f.can_push(4)
        f.push_all([2, 3, 4])  # exactly what can_push(3) promised
        sim.step()
        assert len(f) == 4

    def test_push_all_empty_batch_is_a_noop(self, sim):
        f = FIFO(sim, "f", capacity=1)
        f.push_all([])
        assert f.pending == 0

    def test_can_push_rejects_nonpositive_counts(self, sim):
        f = FIFO(sim, "f", capacity=2)
        with pytest.raises(SimError, match="n >= 1"):
            f.can_push(0)
        with pytest.raises(SimError, match="n >= 1"):
            f.can_push(-3)

    def test_push_all_wakes_subscribers_once(self, sim):
        from repro.sim import SLEEP, Component

        f = FIFO(sim, "f")

        class Consumer(Component):
            def __init__(self):
                super().__init__("consumer")
                self.got = []

            def tick(self, sim):
                while f:
                    self.got.append((sim.cycle, f.pop()))
                return SLEEP

        c = sim.add(Consumer())
        c.watch(f)
        sim.at(4, lambda s: f.push_all(["a", "b"]))
        sim.run(10)
        assert c.got == [(5, "a"), (5, "b")]


class TestSubscribeDedup:
    """subscribe() is O(1) amortized and keeps deterministic wake order."""

    def test_duplicate_subscribe_registers_once(self, sim):
        from repro.sim import Component

        w = Wire(sim, "w")

        class Dummy(Component):
            def tick(self, sim):
                return None

        c = sim.add(Dummy("c"))
        for _ in range(5):
            w.subscribe(c)
        assert w._waiters == [c]
        assert w._waiter_set == {c}

    def test_unsubscribe_removes_from_both_structures(self, sim):
        from repro.sim import Component

        w = Wire(sim, "w")

        class Dummy(Component):
            def tick(self, sim):
                return None

        a, b = sim.add(Dummy("a")), sim.add(Dummy("b"))
        w.subscribe(a)
        w.subscribe(b)
        w.unsubscribe(a)
        assert w._waiters == [b]
        assert w._waiter_set == {b}
        w.unsubscribe(a)  # repeat unsubscribe is a no-op
        assert w._waiters == [b]

    def test_wake_order_is_subscription_order(self):
        from repro.sim import SLEEP, Component

        sim = Simulator(fast_path=True)  # wake scheduling needs the fast path
        w = Wire(sim, "w")
        order = []

        class Sleeper(Component):
            def tick(self, sim):
                order.append((sim.cycle, self.name))
                return SLEEP

        comps = [sim.add(Sleeper(n)) for n in ("x", "y", "z")]
        for c in comps:
            c.watch(w)
            c.watch(w)  # duplicate watch must not duplicate wakes
        sim.run(3)
        order.clear()
        sim.at(5, lambda s: w.drive(1))
        sim.run(5)
        assert order == [(6, "x"), (6, "y"), (6, "z")]
