"""Golden equivalence: fast path on/off must be bit-exact.

The activity-driven kernel (sleep/wake scheduling, dirty-set commits,
fast-forward) is a pure optimization: for every architecture and every
workload, the simulation with ``fast_path=True`` must produce exactly
the same cycle counts, latencies, and statistics as the plain
walk-everything kernel.  These tests pin that contract down by running
identical scenarios under both modes and diffing the full observable
state, including ``StatsRegistry.snapshot()``.
"""

import numpy as np
import pytest

from repro.arch import build_architecture
from repro.core.scenario import minimal_scenario
from repro.sim import Simulator, Tracer
from repro.traffic.generators import PeriodicStream, RandomTraffic

ARCHS = ("rmboc", "buscom", "dynoc", "conochi")


def _trace_fingerprint(tracer):
    """Comparable form of everything a tracer recorded: events and
    spans are simulation-derived, so they must be bit-identical too."""
    return {
        "events": tuple((e.cycle, e.source, e.kind,
                         repr(sorted(e.data.items())))
                        for e in tracer.events),
        "spans": tuple((sp.begin, sp.end, sp.source, sp.kind,
                        repr(sorted(sp.data.items())))
                       for sp in tracer.spans),
        "open": repr(sorted(map(repr, tracer.open_spans()))),
        "dropped": (tracer.dropped, tracer.dropped_spans,
                    tracer.unmatched_span_ends),
    }


def _scenario_fingerprint(key, fast, **kwargs):
    sim = Simulator(name=f"{key}-{'fast' if fast else 'slow'}",
                    fast_path=fast)
    sim.tracer = Tracer(max_events=1_000_000)
    arch = build_architecture(key, sim=sim)
    res = minimal_scenario(arch, **kwargs)
    return {
        "total_cycles": res.total_cycles,
        "latencies": tuple(res.latencies),
        "pair_latency": res.pair_latency,
        "observed_dmax": res.observed_dmax,
        "stats": sim.stats.snapshot(),
        "final_cycle": sim.cycle,
        "trace": _trace_fingerprint(sim.tracer),
    }


@pytest.mark.parametrize("key", ARCHS)
def test_minimal_scenario_equivalent(key):
    kwargs = dict(payload_bytes=96, pattern="ring", repeats=3,
                  gap_cycles=200)
    fast = _scenario_fingerprint(key, True, **kwargs)
    slow = _scenario_fingerprint(key, False, **kwargs)
    assert fast == slow


@pytest.mark.parametrize("key", ("sharedbus", "staticmesh"))
def test_baselines_equivalent(key):
    kwargs = dict(payload_bytes=64, pattern="all-pairs", repeats=2,
                  gap_cycles=50)
    fast = _scenario_fingerprint(key, True, **kwargs)
    slow = _scenario_fingerprint(key, False, **kwargs)
    assert fast == slow


@pytest.mark.parametrize("key", ARCHS)
def test_idle_heavy_scenario_equivalent(key):
    # long idle gaps: this is the regime fast-forward actually skips
    kwargs = dict(payload_bytes=32, pattern="pairs", repeats=2,
                  gap_cycles=5000)
    fast = _scenario_fingerprint(key, True, **kwargs)
    slow = _scenario_fingerprint(key, False, **kwargs)
    assert fast == slow


def _generator_fingerprint(key, fast):
    """Mixed deterministic + random traffic, drained to completion."""
    sim = Simulator(name=f"gen-{key}", fast_path=fast)
    arch = build_architecture(key, sim=sim)
    modules = list(arch.modules)
    rng = np.random.default_rng(1234)
    stream = PeriodicStream("stream", arch.ports[modules[0]],
                            dst=modules[1], period=40, payload_bytes=64,
                            stop=2_000)
    noise = RandomTraffic("noise", arch.ports[modules[2]],
                          chooser=lambda: modules[3], rng=rng,
                          rate=0.02, payload_bytes=32, stop=2_000)
    sim.add(stream)
    sim.add(noise)
    sim.run(2_500)
    sim.drain(lambda s: stream.all_delivered() and noise.all_delivered(),
              patience=100, max_cycles=100_000)
    return {
        "cycle": sim.cycle,
        "stream": tuple(stream.latencies()),
        "noise": tuple(noise.latencies()),
        "sent": (len(stream.sent), len(noise.sent)),
        "stats": sim.stats.snapshot(),
    }


@pytest.mark.parametrize("key", ARCHS)
def test_generator_traffic_equivalent(key):
    fast = _generator_fingerprint(key, True)
    slow = _generator_fingerprint(key, False)
    assert fast == slow
