"""The shared bounded-backoff helper: formula fidelity, clamps, and
the RNG-free jitter stream."""

import pytest

from repro.sim.backoff import (DEFAULT_SHIFT_CAP, bounded_backoff,
                               deterministic_jitter)


class TestBoundedBackoff:
    def test_reproduces_shifted_growth(self):
        assert [bounded_backoff(100, a) for a in (1, 2, 3, 4)] == \
            [100, 200, 400, 800]

    def test_first_attempt_is_base(self):
        assert bounded_backoff(64, 1) == 64
        assert bounded_backoff(64, 0) == 64
        assert bounded_backoff(64, -3) == 64

    def test_cap_clamps_product(self):
        assert bounded_backoff(512, 10, cap=8_192) == 8_192
        assert bounded_backoff(512, 2, cap=8_192) == 1_024

    def test_shift_cap_prevents_unbounded_doubling(self):
        huge = bounded_backoff(1, 10_000)
        assert huge == 1 << DEFAULT_SHIFT_CAP
        assert bounded_backoff(2, 5, shift_cap=2) == 8

    def test_zero_base_stays_zero(self):
        assert bounded_backoff(0, 7) == 0

    def test_negative_base_rejected(self):
        with pytest.raises(ValueError, match="base"):
            bounded_backoff(-1, 1)


class TestDeterministicJitter:
    def test_same_stream_same_offset(self):
        a = deterministic_jitter(64, "control", "rule", "t", 1)
        b = deterministic_jitter(64, "control", "rule", "t", 1)
        assert a == b

    def test_offset_in_range(self):
        for i in range(32):
            off = deterministic_jitter(64, "s", i)
            assert 0 <= off < 64

    def test_distinct_streams_differ(self):
        offsets = {deterministic_jitter(1_024, "s", i)
                   for i in range(16)}
        assert len(offsets) > 1

    def test_degenerate_span_is_zero(self):
        assert deterministic_jitter(0, "x") == 0
        assert deterministic_jitter(1, "x") == 0
        assert deterministic_jitter(-5, "x") == 0
