"""Tracer tests: protocol-event logging across the stack."""

import pytest

from repro.arch import build_architecture
from repro.sim import Simulator, Tracer


class TestTracerCore:
    def test_disabled_by_default(self):
        sim = Simulator()
        sim.emit("x", "y", a=1)  # no tracer: silently ignored
        assert sim.tracer is None

    def test_record_and_query(self):
        sim = Simulator()
        sim.tracer = Tracer()
        sim.emit("src", "kind1", a=1)
        sim.run(3)
        sim.emit("src", "kind2", a=2)
        assert len(sim.tracer) == 2
        assert sim.tracer.query(kind="kind1")[0].cycle == 0
        assert sim.tracer.query(kind="kind2")[0].cycle == 3

    def test_query_filters(self):
        t = Tracer()
        t.record(1, "a", "x", {"v": 1})
        t.record(2, "b", "x", {"v": 2})
        t.record(3, "a", "y", {"v": 1})
        assert len(t.query(source="a")) == 2
        assert len(t.query(kind="x")) == 2
        assert len(t.query(v=1)) == 2
        assert len(t.query(source="a", kind="x", v=1)) == 1
        assert len(t.query(since=2, until=3)) == 1

    def test_capacity_bound(self):
        t = Tracer(max_events=3)
        for i in range(10):
            t.record(i, "s", "k", {})
        assert len(t) == 3
        assert t.dropped == 7

    def test_clear(self):
        t = Tracer(max_events=2)
        t.record(0, "s", "k", {})
        t.record(0, "s", "k", {})
        t.record(0, "s", "k", {})
        t.clear()
        assert len(t) == 0 and t.dropped == 0

    def test_render_timeline(self):
        t = Tracer()
        t.record(5, "rmboc", "request", {"cid": 1})
        text = t.render_timeline()
        assert "rmboc.request" in text and "cid=1" in text

    def test_invalid_capacity_raises(self):
        with pytest.raises(ValueError):
            Tracer(max_events=0)


class TestArchitectureInstrumentation:
    def test_rmboc_channel_lifecycle_events(self):
        arch = build_architecture("rmboc")
        arch.sim.tracer = Tracer()
        arch.ports["m0"].send("m1", 64)
        arch.run_to_completion()
        kinds = arch.sim.tracer.kinds()
        assert {"request", "establish", "destroy"} <= kinds
        # lifecycle ordering for the single channel
        req = arch.sim.tracer.query(kind="request")[0]
        est = arch.sim.tracer.query(kind="establish")[0]
        des = arch.sim.tracer.query(kind="destroy")[0]
        assert req.cycle < est.cycle < des.cycle
        assert req.data["cid"] == est.data["cid"] == des.data["cid"]

    def test_rmboc_cancel_event_on_contention(self):
        arch = build_architecture("rmboc", num_buses=1)
        arch.sim.tracer = Tracer()
        arch.ports["m0"].send("m1", 512)
        arch.ports["m1"].send("m0", 512)
        arch.run_to_completion(max_cycles=50_000)
        assert arch.sim.tracer.query(kind="cancel")

    def test_buscom_frame_events(self):
        arch = build_architecture("buscom")
        arch.sim.tracer = Tracer()
        arch.ports["m0"].send("m1", 144)  # two static frames
        arch.run_to_completion()
        frames = arch.sim.tracer.query(source="buscom", kind="frame")
        assert len(frames) == 2
        assert all(f.data["src"] == "m0" for f in frames)
        assert sum(f.data["bytes"] for f in frames) == 144

    def test_dynoc_route_events_follow_path(self):
        arch = build_architecture("dynoc", num_modules=4, mesh=(4, 1))
        arch.sim.tracer = Tracer()
        msg = arch.ports["m0"].send("m3", 16)
        arch.run_to_completion()
        hops = arch.sim.tracer.query(source="dynoc", kind="route",
                                     mid=msg.mid)
        path = [h.data["at"] for h in hops] + [hops[-1].data["nxt"]]
        assert path == [(0, 0), (1, 0), (2, 0), (3, 0)]

    def test_conochi_reconfig_events(self):
        from repro.fabric.tiles import TileType

        arch = build_architecture("conochi")
        arch.sim.tracer = Tracer()
        arch.add_switch((2, 3), wires=[((2, 2), TileType.VWIRE)])
        assert arch.sim.tracer.query(kind="switch_added",
                                     at=(2, 3))

    def test_reconfig_manager_phases(self):
        from repro.fabric.device import get_device
        from repro.fabric.geometry import Rect
        from repro.reconfig import ModuleSpec, ReconfigurationManager

        arch = build_architecture("buscom")
        arch.sim.tracer = Tracer()
        mgr = ReconfigurationManager(arch, get_device("XC2V6000"))
        rec = mgr.swap("m0", ModuleSpec("m0b"), Rect(0, 0, 4, 96))
        arch.sim.run_until(lambda s: rec.done, max_cycles=2_000_000)
        start = arch.sim.tracer.query(kind="rewrite_start")[0]
        attach = arch.sim.tracer.query(kind="attached")[0]
        assert attach.cycle - start.cycle == rec.reconfig_cycles
        assert attach.data["module"] == "m0b"
