"""Tracer tests: protocol-event logging across the stack."""

import pytest

from repro.arch import build_architecture
from repro.sim import Simulator, Tracer


class TestTracerCore:
    def test_disabled_by_default(self):
        sim = Simulator()
        sim.emit("x", "y", a=1)  # no tracer: silently ignored
        assert sim.tracer is None

    def test_record_and_query(self):
        sim = Simulator()
        sim.tracer = Tracer()
        sim.emit("src", "kind1", a=1)
        sim.run(3)
        sim.emit("src", "kind2", a=2)
        assert len(sim.tracer) == 2
        assert sim.tracer.query(kind="kind1")[0].cycle == 0
        assert sim.tracer.query(kind="kind2")[0].cycle == 3

    def test_query_filters(self):
        t = Tracer()
        t.record(1, "a", "x", {"v": 1})
        t.record(2, "b", "x", {"v": 2})
        t.record(3, "a", "y", {"v": 1})
        assert len(t.query(source="a")) == 2
        assert len(t.query(kind="x")) == 2
        assert len(t.query(v=1)) == 2
        assert len(t.query(source="a", kind="x", v=1)) == 1
        assert len(t.query(since=2, until=3)) == 1

    def test_capacity_bound(self):
        t = Tracer(max_events=3)
        for i in range(10):
            t.record(i, "s", "k", {})
        assert len(t) == 3
        assert t.dropped == 7

    def test_clear(self):
        t = Tracer(max_events=2)
        t.record(0, "s", "k", {})
        t.record(0, "s", "k", {})
        t.record(0, "s", "k", {})
        t.clear()
        assert len(t) == 0 and t.dropped == 0

    def test_render_timeline(self):
        t = Tracer()
        t.record(5, "rmboc", "request", {"cid": 1})
        text = t.render_timeline()
        assert "rmboc.request" in text and "cid=1" in text

    def test_invalid_capacity_raises(self):
        with pytest.raises(ValueError):
            Tracer(max_events=0)

    def test_invalid_keep_raises(self):
        with pytest.raises(ValueError):
            Tracer(keep="middle")

    def test_query_data_filter_missing_key_excludes(self):
        t = Tracer()
        t.record(0, "s", "k", {"cid": 1})
        t.record(1, "s", "k", {})  # no 'cid' at all
        assert len(t.query(cid=1)) == 1
        assert t.query(cid=2) == []


class TestCapacityPolicy:
    def test_keep_head_drops_newest(self):
        t = Tracer(max_events=3, keep="head")
        for i in range(10):
            t.record(i, "s", "k", {})
        assert [ev.cycle for ev in t.events] == [0, 1, 2]
        assert t.dropped == 7

    def test_keep_tail_is_a_ring_buffer(self):
        t = Tracer(max_events=3, keep="tail")
        for i in range(10):
            t.record(i, "s", "k", {})
        assert [ev.cycle for ev in t.events] == [7, 8, 9]
        assert t.dropped == 7

    def test_span_capacity_follows_keep(self):
        head = Tracer(max_events=2, keep="head")
        tail = Tracer(max_events=2, keep="tail")
        for t in (head, tail):
            for i in range(5):
                t.add_span(i, i + 1, "s", "k")
            assert t.dropped_spans == 3
        assert [sp.begin for sp in head.spans] == [0, 1]
        assert [sp.begin for sp in tail.spans] == [3, 4]


class TestSpans:
    def test_begin_end_records_duration(self):
        t = Tracer()
        t.begin_span(10, "rmboc", "circuit", key=1, data={"src": "m0"})
        t.end_span(45, "rmboc", "circuit", key=1, data={"status": "ok"})
        (sp,) = t.spans
        assert (sp.begin, sp.end, sp.duration) == (10, 45, 35)
        assert sp.data == {"src": "m0", "status": "ok"}

    def test_end_data_wins_on_clash(self):
        t = Tracer()
        t.begin_span(0, "s", "k", data={"v": "begin"})
        t.end_span(1, "s", "k", data={"v": "end"})
        assert t.spans[0].data["v"] == "end"

    def test_keys_distinguish_concurrent_spans(self):
        t = Tracer()
        t.begin_span(0, "s", "k", key=1)
        t.begin_span(2, "s", "k", key=2)
        t.end_span(5, "s", "k", key=2)
        t.end_span(9, "s", "k", key=1)
        assert sorted((sp.begin, sp.end) for sp in t.spans) == \
            [(0, 9), (2, 5)]

    def test_unmatched_end_counted_not_recorded(self):
        t = Tracer()
        t.end_span(3, "s", "k")
        assert t.spans == []
        assert t.unmatched_span_ends == 1

    def test_rebegin_restarts(self):
        t = Tracer()
        t.begin_span(0, "s", "k")
        t.begin_span(5, "s", "k")
        t.end_span(7, "s", "k")
        assert [(sp.begin, sp.end) for sp in t.spans] == [(5, 7)]

    def test_open_spans_visible(self):
        t = Tracer()
        t.begin_span(4, "s", "k", key="x")
        assert t.open_spans() == [("s", "k", "x", 4)]
        t.clear()
        assert t.open_spans() == []

    def test_query_spans_filters(self):
        t = Tracer()
        t.add_span(0, 10, "a", "x", {"cid": 1})
        t.add_span(5, 6, "a", "y", {"cid": 2})
        t.add_span(20, 30, "b", "x", {})
        assert len(t.query_spans(source="a")) == 2
        assert len(t.query_spans(kind="x")) == 2
        assert len(t.query_spans(since=5, until=20)) == 1
        assert len(t.query_spans(cid=1)) == 1
        assert t.query_spans(cid=3) == []
        assert t.span_kinds() == {"x", "y"}


class TestSimSpanAPI:
    def test_span_context_manager(self):
        sim = Simulator()
        sim.tracer = Tracer()
        with sim.span("test", "work", tag="t"):
            sim.run(25)
        (sp,) = sim.tracer.spans
        assert (sp.begin, sp.end) == (0, 25)
        assert sp.data == {"tag": "t"}

    def test_span_begin_end_methods(self):
        sim = Simulator()
        sim.tracer = Tracer()
        sim.span_begin("test", "phase", key=7, a=1)
        sim.run(3)
        sim.span_end("test", "phase", key=7, b=2)
        (sp,) = sim.tracer.spans
        assert (sp.begin, sp.end) == (0, 3)
        assert sp.data == {"a": 1, "b": 2}

    def test_span_event_known_duration(self):
        sim = Simulator()
        sim.tracer = Tracer()
        sim.span_event("test", "frame", 10, 20, slot=3)
        assert sim.tracer.spans[0].duration == 10

    def test_span_apis_noop_without_tracer(self):
        sim = Simulator()
        sim.span_begin("test", "x")
        sim.span_end("test", "x")
        sim.span_event("test", "x", 0, 1)
        with sim.span("test", "x"):
            pass
        assert sim.tracer is None and not sim.tracing

    def test_tracing_flag_tracks_tracer(self):
        sim = Simulator()
        assert sim.tracing is False
        sim.tracer = Tracer()
        assert sim.tracing is True
        sim.tracer = None
        assert sim.tracing is False


class TestRenderTimeline:
    def test_truncates_at_limit(self):
        t = Tracer()
        for i in range(10):
            t.record(i, "s", "k", {})
        text = t.render_timeline(limit=4)
        assert "... (truncated at 4 lines)" in text
        assert text.count("s.k") == 4

    def test_dropped_footer_head(self):
        t = Tracer(max_events=2, keep="head")
        for i in range(5):
            t.record(i, "s", "k", {})
        assert "(3 newest events dropped at capacity)" in t.render_timeline()

    def test_dropped_footer_tail(self):
        t = Tracer(max_events=2, keep="tail")
        for i in range(5):
            t.record(i, "s", "k", {})
        assert "(3 oldest events dropped at capacity)" in t.render_timeline()

    def test_kinds_filter(self):
        t = Tracer()
        t.record(0, "s", "a", {})
        t.record(1, "s", "b", {})
        text = t.render_timeline(kinds={"a"})
        assert "s.a" in text and "s.b" not in text


class TestArchitectureInstrumentation:
    def test_rmboc_channel_lifecycle_events(self):
        arch = build_architecture("rmboc")
        arch.sim.tracer = Tracer()
        arch.ports["m0"].send("m1", 64)
        arch.run_to_completion()
        kinds = arch.sim.tracer.kinds()
        assert {"request", "establish", "destroy"} <= kinds
        # lifecycle ordering for the single channel
        req = arch.sim.tracer.query(kind="request")[0]
        est = arch.sim.tracer.query(kind="establish")[0]
        des = arch.sim.tracer.query(kind="destroy")[0]
        assert req.cycle < est.cycle < des.cycle
        assert req.data["cid"] == est.data["cid"] == des.data["cid"]

    def test_rmboc_cancel_event_on_contention(self):
        arch = build_architecture("rmboc", num_buses=1)
        arch.sim.tracer = Tracer()
        arch.ports["m0"].send("m1", 512)
        arch.ports["m1"].send("m0", 512)
        arch.run_to_completion(max_cycles=50_000)
        assert arch.sim.tracer.query(kind="cancel")

    def test_buscom_frame_events(self):
        arch = build_architecture("buscom")
        arch.sim.tracer = Tracer()
        arch.ports["m0"].send("m1", 144)  # two static frames
        arch.run_to_completion()
        frames = arch.sim.tracer.query(source="buscom", kind="frame")
        assert len(frames) == 2
        assert all(f.data["src"] == "m0" for f in frames)
        assert sum(f.data["bytes"] for f in frames) == 144

    def test_dynoc_route_events_follow_path(self):
        arch = build_architecture("dynoc", num_modules=4, mesh=(4, 1))
        arch.sim.tracer = Tracer()
        msg = arch.ports["m0"].send("m3", 16)
        arch.run_to_completion()
        hops = arch.sim.tracer.query(source="dynoc", kind="route",
                                     mid=msg.mid)
        path = [h.data["at"] for h in hops] + [hops[-1].data["nxt"]]
        assert path == [(0, 0), (1, 0), (2, 0), (3, 0)]

    def test_conochi_reconfig_events(self):
        from repro.fabric.tiles import TileType

        arch = build_architecture("conochi")
        arch.sim.tracer = Tracer()
        arch.add_switch((2, 3), wires=[((2, 2), TileType.VWIRE)])
        assert arch.sim.tracer.query(kind="switch_added",
                                     at=(2, 3))

    def test_reconfig_manager_phases(self):
        from repro.fabric.device import get_device
        from repro.fabric.geometry import Rect
        from repro.reconfig import ModuleSpec, ReconfigurationManager

        arch = build_architecture("buscom")
        arch.sim.tracer = Tracer()
        mgr = ReconfigurationManager(arch, get_device("XC2V6000"))
        rec = mgr.swap("m0", ModuleSpec("m0b"), Rect(0, 0, 4, 96))
        arch.sim.run_until(lambda s: rec.done, max_cycles=2_000_000)
        start = arch.sim.tracer.query(kind="rewrite_start")[0]
        attach = arch.sim.tracer.query(kind="attached")[0]
        assert attach.cycle - start.cycle == rec.reconfig_cycles
        assert attach.data["module"] == "m0b"
