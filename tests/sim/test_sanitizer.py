"""Runtime sanitizer tests: each check catches its deliberately buggy
component with a precise diagnostic, clean models run clean (all six
architectures), and sanitized runs stay bit-identical to unsanitized
ones (the sanitizer is a pure observer)."""

import numpy as np
import pytest

from repro.arch import ARCHITECTURES, BASELINES, build_architecture
from repro.core.scenario import minimal_scenario
from repro.lint import SanitizerError
from repro.sim import FIFO, SLEEP, Component, PulseWire, Simulator, Wire
from repro.sim.engine import SANITIZE_ENV, sanitize_default


def make_sim(**kwargs):
    kwargs.setdefault("fast_path", True)
    kwargs.setdefault("sanitize", True)
    return Simulator(**kwargs)


# ----------------------------------------------------------------------
# SAN001: missed wake (the fast-path divergence bug class)
# ----------------------------------------------------------------------
class TestMissedWake:
    def test_sleeping_reader_without_watch_is_caught(self):
        sim = make_sim()
        req = Wire(sim, "req", init=0)

        class Forgetful(Component):
            """Reads `req` in tick but never watch()es it."""

            def tick(self, sim):
                if req.value:
                    pass  # would act on the request here
                return SLEEP

        sim.add(Forgetful("forgetful"))
        sim.at(5, lambda s: req.drive(1))
        with pytest.raises(SanitizerError, match=r"\[SAN001\]") as exc:
            sim.run(10)
        msg = str(exc.value)
        assert "'req'" in msg and "'forgetful'" in msg
        assert "watch()" in msg

    def test_watching_reader_is_clean(self):
        sim = make_sim()
        req = Wire(sim, "req", init=0)

        class Careful(Component):
            def __init__(self):
                super().__init__("careful")
                self.seen = []

            def tick(self, sim):
                self.seen.append((sim.cycle, req.value))
                return SLEEP

        c = sim.add(Careful())
        c.watch(req)
        sim.at(5, lambda s: req.drive(1))
        sim.run(10)
        assert c.seen == [(0, 0), (6, 1)]

    def test_timed_wake_covering_the_commit_is_clean(self):
        sim = make_sim()
        w = Wire(sim, "w", init=0)

        class Poller(Component):
            def tick(self, sim):
                _ = w.value
                return sim.cycle + 1  # runnable again when it commits

        sim.add(Poller("poller"))
        sim.at(3, lambda s: w.drive(9))
        sim.run(8)  # no raise: the poller never misses a visibility cycle

    def test_redrive_with_unchanged_value_is_not_a_violation(self):
        sim = make_sim()
        w = Wire(sim, "w", init=0)

        class Reader(Component):
            def tick(self, sim):
                _ = w.value
                return SLEEP

        sim.add(Reader("reader"))
        sim.at(5, lambda s: w.drive(0))  # same committed value
        sim.run(10)  # observationally nothing changed: clean

    def test_fifo_push_to_sleeping_nonwatching_popper_is_caught(self):
        sim = make_sim()
        f = FIFO(sim, "jobs")

        class LazyPopper(Component):
            def tick(self, sim):
                while f:
                    f.pop()
                return SLEEP

        sim.add(LazyPopper("popper"))
        sim.at(4, lambda s: f.push("job"))
        with pytest.raises(SanitizerError, match=r"\[SAN001\].*'jobs'"):
            sim.run(10)


# ----------------------------------------------------------------------
# SAN002: side-effecting sleeper
# ----------------------------------------------------------------------
class TestSideEffectingSleeper:
    def test_write_plus_sleep_in_same_tick_is_caught(self):
        sim = make_sim()
        out = Wire(sim, "out")

        class SideEffecting(Component):
            def tick(self, sim):
                out.drive(1)
                return SLEEP

        sim.add(SideEffecting("side"))
        with pytest.raises(SanitizerError, match=r"\[SAN002\]") as exc:
            sim.run(3)
        msg = str(exc.value)
        assert "'side'" in msg and "'out'" in msg and "no-op" in msg

    def test_write_plus_far_timed_hint_is_caught(self):
        sim = make_sim()
        f = FIFO(sim, "f")

        class Batcher(Component):
            def tick(self, sim):
                f.push(sim.cycle)
                return sim.cycle + 100  # quiescence claim after a write

        sim.add(Batcher("batcher"))
        with pytest.raises(SanitizerError, match=r"\[SAN002\].*batcher"):
            sim.run(3)

    def test_write_then_stay_hot_is_clean(self):
        sim = make_sim()
        out = Wire(sim, "out")

        class Proper(Component):
            def tick(self, sim):
                if sim.cycle == 0:
                    out.drive(1)
                    return None  # stay hot for the cycle the write lands
                return SLEEP

        sim.add(Proper("proper"))
        sim.run(5)
        assert out.value == 1

    def test_next_cycle_hint_after_write_is_clean(self):
        # an int hint of cycle+1 is "tick me next cycle": not quiescence
        sim = make_sim()
        out = Wire(sim, "out")

        class Streamer(Component):
            def tick(self, sim):
                if sim.cycle < 3:
                    out.drive(sim.cycle)
                return sim.cycle + 1

        sim.add(Streamer("streamer"))
        sim.run(5)
        assert out.value == 2


# ----------------------------------------------------------------------
# SAN003: multi-consumer FIFO pop
# ----------------------------------------------------------------------
class TestMultiConsumerFIFO:
    def test_second_consumer_is_caught(self):
        sim = make_sim()
        f = FIFO(sim, "shared")

        class Greedy(Component):
            def tick(self, sim):
                if f:
                    f.pop()
                return None

        sim.add(Greedy("first"))
        sim.add(Greedy("second"))
        sim.at(0, lambda s: f.push_all(["a", "b"]))
        with pytest.raises(SanitizerError, match=r"\[SAN003\]") as exc:
            sim.run(5)
        msg = str(exc.value)
        assert "'shared'" in msg
        assert "'first'" in msg and "'second'" in msg

    def test_single_consumer_many_producers_is_clean(self):
        sim = make_sim()
        f = FIFO(sim, "mpsc")
        got = []

        class Producer(Component):
            def tick(self, sim):
                if sim.cycle < 3:
                    f.push((self.name, sim.cycle))
                return None

        class Consumer(Component):
            def tick(self, sim):
                while f:
                    got.append(f.pop())
                return None

        sim.add(Producer("p0"))
        sim.add(Producer("p1"))
        sim.add(Consumer("c"))
        sim.run(6)
        assert len(got) == 6

    def test_pops_from_events_are_exempt(self):
        # test harnesses and scheduled events may inspect/drain FIFOs
        sim = make_sim()
        f = FIFO(sim, "f")

        class Popper(Component):
            def tick(self, sim):
                if f:
                    f.pop()
                return None

        sim.add(Popper("popper"))
        sim.at(0, lambda s: f.push_all([1, 2, 3]))
        sim.at(2, lambda s: f.try_pop())  # event-context pop: no owner
        sim.run(6)  # no raise


# ----------------------------------------------------------------------
# configuration plumbing
# ----------------------------------------------------------------------
class TestConfiguration:
    def test_env_toggle(self, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV, "1")
        assert sanitize_default() is True
        assert Simulator().sanitizer is not None
        monkeypatch.setenv(SANITIZE_ENV, "0")
        assert sanitize_default() is False
        assert Simulator().sanitizer is None
        monkeypatch.delenv(SANITIZE_ENV)
        assert sanitize_default() is False

    def test_explicit_flag_beats_env(self, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV, "1")
        assert Simulator(sanitize=False).sanitizer is None
        monkeypatch.delenv(SANITIZE_ENV)
        assert Simulator(sanitize=True).sanitizer is not None

    def test_sanitized_channels_keep_their_api(self):
        sim = make_sim()
        w = Wire(sim, "w", init=7)
        p = PulseWire(sim, "p", default=False)
        f = FIFO(sim, "f", capacity=2)
        assert w.value == 7
        w.drive(1)
        assert w.driven()
        p.drive(True)
        f.push("x")
        sim.step()
        assert w.value == 1 and p.value is True and f.peek() == "x"
        sim.step()
        assert p.value is False  # pulse still self-clears

    def test_removed_component_is_forgotten(self):
        sim = make_sim()
        w = Wire(sim, "w", init=0)

        class Reader(Component):
            def tick(self, sim):
                _ = w.value
                return SLEEP

        r = sim.add(Reader("reader"))
        sim.run(2)
        sim.remove(r)  # reconfigured out: its read set must not linger
        sim.at(5, lambda s: w.drive(1))
        sim.run(10)  # no raise


# ----------------------------------------------------------------------
# clean runs: all six architectures, zero findings, results unperturbed
# ----------------------------------------------------------------------
SCENARIOS = {key: dict(payload_bytes=64, pattern="ring", repeats=2,
                       gap_cycles=100)
             for key in ARCHITECTURES}
SCENARIOS.update({key: dict(payload_bytes=64, pattern="all-pairs",
                            repeats=1, gap_cycles=50)
                  for key in BASELINES})


def _fingerprint(key, sanitize):
    sim = Simulator(name=f"{key}-san{int(sanitize)}", fast_path=True,
                    sanitize=sanitize)
    arch = build_architecture(key, sim=sim)
    res = minimal_scenario(arch, **SCENARIOS[key])
    return {
        "total_cycles": res.total_cycles,
        "latencies": tuple(res.latencies),
        "observed_dmax": res.observed_dmax,
        "stats": sim.stats.snapshot(),
    }


@pytest.mark.parametrize("key", ARCHITECTURES + BASELINES)
def test_architecture_runs_clean_under_sanitizer(key):
    """Zero contract violations across all six architecture models."""
    _fingerprint(key, sanitize=True)  # any violation raises


@pytest.mark.parametrize("key", ARCHITECTURES + BASELINES)
def test_sanitizer_does_not_perturb_results(key):
    assert _fingerprint(key, True) == _fingerprint(key, False)


def test_generator_traffic_clean_under_sanitizer():
    from repro.traffic.generators import BurstyGenerator, PeriodicStream

    sim = make_sim(name="gen-sanitized")
    arch = build_architecture("buscom", sim=sim)
    modules = list(arch.modules)
    rng = np.random.default_rng(7)
    sim.add(PeriodicStream("stream", arch.ports[modules[0]],
                           dst=modules[1], period=25, payload_bytes=32,
                           stop=1_000))
    sim.add(BurstyGenerator("burst", arch.ports[modules[2]],
                            chooser=lambda: modules[3], rng=rng,
                            p_on=0.05, p_off=0.2, payload_bytes=32,
                            slot_cycles=8, stop=1_000))
    sim.run(1_500)
