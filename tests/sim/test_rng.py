"""Unit tests for stream-isolated RNG."""

import numpy as np

from repro.sim import make_rng, spawn_rngs


class TestMakeRng:
    def test_deterministic_for_same_seed_and_stream(self):
        a = make_rng(42, "traffic", "m0").random(10)
        b = make_rng(42, "traffic", "m0").random(10)
        assert np.array_equal(a, b)

    def test_different_streams_differ(self):
        a = make_rng(42, "traffic", "m0").random(10)
        b = make_rng(42, "traffic", "m1").random(10)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1, "x").random(10)
        b = make_rng(2, "x").random(10)
        assert not np.array_equal(a, b)

    def test_stream_isolation_under_new_consumers(self):
        """Adding a new stream must not perturb an existing one."""
        before = make_rng(7, "a").random(5)
        _ = make_rng(7, "b").random(5)  # new consumer
        after = make_rng(7, "a").random(5)
        assert np.array_equal(before, after)

    def test_large_seed_wraps(self):
        make_rng(2**40, "x").random()  # must not raise


class TestSpawnRngs:
    def test_one_per_name(self):
        rngs = spawn_rngs(1, ["a", "b", "c"], "prefix")
        assert set(rngs) == {"a", "b", "c"}

    def test_matches_make_rng(self):
        rngs = spawn_rngs(5, ["x"], "p")
        direct = make_rng(5, "p", "x")
        assert np.array_equal(rngs["x"].random(4), direct.random(4))
