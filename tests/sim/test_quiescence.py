"""Unit tests for the activity-driven kernel: sleep/wake scheduling,
dirty-set commits, fast-forward, and the quiescence-hint protocol."""

import pytest

from repro.sim import FIFO, SLEEP, Component, PulseWire, Simulator, Wire
from repro.sim.engine import FASTPATH_ENV, SimError, fastpath_default


class Recorder(Component):
    """Ticks forever, recording each cycle it runs (control sample)."""

    def __init__(self, name="rec"):
        super().__init__(name)
        self.ticks = []

    def tick(self, sim):
        self.ticks.append(sim.cycle)


class Sleeper(Recorder):
    """Ticks once, then sleeps until woken."""

    def tick(self, sim):
        self.ticks.append(sim.cycle)
        return SLEEP


class Periodic(Recorder):
    def __init__(self, period, name="periodic"):
        super().__init__(name)
        self.period = period

    def tick(self, sim):
        self.ticks.append(sim.cycle)
        return sim.cycle + self.period


# ----------------------------------------------------------------------
# sleep / wake basics
# ----------------------------------------------------------------------
def test_sleep_stops_ticking_and_wake_resumes():
    sim = Simulator(fast_path=True)
    s = sim.add(Sleeper())
    sim.run(5)
    assert s.ticks == [0]
    assert s.asleep
    s.wake()
    assert not s.asleep
    sim.run(1)
    assert s.ticks == [0, 5]


def test_timed_wake_fires_on_the_exact_cycle():
    sim = Simulator(fast_path=True)
    p = sim.add(Periodic(7))
    sim.run(30)
    assert p.ticks == [0, 7, 14, 21, 28]


def test_sleeping_component_costs_no_ticks():
    sim = Simulator(fast_path=True)
    s = sim.add(Sleeper())
    r = sim.add(Recorder())
    sim.run(100)
    assert s.ticks == [0]
    assert len(r.ticks) == 100


def test_fast_forward_jumps_over_quiescence():
    sim = Simulator(fast_path=True)
    p = sim.add(Periodic(1000))
    sim.run(5000)
    assert p.ticks == [0, 1000, 2000, 3000, 4000]
    assert sim.cycle == 5000


def test_fast_forward_respects_scheduled_events():
    sim = Simulator(fast_path=True)
    sim.add(Sleeper())
    fired = []
    sim.at(137, lambda s: fired.append(s.cycle))
    sim.run(500)
    assert fired == [137]
    assert sim.cycle == 500


def test_events_do_not_wake_sleepers_implicitly():
    sim = Simulator(fast_path=True)
    s = sim.add(Sleeper())
    sim.at(10, lambda _s: None)
    sim.run(20)
    assert s.ticks == [0]
    # ...but an event may wake one explicitly
    sim.at(25, lambda _s: s.wake())
    sim.run(10)
    assert s.ticks == [0, 25]


# ----------------------------------------------------------------------
# channel-driven wakes
# ----------------------------------------------------------------------
class Watcher(Recorder):
    """Sleeps; wakes when a watched wire is driven, reading its value."""

    def __init__(self, wire):
        super().__init__("watcher")
        self.wire = wire
        self.seen = []

    def tick(self, sim):
        self.ticks.append(sim.cycle)
        self.seen.append((sim.cycle, self.wire.value))
        return SLEEP


def test_wire_drive_wakes_subscriber_after_commit():
    sim = Simulator(fast_path=True)
    w = Wire(sim, "w", init=0)
    watcher = sim.add(Watcher(w))
    watcher.watch(w)
    sim.at(5, lambda s: w.drive(42))
    sim.run(10)
    # watcher ticked at 0 (saw init), then on the cycle the committed
    # value is visible — never the same cycle it was staged
    assert watcher.seen == [(0, 0), (6, 42)]


def test_drive_overrides_same_cycle_sleep_request():
    """A consumer that returns SLEEP in the same cycle a producer stages
    data for it must still wake to observe the committed value.

    The producer's write+SLEEP tick is exactly the pattern the sanitizer
    rejects (SAN002); it is deliberate here, to prove the kernel stays
    correct even for components that break the contract, so the
    sanitizer is explicitly off."""
    sim = Simulator(fast_path=True, sanitize=False)
    w = Wire(sim, "w", init=None)

    class Consumer(Component):
        def __init__(self):
            super().__init__("consumer")
            self.seen = []

        def tick(self, sim):
            self.seen.append((sim.cycle, w.value))
            return SLEEP

    c = sim.add(Consumer())
    c.watch(w)

    class Producer(Component):
        def __init__(self):
            super().__init__("producer")

        def tick(self, sim):
            if sim.cycle == 7:
                w.drive(99)
                return SLEEP
            return None

    sim.add(Producer())
    sim.run(20)
    assert (8, 99) in c.seen


def test_fifo_push_wakes_subscriber():
    sim = Simulator(fast_path=True)
    f = FIFO(sim, "f")

    class Popper(Component):
        def __init__(self):
            super().__init__("popper")
            self.got = []

        def tick(self, sim):
            while f:
                self.got.append((sim.cycle, f.pop()))
            return SLEEP

    p = sim.add(Popper())
    p.watch(f)
    sim.at(10, lambda s: f.push("x"))
    sim.run(20)
    assert p.got == [(11, "x")]


def test_pulsewire_self_clears_while_everyone_sleeps():
    sim = Simulator(fast_path=True)
    pw = PulseWire(sim, "pulse")
    sim.add(Sleeper())
    sim.at(3, lambda s: pw.drive(True))
    sim.run(3)
    sim.step()  # commit the pulse
    assert pw.value is True
    sim.step()  # pulse must auto-clear even with no runnable components
    assert pw.value is None


# ----------------------------------------------------------------------
# dirty-set commits
# ----------------------------------------------------------------------
def test_undriven_wires_are_not_walked_but_still_commit_when_driven():
    sim = Simulator(fast_path=True)
    wires = [Wire(sim, f"w{i}", init=0) for i in range(50)]
    sim.add(Recorder())
    sim.run(10)
    wires[17].drive(5)
    sim.step()
    assert wires[17].value == 5
    assert all(w.value == 0 for w in wires if w is not wires[17])


def test_plain_sequential_objects_commit_every_cycle():
    sim = Simulator(fast_path=True)

    class Latch:
        def __init__(self):
            self.commits = 0

        def _commit(self):
            self.commits += 1

    latch = Latch()
    sim.register_sequential(latch)
    sim.add(Recorder())
    sim.run(10)
    assert latch.commits == 10


# ----------------------------------------------------------------------
# protocol edges
# ----------------------------------------------------------------------
def test_invalid_hint_raises():
    sim = Simulator(fast_path=True)

    class Bad(Component):
        def tick(self, sim):
            return "tomorrow"  # simlint: disable=QL005 (the point)

    sim.add(Bad("bad"))
    with pytest.raises(SimError, match="hint"):
        sim.run(1)


def test_bool_hint_rejected():
    sim = Simulator(fast_path=True)

    class Bad(Component):
        def tick(self, sim):
            return True  # simlint: disable=QL005 (the point)

    sim.add(Bad("bad"))
    with pytest.raises(SimError):
        sim.run(1)


def test_past_hint_keeps_component_runnable():
    sim = Simulator(fast_path=True)

    class Eager(Recorder):
        def tick(self, sim):
            self.ticks.append(sim.cycle)
            return sim.cycle  # hint in the past: stay hot

    e = sim.add(Eager())
    sim.run(5)
    assert e.ticks == [0, 1, 2, 3, 4]


def test_removed_component_does_not_resurrect():
    sim = Simulator(fast_path=True)
    s = sim.add(Periodic(5))
    sim.run(3)
    sim.remove(s)
    sim.run(20)
    assert s.ticks == [0]


def test_slow_path_ignores_hints():
    sim = Simulator(fast_path=False)
    s = sim.add(Sleeper())
    sim.run(10)
    assert s.ticks == list(range(10))
    assert not s.asleep


def test_fastpath_env_toggle(monkeypatch):
    monkeypatch.setenv(FASTPATH_ENV, "0")
    assert fastpath_default() is False
    assert Simulator().fast_path is False
    monkeypatch.setenv(FASTPATH_ENV, "1")
    assert fastpath_default() is True
    monkeypatch.delenv(FASTPATH_ENV)
    assert fastpath_default() is True


# ----------------------------------------------------------------------
# satellite regressions: run_until stop + FIFO capacity error
# ----------------------------------------------------------------------
def test_run_until_returns_cleanly_on_stop():
    sim = Simulator(fast_path=True)
    sim.add(Recorder())
    sim.at(5, lambda s: s.stop())
    cycle = sim.run_until(lambda s: False, max_cycles=1000)
    # the stop lands during cycle 5's step; run_until returns right after
    assert cycle == sim.cycle == 6
    assert sim.stopped


def test_run_until_still_raises_on_bound_exhaustion():
    sim = Simulator(fast_path=True)
    sim.add(Recorder())
    with pytest.raises(SimError, match="exceeded"):
        sim.run_until(lambda s: False, max_cycles=50)
    assert not sim.stopped


def test_fifo_negative_capacity_names_the_fifo():
    sim = Simulator()
    with pytest.raises(SimError, match="'bad_fifo'"):
        FIFO(sim, "bad_fifo", capacity=-1)
