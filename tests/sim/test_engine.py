"""Unit tests for the simulation kernel's engine."""

import pytest

from repro.sim import Component, SimError, Simulator


class Ticker(Component):
    """Counts its own ticks; optionally runs a callback."""

    def __init__(self, name="ticker", on_tick=None):
        super().__init__(name)
        self.ticks = 0
        self.on_tick = on_tick

    def tick(self, sim):
        self.ticks += 1
        if self.on_tick:
            self.on_tick(sim)


class TestSimulatorBasics:
    def test_starts_at_cycle_zero(self):
        assert Simulator().cycle == 0

    def test_run_advances_cycles(self):
        sim = Simulator()
        sim.run(10)
        assert sim.cycle == 10

    def test_step_advances_one_cycle(self):
        sim = Simulator()
        sim.step()
        assert sim.cycle == 1

    def test_components_tick_every_cycle(self):
        sim = Simulator()
        t = sim.add(Ticker())
        sim.run(7)
        assert t.ticks == 7

    def test_add_returns_component(self):
        sim = Simulator()
        t = Ticker()
        assert sim.add(t) is t

    def test_add_rejects_non_component(self):
        with pytest.raises(SimError):
            Simulator().add(object())

    def test_add_all(self):
        sim = Simulator()
        sim.add_all([Ticker("a"), Ticker("b")])
        assert len(sim.components) == 2

    def test_removed_component_stops_ticking(self):
        sim = Simulator()
        t = sim.add(Ticker())
        sim.run(3)
        sim.remove(t)
        sim.run(3)
        assert t.ticks == 3

    def test_remove_unknown_raises(self):
        sim = Simulator()
        with pytest.raises(SimError):
            sim.remove(Ticker())

    def test_component_rebind_to_other_sim_raises(self):
        t = Ticker()
        Simulator().add(t)
        with pytest.raises(SimError):
            Simulator().add(t)

    def test_unbound_component_sim_raises(self):
        with pytest.raises(SimError):
            Ticker().sim

    def test_component_now(self):
        sim = Simulator()
        seen = []
        t = sim.add(Ticker(on_tick=lambda s: seen.append(t.now)))
        sim.run(3)
        assert seen == [0, 1, 2]


class TestEvents:
    def test_event_fires_at_cycle(self):
        sim = Simulator()
        fired = []
        sim.at(5, lambda s: fired.append(s.cycle))
        sim.run(10)
        assert fired == [5]

    def test_after_is_relative(self):
        sim = Simulator()
        sim.run(3)
        fired = []
        sim.after(4, lambda s: fired.append(s.cycle))
        sim.run(10)
        assert fired == [7]

    def test_event_in_past_raises(self):
        sim = Simulator()
        sim.run(5)
        with pytest.raises(SimError):
            sim.at(2, lambda s: None)

    def test_negative_delay_raises(self):
        with pytest.raises(SimError):
            Simulator().after(-1, lambda s: None)

    def test_events_fire_before_ticks(self):
        sim = Simulator()
        order = []
        sim.add(Ticker(on_tick=lambda s: order.append("tick")))
        sim.at(0, lambda s: order.append("event"))
        sim.step()
        assert order == ["event", "tick"]

    def test_events_same_cycle_fifo(self):
        sim = Simulator()
        order = []
        sim.at(1, lambda s: order.append("a"))
        sim.at(1, lambda s: order.append("b"))
        sim.run(2)
        assert order == ["a", "b"]

    def test_event_scheduling_event(self):
        sim = Simulator()
        fired = []
        sim.at(1, lambda s: s.after(2, lambda s2: fired.append(s2.cycle)))
        sim.run(5)
        assert fired == [3]


class TestRunUntil:
    def test_run_until_predicate(self):
        sim = Simulator()
        cycle = sim.run_until(lambda s: s.cycle >= 12)
        assert cycle == 12

    def test_run_until_raises_on_bound(self):
        sim = Simulator()
        with pytest.raises(SimError):
            sim.run_until(lambda s: False, max_cycles=50)

    def test_run_until_immediate(self):
        sim = Simulator()
        assert sim.run_until(lambda s: True) == 0

    def test_stop_breaks_run(self):
        sim = Simulator()
        sim.at(4, lambda s: s.stop())
        sim.run(100)
        assert sim.cycle == 5  # the stopping cycle completes

    def test_drain_requires_patience(self):
        sim = Simulator()
        # idle predicate true from cycle 10 onward; 5th consecutive
        # idle evaluation happens at cycle 14
        end = sim.drain(lambda s: s.cycle >= 10, patience=5)
        assert end == 14

    def test_reentrant_step_raises(self):
        sim = Simulator()

        def reenter(s):
            with pytest.raises(SimError):
                s.step()

        sim.add(Ticker(on_tick=reenter))
        sim.step()


class TestSequentials:
    def test_register_requires_commit_method(self):
        with pytest.raises(SimError):
            Simulator().register_sequential(object())

    def test_unregister_unknown_is_noop(self):
        Simulator().unregister_sequential(object())  # must not raise

    def test_component_added_during_tick_starts_next_cycle(self):
        sim = Simulator()
        late = Ticker("late")

        def add_late(s):
            if s.cycle == 2 and late._sim is None:
                s.add(late)

        sim.add(Ticker(on_tick=add_late))
        sim.run(5)
        # added during cycle 2's tick phase; first tick at cycle 3
        assert late.ticks == 2


class TestRunForTime:
    def test_converts_seconds_to_cycles(self):
        sim = Simulator()
        cycles = sim.run_for_time(1e-6, clock_hz=100e6)  # 1 us @ 100 MHz
        assert cycles == 100
        assert sim.cycle == 100

    def test_invalid_args_raise(self):
        sim = Simulator()
        with pytest.raises(SimError):
            sim.run_for_time(-1.0, 1e6)
        with pytest.raises(SimError):
            sim.run_for_time(1.0, 0)
