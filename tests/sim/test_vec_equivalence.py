"""Golden equivalence: vec engine vs object engine, bit for bit.

The SoA backend is a pure optimization — for every architecture,
workload, telemetry setting and fault script, a ``VecSimulator`` run
must produce exactly the same statistics, telemetry and traces as the
plain object kernel.  Components without a batch kernel (CoNoChi) must
fall back transparently inside the same hybrid cycle loop, and a
numpy-less install must degrade to the object path rather than fail.
"""

import json
import random

import pytest

from repro.arch import build_architecture
from repro.obs.flows import FlowTelemetry
from repro.sim import Tracer
from repro.sim.vec import make_simulator

#: architectures with a compiled-tick batch kernel installed
VEC_ARCHS = ("dynoc", "staticmesh", "sharedbus", "buscom", "rmboc")
#: the hybrid-fallback architecture: object tick inside VecSimulator
ALL_ARCHS = VEC_ARCHS + ("conochi",)


def _fingerprint(sim):
    parts = [json.dumps(sim.stats.snapshot(), sort_keys=True, default=str)]
    if sim.telemetering:
        parts.append(json.dumps(sim.telemetry.snapshot(sim.cycle),
                                sort_keys=True, default=str))
    if sim.tracing:
        parts.append(json.dumps([repr(e) for e in sim.tracer.events],
                                default=str))
    return "|".join(parts)


def _mask_one_router(arch):
    """Fail the first maskable router (deterministic pick)."""
    accesses = {pl.access for pl in arch._placements.values()}
    for coord in arch._router_active:
        if arch.is_active(coord) and coord not in accesses:
            arch.fail_router(coord)
            return


_FAULT_SCRIPTS = {
    "dynoc": lambda sim, arch: (
        sim.at(400, lambda _s: _mask_one_router(arch)),
        sim.at(1400, lambda _s: [arch.repair_router(c)
                                 for c in list(arch._failed_routers)]),
    ),
    "staticmesh": lambda sim, arch: (
        sim.at(400, lambda _s: _mask_one_router(arch)),
        sim.at(1400, lambda _s: [arch.repair_router(c)
                                 for c in list(arch._failed_routers)]),
    ),
    "sharedbus": lambda sim, arch: (
        sim.at(400, lambda _s: arch.halt_bus()),
        sim.at(700, lambda _s: arch.resume_bus()),
    ),
    "buscom": lambda sim, arch: (
        sim.at(400, lambda _s: arch.fail_bus(0)),
        sim.at(900, lambda _s: arch.repair_bus(0)),
    ),
    "rmboc": lambda sim, arch: (
        sim.at(400, lambda _s: arch.fail_crosspoint(1)),
        sim.at(900, lambda _s: arch.repair_crosspoint(1)),
        sim.at(1200, lambda _s: arch.freeze_slot(2)),
        sim.at(1500, lambda _s: arch.unfreeze_slot(2)),
    ),
}


def _drive(key, engine, telemetry=False, faults=False, tracing=False,
           seed=7, sends=150, cycles=2_500):
    sim = make_simulator(name=f"{key}-{engine}", engine=engine)
    if tracing:
        sim.tracer = Tracer(max_events=1_000_000)
    if telemetry:
        FlowTelemetry().attach(sim)
    arch = build_architecture(key, sim=sim, seed=seed)
    if engine == "vec" and key in VEC_ARCHS:
        assert sim.vec_kernels, f"{key}: no batch kernel installed"
    if engine == "vec" and key == "conochi":
        assert not sim.vec_kernels  # hybrid fallback: object tick only
    mods = list(arch.modules)
    rng = random.Random(seed)
    t = 0
    for _ in range(sends):
        t += rng.randrange(1, 25)
        src, dst = rng.sample(mods, 2)
        payload = rng.choice([4, 16, 64, 256])
        sim.at(t, lambda _s, a=arch, s=src, d=dst, p=payload:
               a.ports[s].send(d, p))
    if faults:
        _FAULT_SCRIPTS[key](sim, arch)
    sim.run(cycles)
    return _fingerprint(sim)


@pytest.mark.parametrize("telemetry", (False, True),
                         ids=("plain", "telemetry"))
@pytest.mark.parametrize("key", ALL_ARCHS)
def test_engines_bit_identical(key, telemetry):
    obj = _drive(key, "object", telemetry=telemetry)
    vec = _drive(key, "vec", telemetry=telemetry)
    assert obj == vec


@pytest.mark.parametrize("key", sorted(_FAULT_SCRIPTS))
def test_engines_bit_identical_under_faults(key):
    obj = _drive(key, "object", faults=True)
    vec = _drive(key, "vec", faults=True)
    assert obj == vec


@pytest.mark.parametrize("key", ("rmboc", "dynoc"))
def test_engines_bit_identical_with_tracing(key):
    obj = _drive(key, "object", telemetry=True, faults=True, tracing=True)
    vec = _drive(key, "vec", telemetry=True, faults=True, tracing=True)
    assert obj == vec


def test_rmboc_reconfiguration_mid_run_equivalent():
    """Detach/attach during traffic: queued messages to an unattached
    destination pin the kernel to per-cycle mode (attach does not
    wake), which must not perturb equivalence."""

    def drive(engine):
        sim = make_simulator(name=f"rmboc-{engine}", engine=engine)
        arch = build_architecture("rmboc", sim=sim, seed=3,
                                  num_modules=6)
        rng = random.Random(3)
        mods = list(arch.modules)
        t = 0
        for _ in range(120):
            t += rng.randrange(1, 30)
            src, dst = rng.sample(mods, 2)
            sim.at(t, lambda _s, a=arch, s=src, d=dst:
                   a.ports[s].send(d, 128) if s in a._module_xp else None)

        def try_detach(s, a=arch):
            if "m5" not in a._module_xp:
                return
            try:
                a.detach("m5")
            except RuntimeError:
                s.at(s.cycle + 50, try_detach)

        sim.at(1_500, try_detach)
        sim.at(2_100, lambda _s, a=arch: a.attach("m6", xp=5))
        # traffic aimed at the detached slot, then at its replacement
        for i in range(15):
            at = 1_550 + i * 40
            dst = "m5" if at < 2_000 else "m6"
            sim.at(at, lambda _s, a=arch, d=dst: a.ports["m0"].send(d, 64))
        sim.run(4_000)
        return _fingerprint(sim)

    assert drive("object") == drive("vec")


def test_vec_simulator_without_numpy_degrades(monkeypatch):
    """The documented pure-Python fallback: no numpy means
    ``vectorized`` stays False and no kernels install, but the run
    still completes on the object path."""
    import repro.sim.vec as vec

    monkeypatch.setattr(vec, "HAVE_NUMPY", False)
    sim = make_simulator(name="fallback", engine="vec")
    assert not sim.vectorized
    arch = build_architecture("dynoc", sim=sim, seed=7)
    assert not sim.vec_kernels
    sim.at(5, lambda _s, a=arch: a.ports["m0"].send("m1", 64))
    sim.run(500)
    assert arch.log.delivered()


def test_env_var_selects_vec_engine(monkeypatch):
    from repro.sim.vec import ENGINE_ENV, VecSimulator

    monkeypatch.setenv(ENGINE_ENV, "vec")
    arch = build_architecture("sharedbus")
    assert isinstance(arch.sim, VecSimulator)
    assert arch.sim.vec_kernels
    monkeypatch.setenv(ENGINE_ENV, "object")
    arch = build_architecture("sharedbus")
    assert not isinstance(arch.sim, VecSimulator)


def test_explicit_engine_conflicts_with_sim():
    sim = make_simulator(name="x", engine="object")
    with pytest.raises(ValueError):
        build_architecture("sharedbus", sim=sim, engine="vec")
