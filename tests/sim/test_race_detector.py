"""Runtime race detector (SAN004/SAN005) tests.

The race detector is the dynamic counterpart of the static rules
QL007/QL008 and the adversarial-confirmation harness for their
findings: the seeded fixtures under ``tests/lint/fixtures/`` must trip
both the static rules (``tests/lint/test_graph.py``) and, here, the
runtime checks.
"""

import os
import sys

import pytest

from repro.lint.runtime import SanitizerError
from repro.sim.channel import FIFO, Wire
from repro.sim.component import Component
from repro.sim.engine import SimError, Simulator, sanitize_default

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from lint.fixtures.racy_fifo import build as build_racy_fifo  # noqa: E402
from lint.fixtures.racy_wire import build as build_racy_wire  # noqa: E402


class Driver(Component):
    def __init__(self, name, wire, value):
        super().__init__(name)
        self._wire = wire
        self._value = value

    def tick(self, sim):
        self._wire.drive(self._value)
        return None


class Pusher(Component):
    def __init__(self, name, fifo, value):
        super().__init__(name)
        self._fifo = fifo
        self._value = value

    def tick(self, sim):
        self._fifo.push(self._value)
        return None


# ----------------------------------------------------------------------
# SAN004 — same-cycle conflicting writes
# ----------------------------------------------------------------------
class TestSAN004:
    def test_wire_conflict_names_both_drivers(self):
        sim = Simulator(sanitize="race")
        build_racy_wire(sim)
        with pytest.raises(SanitizerError) as exc:
            sim.run(2)
        assert exc.value.rule == "SAN004"
        assert "'a'" in str(exc.value) and "'b'" in str(exc.value)

    def test_plain_double_drive_without_race_mode_stays_generic(self):
        # the race detector refines, but must not replace, the
        # double-drive error for plain sanitized runs
        sim = Simulator(sanitize=True)
        build_racy_wire(sim)
        with pytest.raises(SimError) as exc:
            sim.run(2)
        assert not isinstance(exc.value, SanitizerError)
        assert "driven twice" in str(exc.value)

    def test_fifo_multi_push_flagged_only_in_race_mode(self):
        def topology(sim):
            fifo = FIFO(sim, "q")
            sim.add(Pusher("p1", fifo, "x"))
            sim.add(Pusher("p2", fifo, "y"))

        sim = Simulator(sanitize=True)
        topology(sim)
        sim.run(3)  # multiple pushers are silent without race mode

        sim = Simulator(sanitize="race")
        topology(sim)
        with pytest.raises(SanitizerError) as exc:
            sim.run(3)
        assert exc.value.rule == "SAN004"
        assert "'p1'" in str(exc.value) and "'p2'" in str(exc.value)

    def test_same_component_multi_push_is_fine(self):
        class Burst(Component):
            def __init__(self, name, fifo):
                super().__init__(name)
                self._fifo = fifo

            def tick(self, sim):
                self._fifo.push(sim.cycle)
                self._fifo.push(-sim.cycle)
                return None

        sim = Simulator(sanitize="race")
        fifo = FIFO(sim, "q")
        sim.add(Burst("b", fifo))
        sim.run(3)  # one producer ordering its own pushes is legal

    def test_event_phase_writes_exempt(self):
        sim = Simulator(sanitize="race")
        wire = Wire(sim, "cfg")
        sim.add(Driver("d", wire, 1))
        # harness/event writes never enter the ownership tracker: a
        # second wire staged only from the event phase stays silent
        other = Wire(sim, "evt")
        sim.at(1, lambda s: other.drive("from-event"))
        sim.at(1, lambda s: None)
        sim.run(3)

    def test_distinct_channels_clean(self):
        sim = Simulator(sanitize="race")
        sim.add(Driver("d1", Wire(sim, "w1"), 1))
        sim.add(Driver("d2", Wire(sim, "w2"), 2))
        sim.run(3)


# ----------------------------------------------------------------------
# SAN005 — order-sensitive commit (record mode)
# ----------------------------------------------------------------------
class TestSAN005:
    def test_fifo_shadow_commit_detects_order_sensitivity(self):
        sim = Simulator(sanitize="record")
        build_racy_fifo(sim)
        sim.run(3)
        rules = {rule for rule, _, _ in sim.sanitizer.violations}
        assert "SAN004" in rules
        assert "SAN005" in rules

    def test_identical_payloads_are_order_insensitive(self):
        sim = Simulator(sanitize="record")
        fifo = FIFO(sim, "q")
        sim.add(Pusher("p1", fifo, "same"))
        sim.add(Pusher("p2", fifo, "same"))
        sim.run(3)
        rules = {rule for rule, _, _ in sim.sanitizer.violations}
        assert "SAN004" in rules       # still a topology violation
        assert "SAN005" not in rules   # but the outcome is order-free

    def test_record_mode_wire_drops_conflicting_write(self):
        sim = Simulator(sanitize="record")
        build_racy_wire(sim)
        sim.run(3)  # must not raise: conflicts recorded, not fatal
        rules = {rule for rule, _, _ in sim.sanitizer.violations}
        assert {"SAN004", "SAN005"} <= rules

    def test_env_values_parse(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_SANITIZE", "race")
        assert sanitize_default() == "race"
        monkeypatch.setenv("REPRO_SIM_SANITIZE", "2")
        assert sanitize_default() == "race"
        monkeypatch.setenv("REPRO_SIM_SANITIZE", "record")
        assert sanitize_default() == "record"
        monkeypatch.setenv("REPRO_SIM_SANITIZE", "1")
        assert sanitize_default() is True
        monkeypatch.setenv("REPRO_SIM_SANITIZE", "0")
        assert sanitize_default() is False


# ----------------------------------------------------------------------
# clean-topology equivalence: race mode is a pure observer
# ----------------------------------------------------------------------
class TestRaceModeEquivalence:
    def _pipeline(self, sim):
        class Producer(Component):
            def __init__(self, name, out):
                super().__init__(name)
                self._out = out

            def tick(self, sim):
                if sim.cycle < 20:
                    self._out.push(sim.cycle * 3)
                return None

        class Consumer(Component):
            def __init__(self, name, inq):
                super().__init__(name)
                self._inq = inq
                self.got = []

            def tick(self, sim):
                item = self._inq.try_pop()
                if item is not None:
                    self.got.append(item)
                return None

        fifo = FIFO(sim, "pipe")
        producer = Producer("p", fifo)
        consumer = Consumer("c", fifo)
        sim.add(producer)
        sim.add(consumer)
        return consumer

    def test_bit_identical_with_and_without_race_mode(self):
        runs = {}
        for mode in (False, True, "race", "record"):
            sim = Simulator(sanitize=mode)
            consumer = self._pipeline(sim)
            sim.run(30)
            runs[repr(mode)] = (sim.cycle, tuple(consumer.got))
            if mode in ("race", "record"):
                assert sim.sanitizer.violations == {}
        assert len(set(runs.values())) == 1, runs

    def test_architectures_run_clean_under_race_mode(self):
        # the paper architectures must be race-free under traffic
        from repro.arch.baselines.sharedbus import build_sharedbus
        from repro.arch.dynoc.arch import build_dynoc

        for build in (build_sharedbus, build_dynoc):
            sim = Simulator(sanitize="race")
            arch = build(sim=sim)
            src, dst = arch.modules[:2]
            sport = arch.ports[src]
            for i in range(8):
                sim.at(i + 1, lambda s, p=sport, d=dst:
                       p.send(d, payload_bytes=16))
            sim.run(300)
            assert sim.sanitizer.violations == {}, build.__name__
