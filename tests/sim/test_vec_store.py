"""SoA state stores: the banks must honour the channel commit
discipline (staged writes, one-cycle visibility, double-drive errors,
pulse self-clear) per handle, and the timed structures must stay
list-compatible while their bulk operations match the sequential
semantics they replace."""

import pytest

np = pytest.importorskip("numpy")

from repro.sim import SLEEP, Component, SimError, Simulator
from repro.sim.vec.store import (
    CountdownSet,
    EventQueue,
    FifoBank,
    IntervalSet,
    PulseBank,
    WireBank,
)


# ----------------------------------------------------------------------
# WireBank
# ----------------------------------------------------------------------
class TestWireBank:
    def test_staged_drive_visible_next_cycle(self):
        sim = Simulator(name="wires")
        bank = WireBank(sim, "w", 4, init=7)
        assert [bank.value(h) for h in range(4)] == [7, 7, 7, 7]
        bank.drive(2, 99)
        assert bank.value(2) == 7          # not yet committed
        assert bank.driven(2)
        sim.run(1)
        assert bank.value(2) == 99
        assert not bank.driven(2)

    def test_double_drive_raises(self):
        sim = Simulator(name="wires")
        bank = WireBank(sim, "w", 2)
        bank.drive(0, 1)
        with pytest.raises(SimError):
            bank.drive(0, 2)

    def test_drive_many_batches_and_rejects_duplicates(self):
        sim = Simulator(name="wires")
        bank = WireBank(sim, "w", 8)
        bank.drive_many([1, 3, 5], [10, 30, 50])
        sim.run(1)
        assert bank.values.tolist() == [0, 10, 0, 30, 0, 50, 0, 0]
        with pytest.raises(SimError):
            bank.drive_many([2, 2], [1, 1])

    def test_handle_bounds_checked(self):
        sim = Simulator(name="wires")
        bank = WireBank(sim, "w", 2)
        with pytest.raises(SimError):
            bank.value(2)
        with pytest.raises(SimError):
            bank.drive(-1, 0)

    def test_ref_wakes_watcher_when_value_lands(self):
        sim = Simulator(name="wires")
        bank = WireBank(sim, "w", 2)
        seen = []

        class Watcher(Component):
            def __init__(self):
                super().__init__("watcher")
                self.watch(bank.ref(1))

            def tick(self, _sim):
                seen.append((_sim.cycle, bank.value(1)))
                return SLEEP

        sim.add(Watcher())
        sim.at(5, lambda _s: bank.drive(1, 42))
        sim.run(20)
        # woken at drive visibility (cycle 6) with the committed value
        assert (6, 42) in seen


# ----------------------------------------------------------------------
# PulseBank
# ----------------------------------------------------------------------
class TestPulseBank:
    def test_pulse_self_clears_after_one_cycle(self):
        sim = Simulator(name="pulses")
        bank = PulseBank(sim, "p", 2, default=0)
        bank.drive(0, 1)
        sim.run(1)
        assert bank.value(0) == 1          # visible for exactly one cycle
        sim.run(1)
        assert bank.value(0) == 0          # self-cleared to default

    def test_back_to_back_pulses_stay_high(self):
        sim = Simulator(name="pulses")
        bank = PulseBank(sim, "p", 1, default=0)
        sim.at(1, lambda _s: bank.drive(0, 1))
        sim.at(2, lambda _s: bank.drive(0, 1))
        values = []
        sim.at(3, lambda _s: values.append(bank.value(0)))
        sim.at(4, lambda _s: values.append(bank.value(0)))
        sim.run(6)
        assert values == [1, 0]


# ----------------------------------------------------------------------
# FifoBank
# ----------------------------------------------------------------------
class TestFifoBank:
    def test_push_staged_pop_committed(self):
        sim = Simulator(name="fifos")
        bank = FifoBank(sim, "f", 2, capacity=4)
        bank.push(0, 11)
        assert bank.occupancy(0) == 0      # staged, not visible
        assert bank.peek(0) is None
        sim.run(1)
        assert bank.occupancy(0) == 1
        assert bank.peek(0) == 11
        assert bank.pop(0) == 11
        assert bank.occupancy(0) == 0

    def test_fifo_order_and_ring_wraparound(self):
        sim = Simulator(name="fifos")
        bank = FifoBank(sim, "f", 1, capacity=3)
        out = []
        for round_base in (0, 10, 20):
            for i in range(3):
                bank.push(0, round_base + i)
            sim.run(1)
            out.extend(bank.pop(0) for _ in range(3))
        assert out == [0, 1, 2, 10, 11, 12, 20, 21, 22]

    def test_overflow_and_underflow_raise(self):
        sim = Simulator(name="fifos")
        bank = FifoBank(sim, "f", 1, capacity=2)
        bank.push(0, 1)
        bank.push(0, 2)
        assert not bank.can_push(0)
        with pytest.raises(SimError):
            bank.push(0, 3)
        with pytest.raises(SimError):
            bank.pop(0)                    # still staged: committed empty

    def test_occupancies_view(self):
        sim = Simulator(name="fifos")
        bank = FifoBank(sim, "f", 3, capacity=4)
        bank.push(1, 5)
        bank.push(1, 6)
        bank.push(2, 7)
        sim.run(1)
        assert bank.occupancies.tolist() == [0, 2, 1]


# ----------------------------------------------------------------------
# IntervalSet
# ----------------------------------------------------------------------
class TestIntervalSet:
    def test_list_compatibility(self):
        s = IntervalSet("links")
        assert not s and len(s) == 0
        s.append((2, 5, 1))
        s.append((3, 8, 2))
        assert s and len(s) == 2
        assert list(s) == [(2, 5, 1), (3, 8, 2)]

    def test_prune_drops_finished_intervals(self):
        s = IntervalSet("links", [(0, 4, 1), (2, 10, 2), (5, 6, 3)])
        s.prune(5)
        assert list(s) == [(2, 10, 2), (5, 6, 3)]
        s.prune(10)
        assert not s

    def test_distinct_ids_count_once(self):
        # one message streaming over two successive links: one id,
        # counted once per cycle exactly like the object kernel
        s = IntervalSet("links", [(0, 5, 7), (5, 10, 7), (3, 6, 8)])
        assert s.count_distinct_at(4) == 2
        assert s.count_distinct_at(5) == 2
        assert s.count_distinct_at(8) == 1

    def test_active_counts_matches_per_cycle_scan(self):
        rng = np.random.default_rng(42)
        s = IntervalSet("links")
        for _ in range(60):
            start = int(rng.integers(0, 50))
            s.append((start, start + int(rng.integers(1, 12)),
                      int(rng.integers(0, 9))))
        t0, t1 = 5, 58
        bulk = s.active_counts(t0, t1)
        scan = [s.count_distinct_at(t) for t in range(t0, t1)]
        assert bulk.tolist() == scan

    def test_active_counts_empty_span(self):
        s = IntervalSet("links", [(0, 4, 1)])
        assert s.active_counts(7, 7).tolist() == []
        assert s.max_end() == 4
        assert IntervalSet("empty").max_end() is None


# ----------------------------------------------------------------------
# EventQueue
# ----------------------------------------------------------------------
class TestEventQueue:
    def test_pop_due_keeps_insertion_order(self):
        q = EventQueue("ctrl")
        q.append((9, "c"))
        q.append((3, "a"))
        q.append((9, "d"))
        q.append((5, "b"))
        assert q.min_ready() == 3
        assert q.pop_due(9) == [(9, "c"), (3, "a"), (9, "d"), (5, "b")]
        assert not q and q.min_ready() is None

    def test_pop_due_partial(self):
        q = EventQueue("ctrl", [(4, "x"), (10, "y"), (6, "z")])
        assert q.pop_due(3) == []
        assert q.pop_due(6) == [(4, "x"), (6, "z")]
        assert list(q) == [(10, "y")]

    def test_remove(self):
        q = EventQueue("ctrl", [(4, "x"), (10, "y")])
        q.remove((4, "x"))
        assert list(q) == [(10, "y")]
        assert q.min_ready() == 10


# ----------------------------------------------------------------------
# CountdownSet
# ----------------------------------------------------------------------
class _Transfer:
    def __init__(self, words_left):
        self.words_left = words_left

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"T({self.words_left})"


class TestCountdownSet:
    def test_decrement_writes_back_to_items(self):
        a, b = _Transfer(5), _Transfer(2)
        s = CountdownSet("transfers", "words_left", [a, b])
        s.decrement(2)
        assert (a.words_left, b.words_left) == (3, 0)
        assert s.min_count() == 0

    def test_take_finished_in_insertion_order(self):
        items = [_Transfer(1), _Transfer(3), _Transfer(1)]
        s = CountdownSet("transfers", "words_left", items)
        s.decrement(1)
        done = s.take_finished()
        assert done == [items[0], items[2]]
        assert list(s) == [items[1]]
        assert s.min_count() == 2

    def test_batched_decrement_equals_per_cycle(self):
        counts = [7, 3, 11, 3]
        seq = CountdownSet("a", "words_left",
                           [_Transfer(c) for c in counts])
        bat = CountdownSet("b", "words_left",
                           [_Transfer(c) for c in counts])
        seq_done = []
        for _ in range(3):
            seq.decrement(1)
            seq_done.extend(t.words_left for t in seq.take_finished())
        bat.decrement(3)
        bat_done = [t.words_left for t in bat.take_finished()]
        assert seq_done == bat_done
        assert [t.words_left for t in seq] == [t.words_left for t in bat]

    def test_remove_and_append(self):
        a, b = _Transfer(4), _Transfer(9)
        s = CountdownSet("transfers", "words_left", [a])
        s.append(b)
        s.remove(a)
        assert list(s) == [b] and len(s) == 1
        assert s.min_count() == 9
        s.remove(b)
        assert not s and s.min_count() is None
