"""Property-based tests: the kernel's order-insensitivity guarantee."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import FIFO, Component, Simulator, Wire


class Producer(Component):
    """Drives a wire from a script: {cycle: value}."""

    def __init__(self, name, wire, script):
        super().__init__(name)
        self.wire = wire
        self.script = script

    def tick(self, sim):
        if sim.cycle in self.script:
            self.wire.drive(self.script[sim.cycle])


class Observer(Component):
    """Samples a wire every cycle."""

    def __init__(self, name, wire):
        super().__init__(name)
        self.wire = wire
        self.samples = []

    def tick(self, sim):
        self.samples.append(self.wire.value)


@st.composite
def scripts(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    cycles = draw(st.lists(st.integers(0, 19), min_size=0, max_size=n,
                           unique=True))
    return {c: draw(st.integers(-100, 100)) for c in cycles}


@given(script=scripts(), observer_first=st.booleans())
@settings(max_examples=60, deadline=None)
def test_wire_observation_is_registration_order_independent(
        script, observer_first):
    """An observer sees identical values whether registered before or
    after the producer — the two-phase commit guarantee."""
    def run(first_observer):
        sim = Simulator()
        w = Wire(sim, "w", init=0)
        obs = Observer("o", w)
        prod = Producer("p", w, script)
        if first_observer:
            sim.add(obs)
            sim.add(prod)
        else:
            sim.add(prod)
            sim.add(obs)
        sim.run(25)
        return obs.samples

    assert run(True) == run(False)
    # and both equal the expected register semantics
    expected, value = [], 0
    for cycle in range(25):
        expected.append(value)
        if cycle in script:
            value = script[cycle]
    assert run(observer_first) == expected


@given(items=st.lists(st.integers(), min_size=0, max_size=50))
@settings(max_examples=50, deadline=None)
def test_fifo_preserves_order_across_cycles(items):
    """Items pushed over arbitrary cycles pop in push order."""
    sim = Simulator()
    f = FIFO(sim, "f")

    class Pusher(Component):
        def __init__(self):
            super().__init__("pusher")
            self.idx = 0

        def tick(self, sim):
            # push 0-2 items per cycle
            for _ in range((sim.cycle % 3)):
                if self.idx < len(items):
                    f.push(items[self.idx])
                    self.idx += 1

    sim.add(Pusher())
    sim.run(len(items) + 10)
    popped = []
    while f:
        popped.append(f.pop())
    assert popped == items


@given(caps=st.integers(min_value=1, max_value=8),
       n=st.integers(min_value=0, max_value=30))
@settings(max_examples=50, deadline=None)
def test_fifo_never_exceeds_capacity(caps, n):
    sim = Simulator()
    f = FIFO(sim, "f", capacity=caps)
    pushed = 0
    for _ in range(n):
        if f.try_push(object()):
            pushed += 1
        assert f.occupancy <= caps
        if pushed % 3 == 0:
            sim.step()
            assert len(f) <= caps
