"""Wall-clock profiler tests: bucket accounting and kernel integration."""

import pytest

from repro.obs import Profiler
from repro.sim import Component, Simulator
from repro.sim.engine import PROFILE_ENV


class Ticker(Component):
    def tick(self, sim):
        pass


class TestProfiler:
    def test_add_accumulates(self):
        p = Profiler()
        p.add("a", 0.5)
        p.add("a", 0.25)
        p.add("b", 1.0)
        assert p.seconds["a"] == 0.75
        assert p.calls == {"a": 2, "b": 1}
        assert p.total_seconds == 1.75

    def test_top_ranked_by_seconds(self):
        p = Profiler()
        p.add("cold", 0.1)
        p.add("hot", 9.0)
        assert [name for name, _, _ in p.top(2)] == ["hot", "cold"]
        assert len(p.top(1)) == 1

    def test_merge(self):
        a, b = Profiler(), Profiler()
        a.add("x", 1.0)
        b.add("x", 2.0)
        b.add("y", 3.0)
        a.merge(b)
        assert a.seconds == {"x": 3.0, "y": 3.0}
        assert a.calls == {"x": 2, "y": 1}

    def test_as_dict_sorted(self):
        p = Profiler()
        p.add("b", 1.0)
        p.add("a", 2.0)
        assert list(p.as_dict()) == ["a", "b"]
        assert p.as_dict()["a"] == {"seconds": 2.0, "calls": 1}

    def test_render_top_handles_empty(self):
        assert "total" in Profiler().render_top()


class TestKernelIntegration:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV, raising=False)
        assert Simulator().profiler is None

    def test_env_enables(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, "1")
        assert Simulator().profiler is not None
        monkeypatch.setenv(PROFILE_ENV, "0")
        assert Simulator().profiler is None

    def test_explicit_flag_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, "1")
        assert Simulator(profile=False).profiler is None

    def test_component_buckets_collected(self):
        sim = Simulator(profile=True)
        sim.add(Ticker("worker"))
        sim.after(2, lambda s: None)
        sim.run(5)
        p = sim.profiler
        assert p.calls["worker"] == 5
        assert p.calls["kernel.events"] == 1
        assert "kernel.commit" in p.calls
        assert all(v >= 0 for v in p.seconds.values())

    @pytest.mark.parametrize("fast", (True, False))
    def test_profiling_does_not_change_results(self, fast):
        def fingerprint(profile):
            sim = Simulator(fast_path=fast, profile=profile)
            sim.add(Ticker("t"))
            sim.stats.counter("c").inc()
            sim.run(20)
            return (sim.cycle, sim.stats.snapshot(), sim.tick_counts())

        assert fingerprint(True) == fingerprint(False)
