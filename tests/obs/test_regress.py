"""repro regress: baseline gating with the 0/1/2 exit-code contract.

Exit 0 — every fresh run within budget of its baseline record;
exit 1 — at least one budgeted metric regressed;
exit 2 — the gate itself could not run (no baseline, ledger off...).
"""

import copy

import pytest

from repro.analysis.batch import run_seed_fleet
from repro.cli import main
from repro.obs.diff import REGRESS_BUDGETS, Budget, regress
from repro.obs.ledger import RunLedger

#: tiny fleet configuration; regress re-simulates it per check, so
#: keep it just big enough to produce nonzero latencies
WORKLOAD = dict(cycles=2_000, bursts=2, burst_size=8, burst_gap=700,
                payloads=(64,))


@pytest.fixture
def baseline(tmp_path):
    """A baseline ledger holding one real buscom fleet record."""
    fleet = run_seed_fleet("buscom", [0, 1], engine="vec", **WORKLOAD)
    record = RunLedger().load(fleet.run_id)
    store = RunLedger(str(tmp_path / "baseline"))
    store.store(record)
    return store


def test_clean_rerun_exits_zero(baseline):
    report = regress(baseline.root)
    assert report.errors == [] and report.regressions == []
    assert report.checked == 1
    assert report.exit_code == 0
    assert "CLEAN" in report.render()


def test_doctored_baseline_exits_one(baseline):
    rid = baseline.ids()[0]
    doc = copy.deepcopy(baseline.load(rid))
    doc["stats"]["mean_latency"] /= 2.0
    for row in doc["stats"]["per_seed"]:
        row["mean_latency"] /= 2.0
    baseline.gc(max_bytes=0)
    baseline.store(doc)
    report = regress(baseline.root)
    assert report.exit_code == 1
    assert any("mean_latency" in r for r in report.regressions)
    assert "REGRESSION" in report.render()


def test_empty_baseline_exits_two(tmp_path):
    report = regress(str(tmp_path / "nothing"))
    assert report.exit_code == 2
    assert any("no baseline fleet records" in e for e in report.errors)


def test_disabled_ledger_exits_two(baseline, monkeypatch):
    monkeypatch.setenv("REPRO_LEDGER", "0")
    report = regress(baseline.root)
    assert report.exit_code == 2
    assert any("disabled" in e for e in report.errors)


def test_names_filter_skips_other_archs(baseline):
    report = regress(baseline.root, names=["dynoc"])
    assert report.exit_code == 2  # nothing left to check
    report = regress(baseline.root, names=["buscom"])
    assert report.exit_code == 0 and report.checked == 1


def test_write_baseline_replaces_records(baseline):
    rid = baseline.ids()[0]
    doc = copy.deepcopy(baseline.load(rid))
    doc["stats"]["mean_latency"] /= 2.0
    baseline.gc(max_bytes=0)
    baseline.store(doc)
    assert regress(baseline.root).exit_code == 1
    report = regress(baseline.root, write_baseline=True)
    assert report.exit_code == 0 and len(report.written) == 1
    # the doctored record is gone, the fresh one gates cleanly
    assert regress(baseline.root).exit_code == 0


def test_custom_budgets_can_tighten_the_gate(baseline):
    # an impossible budget (abs floor 0, rel 0) flags seed jitter in
    # nothing — identical reruns really are identical — so the gate
    # stays clean even at zero tolerance
    report = regress(baseline.root,
                     budgets=[Budget("stats.*"), Budget("*")])
    assert report.exit_code == 0


def test_regress_budgets_ignore_kernel_self_metrics():
    assert any(b.pattern == "kernel.*" and b.ignore
               for b in REGRESS_BUDGETS)


class TestCli:
    def test_cli_exit_codes(self, baseline, tmp_path):
        assert main(["regress", "--baseline", baseline.root]) == 0
        assert main(["regress", "--baseline",
                     str(tmp_path / "missing")]) == 2

    def test_cli_json_report(self, baseline, tmp_path, capsys):
        rc = main(["regress", "--baseline", baseline.root, "--json"])
        assert rc == 0
        out = capsys.readouterr().out
        assert '"checked": 1' in out

    def test_cli_diff_of_ledger_prefixes(self, capsys):
        a = run_seed_fleet("buscom", [0], engine="vec", **WORKLOAD)
        b = run_seed_fleet("buscom", [1], engine="vec", **WORKLOAD)
        rc = main(["diff", a.run_id[:8], b.run_id[:8]])
        assert rc == 0
        out = capsys.readouterr().out
        assert "seed" in out and "0 significant" in out
        # --check turns significant regressions into exit 1; a quiet
        # seed pair stays 0
        assert main(["diff", a.run_id, b.run_id, "--check"]) == 0

    def test_cli_diff_unknown_run_exits_two(self):
        assert main(["diff", "doesnotexist", "alsomissing"]) == 2

    def test_cli_runs_list_show_gc(self, capsys):
        fleet = run_seed_fleet("dynoc", [0], engine="vec", **WORKLOAD)
        assert main(["runs", "list"]) == 0
        assert fleet.run_id[:8] in capsys.readouterr().out
        assert main(["runs", "show", fleet.run_id[:8]]) == 0
        assert "dynoc" in capsys.readouterr().out
        # gc without a bound is refused
        assert main(["runs", "gc"]) == 2
        assert main(["runs", "gc", "--max-size", "0"]) == 0
        assert len(RunLedger()) == 0
