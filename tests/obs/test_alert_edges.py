"""Alert edge semantics: clear events, the subscription stream,
cooldown dedupe, injected alerts, and the burn/episode accounting the
control plane and adaptive harness are built on."""

import pytest

from repro.obs import AlertEngine, AlertRule, FlowTelemetry


def _q_rule(threshold=5):
    return AlertRule("q", "queue_current", threshold)


def _tel_at(depth_by_cycle, engine):
    tel = FlowTelemetry()
    fired = {}
    for cycle, depth in depth_by_cycle:
        tel.queue_depth(cycle, "l", depth)
        fired[cycle] = engine.evaluate(tel, cycle)
    return tel, fired


class TestClearEvents:
    def test_recovery_records_a_clear(self):
        eng = AlertEngine(rules=[_q_rule()])
        _tel, fired = _tel_at([(0, 9), (100, 2)], eng)
        assert [a.rule for a in fired[0]] == ["q"]
        assert fired[100] == []  # clears are not part of the return
        (clear,) = eng.clears
        assert clear.rule == "q" and clear.event == "clear"
        assert clear.since == 0 and clear.cycle == 100
        assert "recovered" in clear.message
        assert eng.cleared_counts == {"q": 1}
        assert eng.last_cleared == {"q": 100}

    def test_unfired_episode_clears_silently(self):
        # a sustained breach that recovers before for_cycles never
        # fired, so there is nothing to clear
        rule = AlertRule("s", "queue_current", 5, kind="sustained",
                         for_cycles=256)
        eng = AlertEngine(rules=[rule])
        _tel, fired = _tel_at([(0, 9), (10, 2)], eng)
        assert fired[0] == [] and eng.clears == []

    def test_snapshot_carries_clears(self):
        eng = AlertEngine(rules=[_q_rule()])
        _tel_at([(0, 9), (100, 2)], eng)
        snap = eng.snapshot(100)
        assert len(snap["clears"]) == 1
        (row,) = [r for r in snap["rules"] if r["name"] == "q"]
        assert row["cleared"] == 1 and row["last_cleared"] == 100
        assert row["active"] is False


class TestSubscription:
    def test_listener_sees_both_edges_in_order(self):
        eng = AlertEngine(rules=[_q_rule()])
        events = []
        eng.subscribe(lambda event, alert: events.append(
            (event, alert.rule, alert.cycle)))
        _tel_at([(0, 9), (100, 2)], eng)
        assert events == [("fire", "q", 0), ("clear", "q", 100)]

    def test_injected_alert_reaches_listeners(self):
        eng = AlertEngine(rules=[])
        events = []
        eng.subscribe(lambda event, alert: events.append(
            (event, alert.rule)))
        alert = eng.inject("controller-saturated", cycle=42,
                           message="budget hit")
        assert events == [("fire", "controller-saturated")]
        assert alert in eng.alerts
        assert eng.fired_counts["controller-saturated"] == 1


class TestCooldownDedupe:
    def test_flap_within_cooldown_is_suppressed(self):
        eng = AlertEngine(rules=[_q_rule()], cooldown=1_000)
        events = []
        eng.subscribe(lambda event, alert: events.append(
            (event, alert.cycle)))
        _tel, fired = _tel_at(
            [(0, 9), (100, 2), (200, 9), (300, 2)], eng)
        assert [a.cycle for a in fired[0]] == [0]
        assert fired[200] == []  # deduped, not refired
        assert eng.deduped == 1
        assert eng.deduped_counts == {"q": 1}
        assert len(eng.alerts) == 1
        # listeners saw one fire and both clears — the second episode
        # still burned and recovered even though its refire was spam
        assert events == [("fire", 0), ("clear", 100), ("clear", 300)]

    def test_deduped_episode_still_burns(self):
        eng = AlertEngine(rules=[_q_rule()], cooldown=1_000)
        _tel_at([(0, 9), (100, 2), (200, 9)], eng)
        assert eng.active(200) == ["q"]
        assert eng.burn_cycles(250) == {"q": 150}  # 100 closed + 50 open

    def test_refire_after_cooldown_recorded(self):
        eng = AlertEngine(rules=[_q_rule()], cooldown=150)
        _tel, fired = _tel_at([(0, 9), (100, 2), (200, 9)], eng)
        assert [a.cycle for a in fired[200]] == [200]
        assert eng.deduped == 0 and len(eng.alerts) == 2

    def test_zero_cooldown_keeps_legacy_behaviour(self):
        eng = AlertEngine(rules=[_q_rule()])
        _tel, fired = _tel_at([(0, 9), (100, 2), (200, 9)], eng)
        assert len(eng.alerts) == 2 and eng.deduped == 0


class TestBurnAndEpisodes:
    def test_closed_episode_duration(self):
        eng = AlertEngine(rules=[_q_rule()])
        _tel_at([(0, 9), (100, 2)], eng)
        (ep,) = eng.episodes(500)
        assert ep == {"rule": "q", "since": 0, "cleared": 100,
                      "duration": 100, "open": False}
        assert eng.total_burn(500) == 100

    def test_open_episode_censored_at_now(self):
        eng = AlertEngine(rules=[_q_rule()])
        _tel_at([(0, 9)], eng)
        (ep,) = eng.episodes(50)
        assert ep["open"] is True and ep["cleared"] is None
        assert ep["duration"] == 50
        assert eng.total_burn(50) == 50

    def test_multiple_episodes_accumulate(self):
        eng = AlertEngine(rules=[_q_rule()])
        _tel_at([(0, 9), (100, 2), (200, 9), (250, 2)], eng)
        eps = eng.episodes(300)
        assert [e["duration"] for e in eps] == [100, 50]
        assert eng.total_burn(300) == 150
