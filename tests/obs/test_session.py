"""ObservationSession: construction-hook attach/restore semantics."""

import pytest

from repro.obs import ObservationSession, observe_named
from repro.sim import Simulator
from repro.sim.engine import set_new_sim_hook


class TestHookLifecycle:
    def test_attaches_tracer_to_sims_built_inside(self):
        with ObservationSession() as obs:
            sim = Simulator()
        assert sim.tracer is not None
        assert obs.sims == [sim]
        assert obs.traced_sims == [sim]

    def test_restores_hook_on_exit(self):
        with ObservationSession():
            pass
        sim = Simulator()
        assert sim.tracer is None

    def test_restores_hook_on_exception(self):
        with pytest.raises(RuntimeError):
            with ObservationSession():
                raise RuntimeError("boom")
        assert Simulator().tracer is None

    def test_not_reentrant(self):
        obs = ObservationSession()
        with obs:
            with pytest.raises(RuntimeError):
                obs.__enter__()

    def test_nested_sessions_chain(self):
        with ObservationSession() as outer:
            with ObservationSession() as inner:
                sim = Simulator()
        assert sim in inner.sims and sim in outer.sims
        assert Simulator().tracer is None

    def test_preexisting_tracer_respected(self):
        from repro.sim import Tracer

        mine = Tracer()
        prev = set_new_sim_hook(lambda s: setattr(s, "tracer", mine))
        try:
            with ObservationSession() as obs:
                sim = Simulator()
        finally:
            set_new_sim_hook(prev)
        # the session chains to the previous hook rather than replacing it
        assert sim in obs.sims

    def test_profile_session(self):
        with ObservationSession(trace=False, profile=True) as obs:
            sim = Simulator()
            sim.step()
        assert sim.tracer is None
        assert sim.profiler is not None
        assert obs.traced_sims == []

    def test_tracer_capacity_forwarded(self):
        with ObservationSession(max_events=7, keep="head"):
            sim = Simulator()
        assert sim.tracer.max_events == 7
        assert sim.tracer.keep == "head"

    def test_event_and_span_totals(self):
        with ObservationSession() as obs:
            sim = Simulator()
            sim.emit("s", "k")
            sim.span_event("s", "k", 0, 1)
        assert obs.total_events() == 1
        assert obs.total_spans() == 1


class TestObserveNamed:
    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            observe_named("nope")

    def test_runs_experiment_and_collects_sims(self):
        result, session = observe_named("e1")
        assert result is not None
        assert session.traced_sims
        assert session.total_events() > 0
        # hook restored afterwards
        assert Simulator().tracer is None
