"""Unit tests for the SLO alert rules and engine."""

import pytest

from repro.obs import AlertEngine, AlertRule, FlowTelemetry, default_rules


def _engine(*rules):
    return AlertEngine(rules=list(rules))


class TestAlertRule:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown kind"):
            AlertRule("r", "queue_depth", 1, kind="windowed")

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            AlertRule("r", "queue_depth", 1, severity="fatal")

    def test_sustained_needs_for_cycles(self):
        with pytest.raises(ValueError, match="for_cycles"):
            AlertRule("r", "queue_depth", 1, kind="sustained")

    def test_burn_rate_needs_counter_metric(self):
        with pytest.raises(ValueError, match="counter:"):
            AlertRule("r", "queue_depth", 1, kind="burn_rate")

    def test_default_rules_cover_issue_phenomena(self):
        rules = {r.name for r in default_rules()}
        assert rules == {"flow-latency-p99", "link-saturation",
                         "tdma-slot-overrun", "detour-storm",
                         "quiesce-budget", "fault-storm",
                         "mttr-budget", "undelivered-traffic"}

    def test_duplicate_rule_names_rejected(self):
        r = AlertRule("same", "queue_depth", 1)
        with pytest.raises(ValueError, match="duplicate"):
            AlertEngine(rules=[r, AlertRule("same", "quiesce_max", 2)])


class TestThresholdRules:
    def test_edge_triggered_once_per_excursion(self):
        eng = _engine(AlertRule("q", "queue_depth", 5))
        tel = FlowTelemetry()
        tel.queue_depth(0, "l", 3)
        assert eng.evaluate(tel, 0) == []
        tel.queue_depth(1, "l", 9)
        (alert,) = eng.evaluate(tel, 1)
        assert alert.rule == "q" and alert.value == 9
        # still breached: no refire (watermark latches, so stays 9)
        assert eng.evaluate(tel, 2) == []

    def test_quiesce_budget_threshold(self):
        eng = _engine(AlertRule("qb", "quiesce_max", 100))
        tel = FlowTelemetry()
        tel.record_quiesce(50, 40)
        assert eng.evaluate(tel, 50) == []
        tel.record_quiesce(60, 500)
        (alert,) = eng.evaluate(tel, 60)
        assert alert.value == 500

    def test_no_data_no_alert(self):
        eng = _engine(AlertRule("p", "flow_p99_latency", 10))
        assert eng.evaluate(FlowTelemetry(), 0) == []

    def test_unknown_metric_raises(self):
        eng = _engine(AlertRule("m", "made_up_metric", 1))
        tel = FlowTelemetry()
        with pytest.raises(ValueError, match="unknown metric"):
            eng.evaluate(tel, 0)


class TestSustainedRules:
    def test_fires_only_after_duration(self):
        eng = _engine(AlertRule("s", "flow_p99_latency", 100,
                                kind="sustained", for_cycles=1000))
        tel = FlowTelemetry()
        tel.record_flow(0, "a", "b", 500)
        assert eng.evaluate(tel, 0) == []       # breach starts
        assert eng.evaluate(tel, 999) == []     # not yet sustained
        (alert,) = eng.evaluate(tel, 1000)
        assert alert.since == 0
        assert eng.evaluate(tel, 2000) == []    # one per episode

    def test_episode_resets_when_cleared(self):
        eng = _engine(AlertRule("s", "link_utilization", 0.9,
                                kind="sustained", for_cycles=10))
        tel = FlowTelemetry(window=100)
        for c in range(0, 100):
            tel.link_busy(c, "l")
        assert eng.evaluate(tel, 50) == []       # breach episode opens
        assert len(eng.evaluate(tel, 70)) == 1   # sustained past for_cycles
        # utilization collapses: breach clears, a new episode can fire
        for c in range(100, 1000, 50):
            tel.link_busy(c, "l")
        assert eng.evaluate(tel, 901) == []
        for c in range(1000, 1100):
            tel.link_busy(c, "l")
        assert eng.evaluate(tel, 1050) == []     # new episode opens
        assert len(eng.evaluate(tel, 1070)) == 1


class TestBurnRateRules:
    def test_fires_on_fast_growth_only(self):
        eng = _engine(AlertRule("b", "counter:evt", 10,
                                kind="burn_rate", window=100))
        tel = FlowTelemetry()
        # slow growth: 1 per 100 cycles
        for c in range(0, 1000, 100):
            tel.count(c, "evt")
            assert eng.evaluate(tel, c) == []
        # storm: 50 events inside one window
        tel.count(1000, "evt", 50)
        (alert,) = eng.evaluate(tel, 1000)
        assert alert.kind == "burn_rate"
        assert alert.value > 10

    def test_window_slides(self):
        eng = _engine(AlertRule("b", "counter:evt", 5,
                                kind="burn_rate", window=10))
        tel = FlowTelemetry()
        tel.count(0, "evt", 4)
        assert eng.evaluate(tel, 0) == []
        # the old burst left the window; another small one stays quiet
        tel.count(100, "evt", 4)
        assert eng.evaluate(tel, 100) == []


class TestEngineBookkeeping:
    def test_alert_cap_counts_drops(self):
        eng = AlertEngine(rules=[AlertRule("q", "queue_depth", 0)],
                          max_alerts=2)
        tel = FlowTelemetry()
        for i in range(5):
            tel.queue_depth(i, f"l{i}", i + 1)  # rising watermark refires?
            eng._fired_episode.clear()  # force refire to exercise the cap
            eng.evaluate(tel, i)
        assert len(eng.alerts) == 2
        assert eng.dropped == 3

    def test_snapshot_lists_rules_and_alerts(self):
        eng = _engine(AlertRule("q", "queue_depth", 1))
        tel = FlowTelemetry()
        tel.queue_depth(7, "l", 9)
        eng.evaluate(tel, 7)
        snap = eng.snapshot(7)
        (rule,) = snap["rules"]
        assert rule["fired"] == 1 and rule["last_fired"] == 7
        assert rule["active"] is True
        assert snap["alerts"][0]["rule"] == "q"

    def test_alert_becomes_span_event_with_tracer(self):
        from repro.sim import Simulator, Tracer

        sim = Simulator(name="t")
        sim.tracer = Tracer()
        tel = FlowTelemetry().attach(sim)
        tel.engine = _engine(AlertRule("q", "queue_depth", 1,
                                       severity="critical"))
        tel.queue_depth(3, "l", 5)
        tel.evaluate_now(3)
        spans = [sp for sp in sim.tracer.spans if sp.source == "alerts"]
        assert len(spans) == 1
        assert spans[0].kind == "q"
        assert spans[0].data["severity"] == "critical"
