"""repro diff: alignment, noise-aware significance, attribution.

Acceptance invariants: same-config different-seed pairs must report
*zero* significant regressions (sub-noise deltas are never flagged),
and an injected slowdown must be attributed to the right journey
segment and link.
"""

import os
import tempfile


from repro.analysis.batch import run_seed_fleet
from repro.obs.diff import (
    DEFAULT_BUDGETS,
    _journey_rows,
    DIFF_SCHEMA,
    Budget,
    align,
    attribute_latency,
    compare_metrics,
    diff_runs,
    flatten_metrics,
    render_diff,
    within_noise,
)
from repro.obs.ledger import LEDGER_DIR_ENV, RunLedger, build_run_record

WORKLOAD = dict(cycles=3_000, bursts=2, burst_size=10, burst_gap=900)

#: records built once per module run (real simulations are the slow
#: part); each entry holds the fully instrumented per-seed record
_RECORDS = {}


def _seed_record(arch, seed, engine="vec", payload=64):
    """The instrumented per-seed ``repro.run/1`` record for one run,
    built in a throwaway ledger and cached in memory."""
    key = (arch, seed, engine, payload)
    if key not in _RECORDS:
        with tempfile.TemporaryDirectory() as tmp:
            saved = os.environ.get(LEDGER_DIR_ENV)
            os.environ[LEDGER_DIR_ENV] = tmp
            try:
                fleet = run_seed_fleet(arch, [seed], engine=engine,
                                       payloads=(payload,), **WORKLOAD)
                ledger = RunLedger()
                _RECORDS[key] = ledger.load(fleet.seed_run_ids[0])
            finally:
                if saved is None:
                    os.environ.pop(LEDGER_DIR_ENV, None)
                else:
                    os.environ[LEDGER_DIR_ENV] = saved
    import copy
    return copy.deepcopy(_RECORDS[key])


class TestWithinNoise:
    def test_envelope_is_factor_times_reference_plus_slack(self):
        assert within_noise(1.0, 1.0)
        assert within_noise(2.04, 1.0)          # 2.0 * 1.0 + 0.05
        assert not within_noise(2.06, 1.0)
        # zero reference still allows the absolute slack
        assert within_noise(0.04, 0.0)
        assert not within_noise(0.06, 0.0)

    def test_custom_factor_and_slack(self):
        assert within_noise(10.0, 2.0, factor=5.0, slack=0.0)
        assert not within_noise(10.1, 2.0, factor=5.0, slack=0.0)


class TestAlignment:
    def _rec(self, **kw):
        base = dict(config={"cycles": 100}, seed=0, engine="vec",
                    stats={"v": 1.0})
        base.update(kw)
        return build_run_record("fleet", kw.pop("name", "buscom"),
                                **base)

    def test_identical(self):
        a = self._rec()
        assert align(a, self._rec())["mode"] == "identical"

    def test_seed(self):
        assert align(self._rec(seed=0), self._rec(seed=1))["mode"] \
            == "seed"

    def test_seed_shifted_fleets_align_as_seed(self):
        a = self._rec(config={"cycles": 100, "seeds": [0, 1]}, seed=None)
        b = self._rec(config={"cycles": 100, "seeds": [2, 3]}, seed=None)
        assert a["config_hash"] == b["config_hash"]
        assert align(a, b)["mode"] == "seed"

    def test_engine(self):
        assert align(self._rec(engine="object"),
                     self._rec(engine="vec"))["mode"] == "engine"

    def test_config(self):
        out = align(self._rec(), self._rec(config={"cycles": 999}))
        assert out["mode"] == "config"
        assert any("configs differ" in n for n in out["notes"])

    def test_mixed(self):
        out = align(self._rec(seed=0),
                    self._rec(seed=1, config={"cycles": 999}))
        assert out["mode"] == "mixed"


class TestSignificance:
    def _fleet_pair(self, latency_b, std=5.0):
        """Two hand-built seed-aligned fleet records whose only delta
        is ``stats.mean_latency`` (noise floor from ``seed_stats``)."""
        def rec(seed, latency):
            return build_run_record(
                "fleet", "buscom", config={"cycles": 100}, seed=seed,
                engine="vec", stats={"mean_latency": latency},
                seed_stats={"mean_latency": {
                    "count": 4, "mean": latency, "std": std,
                    "min": latency - std, "max": latency + std}})
        return rec(0, 100.0), rec(1, latency_b)

    def test_sub_noise_delta_never_flagged(self):
        a, b = self._fleet_pair(101.0)
        doc = diff_runs(a, b)
        assert doc["alignment"]["mode"] == "seed"
        assert doc["significant"] == 0 and doc["regressions"] == []

    def test_seed_budget_never_flags_any_increase(self):
        """The seed default (rel=1.0 on the larger value) can never be
        exceeded by same-sign metrics — seed pairs are informational."""
        a, b = self._fleet_pair(450.0)
        doc = diff_runs(a, b)
        assert doc["significant"] == 0 and doc["regressions"] == []
        # the delta is still *reported*, just not significant
        assert any(r["metric"] == "stats.mean_latency"
                   for r in doc["deltas"])

    def test_gross_delta_is_flagged_under_explicit_budgets(self):
        a, b = self._fleet_pair(450.0)
        doc = diff_runs(a, b, budgets=[Budget("stats.*", rel=0.25, abs=4.0),
                                 Budget("*", ignore=True)])
        assert doc["significant"] == 1
        assert doc["regressions"] == ["stats.mean_latency"]

    def test_improvement_is_significant_but_not_regression(self):
        a, b = self._fleet_pair(10.0)
        doc = diff_runs(a, b, budgets=[Budget("stats.*", rel=0.25, abs=4.0),
                                 Budget("*", ignore=True)])
        assert doc["significant"] == 1 and doc["regressions"] == []

    def test_seed_std_raises_the_floor(self):
        budgets = [Budget("stats.*", abs=4.0, sigma=6.0),
                   Budget("*", ignore=True)]
        # delta 250; 6 sigma = 300 with std=50 -> quiet
        a, b = self._fleet_pair(350.0, std=50.0)
        assert diff_runs(a, b, budgets=budgets)["significant"] == 0
        # same delta with std=5 -> 6 sigma = 30 -> flagged
        a, b = self._fleet_pair(350.0, std=5.0)
        assert diff_runs(a, b, budgets=budgets)["significant"] >= 1

    def test_budget_ignore_and_matching(self):
        budgets = [Budget("kernel.*", ignore=True), Budget("*")]
        rows = compare_metrics({"kernel": {"ticks": 10}, "stats": {}},
                               {"kernel": {"ticks": 99}, "stats": {}},
                               budgets)
        # ignored metrics stay informational: reported, never flagged
        assert [r["metric"] for r in rows] == ["kernel.ticks"]
        assert not rows[0]["significant"] and rows[0]["floor"] is None
        assert any(b.ignore for b in DEFAULT_BUDGETS["engine"])


class TestRealPairs:
    def test_seed_pair_reports_zero_regressions(self):
        a = _seed_record("buscom", 0)
        b = _seed_record("buscom", 1)
        doc = diff_runs(a, b)
        assert doc["schema"] == DIFF_SCHEMA
        assert doc["alignment"]["mode"] == "seed"
        assert doc["significant"] == 0 and doc["regressions"] == []

    def test_engine_pair_is_fully_quiet(self):
        a = _seed_record("dynoc", 5, engine="object")
        b = _seed_record("dynoc", 5, engine="vec")
        doc = diff_runs(a, b)
        assert doc["alignment"]["mode"] == "engine"
        assert doc["significant"] == 0

    def test_injected_slowdown_attributed_to_right_segment(self):
        """Fatter payloads on the shared buses must show up as bus
        slot_wait time, not some unrelated segment."""
        a = _seed_record("buscom", 3, payload=64)
        b = _seed_record("buscom", 3, payload=1024)
        doc = diff_runs(a, b)
        assert doc["alignment"]["mode"] == "config"
        assert doc["significant"] > 0
        segments = doc["attribution"]["segments"]
        assert segments, "latency regression must produce attribution"
        top_kinds = {s["segment"] for s in segments[:5]}
        assert "slot_wait" in top_kinds
        links = doc["attribution"]["links"]
        assert any(row["link"].startswith("buscom.bus")
                   and row["busy_delta"] > 0 for row in links)
        summary = " ".join(doc["attribution_summary"])
        assert "slot_wait" in summary
        rendered = render_diff(doc)
        assert "config" in rendered and "slot_wait" in rendered

    def test_segment_deltas_partition_flow_latency_delta(self):
        """Per flow, the per-segment cycle deltas must sum exactly to
        the flow's end-to-end latency delta — attribution accounts for
        every cycle of the slowdown, no leaks, no double counting."""
        a = _seed_record("buscom", 3, payload=64)
        b = _seed_record("buscom", 3, payload=1024)
        attribution = attribute_latency(a, b)
        seg_sum = {}
        for seg in attribution["segments"]:
            key = (seg["sim"], seg["flow"])
            seg_sum[key] = seg_sum.get(key, 0) + seg["delta_cycles"]
        ja, jb = _journey_rows(a), _journey_rows(b)
        checked = 0
        for key in set(ja) & set(jb):
            total = (jb[key]["latency"]["total"]
                     - ja[key]["latency"]["total"])
            flow = (key[0], f"{key[1]}->{key[2]}")
            assert seg_sum.get(flow, 0) == total
            checked += 1
        assert checked > 0


class TestFlattening:
    def test_flatten_covers_all_observability_sections(self):
        doc = _seed_record("buscom", 0)
        flat = flatten_metrics(doc)
        assert any(p.startswith("stats.") for p in flat)
        assert any(p.startswith("kernel.") for p in flat)
        assert any(".flow." in p and p.endswith("latency.mean")
                   for p in flat)
        assert any(".link." in p and p.endswith("busy_cycles")
                   for p in flat)
        assert any(p.startswith("journeys.") for p in flat)
        assert all(isinstance(v, float) for v in flat.values())

    def test_identifier_keys_are_not_metrics(self):
        doc = _seed_record("buscom", 0)
        flat = flatten_metrics(doc)
        assert "seed" not in flat and "config.seed" not in flat
        assert not any(p.endswith(".seed") for p in flat)

    def test_identical_pair_diff_is_empty(self):
        doc = _seed_record("buscom", 0)
        out = diff_runs(doc, _seed_record("buscom", 0))
        assert out["alignment"]["mode"] == "identical"
        assert out["significant"] == 0 and out["deltas"] == []


def test_diff_of_mismatched_kinds_is_mixed_not_crash():
    a = build_run_record("experiment", "e1", config={}, stats={"v": 1})
    b = build_run_record("chaos", "c", config={}, stats={"v": 2})
    doc = diff_runs(a, b)
    assert doc["alignment"]["mode"] == "mixed"
