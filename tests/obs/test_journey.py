"""Message journeys: attribution, determinism and engine equivalence.

The load-bearing contracts from ``docs/observability.md``:

* journey records are **bit-identical** between the object and the vec
  engine under the same seed (stamp sites live on object-code paths
  both backends execute at identical cycles — the rule added to
  :mod:`repro.sim.vec.kernels`);
* a journeys-off run is bit-identical to a pre-journey run (the stats
  fingerprint must not move when a recorder attaches);
* sampling is a pure function of ``(seed, mid)`` — same records on
  every engine and rerun, lower rates sample subsets of higher rates;
* ``repro explain`` attributes >= 95% of measured per-flow latency to
  named segments on every architecture, residual always explicit.
"""

import json
import random

import pytest

from repro.arch import build_architecture
from repro.obs import (
    explain_experiment,
    to_chrome_trace,
    validate_journey,
)
from repro.obs.flows import FlowTelemetry
from repro.obs.journey import (
    JOURNEY_SCHEMA,
    JourneyRecorder,
    SEGMENT_KINDS,
    aggregate_flows,
    critical_path,
    flow_slowest_segments,
    sampled,
)
from repro.sim import Tracer
from repro.sim.vec import make_simulator
from tests.faults.scenarios import fault_scenario

ALL_ARCHS = ("dynoc", "staticmesh", "sharedbus", "buscom", "rmboc",
             "conochi")


def _drive(key, engine, journeys=True, telemetry=False, rate=1.0,
           jseed=0, seed=7, sends=150, cycles=2_500):
    """The golden-equivalence workload with a journey recorder attached."""
    sim = make_simulator(name=f"{key}-{engine}", engine=engine)
    if telemetry:
        FlowTelemetry().attach(sim)
    if journeys:
        sim.journey = JourneyRecorder(seed=jseed, rate=rate)
    arch = build_architecture(key, sim=sim, seed=seed)
    mods = list(arch.modules)
    rng = random.Random(seed)
    t = 0
    for _ in range(sends):
        t += rng.randrange(1, 25)
        src, dst = rng.sample(mods, 2)
        payload = rng.choice([4, 16, 64, 256])
        sim.at(t, lambda _s, a=arch, s=src, d=dst, p=payload:
               a.ports[s].send(d, p))
    sim.run(cycles)
    return sim


def _journey_fp(sim):
    return json.dumps(sim.journey.snapshot(), sort_keys=True)


def _stats_fp(sim):
    return json.dumps(sim.stats.snapshot(), sort_keys=True, default=str)


# ----------------------------------------------------------------------
# sampling
# ----------------------------------------------------------------------
class TestSampling:
    def test_pure_function_of_seed_and_mid(self):
        picks = [sampled(3, mid, 0.4) for mid in range(200)]
        assert picks == [sampled(3, mid, 0.4) for mid in range(200)]
        assert any(picks) and not all(picks)

    def test_rate_extremes(self):
        assert all(sampled(0, mid, 1.0) for mid in range(50))
        assert not any(sampled(0, mid, 0.0) for mid in range(50))

    def test_lower_rate_samples_subset(self):
        lo = {mid for mid in range(500) if sampled(9, mid, 0.2)}
        hi = {mid for mid in range(500) if sampled(9, mid, 0.7)}
        assert lo and lo < hi

    def test_recorder_rejects_bad_config(self):
        with pytest.raises(ValueError):
            JourneyRecorder(rate=1.5)
        with pytest.raises(ValueError):
            JourneyRecorder(max_records=0)

    def test_max_records_cap_keeps_first(self):
        class _Msg:
            def __init__(self, mid):
                self.mid = mid
                self.src, self.dst, self.payload_bytes = "a", "b", 4

        jr = JourneyRecorder(max_records=3)
        for mid in range(5):
            jr.start(_Msg(mid), cycle=mid)
        assert sorted(jr.records) == [0, 1, 2]
        assert jr.capped == 2


# ----------------------------------------------------------------------
# cursor stamping semantics
# ----------------------------------------------------------------------
class TestStamping:
    def _one_record(self):
        class _Msg:
            mid, src, dst, payload_bytes = 1, "a", "b", 64

        jr = JourneyRecorder()
        jr.start(_Msg, cycle=10)
        return jr

    def test_segments_contiguous_and_clipped(self):
        jr = self._one_record()
        jr.stamp_to(1, "arbitration_wait", 15)
        jr.stamp_to(1, "link_transit", 25)
        jr.stamp_to(1, "link_transit", 20)   # behind cursor: no-op
        jr.stamp_to(1, "delivery", 27)
        rec = jr.records[1]
        assert rec.segments == [["arbitration_wait", 10, 15],
                                ["link_transit", 15, 25],
                                ["delivery", 25, 27]]
        assert rec.attributed == 17

    def test_adjacent_same_kind_merges(self):
        jr = self._one_record()
        jr.stamp_to(1, "link_transit", 14)
        jr.stamp_to(1, "link_transit", 22)
        assert jr.records[1].segments == [["link_transit", 10, 22]]

    def test_residual_explicit(self):
        class _Msg:
            mid, src, dst, payload_bytes = 1, "a", "b", 64

        jr = self._one_record()
        jr.stamp_to(1, "link_transit", 20)
        jr.finalize(_Msg, cycle=23)
        rec = jr.records[1]
        assert rec.latency == 13
        assert rec.attributed == 10
        assert rec.residual == 3

    def test_unsampled_mid_ignored_everywhere(self):
        jr = JourneyRecorder()
        jr.stamp_to(99, "link_transit", 5)   # never started: no-op
        assert len(jr) == 0


# ----------------------------------------------------------------------
# engine equivalence + determinism (the tentpole contract)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("key", ALL_ARCHS)
def test_journey_records_identical_across_engines(key):
    obj = _drive(key, "object")
    vec = _drive(key, "vec")
    assert _journey_fp(obj) == _journey_fp(vec)
    assert _stats_fp(obj) == _stats_fp(vec)


@pytest.mark.parametrize("key", ("dynoc", "rmboc"))
def test_equivalence_with_journeys_and_telemetry(key):
    """Journeys + telemetry together must not split the engines."""
    obj = _drive(key, "object", telemetry=True)
    vec = _drive(key, "vec", telemetry=True)
    assert _journey_fp(obj) == _journey_fp(vec)
    assert (json.dumps(obj.telemetry.snapshot(obj.cycle), sort_keys=True,
                       default=str)
            == json.dumps(vec.telemetry.snapshot(vec.cycle),
                          sort_keys=True, default=str))


@pytest.mark.parametrize("key", ("sharedbus", "conochi"))
def test_same_seed_rerun_is_deterministic(key):
    assert _journey_fp(_drive(key, "object")) \
        == _journey_fp(_drive(key, "object"))


@pytest.mark.parametrize("key", ALL_ARCHS)
def test_journeys_off_stats_bit_identical(key):
    """Attaching a recorder must not perturb the simulation; not
    attaching one must cost nothing but a dead boolean test."""
    on = _drive(key, "object", journeys=True)
    off = _drive(key, "object", journeys=False)
    assert _stats_fp(on) == _stats_fp(off)


def test_sampled_run_records_subset_of_full_run():
    full = _drive("dynoc", "object", rate=1.0)
    part = _drive("dynoc", "object", rate=0.3)
    full_recs = full.journey.snapshot()["records"]
    part_recs = part.journey.snapshot()["records"]
    assert 0 < len(part_recs) < len(full_recs)
    for mid, rec in part_recs.items():
        assert full_recs[mid] == rec


# ----------------------------------------------------------------------
# attribution coverage (acceptance: >= 95% on every architecture)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("key", ALL_ARCHS)
def test_attribution_coverage_at_least_95_percent(key):
    sim = _drive(key, "object")
    rows = aggregate_flows(sim.journey)
    assert rows, f"{key}: no delivered journeys"
    total = sum(r["latency"]["total"] for r in rows)
    attributed = sum(r["attributed"] for r in rows)
    assert attributed / total >= 0.95, (
        f"{key}: only {attributed}/{total} cycles attributed")
    for row in rows:
        # residual is explicit, never silently dropped
        assert row["attributed"] + row["residual"] \
            == row["latency"]["total"]
        assert set(row["segments"]) <= set(SEGMENT_KINDS)
        assert row["slowest_segment"] in SEGMENT_KINDS


def test_critical_path_chain_in_time_order():
    sim = _drive("dynoc", "object")
    rec = max(sim.journey.delivered_records(), key=lambda r: r.latency)
    cp = critical_path(rec)
    assert cp["latency"] == rec.latency
    starts = [seg["start"] for seg in cp["chain"]]
    assert starts == sorted(starts)
    assert cp["dominant"] in SEGMENT_KINDS
    assert sum(s["cycles"] for s in cp["chain"]) + cp["residual"] \
        == cp["latency"]


def test_flow_slowest_segments_for_watch():
    sim = _drive("sharedbus", "object")
    slowest = flow_slowest_segments(sim.journey)
    assert slowest
    assert all(kind in SEGMENT_KINDS for kind in slowest.values())


# ----------------------------------------------------------------------
# fault linkage: drop -> retransmission chains
# ----------------------------------------------------------------------
def test_fault_drop_and_retransmission_linked():
    sim, arch, injector = fault_scenario("sharedbus")
    sim.tracer = Tracer()
    sim.journey = JourneyRecorder()
    sim.run(3_000)
    recs = sim.journey.records.values()
    dropped = [r for r in recs if r.dropped]
    copies = [r for r in recs if r.retrans_of is not None]
    assert dropped and copies
    for copy in copies:
        orig = sim.journey.records[copy.retrans_of]
        assert orig.dropped
        assert copy.fault is not None
        assert copy.fault["kind"] == "node_down"
        # the fault index is the shared key with the injector's records
        assert injector.records[copy.fault["index"]].kind.value \
            == "node_down"
    # every copy delivered its payload after the outage
    assert all(c.delivered >= 0 for c in copies)


def test_perfetto_export_links_journeys_and_faults():
    sim, arch, injector = fault_scenario("sharedbus")
    sim.tracer = Tracer()
    sim.journey = JourneyRecorder()
    sim.run(3_000)
    doc = to_chrome_trace(sim)
    evs = doc["traceEvents"]
    json.dumps(doc)  # must be JSON-serializable as exported

    flows = [e for e in evs if e.get("name") == "journey"
             and e["ph"] in ("s", "t", "f")]
    opened = {e["id"] for e in flows if e["ph"] == "s"}
    closed = {e["id"] for e in flows if e["ph"] == "f"}
    assert opened and opened == closed

    # a retransmission chain rides one arc: the copy reuses the
    # dropped original's flow id
    copy = next(r for r in sim.journey.records.values()
                if r.retrans_of is not None)
    arc = f"j1-{copy.retrans_of}"
    phases = [e["ph"] for e in flows if e["id"] == arc]
    assert phases[0] == "s" and phases[-1] == "f" and "t" in phases

    # the fault incident is one arc too: inject -> detect -> recover
    fault_arcs = [e for e in evs if e.get("name") == "fault-arc"]
    assert [e["ph"] for e in fault_arcs] == ["s", "t", "f"]
    outage = next(e for e in evs
                  if e.get("cat") == "faults" and e.get("ph") == "X"
                  and e["name"] == "outage")
    assert fault_arcs[0]["ts"] == outage["ts"]
    assert fault_arcs[-1]["ts"] == outage["ts"] + outage["dur"]


def test_journey_meta_in_trace_export():
    sim = _drive("dynoc", "object", rate=0.5)
    doc = to_chrome_trace(sim)
    meta = doc["otherData"]["simulators"][0]["journeys"]
    assert meta["records"] == len(sim.journey)
    assert meta["sampled_out"] == sim.journey.sampled_out


# ----------------------------------------------------------------------
# the repro.journey/1 document
# ----------------------------------------------------------------------
class TestJourneyDocument:
    def test_explain_experiment_validates(self):
        doc = explain_experiment("e1")
        assert doc["schema"] == JOURNEY_SCHEMA
        assert validate_journey(doc) == doc["total_flows"] > 0
        assert doc["coverage"] >= 0.95

    def test_engine_independent_document(self):
        obj = explain_experiment("e1")
        vec = explain_experiment("e1", engine="vec")
        # only the declared engine and the backends' simulator display
        # names may differ; every measured number must be identical
        obj["engine"] = vec["engine"] = None
        for doc in (obj, vec):
            for entry in doc["simulators"]:
                entry["sim"] = "-"
        assert json.dumps(obj, sort_keys=True) \
            == json.dumps(vec, sort_keys=True)

    def test_validator_rejects_broken_documents(self):
        doc = explain_experiment("e1")
        with pytest.raises(ValueError):
            validate_journey({**doc, "schema": "repro.journey/0"})
        bad = json.loads(json.dumps(doc))
        row = bad["simulators"][0]["flows"][0]
        row["segments"]["teleport"] = {"cycles": 1, "share": 0.1}
        with pytest.raises(ValueError):
            validate_journey(bad)
        bad2 = json.loads(json.dumps(doc))
        bad2["simulators"][0]["flows"][0]["residual"] += 1
        with pytest.raises(ValueError):
            validate_journey(bad2)
