"""Chrome trace-event / Perfetto export tests."""

import io
import json

import pytest

from repro.arch import build_architecture
from repro.obs import summarize_trace, to_chrome_trace, write_chrome_trace
from repro.obs.perfetto import _jsonable
from repro.sim import Simulator, Tracer


def _traced_sim():
    sim = Simulator(name="unit")
    sim.tracer = Tracer()
    sim.emit("src", "ping", n=1, at=(2, 3))
    sim.run(10)
    sim.span_event("src", "work", 2, 8, tag="t")
    return sim


class TestJsonable:
    def test_tuple_dict_keys_become_strings(self):
        assert _jsonable({(1, 2): "x"}) == {"(1, 2)": "x"}

    def test_tuples_and_sets_become_lists(self):
        assert _jsonable((1, 2)) == [1, 2]
        assert _jsonable({3}) == [3]

    def test_scalars_pass_through(self):
        for v in ("s", 3, 1.5, True, None):
            assert _jsonable(v) == v

    def test_fallback_is_str(self):
        class Odd:
            def __repr__(self):
                return "<odd>"

        assert _jsonable(Odd()) == "<odd>"


class TestToChromeTrace:
    def test_structure(self):
        doc = to_chrome_trace(_traced_sim())
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        phases = {ev["ph"] for ev in doc["traceEvents"]}
        assert phases == {"M", "i", "X"}

    def test_process_and_thread_metadata(self):
        doc = to_chrome_trace(_traced_sim())
        meta = [ev for ev in doc["traceEvents"] if ev["ph"] == "M"]
        names = {(ev["name"], ev["args"]["name"]) for ev in meta}
        assert ("process_name", "unit") in names
        assert ("thread_name", "src") in names

    def test_instant_and_span_events(self):
        doc = to_chrome_trace(_traced_sim())
        (inst,) = [ev for ev in doc["traceEvents"] if ev["ph"] == "i"]
        assert inst["name"] == "ping" and inst["ts"] == 0
        assert inst["args"] == {"n": 1, "at": [2, 3]}
        (span,) = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
        assert span["ts"] == 2 and span["dur"] == 6

    def test_kernel_metrics_in_other_data(self):
        doc = to_chrome_trace(_traced_sim())
        (entry,) = doc["otherData"]["simulators"]
        assert entry["final_cycle"] == 10
        kernel = entry["kernel"]
        assert kernel["cycles_stepped"] + kernel["ff_cycles_skipped"] == 10

    def test_untraced_sim_still_exports(self):
        sim = Simulator(name="bare")
        sim.run(5)
        doc = to_chrome_trace(sim)
        assert doc["otherData"]["simulators"][0]["final_cycle"] == 5
        assert all(ev["ph"] == "M" for ev in doc["traceEvents"])

    def test_multi_sim_distinct_pids(self):
        a, b = _traced_sim(), _traced_sim()
        doc = to_chrome_trace([a, b])
        pids = {ev["pid"] for ev in doc["traceEvents"]}
        assert pids == {1, 2}

    def test_json_serializable(self):
        json.dumps(to_chrome_trace(_traced_sim()))


class TestWriteChromeTrace:
    def test_to_path(self, tmp_path):
        out = tmp_path / "t.json"
        write_chrome_trace(str(out), _traced_sim())
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]

    def test_to_file_object(self):
        buf = io.StringIO()
        write_chrome_trace(buf, _traced_sim())
        assert json.loads(buf.getvalue())["traceEvents"]


class TestSummarizeTrace:
    def test_spans_and_events_ranked(self):
        text = summarize_trace(_traced_sim())
        assert "src.work" in text
        assert "src.ping" in text

    def test_empty_tracer_message(self):
        sim = Simulator()
        sim.tracer = Tracer()
        assert summarize_trace(sim) == "(no trace data recorded)"


class TestArchitectureRoundTrip:
    @pytest.mark.parametrize("key", ("rmboc", "buscom", "dynoc", "conochi"))
    def test_each_arch_exports_loadable_json(self, key):
        sim = Simulator(name=key)
        sim.tracer = Tracer()
        arch = build_architecture(key, sim=sim)
        mods = list(arch.modules)
        arch.ports[mods[0]].send(mods[1], 64)
        arch.run_to_completion()
        doc = json.loads(json.dumps(to_chrome_trace(sim)))
        assert any(ev["ph"] == "i" for ev in doc["traceEvents"])

    def test_rmboc_circuit_spans_exported(self):
        sim = Simulator(name="rmboc")
        sim.tracer = Tracer()
        arch = build_architecture("rmboc", sim=sim)
        arch.ports["m0"].send("m1", 64)
        arch.run_to_completion()
        doc = to_chrome_trace(sim)
        spans = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
        assert {"circuit", "setup"} <= {ev["name"] for ev in spans}
