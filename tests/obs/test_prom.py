"""Prometheus exposition / JSON snapshot export tests."""

import pytest

from repro.arch import build_architecture
from repro.obs import (
    sanitize_metric_name,
    to_json_snapshot,
    to_prometheus_text,
    validate_exposition,
)
from repro.sim import Simulator


def _measured_sim(profile=False):
    sim = Simulator(name="unit", profile=profile)
    sim.stats.counter("model.msgs").inc(3)
    sim.stats.histogram("model.latency").extend([1, 2, 3, 4])
    sim.stats.series("model.load").record(0, 0.5)
    sim.run(10)
    return sim


class TestSanitizeMetricName:
    def test_dots_become_underscores(self):
        assert sanitize_metric_name("rmboc.channels.requested") == \
            "rmboc_channels_requested"

    def test_leading_digit_prefixed(self):
        assert sanitize_metric_name("9lives")[0] == "_"

    def test_valid_name_unchanged(self):
        assert sanitize_metric_name("kernel_sleeps") == "kernel_sleeps"


class TestToPrometheusText:
    def test_validates_and_has_expected_families(self):
        text = to_prometheus_text(_measured_sim())
        assert validate_exposition(text) > 10
        assert "repro_model_msgs_total 3" in text
        assert "repro_model_latency_count 4" in text
        assert 'quantile="0.95"' in text
        assert "repro_sim_final_cycle 10" in text
        assert "repro_kernel_cycles_stepped" in text

    def test_series_tail_with_cycle_label(self):
        text = to_prometheus_text(_measured_sim())
        assert 'repro_model_load_last{cycle="0"} 0.5' in text

    def test_profile_only_when_enabled(self):
        assert "profile_seconds" not in to_prometheus_text(_measured_sim())
        sim = _measured_sim(profile=True)
        sim.step()
        text = to_prometheus_text(sim)
        assert "repro_profile_seconds" in text
        validate_exposition(text)

    def test_multi_sim_label(self):
        a, b = _measured_sim(), _measured_sim()
        b.name = "other"
        text = to_prometheus_text([a, b])
        assert 'sim="unit"' in text and 'sim="other"' in text
        validate_exposition(text)

    def test_namespace_override(self):
        text = to_prometheus_text(_measured_sim(), namespace="x")
        assert text.startswith("# HELP x_") or text.startswith("# TYPE x_")


class TestValidateExposition:
    def test_rejects_garbage_line(self):
        with pytest.raises(ValueError, match="not a valid sample"):
            validate_exposition("this is } not a metric\n")

    def test_rejects_bad_value(self):
        with pytest.raises(ValueError, match="unparseable value"):
            validate_exposition("ok_name not_a_number\n")

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="no samples"):
            validate_exposition("# HELP x y\n")

    def test_accepts_special_values(self):
        assert validate_exposition("a NaN\nb +Inf\nc{d=\"e\"} 1\n") == 3

    def test_accepts_braces_inside_label_values(self):
        # a naive {[^{}]*} body match rejected this legal sample
        assert validate_exposition('a{m="q{1}"} 1\n') == 1

    def test_accepts_escaped_specials_in_label_values(self):
        assert validate_exposition(
            'a{m="x\\"y"} 1\nb{m="x\\\\y"} 2\nc{m="x\\ny"} 3\n'
        ) == 3

    def test_rejects_unescaped_quote_in_label_value(self):
        with pytest.raises(ValueError, match="labels"):
            validate_exposition('a{m="x"y"} 1\n')

    def test_rejects_unescaped_backslash_in_label_value(self):
        with pytest.raises(ValueError, match="labels"):
            validate_exposition('a{m="x\\y"} 1\n')

    def test_rejects_unterminated_labels(self):
        with pytest.raises(ValueError):
            validate_exposition('a{m="x" 1\n')

    def test_accepts_timestamps(self):
        assert validate_exposition('a{m="x"} 1 1700000000\n') == 1


class TestLabelEscaping:
    def test_nasty_names_round_trip_through_validation(self):
        # module/sim names containing ", \ and newlines must come out
        # escaped so the exposition still parses
        sims = []
        for name in ('he said "hi"', "back\\slash", "new\nline"):
            sim = Simulator(name=name)
            sim.stats.counter("m").inc()
            sims.append(sim)
        text = to_prometheus_text(sims)
        assert validate_exposition(text) > 0
        assert '\\"hi\\"' in text
        assert "back\\\\slash" in text
        assert "new\\nline" in text


class TestToJsonSnapshot:
    def test_sections(self):
        snap = to_json_snapshot(_measured_sim())
        (entry,) = snap["simulators"]
        assert set(entry) >= {"name", "final_cycle", "fast_path", "stats",
                              "kernel", "tick_counts"}
        assert "profile" not in entry

    def test_profile_section_when_enabled(self):
        sim = _measured_sim(profile=True)
        sim.step()
        (entry,) = to_json_snapshot(sim)["simulators"]
        assert "profile" in entry


class TestArchitectureExport:
    @pytest.mark.parametrize("key", ("rmboc", "buscom", "dynoc", "conochi"))
    def test_each_arch_exposition_validates(self, key):
        sim = Simulator(name=key)
        arch = build_architecture(key, sim=sim)
        mods = list(arch.modules)
        arch.ports[mods[0]].send(mods[1], 64)
        arch.run_to_completion()
        assert validate_exposition(to_prometheus_text(sim)) > 0


class TestTelemetryExport:
    @pytest.mark.parametrize(
        "key",
        ("rmboc", "buscom", "dynoc", "conochi", "sharedbus", "staticmesh"),
    )
    def test_flow_and_link_series_per_arch(self, key):
        from repro.obs import AlertEngine, FlowTelemetry

        sim = Simulator(name=key)
        arch = build_architecture(key, sim=sim)
        tel = FlowTelemetry()
        tel.engine = AlertEngine()
        tel.attach(sim)
        mods = list(arch.modules)
        for _ in range(4):
            arch.ports[mods[0]].send(mods[1], 64)
        arch.run_to_completion()
        text = to_prometheus_text(sim)
        assert validate_exposition(text) > 0
        assert "repro_flow_latency_cycles" in text
        assert f'src="{mods[0]}"' in text
        assert "repro_link_utilization" in text
        assert "repro_alert_fired_total" in text
        assert "repro_alert_evaluations_total" in text

    def test_bucketed_histogram_sum_exported(self):
        # the summary series must come from the exact aggregates, not
        # from the (dict-shaped) bucketed snapshot state
        sim = Simulator(name="b")
        h = sim.stats.histogram("long.tail", mode="bucketed", exact_cap=4)
        h.extend(range(1, 11))
        text = to_prometheus_text(sim)
        assert validate_exposition(text) > 0
        assert "repro_long_tail_count 10" in text
        assert "repro_long_tail_sum 55" in text
