"""Unit tests for the per-flow/per-link telemetry collector."""

import pytest

from repro.obs import FlowTelemetry, merge_snapshots
from repro.obs.flows import FlowStats, LinkStats
from repro.sim import Simulator


class TestFlowStats:
    def test_record_tracks_volume_and_latency(self):
        f = FlowStats("a", "b")
        f.record(10, payload_bytes=64)
        f.record(14, payload_bytes=64)
        assert f.messages == 2
        assert f.bytes == 128
        assert f.latency.count == 2
        assert f.latency.max == 14

    def test_jitter_needs_two_deliveries(self):
        f = FlowStats("a", "b")
        f.record(10)
        assert f.jitter.count == 0
        f.record(16)
        assert f.jitter.count == 1
        assert f.jitter.max == 6

    def test_as_dict_shape(self):
        f = FlowStats("a", "b")
        f.record(5, payload_bytes=8)
        d = f.as_dict()
        assert d["src"] == "a" and d["dst"] == "b"
        assert d["latency"]["count"] == 1
        assert "p99" in d["latency"] and "p99" in d["jitter"]


class TestLinkStats:
    def test_utilization_within_window(self):
        ln = LinkStats("l", window=100)
        for cycle in range(0, 50):
            ln.note_busy(cycle)
        assert ln.utilization(50) == 1.0
        assert ln.busy_cycles == 50

    def test_windows_close_into_bounded_series(self):
        ln = LinkStats("l", window=10, series_len=4)
        for cycle in range(0, 200, 2):  # 50% duty over 20 windows
            ln.note_busy(cycle)
        assert len(ln.series) == 4  # ring bounded
        starts = [s for s, _ in ln.series]
        assert starts == sorted(starts)
        for _, util in ln.series:
            assert util == pytest.approx(0.5)

    def test_queue_watermark_latches_peak(self):
        ln = LinkStats("l")
        ln.note_queue_depth(3)
        ln.note_queue_depth(9)
        ln.note_queue_depth(1)
        assert ln.queue_depth == 1
        assert ln.queue_watermark == 9

    def test_zero_wait_not_a_stall(self):
        ln = LinkStats("l")
        ln.note_wait(5, 0)
        assert ln.stalls == 0
        ln.note_wait(6, 4)
        assert ln.stalls == 1
        assert ln.wait.max == 4

    def test_invalid_window_raises(self):
        with pytest.raises(ValueError):
            LinkStats("l", window=0)


class TestFlowTelemetry:
    def test_attach_sets_simulator_flags(self):
        sim = Simulator(name="t")
        assert sim.telemetry is None and not sim.telemetering
        tel = FlowTelemetry().attach(sim)
        assert sim.telemetry is tel and sim.telemetering
        sim.telemetry = None
        assert not sim.telemetering

    def test_flows_and_links_created_on_demand(self):
        tel = FlowTelemetry()
        tel.record_flow(10, "a", "b", 5)
        tel.link_busy(10, "x", 2)
        tel.backpressure(11, "x", 3)
        tel.queue_depth(12, "y", 7)
        tel.count(13, "evt")
        assert ("a", "b") in tel.flows
        assert set(tel.links) == {"x", "y"}
        assert tel.counters == {"evt": 1}

    def test_telemetry_never_touches_sim_stats(self):
        sim = Simulator(name="t")
        before = sim.stats.snapshot()
        tel = FlowTelemetry().attach(sim)
        tel.record_flow(1, "a", "b", 5)
        tel.link_busy(1, "x")
        tel.record_quiesce(2, 100)
        assert sim.stats.snapshot() == before

    def test_lazy_eval_respects_interval(self):
        from repro.obs import AlertEngine

        tel = FlowTelemetry(eval_interval=100)
        tel.engine = AlertEngine(rules=[])
        tel.record_flow(0, "a", "b", 1)
        tel.record_flow(50, "a", "b", 1)  # within interval: no eval
        tel.record_flow(100, "a", "b", 1)
        assert tel.engine.evaluations == 2

    def test_snapshot_shape(self):
        tel = FlowTelemetry()
        tel.record_flow(5, "a", "b", 9, payload_bytes=4)
        tel.link_busy(5, "l")
        snap = tel.snapshot(now=5)
        assert snap["cycle"] == 5
        assert len(snap["flows"]) == 1 and len(snap["links"]) == 1
        assert "alerts" not in snap  # no engine attached

    def test_merge_snapshots_totals(self):
        a, b = FlowTelemetry(), FlowTelemetry()
        a.record_flow(1, "a", "b", 2)
        b.record_flow(1, "c", "d", 2)
        b.link_busy(1, "l")
        merged = merge_snapshots([a.snapshot(1), b.snapshot(1)])
        assert merged["total_flows"] == 2
        assert merged["total_links"] == 1
        assert merged["total_alerts"] == 0
