"""Watch dashboard: snapshot schema, rendering and the CLI loop."""

import io
import json

import pytest

from repro.cli import main
from repro.obs import (
    SNAPSHOT_SCHEMA,
    FlowTelemetry,
    collect_snapshot,
    render_dashboard,
    validate_snapshot,
    watch_experiment,
)
from repro.obs.session import ObservationSession
from repro.sim import Simulator


def _session_with_traffic():
    session = ObservationSession(trace=False, telemetry=True)
    with session:
        sim = Simulator(name="w")
        tel: FlowTelemetry = sim.telemetry
        tel.record_flow(10, "a", "b", 5, payload_bytes=64)
        tel.record_flow(20, "a", "b", 9, payload_bytes=64)
        tel.link_busy(20, "l0", 3)
        tel.queue_depth(21, "l0", 4)
        sim.run(32)
    return session


class TestCollectSnapshot:
    def test_document_validates(self):
        doc = collect_snapshot(_session_with_traffic(), "unit")
        assert doc["schema"] == SNAPSHOT_SCHEMA
        assert doc["experiment"] == "unit"
        assert doc["done"] is True
        assert validate_snapshot(doc) == 1
        assert doc["total_flows"] == 1
        assert doc["total_links"] == 1

    def test_skips_sims_without_telemetry(self):
        session = _session_with_traffic()
        with session:
            Simulator(name="bare").telemetry = None
        doc = collect_snapshot(session, "unit")
        assert validate_snapshot(doc) == 1


class TestValidateSnapshot:
    def _doc(self):
        return collect_snapshot(_session_with_traffic(), "unit")

    def test_rejects_wrong_schema(self):
        doc = self._doc()
        doc["schema"] = "repro.watch/999"
        with pytest.raises(ValueError, match="schema"):
            validate_snapshot(doc)

    def test_rejects_total_mismatch(self):
        doc = self._doc()
        doc["total_flows"] += 1
        with pytest.raises(ValueError, match="total_flows"):
            validate_snapshot(doc)

    def test_rejects_out_of_range_utilization(self):
        doc = self._doc()
        doc["simulators"][0]["links"][0]["utilization"] = 1.5
        with pytest.raises(ValueError, match="utilization"):
            validate_snapshot(doc)

    def test_rejects_alert_missing_fields(self):
        doc = self._doc()
        doc["alerts"].append({"rule": "r"})
        with pytest.raises(ValueError, match="alert missing"):
            validate_snapshot(doc)


class TestRenderDashboard:
    def test_shows_flows_links_and_quiet_footer(self):
        doc = collect_snapshot(_session_with_traffic(), "unit")
        text = render_dashboard(doc)
        assert "repro watch — unit" in text
        assert "w:a->b" in text
        assert "w:l0" in text
        assert "no alerts fired" in text

    def test_truncates_to_max_rows(self):
        session = ObservationSession(trace=False, telemetry=True)
        with session:
            sim = Simulator(name="w")
            for i in range(6):
                sim.telemetry.record_flow(1, f"s{i}", "d", i + 1)
        text = render_dashboard(collect_snapshot(session, "u"), max_rows=2)
        assert "... 4 more flows" in text

    def test_lists_fired_alerts(self):
        doc = collect_snapshot(_session_with_traffic(), "unit")
        doc["alerts"] = [{"rule": "r", "cycle": 7, "severity": "warning",
                          "message": "m"}]
        doc["total_alerts"] = 1
        text = render_dashboard(doc)
        assert "! cycle" in text and "[warning] r: m" in text
        assert "no alerts fired" not in text


class TestWatchExperiment:
    def test_once_mode_emits_one_valid_json_document(self):
        buf = io.StringIO()
        result, doc = watch_experiment("e1", once=True, json_out=True,
                                       stream=buf)
        assert result is not None
        assert validate_snapshot(doc) >= 1
        parsed = json.loads(buf.getvalue())
        assert parsed["schema"] == SNAPSHOT_SCHEMA
        assert parsed["done"] is True
        assert parsed["total_flows"] >= 1

    def test_live_mode_final_snapshot_matches_once(self):
        buf = io.StringIO()
        _, doc = watch_experiment("e1", interval=0.01, stream=buf,
                                  clear=False)
        assert validate_snapshot(doc) >= 1
        assert doc["done"] is True
        assert "repro watch — e1" in buf.getvalue()

    def test_unknown_experiment_raises_keyerror(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            watch_experiment("zz", once=True, stream=io.StringIO())


class TestWatchCli:
    def test_once_json_exit_zero(self, capsys):
        rc = main(["watch", "e1", "--once", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert validate_snapshot(doc) >= 1

    def test_once_dashboard(self, capsys):
        rc = main(["watch", "e1", "--once", "--rows", "3"])
        assert rc == 0
        assert "repro watch — e1" in capsys.readouterr().out

    def test_unknown_experiment_exit_two(self, capsys):
        assert main(["watch", "zz", "--once"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestProgressCallback:
    def test_run_jobs_accepts_callable_progress(self):
        from repro.analysis.parallel import Job, run_jobs

        notes = []
        run_jobs([Job("e1")], max_workers=0, use_cache=False,
                 progress=notes.append)
        assert notes and all(isinstance(n, str) for n in notes)
        assert any("e1" in n for n in notes)
