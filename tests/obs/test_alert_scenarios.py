"""End-to-end alert scenarios: one crafted congestion case per
architecture that must fire its expected rule, a quiet case that must
not, and the golden-equivalence guarantee that telemetry never changes
model-visible state.
"""

import json

import pytest

from repro.arch import build_architecture
from repro.fabric.geometry import Rect
from repro.obs import (
    AlertEngine,
    AlertRule,
    FlowTelemetry,
    to_chrome_trace,
    to_prometheus_text,
    validate_exposition,
)
from repro.sim import Simulator, Tracer

ARCHS = ("rmboc", "buscom", "dynoc", "conochi", "sharedbus", "staticmesh")


# ----------------------------------------------------------------------
# traffic drivers: each builds its architecture on `sim` and pushes it
# into the congestion regime its alert rule watches for
# ----------------------------------------------------------------------
def _drive_dynoc(sim):
    """A wall of logic between src and dst: every packet detours."""
    arch = build_architecture("dynoc", num_modules=0, mesh=(9, 7), sim=sim)
    arch.attach("src", rect=Rect(0, 3, 1, 1))
    arch.attach("dst", rect=Rect(8, 3, 1, 1))
    arch.attach("wall", rect=Rect(4, 1, 3, 5))
    for _ in range(40):
        arch.ports["src"].send("dst", 16)
    arch.run_to_completion()


def _drive_buscom(sim):
    """Dynamic segment too short for even one payload byte: every
    granted dynamic slot overruns while bulk traffic stays queued."""
    arch = build_architecture("buscom", num_modules=4, sim=sim,
                              dynamic_segment_cycles=2)
    mods = list(arch.modules)
    for i, src in enumerate(mods):
        for _ in range(8):
            arch.ports[src].send(mods[(i + 1) % len(mods)], 200)
    sim.run(4_000)


def _drive_rmboc(sim):
    """All-to-all bursts oversubscribe the segment lanes: senders
    back off and retry."""
    arch = build_architecture("rmboc", num_modules=4, sim=sim)
    _all_to_all(arch, repeats=4, payload=256)
    arch.run_to_completion()


def _drive_conochi(sim):
    """Burst arrival floods the switch fabric's input queue."""
    arch = build_architecture("conochi", num_modules=4, sim=sim)
    _all_to_all(arch, repeats=6, payload=128)
    arch.run_to_completion()


def _drive_sharedbus(sim):
    """One bus, every module transmitting: deep arbiter queue."""
    arch = build_architecture("sharedbus", num_modules=4, sim=sim)
    _all_to_all(arch, repeats=4, payload=128)
    arch.run_to_completion()


def _drive_staticmesh(sim):
    """All-to-all on a 3x3 mesh: contention drives p99 latency up."""
    arch = build_architecture("staticmesh", num_modules=9, sim=sim)
    _all_to_all(arch, repeats=1, payload=64)
    arch.run_to_completion()


def _all_to_all(arch, repeats, payload):
    mods = list(arch.modules)
    for src in mods:
        for dst in mods:
            if src != dst:
                for _ in range(repeats):
                    arch.ports[src].send(dst, payload)


#: architecture -> (driver, extra rules beyond the defaults, rule that
#: must fire).  dynoc/buscom exercise the canonical default rules; the
#: others use custom rules over their own congestion signals.
SCENARIOS = {
    "dynoc": (_drive_dynoc, None, "detour-storm"),
    "buscom": (_drive_buscom, None, "tdma-slot-overrun"),
    "rmboc": (
        _drive_rmboc,
        [AlertRule("rmboc-backoff", "counter:rmboc.blocked", 20)],
        "rmboc-backoff",
    ),
    "conochi": (
        _drive_conochi,
        [AlertRule("conochi-queue", "queue_depth", 8)],
        "conochi-queue",
    ),
    "sharedbus": (
        _drive_sharedbus,
        [AlertRule("sharedbus-queue", "queue_depth", 8)],
        "sharedbus-queue",
    ),
    "staticmesh": (
        _drive_staticmesh,
        [AlertRule("mesh-latency", "flow_p99_latency", 30)],
        "mesh-latency",
    ),
}


def _run_congested(key, telemetry=True, trace=False):
    drive, extra, _ = SCENARIOS[key]
    sim = Simulator(name=key)
    if trace:
        sim.tracer = Tracer()
    if telemetry:
        rules = None if extra is None else list(extra)
        tel = FlowTelemetry().attach(sim)
        tel.engine = AlertEngine(rules=rules)
    drive(sim)
    if telemetry:
        sim.telemetry.evaluate_now(sim.cycle)
    return sim


class TestCongestionScenarios:
    @pytest.mark.parametrize("key", sorted(SCENARIOS))
    def test_expected_rule_fires(self, key):
        expected = SCENARIOS[key][2]
        sim = _run_congested(key)
        fired = {a.rule for a in sim.telemetry.engine.alerts}
        assert expected in fired

    @pytest.mark.parametrize("key", ("dynoc", "buscom"))
    def test_default_ruleset_alone_suffices(self, key):
        # the canonical shipped rules catch these without any tuning
        sim = _run_congested(key)
        assert SCENARIOS[key][1] is None
        assert sim.telemetry.engine.alerts


class TestQuietScenarios:
    @pytest.mark.parametrize("key", ARCHS)
    def test_light_traffic_fires_nothing(self, key):
        sim = Simulator(name=key)
        tel = FlowTelemetry().attach(sim)
        tel.engine = AlertEngine()  # full default rule set
        arch = build_architecture(key, sim=sim)
        mods = list(arch.modules)
        for _ in range(4):
            arch.ports[mods[0]].send(mods[1], 64)
        arch.run_to_completion()
        tel.evaluate_now(sim.cycle)
        assert tel.engine.alerts == []
        assert tel.engine.evaluations > 0  # rules did run
        assert tel.flows  # telemetry did observe the traffic


class TestGoldenEquivalence:
    @pytest.mark.parametrize("key", sorted(SCENARIOS))
    def test_telemetry_does_not_change_model_state(self, key):
        bare = Simulator(name=key)
        SCENARIOS[key][0](bare)
        observed = _run_congested(key, trace=True)
        assert observed.cycle == bare.cycle
        assert observed.stats.snapshot() == bare.stats.snapshot()


class TestAlertsReachBothExporters:
    def test_detour_storm_in_prometheus_and_perfetto(self):
        sim = _run_congested("dynoc", trace=True)

        text = to_prometheus_text(sim)
        assert validate_exposition(text) > 0
        fired = [ln for ln in text.splitlines()
                 if ln.startswith("repro_alert_fired_total")
                 and 'rule="detour-storm"' in ln]
        assert fired and float(fired[0].rsplit(" ", 1)[1]) >= 1

        doc = to_chrome_trace(sim)
        spans = [ev for ev in doc["traceEvents"]
                 if ev.get("cat") == "alerts"]
        assert any(ev["name"] == "detour-storm" for ev in spans)
        # the snapshot riding in otherData agrees
        meta = doc["otherData"]["simulators"][0]["telemetry"]
        assert any(a["rule"] == "detour-storm"
                   for a in meta["alerts"]["alerts"])
        json.dumps(doc)  # remains serializable with telemetry attached
