"""CLI observability subcommands: repro trace / repro profile."""

import json

import pytest

from repro.cli import main
from repro.obs import validate_exposition


class TestTraceCommand:
    def test_writes_loadable_perfetto_json(self, tmp_path, capsys):
        out = tmp_path / "t.json"
        rc = main(["trace", "e1", "-o", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]
        assert {"traceEvents", "displayTimeUnit", "otherData"} == set(doc)
        text = capsys.readouterr().out
        assert "perfetto" in text
        assert "span" in text or "event" in text

    def test_prom_and_profile_options(self, tmp_path, capsys):
        out = tmp_path / "t.json"
        prom = tmp_path / "m.prom"
        rc = main(["trace", "e1", "-o", str(out), "--prom", str(prom),
                   "--profile"])
        assert rc == 0
        assert validate_exposition(prom.read_text()) > 0
        assert "profile_seconds" in prom.read_text()
        doc = json.loads(out.read_text())
        assert "profile" in doc["otherData"]["simulators"][0]

    def test_unknown_experiment_fails(self, tmp_path, capsys):
        rc = main(["trace", "zz", "-o", str(tmp_path / "t.json")])
        assert rc == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestProfileCommand:
    def test_renders_buckets_and_kernel_metrics(self, tmp_path, capsys):
        rc = main(["profile", "e1", "--json", str(tmp_path / "p.json"),
                   "--prom", str(tmp_path / "p.prom")])
        assert rc == 0
        text = capsys.readouterr().out
        assert "bucket" in text and "share" in text
        assert "cycles_stepped" in text
        snap = json.loads((tmp_path / "p.json").read_text())
        assert all("profile" in e for e in snap["simulators"])
        assert validate_exposition((tmp_path / "p.prom").read_text()) > 0

    def test_unknown_experiment_fails(self, capsys):
        assert main(["profile", "zz"]) == 2
