"""Run ledger: content addressing, determinism, validation, pruning.

The headline invariants from the paper-repro contract:

* same ``(kind, name, config, seed)`` ⇒ byte-identical canonical
  record (the wall-clock section is volatile and excluded), hence the
  same content-addressed run id;
* object vs vec engine ⇒ identical paper-table ``stats`` sections.
"""

import json
import math
import os
from dataclasses import dataclass

import pytest

from repro.analysis.batch import run_seed, run_seed_fleet
from repro.obs.ledger import (
    RUN_SCHEMA,
    LedgerError,
    RunLedger,
    build_run_record,
    canonical_bytes,
    config_hash,
    jsonable,
    ledger_enabled,
    ledgered_call,
    prune_tree,
    render_entries,
    render_run,
    run_id_of,
    validate_run,
)

#: small-but-nontrivial workload (matches tests/analysis/test_batch.py)
WORKLOAD = dict(cycles=3_000, bursts=2, burst_size=10, burst_gap=900,
                payloads=(64, 256))


def _ledgered_seed(arch="buscom", seed=0, engine="vec", **overrides):
    config = {**WORKLOAD, **overrides}
    _, rid = ledgered_call(
        lambda: run_seed(arch, seed, engine=engine, **config),
        kind="seed", name=arch, config=config, seed=seed, engine=engine)
    return rid


class TestContentAddressing:
    def test_same_seed_and_config_is_byte_identical(self):
        """Two independent runs of the same configuration produce the
        same canonical bytes — so the store collapses them to one id."""
        rid_a = _ledgered_seed(seed=3)
        rid_b = _ledgered_seed(seed=3)
        assert rid_a is not None and rid_a == rid_b
        doc = RunLedger().load(rid_a)
        assert doc["schema"] == RUN_SCHEMA
        # the run id really is the content hash of the canonical form
        assert run_id_of(doc) == rid_a
        # wall-clock is recorded but excluded from the canonical form
        assert "wall" in doc
        assert b'"wall"' not in canonical_bytes(doc)

    def test_different_seed_different_record(self):
        assert _ledgered_seed(seed=0) != _ledgered_seed(seed=1)

    def test_engine_pair_has_identical_stats_sections(self):
        obj = run_seed_fleet("dynoc", [5], engine="object", **WORKLOAD)
        vec = run_seed_fleet("dynoc", [5], engine="vec", **WORKLOAD)
        ledger = RunLedger()
        rec_o = ledger.load(obj.run_id)
        rec_v = ledger.load(vec.run_id)
        assert rec_o["config_hash"] == rec_v["config_hash"]
        stats_o = dict(rec_o["stats"], engine=None)
        stats_v = dict(rec_v["stats"], engine=None)
        assert stats_o == stats_v
        assert rec_o["seed_stats"] == rec_v["seed_stats"]

    def test_config_hash_excludes_seed_identity(self):
        base = config_hash("fleet", "buscom", {"cycles": 100})
        assert config_hash("fleet", "buscom",
                           {"cycles": 100, "seed": 7}) == base
        assert config_hash("fleet", "buscom",
                           {"cycles": 100, "seeds": [0, 1]}) == base
        assert config_hash("fleet", "buscom", {"cycles": 200}) != base


class TestStore:
    def test_sharded_layout_and_prefix_resolve(self):
        rid = _ledgered_seed()
        ledger = RunLedger()
        path = ledger.path_for(rid)
        assert os.path.isfile(path)
        assert os.path.basename(os.path.dirname(path)) == rid[:2]
        assert os.path.basename(path) == f"{rid}.json"
        assert ledger.resolve(rid[:6]) == rid
        with pytest.raises(LedgerError, match="no run matching"):
            ledger.resolve("ffffffffffffffff")
        with pytest.raises(LedgerError, match="empty"):
            ledger.resolve("")

    def test_store_is_idempotent(self):
        rec = build_run_record("experiment", "x", config={"a": 1},
                               stats={"v": 1.0})
        ledger = RunLedger()
        rid = ledger.store(rec)
        assert ledger.store(rec) == rid
        assert len(ledger) == 1

    def test_disabled_ledger_runs_plain(self, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", "0")
        assert not ledger_enabled()
        result, rid = ledgered_call(lambda: 41 + 1, kind="experiment",
                                    name="x", config={})
        assert result == 42 and rid is None
        assert len(RunLedger()) == 0

    def test_entries_newest_first_and_render(self):
        rid = _ledgered_seed()
        entries = RunLedger().entries()
        assert [e.run_id for e in entries] == [rid]
        listing = render_entries(entries)
        assert rid[:8] in listing and "seed" in listing
        assert "buscom" in render_run(RunLedger().load(rid))

    def test_gc_by_size_evicts_lru(self):
        old = _ledgered_seed(seed=0)
        new = _ledgered_seed(seed=1)
        ledger = RunLedger()
        stale = 1_000_000_000.0
        os.utime(ledger.path_for(old), (stale, stale))
        dry = ledger.gc(max_bytes=os.path.getsize(ledger.path_for(new)),
                        dry_run=True)
        assert len(dry.evicted) == 1 and len(ledger) == 2
        report = ledger.gc(
            max_bytes=os.path.getsize(ledger.path_for(new)))
        assert report.evicted == dry.evicted
        assert ledger.ids() == [new]
        assert "evicted" in report.render()

    def test_prune_tree_respects_age_and_suffix(self, tmp_path):
        root = tmp_path / "objects" / "ab"
        root.mkdir(parents=True)
        stale = 1_000_000_000.0
        victim = root / "old.pkl"
        victim.write_bytes(b"x" * 10)
        os.utime(victim, (stale, stale))
        survivor = root / "fresh.pkl"
        survivor.write_bytes(b"y" * 10)
        ignored = root / "notes.txt"
        ignored.write_text("keep")
        os.utime(ignored, (stale, stale))
        report = prune_tree([str(tmp_path / "objects")],
                            suffixes=(".pkl",), max_age_days=30)
        assert report.evicted == [str(victim)]
        assert not victim.exists()
        assert survivor.exists() and ignored.exists()


class TestValidateRun:
    def test_full_record_validates(self):
        doc = RunLedger().load(_ledgered_seed())
        assert validate_run(doc) >= 2  # kernel + telemetry at least

    def test_catches_config_tampering(self):
        doc = RunLedger().load(_ledgered_seed())
        doc["config"]["cycles"] = 999_999
        with pytest.raises(ValueError, match="config_hash"):
            validate_run(doc)

    def test_catches_missing_sections_and_bad_kind(self):
        with pytest.raises(ValueError, match="schema"):
            validate_run({"schema": "bogus/9"})
        doc = build_run_record("chaos", "c", config={}, stats={})
        doc["kind"] = "party"
        with pytest.raises(ValueError, match="kind"):
            validate_run(doc)

    def test_build_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown run kind"):
            build_run_record("party", "x", config={})


class TestJsonable:
    def test_non_finite_floats_become_strings(self):
        out = jsonable({"a": math.nan, "b": math.inf, "c": -math.inf})
        assert out == {"a": "nan", "b": "inf", "c": "-inf"}
        json.dumps(out)  # must be serializable

    def test_dataclasses_tuples_and_sets(self):
        @dataclass
        class Point:
            x: int
            y: int

        out = jsonable({"p": Point(1, 2), "t": (3, 4), "s": {5}})
        assert out == {"p": {"x": 1, "y": 2}, "t": [3, 4], "s": [5]}


class TestFleetLedgering:
    def test_fleet_record_aggregates_per_seed_records(self):
        fleet = run_seed_fleet("sharedbus", [0, 1], engine="vec",
                               **WORKLOAD)
        assert fleet.run_id is not None
        assert len(fleet.seed_run_ids) == 2
        ledger = RunLedger()
        rec = ledger.load(fleet.run_id)
        assert rec["kind"] == "fleet"
        assert rec["seed_run_ids"] == fleet.seed_run_ids
        assert rec["stats"]["delivered_total"] == fleet.delivered_total
        assert [p["seed"] for p in rec["stats"]["per_seed"]] == [0, 1]
        spread = rec["seed_stats"]["mean_latency"]
        assert spread["count"] == 2 and spread["std"] >= 0.0
        for rid in fleet.seed_run_ids:
            assert ledger.load(rid)["kind"] == "seed"

    def test_fleet_ledger_opt_out(self):
        fleet = run_seed_fleet("sharedbus", [0], engine="vec",
                               ledger=False, **WORKLOAD)
        assert fleet.run_id is None and fleet.seed_run_ids == []
        assert len(RunLedger()) == 0
