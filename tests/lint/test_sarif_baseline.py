"""SARIF export, suppressions, baseline workflow, and CLI exit codes."""

import json
import os
import textwrap

import pytest

from repro.lint import (
    ALL_RULES,
    Finding,
    Severity,
    apply_baseline,
    dedupe_findings,
    load_baseline,
    scan_suppressions,
    to_sarif,
    validate_sarif,
    write_baseline,
)
from repro.lint.baseline import (
    BaselineError,
    DEFAULT_DIR_POLICIES,
    apply_dir_policies,
    policy_for,
)


def mk(rule="QL007", path="src/a.py", line=10, symbol="A.tick",
       severity=Severity.ERROR, message="boom"):
    return Finding(rule, severity, path, line, symbol, message)


# ----------------------------------------------------------------------
# severity ordering and dedupe (satellite 1)
# ----------------------------------------------------------------------
class TestSeverityAndDedupe:
    def test_rank_is_total_ordered_not_string_ordered(self):
        # string compare would give "error" < "info"
        assert Severity.ERROR.rank > Severity.WARNING.rank
        assert Severity.WARNING.rank > Severity.INFO.rank
        assert sorted(Severity, key=lambda s: s.rank) == [
            Severity.INFO, Severity.WARNING, Severity.ERROR]

    def test_sarif_levels(self):
        assert Severity.INFO.sarif_level == "note"
        assert Severity.WARNING.sarif_level == "warning"
        assert Severity.ERROR.sarif_level == "error"

    def test_dedupe_by_rule_file_line_symbol(self):
        a = mk(message="via path one")
        b = mk(message="via path two")      # same key, different message
        c = mk(line=11)                     # different line survives
        assert dedupe_findings([a, b, c]) == [a, c]


# ----------------------------------------------------------------------
# SARIF
# ----------------------------------------------------------------------
class TestSarif:
    def test_export_is_valid_and_indexed(self):
        findings = [mk(), mk(rule="QL010", severity=Severity.WARNING,
                             line=3)]
        doc = to_sarif(findings, ALL_RULES)
        assert validate_sarif(doc) == []
        run = doc["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        ids = [r["id"] for r in rules]
        assert ids == sorted(ids)
        for result in run["results"]:
            assert ids[result["ruleIndex"]] == result["ruleId"]
        levels = {r["ruleId"]: r["level"] for r in run["results"]}
        assert levels == {"QL007": "error", "QL010": "warning"}

    def test_fingerprints_are_line_independent(self):
        doc1 = to_sarif([mk(line=10)], ALL_RULES)
        doc2 = to_sarif([mk(line=99)], ALL_RULES)
        fp = "partialFingerprints"
        assert (doc1["runs"][0]["results"][0][fp]
                == doc2["runs"][0]["results"][0][fp])

    def test_validator_rejects_structural_damage(self):
        doc = to_sarif([mk()], ALL_RULES)
        assert validate_sarif({"version": "2.0.0"})  # wrong version
        broken = json.loads(json.dumps(doc))
        broken["runs"][0]["results"][0]["ruleIndex"] = 999
        assert any("ruleIndex" in p for p in validate_sarif(broken))
        broken = json.loads(json.dumps(doc))
        del broken["runs"][0]["tool"]["driver"]["name"]
        assert any("name" in p for p in validate_sarif(broken))
        broken = json.loads(json.dumps(doc))
        broken["runs"][0]["results"][0]["level"] = "fatal"
        assert any("level" in p for p in validate_sarif(broken))


# ----------------------------------------------------------------------
# inline suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_three_verbs(self):
        index = scan_suppressions(textwrap.dedent("""
            # simlint: disable-file=QL010
            x = 1  # simlint: disable=QL001,QL002
            # simlint: disable-next-line=QL005
            y = 2
        """))
        assert index.suppresses("QL010", 999)
        assert index.suppresses("QL001", 3)
        assert index.suppresses("QL002", 3)
        assert not index.suppresses("QL001", 4)
        assert index.suppresses("QL005", 5)

    def test_disable_all(self):
        index = scan_suppressions("z = 0  # simlint: disable=all\n")
        assert index.suppresses("QL007", 1)

    def test_marker_in_string_is_ignored(self):
        index = scan_suppressions(
            'text = "# simlint: disable=QL001"\n')
        assert not index.suppresses("QL001", 1)


# ----------------------------------------------------------------------
# baseline round-trip
# ----------------------------------------------------------------------
class TestBaseline:
    def test_round_trip_filters_and_reports_stale(self, tmp_path):
        path = str(tmp_path / "base.json")
        old = [mk(), mk(rule="QL010", symbol="B.snap",
                        severity=Severity.WARNING)]
        write_baseline(path, old, justification="known issues")
        entries = load_baseline(path)
        assert {e.rule for e in entries} == {"QL007", "QL010"}
        assert all(e.justification == "known issues" for e in entries)
        # the QL010 finding was fixed; a new line for QL007 appears
        current = [mk(line=42)]
        kept, stale = apply_baseline(current, entries)
        assert kept == []          # line moved, still baselined
        assert [e.rule for e in stale] == ["QL010"]

    def test_count_bounds_absorb_regressions(self):
        findings = [mk(line=1), mk(line=2), mk(line=3)]
        # entry count=2: the third same-key finding passes through
        from repro.lint.baseline import BaselineEntry
        entry = BaselineEntry(rule="QL007", path="src/a.py",
                              symbol="A.tick", count=2)
        kept, stale = apply_baseline(findings, [entry])
        assert len(kept) == 1
        assert stale == []

    def test_absolute_and_relative_paths_match(self):
        from repro.lint.baseline import BaselineEntry
        entry = BaselineEntry(rule="QL007", path="src/a.py",
                              symbol="A.tick", count=1)
        finding = mk(path=os.path.abspath("src/a.py"))
        kept, stale = apply_baseline([finding], [entry])
        assert kept == [] and stale == []

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "other/1", "findings": []}')
        with pytest.raises(BaselineError):
            load_baseline(str(bad))


# ----------------------------------------------------------------------
# per-directory policies
# ----------------------------------------------------------------------
class TestDirPolicies:
    def test_longest_prefix_wins(self):
        fixture = policy_for("tests/lint/fixtures/racy_wire.py")
        assert fixture is not None and "all" in fixture.allow
        plain_test = policy_for("tests/sim/test_x.py")
        assert plain_test is not None and "QL001" not in plain_test.allow
        assert policy_for("src/repro/sim/engine.py") is None

    def test_filtering(self):
        findings = [
            mk(path="tests/sim/helper.py", rule="QL001"),   # relaxed
            mk(path="tests/sim/helper.py", rule="QL007"),   # kept
            mk(path="tests/lint/fixtures/racy.py", rule="QL001"),  # all
            mk(path="src/repro/sim/engine.py", rule="QL001"),      # kept
        ]
        kept = apply_dir_policies(findings, DEFAULT_DIR_POLICIES)
        assert [(f.path, f.rule) for f in kept] == [
            ("tests/sim/helper.py", "QL007"),
            ("tests/lint/fixtures/racy.py", "QL001"),
            ("src/repro/sim/engine.py", "QL001"),
        ]


# ----------------------------------------------------------------------
# CLI exit codes and formats
# ----------------------------------------------------------------------
class TestCliContract:
    def test_exit_0_clean(self, tmp_path, capsys):
        from repro.cli import main
        good = tmp_path / "ok.py"
        good.write_text("x = 1\n")
        assert main(["lint", "--strict", "--no-baseline",
                     str(tmp_path)]) == 0
        capsys.readouterr()

    def test_exit_1_findings(self, tmp_path, capsys):
        from repro.cli import main
        bad = tmp_path / "bad.py"
        bad.write_text(textwrap.dedent("""
            from repro.sim import Component

            class Bad(Component):
                def tick(self, sim) -> bool:
                    return True
        """))
        assert main(["lint", "--no-baseline", str(tmp_path)]) == 1
        capsys.readouterr()

    def test_exit_2_internal_error(self, tmp_path, capsys):
        from repro.cli import main
        missing = str(tmp_path / "nope-baseline.json")
        ok = tmp_path / "ok.py"
        ok.write_text("x = 1\n")
        assert main(["lint", "--baseline", missing, str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "internal analyzer error" in err

    def test_sarif_format(self, tmp_path, capsys):
        from repro.cli import main
        ok = tmp_path / "ok.py"
        ok.write_text("x = 1\n")
        assert main(["lint", "-f", "sarif", "--no-baseline",
                     str(tmp_path)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert validate_sarif(doc) == []

    def test_graph_dump(self, capsys):
        from repro.cli import main
        assert main(["lint", "--graph", "tests/lint/fixtures"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert main(["lint", "--graph", "-f", "json",
                     "tests/lint/fixtures"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.lint.graph/1"

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        from repro.cli import main
        bad = tmp_path / "bad.py"
        bad.write_text(textwrap.dedent("""
            from repro.sim import Component

            class Bad(Component):
                def tick(self, sim) -> bool:
                    return True
        """))
        base = str(tmp_path / "baseline.json")
        assert main(["lint", "--write-baseline", base,
                     str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["lint", "--strict", "--baseline", base,
                     str(tmp_path)]) == 0
        capsys.readouterr()
