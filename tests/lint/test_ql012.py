"""QL012: control-plane code must actuate through public architecture
entry points — no reaching into another object's private state."""

import textwrap

from repro.lint import Severity, lint_source

CONTROL_PATH = "src/repro/control/custom_policy.py"


def findings_for(src, filename=CONTROL_PATH):
    found = lint_source(textwrap.dedent(src), filename=filename)
    return [f for f in found if f.rule == "QL012"]


class TestForeignPrivateAssignment:
    BUGGY = """
    class MyPolicy:
        def plan(self, alert, tel, now):
            self.arch._channel_cap = 4
    """

    def test_flags_assignment(self):
        (f,) = findings_for(self.BUGGY)
        assert f.severity is Severity.ERROR
        assert f.symbol == "plan"
        assert "self.arch._channel_cap" in f.message
        assert "public architecture methods" in f.message

    def test_public_entry_point_passes(self):
        clean = self.BUGGY.replace(
            "self.arch._channel_cap = 4",
            "self.arch.set_channel_cap(4)")
        assert findings_for(clean) == []

    def test_own_private_state_is_fine(self):
        clean = self.BUGGY.replace(
            "self.arch._channel_cap = 4", "self._last_plan = now")
        assert findings_for(clean) == []

    def test_non_control_path_is_out_of_scope(self):
        assert findings_for(
            self.BUGGY, filename="src/repro/arch/rmboc/fabric.py"
        ) == []


class TestForeignPrivateCall:
    BUGGY = """
    class MyPolicy:
        def plan(self, alert, tel, now):
            self.arch._rebuild_schedule()
    """

    def test_flags_private_method_call(self):
        (f,) = findings_for(self.BUGGY)
        assert "self.arch._rebuild_schedule()" in f.message

    def test_dunder_calls_are_not_private_reach(self):
        clean = self.BUGGY.replace(
            "self.arch._rebuild_schedule()", "self.arch.__repr__()")
        assert findings_for(clean) == []


class TestForeignContainerMutation:
    BUGGY = """
    class MyPolicy:
        def plan(self, alert, tel, now):
            self.arch._queues.clear()
    """

    def test_flags_mutator_on_foreign_private(self):
        (f,) = findings_for(self.BUGGY)
        assert ".clear()" in f.message

    def test_reading_is_not_mutating(self):
        clean = self.BUGGY.replace(
            "self.arch._queues.clear()",
            "depth = len(self.arch.backlogs())")
        assert findings_for(clean) == []


class TestClosures:
    """Apply/rollback closures are lambdas — they must be checked."""

    BUGGY = """
    class MyPolicy:
        def plan(self, alert, tel, now):
            arch = self.arch
            return Action(
                kind="hack", target="fabric",
                apply=lambda: setattr_free(arch),
                rollback=lambda: arch._queues.append(None),
            )
    """

    def test_lambda_bodies_are_linted(self):
        (f,) = findings_for(self.BUGGY)
        assert "arch._queues" in f.message

    def test_nested_helper_class_is_skipped(self):
        # nested defs are other scopes walked on their own; the walk
        # from plan() must not double-report them
        src = """
        class MyPolicy:
            def plan(self, alert, tel, now):
                def helper(a):
                    a._cap = 1
                return None
        """
        hits = findings_for(src)
        assert len(hits) == 1
        assert hits[0].symbol == "helper"


class TestRepositoryControlPackageIsClean:
    def test_shipped_policies_pass_their_own_rule(self):
        import os

        import repro
        from repro.lint import lint_paths

        pkg = os.path.join(
            os.path.dirname(os.path.abspath(repro.__file__)), "control")
        hits = [f for f in lint_paths([pkg]) if f.rule == "QL012"]
        assert hits == []
