"""Static contract checker tests: every rule catches its minimal
offending fixture, the fixed twin passes, and the repository's own
sources are strict-clean."""

import os
import textwrap

import pytest

import repro
from repro.lint import RULES, Severity, lint_paths, lint_source

PKG_DIR = os.path.dirname(os.path.abspath(repro.__file__))


def findings_for(src, rule=None):
    found = lint_source(textwrap.dedent(src))
    if rule is None:
        return found
    return [f for f in found if f.rule == rule]


# ----------------------------------------------------------------------
# QL001: unwatched channel read in a sleeping component
# ----------------------------------------------------------------------
class TestUnwatchedRead:
    BUGGY = """
    from repro.sim import SLEEP, Component, Simulator, Wire

    class Sleepy(Component):
        def __init__(self, sim):
            super().__init__("sleepy")
            self.req = Wire(sim, "req")

        def tick(self, sim):
            if self.req.value:
                return None
            return SLEEP
    """

    def test_flags_unwatched_wire_read(self):
        hits = findings_for(self.BUGGY, "QL001")
        assert len(hits) == 1
        f = hits[0]
        assert f.severity is Severity.ERROR
        assert f.symbol == "Sleepy.tick"
        assert "self.req" in f.message and "watch()" in f.message

    def test_watch_in_init_silences_it(self):
        fixed = self.BUGGY.replace(
            'self.req = Wire(sim, "req")',
            'self.req = Wire(sim, "req")\n'
            '        self.watch(self.req)')
        assert findings_for(fixed, "QL001") == []

    def test_subscribe_spelling_also_counts(self):
        fixed = self.BUGGY.replace(
            'self.req = Wire(sim, "req")',
            'self.req = Wire(sim, "req")\n'
            '        self.req.subscribe(self)')
        assert findings_for(fixed, "QL001") == []

    def test_fifo_reads_are_covered(self):
        src = """
        from repro.sim import SLEEP, Component, FIFO

        class Popper(Component):
            def __init__(self, sim):
                super().__init__("popper")
                self.inbox = FIFO(sim, "inbox")

            def tick(self, sim):
                while self.inbox:
                    self.inbox.pop()
                return SLEEP
        """
        hits = findings_for(src, "QL001")
        assert hits and all("self.inbox" in f.message for f in hits)

    def test_component_that_never_sleeps_is_exempt(self):
        src = """
        from repro.sim import Component, Wire

        class HotLoop(Component):
            def __init__(self, sim):
                super().__init__("hot")
                self.req = Wire(sim, "req")

            def tick(self, sim):
                if self.req.value:
                    pass
                return None
        """
        assert findings_for(src, "QL001") == []

    def test_channel_constructor_param_is_recognized(self):
        src = """
        from repro.sim import SLEEP, Component, Wire

        class Consumer(Component):
            def __init__(self, wire: Wire):
                super().__init__("consumer")
                self.wire = wire

            def tick(self, sim):
                _ = self.wire.value
                return SLEEP
        """
        assert findings_for(src, "QL001")


# ----------------------------------------------------------------------
# QL002: nondeterministic sources
# ----------------------------------------------------------------------
class TestNondeterminism:
    def test_flags_random_call_in_tick(self):
        src = """
        import random

        from repro.sim import Component

        class Jittery(Component):
            def tick(self, sim):
                if random.random() < 0.5:
                    pass
                return None
        """
        hits = findings_for(src, "QL002")
        call_errors = [f for f in hits if f.severity is Severity.ERROR]
        assert call_errors and "random.random" in call_errors[0].message
        assert "repro.sim.rng" in call_errors[0].message
        # the module-level import is reported too, as a warning
        assert any(f.severity is Severity.WARNING and f.symbol == "<module>"
                   for f in hits)

    def test_flags_wall_clock_reads(self):
        src = """
        import time

        from repro.sim import Component

        class Clocky(Component):
            def tick(self, sim):
                self.t = time.time()
                return None
        """
        assert findings_for(src, "QL002")

    def test_seeded_numpy_stream_is_clean(self):
        src = """
        from repro.sim import Component
        from repro.sim.rng import make_rng

        class Proper(Component):
            def __init__(self):
                super().__init__("proper")
                self.rng = make_rng(1, "traffic", "proper")

            def tick(self, sim):
                if self.rng.random() < 0.5:
                    pass
                return None
        """
        assert findings_for(src, "QL002") == []

    def test_random_import_without_components_is_ignored(self):
        src = """
        import random

        def shuffle_report_rows(rows):
            random.shuffle(rows)
            return rows
        """
        assert findings_for(src, "QL002") == []


# ----------------------------------------------------------------------
# QL003: staged writes outside tick/event contexts
# ----------------------------------------------------------------------
class TestStagedWriteContext:
    def test_flags_drive_in_init(self):
        src = """
        from repro.sim import Component, Wire

        class Eager(Component):
            def __init__(self, sim):
                super().__init__("eager")
                self.out = Wire(sim, "out")
                self.out.drive(1)

            def tick(self, sim):
                return None
        """
        hits = findings_for(src, "QL003")
        assert len(hits) == 1
        assert "__init__" in hits[0].message

    def test_flags_push_in_property(self):
        src = """
        from repro.sim import Component, FIFO

        class Sneaky(Component):
            def __init__(self, sim):
                super().__init__("sneaky")
                self.out = FIFO(sim, "out")

            @property
            def poke(self):
                self.out.push(1)
                return True

            def tick(self, sim):
                return None
        """
        hits = findings_for(src, "QL003")
        assert hits and "property" in hits[0].message

    def test_drive_in_tick_is_clean(self):
        src = """
        from repro.sim import Component, Wire

        class Proper(Component):
            def __init__(self, sim):
                super().__init__("proper")
                self.out = Wire(sim, "out")

            def tick(self, sim):
                self.out.drive(sim.cycle)
                return None
        """
        assert findings_for(src, "QL003") == []


# ----------------------------------------------------------------------
# QL004: foreign private-state mutation
# ----------------------------------------------------------------------
class TestForeignMutation:
    def test_flags_assignment_to_foreign_private(self):
        src = """
        from repro.sim import Component

        class Meddler(Component):
            def poke(self, other):
                other._asleep = False
        """
        hits = findings_for(src, "QL004")
        assert len(hits) == 1
        assert "other._asleep" in hits[0].message

    def test_flags_container_mutation_of_foreign_private(self):
        src = """
        from repro.sim import Component

        class Meddler(Component):
            def inject(self, fifo, item):
                fifo._queue.append(item)
        """
        hits = findings_for(src, "QL004")
        assert hits and "fifo._queue" in hits[0].message

    def test_own_private_state_is_fine(self):
        src = """
        from repro.sim import Component

        class Proper(Component):
            def __init__(self):
                super().__init__("proper")
                self._backlog = []

            def tick(self, sim):
                self._backlog.append(sim.cycle)
                self._cursor = 0
                return None
        """
        assert findings_for(src, "QL004") == []

    def test_public_attributes_of_others_are_not_flagged(self):
        # messages/ports expose deliberately public mutable state
        src = """
        from repro.sim import Component

        class Deliverer(Component):
            def deliver(self, msg, now):
                msg.delivered_cycle = now
        """
        assert findings_for(src, "QL004") == []


# ----------------------------------------------------------------------
# QL005: tick signatures that cannot return a QuiescenceHint
# ----------------------------------------------------------------------
class TestTickSignature:
    def test_flags_none_annotation(self):
        src = """
        from repro.sim import Component, Simulator

        class Annotated(Component):
            def tick(self, sim: Simulator) -> None:
                return None
        """
        hits = findings_for(src, "QL005")
        assert len(hits) == 1
        assert "QuiescenceHint" in hits[0].message

    def test_flags_bool_literal_return(self):
        src = """
        from repro.sim import Component

        class Boolish(Component):
            def tick(self, sim):
                return True
        """
        hits = findings_for(src, "QL005")
        assert hits and "True" in hits[0].message

    def test_flags_wrong_arity(self):
        src = """
        from repro.sim import Component

        class Greedy(Component):
            def tick(self, sim, phase):
                return None
        """
        hits = findings_for(src, "QL005")
        assert hits and "(self, sim)" in hits[0].message

    def test_quiescence_hint_annotation_is_clean(self):
        src = """
        from repro.sim import Component, QuiescenceHint, Simulator

        class Proper(Component):
            def tick(self, sim: Simulator) -> QuiescenceHint:
                return None
        """
        assert findings_for(src, "QL005") == []

    def test_int_hint_return_is_clean(self):
        src = """
        from repro.sim import Component

        class Timed(Component):
            def tick(self, sim):
                return sim.cycle + 10
        """
        assert findings_for(src, "QL005") == []


# ----------------------------------------------------------------------
# QL006: batch-kernel tick mutating undeclared state
# ----------------------------------------------------------------------
class TestVecContract:
    BUGGY = """
    from repro.sim import Component

    class Batched(Component):
        VEC_FIELDS = ("_transfers",)
        VEC_SHARED = ("_queues",)

        def _make_vec_kernel(self):
            return object()

        def tick(self, sim):
            self._transfers.append(1)      # declared: fine
            self._queues["a"] = []         # declared: fine
            self._cursor += 1              # undeclared AugAssign
            del self._pending[0]           # undeclared Delete
            self._advance(sim)
            return None

        def _advance(self, sim):
            self._table["x"][0] = sim.cycle  # undeclared, via helper
    """

    def test_flags_undeclared_mutations_in_tick_path(self):
        hits = findings_for(self.BUGGY, "QL006")
        assert len(hits) == 3
        assert all(f.severity is Severity.ERROR for f in hits)
        flagged = {f.message.split("self.")[1].split()[0] for f in hits}
        assert flagged == {"_cursor", "_pending", "_table"}
        # the helper-reached mutation is attributed to the helper
        assert any(f.symbol == "Batched._advance" for f in hits)

    def test_full_declaration_is_clean(self):
        fixed = self.BUGGY.replace(
            'VEC_SHARED = ("_queues",)',
            'VEC_SHARED = ("_queues", "_cursor", "_pending", "_table")')
        assert findings_for(fixed, "QL006") == []

    def test_components_without_kernels_are_exempt(self):
        src = """
        from repro.sim import Component

        class Plain(Component):
            def tick(self, sim):
                self._cursor += 1
                del self._pending[0]
                return None
        """
        assert findings_for(src, "QL006") == []

    def test_mutations_off_the_tick_path_are_exempt(self):
        src = """
        from repro.sim import Component

        class Batched(Component):
            VEC_FIELDS = ("_transfers",)

            def tick(self, sim):
                self._transfers.append(1)
                return None

            def halt(self):
                # fault hook, not reachable from tick: out of scope
                self._halted = True
        """
        assert findings_for(src, "QL006") == []

    def test_kernel_method_alone_opts_in(self):
        src = """
        from repro.sim import Component

        class Batched(Component):
            def _make_vec_kernel(self):
                return object()

            def tick(self, sim):
                self._cursor += 1
                return None
        """
        hits = findings_for(src, "QL006")
        assert hits and "_cursor" in hits[0].message


# ----------------------------------------------------------------------
# drivers, output plumbing, self-check
# ----------------------------------------------------------------------
class TestDrivers:
    def test_syntax_error_becomes_ql000(self):
        hits = findings_for("def broken(:\n", "QL000")
        assert hits and hits[0].severity is Severity.ERROR

    def test_findings_are_sorted_and_serializable(self):
        src = """
        from repro.sim import Component

        class Bad(Component):
            def tick(self, sim) -> bool:
                return True

            def poke(self, other):
                other._x = 1
        """
        found = findings_for(src)
        assert found == sorted(
            found, key=lambda f: (f.path, f.line, f.rule))
        for f in found:
            d = f.to_dict()
            assert set(d) == {"rule", "severity", "path", "line",
                              "symbol", "message"}
            assert f.render().startswith(f"{f.path}:{f.line}:")

    def test_every_documented_rule_exists(self):
        assert set(RULES) == {"QL000", "QL001", "QL002", "QL003",
                              "QL004", "QL005", "QL006", "QL012"}

    def test_repository_sources_are_strict_clean(self):
        """The acceptance gate: `repro lint --strict` over the package."""
        assert lint_paths([PKG_DIR]) == []

    def test_cli_lint_subcommand(self, capsys):
        from repro.cli import main

        assert main(["lint", "--strict", PKG_DIR]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_cli_lint_json_output(self, tmp_path, capsys):
        import json

        from repro.cli import main

        bad = tmp_path / "bad_component.py"
        bad.write_text(textwrap.dedent("""
            from repro.sim import Component

            class Bad(Component):
                def tick(self, sim) -> bool:
                    return True
        """))
        assert main(["lint", "-f", "json", str(tmp_path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["error"] == 2
        rules = {f["rule"] for f in payload["findings"]}
        assert rules == {"QL005"}

    def test_min_severity_filter(self, tmp_path, capsys):
        from repro.cli import main

        warny = tmp_path / "warny.py"
        warny.write_text(textwrap.dedent("""
            import random

            from repro.sim import Component

            class Quiet(Component):
                def tick(self, sim):
                    return None
        """))
        # only a module-level import warning: errors-only view is clean
        assert main(["lint", "--min-severity", "error", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["lint", "--strict", str(tmp_path)]) == 1
