"""Seeded contract-violation fixtures for the lint regression suite.

Every module in this package intentionally violates a determinism rule
and must KEEP violating it: CI asserts the analyzer still flags each
one (``tests/lint/test_race_rules.py`` and the ``lint-graph`` CI job),
so a refactor that silently stops the detection fails loudly.  The
``tests/lint/fixtures`` directory policy re-enables every rule here.
"""
