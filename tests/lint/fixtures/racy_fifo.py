"""Seeded QL008/SAN005 fixture: a FIFO with two producers and two
consumers.

Both producers push distinct payloads in the same cycle, so the
committed item order depends on tick order: the static rule QL008 must
flag the multi-producer (and multi-consumer) topology, and a
``sanitize="record"`` run must record SAN004 plus an order-sensitive
SAN005 shadow-commit divergence (``sanitize="race"`` raises at the
first SAN004).  Do not fix this file — CI asserts detection.
"""

from repro.sim.channel import FIFO
from repro.sim.component import Component
from repro.sim.engine import Simulator


class PusherA(Component):
    def __init__(self, name, queue):
        super().__init__(name)
        self._queue = queue

    def tick(self, sim):
        self._queue.push(("A", sim.cycle))
        return None


class PusherB(Component):
    def __init__(self, name, queue):
        super().__init__(name)
        self._queue = queue

    def tick(self, sim):
        self._queue.push(("B", sim.cycle))
        return None


class PopperA(Component):
    def __init__(self, name, queue):
        super().__init__(name)
        self._queue = queue
        self.seen = []

    def tick(self, sim):
        item = self._queue.try_pop()
        if item is not None:
            self.seen.append(item)
        return None


class PopperB(PopperA):
    pass


class RacyQueueFabric:
    """One FIFO, two tick-path pushers, two tick-path poppers."""

    def __init__(self, sim: Simulator):
        self.queue = FIFO(sim, "jobs")
        self.pa = PusherA("pa", self.queue)
        self.pb = PusherB("pb", self.queue)
        self.ca = PopperA("ca", self.queue)
        self.cb = PopperB("cb", self.queue)
        for component in (self.pa, self.pb, self.ca, self.cb):
            sim.add(component)


def build(sim: Simulator) -> RacyQueueFabric:
    return RacyQueueFabric(sim)
