"""Seeded QL007/SAN004 fixture: two components drive one shared wire.

``Fabric`` owns the wire and hands it to two producer components
through their constructors; both stage a write every cycle.  The access
graph must resolve the constructor aliasing and report a QL007
write-write race, and a ``sanitize="race"`` run must raise SAN004 (the
plain double-drive ``SimError`` fires too, but without naming both
drivers).  Do not fix this file — CI asserts the race stays detected.
"""

from repro.sim.channel import Wire
from repro.sim.component import Component
from repro.sim.engine import Simulator


class ProducerA(Component):
    def __init__(self, name, grant):
        super().__init__(name)
        self._grant = grant

    def tick(self, sim):
        self._grant.drive(("A", sim.cycle))
        return None


class ProducerB(Component):
    def __init__(self, name, grant):
        super().__init__(name)
        self._grant = grant

    def tick(self, sim):
        self._grant.drive(("B", sim.cycle))
        return None


class Fabric:
    """Wires the racy topology: one wire, two tick-path drivers."""

    def __init__(self, sim: Simulator):
        self.grant = Wire(sim, "grant")
        self.a = ProducerA("a", self.grant)
        self.b = ProducerB("b", self.grant)
        sim.add(self.a)
        sim.add(self.b)


def build(sim: Simulator) -> Fabric:
    return Fabric(sim)
