"""Access-graph builder tests (repro.lint.graph).

Synthetic fixture packages exercise the resolution machinery the race
rules depend on: diamond inheritance through an ``arch/base.py``-style
base, channels handed through constructor aliasing, helper-method write
attribution, and the seeded racy fixtures under
``tests/lint/fixtures/``.
"""

import os
import textwrap

import pytest

from repro.lint import build_graph, build_graph_sources
from repro.lint.race import run_graph_rules

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def graph_of(source):
    graph, errors = build_graph_sources(
        {"pkg/mod.py": textwrap.dedent(source)})
    assert not errors
    return graph


def edges(graph, **match):
    out = []
    for access in graph.accesses:
        if all(getattr(access, k) == v for k, v in match.items()):
            out.append(access)
    return out


# ----------------------------------------------------------------------
# channel slot discovery
# ----------------------------------------------------------------------
class TestSlots:
    def test_constructed_slots_have_kinds(self):
        graph = graph_of("""
            from repro.sim import Component, Wire, PulseWire, FIFO

            class Node(Component):
                def __init__(self, name, sim):
                    super().__init__(name)
                    self.data = Wire(sim, "d")
                    self.valid = PulseWire(sim, "v")
                    self.outq = FIFO(sim, "q", capacity=4)

                def tick(self, sim):
                    self.data.drive(1)
                    self.outq.push(2)
                    return None
        """)
        kinds = {key: node.kind for key, node in graph.channels.items()}
        assert kinds[("Node", "data")] == "wire"
        assert kinds[("Node", "outq")] == "fifo"
        ops = {(a.channel[1], a.op) for a in graph.accesses}
        assert ("data", "stage") in ops
        assert ("outq", "push") in ops

    def test_plain_attributes_are_not_channels(self):
        graph = graph_of("""
            from repro.sim import Component

            class Node(Component):
                def __init__(self, name, count):
                    super().__init__(name)
                    self.count = count   # plain value, not a channel

                def tick(self, sim):
                    self.count += 1
                    return None
        """)
        assert graph.channels == {}
        assert graph.accesses == []


# ----------------------------------------------------------------------
# inheritance, including diamonds
# ----------------------------------------------------------------------
class TestInheritance:
    DIAMOND = """
        from repro.sim import Component, Wire

        class CommBase(Component):
            def __init__(self, name, sim):
                super().__init__(name)
                self.status = Wire(sim, "s")

            def _report(self, value):
                self.status.drive(value)

        class TelemetryMixin(CommBase):
            pass

        class FaultMixin(CommBase):
            pass

        class Fabric(TelemetryMixin, FaultMixin):
            def tick(self, sim):
                self._report(sim.cycle)
                return None
    """

    def test_diamond_base_slot_resolves_once(self):
        graph = graph_of(self.DIAMOND)
        # the concrete class owns its copy of the inherited slot, and
        # the helper write is attributed to Fabric on its tick path
        stage = edges(graph, component="Fabric", op="stage")
        assert len(stage) == 1
        assert stage[0].channel == ("Fabric", "status")
        assert stage[0].tick_path
        assert stage[0].method == "Fabric._report"

    def test_sibling_subclasses_do_not_share_inherited_slots(self):
        graph = graph_of("""
            from repro.sim import Component, Wire

            class Base(Component):
                def __init__(self, name, sim):
                    super().__init__(name)
                    self.out = Wire(sim, "o")

            class A(Base):
                def tick(self, sim):
                    self.out.drive(1)
                    return None

            class B(Base):
                def tick(self, sim):
                    self.out.drive(2)
                    return None
        """)
        # each instance constructs its own wire: no shared node, and
        # therefore no QL007 between the siblings
        channels = {a.channel for a in graph.accesses}
        assert ("A", "out") in channels and ("B", "out") in channels
        assert not [f for f in run_graph_rules(graph) if f.rule == "QL007"]


# ----------------------------------------------------------------------
# constructor aliasing
# ----------------------------------------------------------------------
class TestAliasing:
    def test_channel_through_constructor_is_unified(self):
        graph = graph_of("""
            from repro.sim import Component, Wire

            class Consumer(Component):
                def __init__(self, name, link):
                    super().__init__(name)
                    self._link = link

                def tick(self, sim):
                    return self._link.value

            class Owner(Component):
                def __init__(self, name, sim):
                    super().__init__(name)
                    self.link = Wire(sim, "l")
                    self.peer = Consumer("c", self.link)

                def tick(self, sim):
                    self.link.drive(1)
                    return None
        """)
        assert graph.resolve(("Consumer", "_link")) == ("Owner", "link")
        node = graph.channels[("Owner", "link")]
        assert node.kind == "wire"
        assert ("Consumer", "_link") in node.aliases
        reads = edges(graph, component="Consumer", op="read")
        assert reads and reads[0].channel == ("Owner", "link")

    def test_keyword_argument_binding(self):
        graph = graph_of("""
            from repro.sim import Component, FIFO

            class Sink(Component):
                def __init__(self, name, inbox=None):
                    super().__init__(name)
                    self._inbox = inbox

                def tick(self, sim):
                    self._inbox.try_pop()
                    return None

            class Hub:
                def __init__(self, sim):
                    self.jobs = FIFO(sim, "jobs")
                    self.sink = Sink("s", inbox=self.jobs)
        """)
        assert graph.resolve(("Sink", "_inbox")) == ("Hub", "jobs")

    def test_unbound_param_attr_is_not_a_channel(self):
        graph = graph_of("""
            from repro.sim import Component

            class Widget(Component):
                def __init__(self, name, style):
                    super().__init__(name)
                    self._style = style

                def tick(self, sim):
                    return None
        """)
        assert ("Widget", "_style") not in graph.channels


# ----------------------------------------------------------------------
# helper-method attribution and tick-path marking
# ----------------------------------------------------------------------
class TestHelperAttribution:
    def test_write_in_helper_attributed_to_component_tick_path(self):
        graph = graph_of("""
            from repro.sim import Component, Wire

            class Node(Component):
                def __init__(self, name, sim):
                    super().__init__(name)
                    self.out = Wire(sim, "o")

                def _emit(self, value):
                    self.out.drive(value)

                def tick(self, sim):
                    self._emit(sim.cycle)
                    return None
        """)
        stage = edges(graph, component="Node", op="stage")[0]
        assert stage.method == "Node._emit"
        assert stage.tick_path

    def test_non_tick_method_not_on_tick_path(self):
        graph = graph_of("""
            from repro.sim import Component, Wire

            class Node(Component):
                def __init__(self, name, sim):
                    super().__init__(name)
                    self.out = Wire(sim, "o")

                def reset(self):
                    self.out.drive(None)

                def tick(self, sim):
                    return None
        """)
        stage = edges(graph, component="Node", op="stage")[0]
        assert not stage.tick_path


# ----------------------------------------------------------------------
# the seeded racy fixtures (from disk)
# ----------------------------------------------------------------------
class TestRacyFixtures:
    @pytest.fixture(scope="class")
    def fixture_graph(self):
        graph, errors = build_graph([FIXTURES])
        assert not errors
        return graph

    def test_wire_fixture_flagged_ql007(self, fixture_graph):
        findings = run_graph_rules(fixture_graph)
        ql007 = [f for f in findings if f.rule == "QL007"]
        assert len(ql007) == 1
        assert "ProducerA" in ql007[0].message
        assert "ProducerB" in ql007[0].message

    def test_fifo_fixture_flagged_ql008_both_ports(self, fixture_graph):
        findings = run_graph_rules(fixture_graph)
        ql008 = [f for f in findings if f.rule == "QL008"]
        assert len(ql008) == 2
        roles = {("producer" in f.message, "consumer" in f.message)
                 for f in ql008}
        assert roles == {(True, False), (False, True)}

    def test_graph_exports(self, fixture_graph):
        doc = fixture_graph.to_json()
        assert doc["schema"] == "repro.lint.graph/1"
        ids = {c["id"] for c in doc["channels"]}
        assert "Fabric.grant" in ids
        dot = fixture_graph.to_dot()
        assert dot.startswith("digraph")
        assert '"ProducerA" -> "Fabric.grant"' in dot
