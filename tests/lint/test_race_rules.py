"""Graph-rule tests (QL007–QL011): each rule gets a buggy/fixed twin.

The twins are deliberately minimal — the same topology with only the
contract-relevant detail changed — so a rule that starts matching on
the wrong feature fails one of the two.
"""

import textwrap

from repro.lint import build_graph_sources
from repro.lint.race import run_graph_rules


def findings_for(sources, rule):
    if isinstance(sources, str):
        sources = {"pkg/mod.py": sources}
    graph, errors = build_graph_sources(
        {path: textwrap.dedent(src) for path, src in sources.items()})
    assert not errors
    return [f for f in run_graph_rules(graph) if f.rule == rule]


# ----------------------------------------------------------------------
# QL007 — write-write wire race
# ----------------------------------------------------------------------
class TestQL007:
    BUGGY = """
        from repro.sim import Component, Wire

        class DriverA(Component):
            def __init__(self, name, bus):
                super().__init__(name)
                self._bus = bus

            def tick(self, sim):
                self._bus.drive("A")
                return None

        class DriverB(Component):
            def __init__(self, name, bus):
                super().__init__(name)
                self._bus = bus

            def tick(self, sim):
                self._bus.drive("B")
                return None

        class Net:
            def __init__(self, sim):
                self.bus = Wire(sim, "bus")
                self.a = DriverA("a", self.bus)
                self.b = DriverB("b", self.bus)
    """

    def test_two_tick_drivers_flagged(self):
        findings = findings_for(self.BUGGY, "QL007")
        assert len(findings) == 1
        assert findings[0].symbol == "Net.bus"

    def test_single_driver_clean(self):
        fixed = self.BUGGY.replace('self._bus.drive("B")', "pass")
        assert findings_for(fixed, "QL007") == []

    def test_non_tick_second_writer_clean(self):
        # DriverB only writes from an explicit reset path, never tick
        fixed = self.BUGGY.replace(
            """def tick(self, sim):
                self._bus.drive("B")
                return None""",
            """def reset(self):
                self._bus.drive("B")

            def tick(self, sim):
                return None""")
        assert findings_for(fixed, "QL007") == []

    def test_cross_module_aliasing_detected(self):
        # same topology split over two files: the graph is whole-program
        sources = {
            "pkg/drivers.py": """
                from repro.sim import Component

                class DriverA(Component):
                    def __init__(self, name, bus):
                        super().__init__(name)
                        self._bus = bus

                    def tick(self, sim):
                        self._bus.drive("A")
                        return None

                class DriverB(Component):
                    def __init__(self, name, bus):
                        super().__init__(name)
                        self._bus = bus

                    def tick(self, sim):
                        self._bus.drive("B")
                        return None
            """,
            "pkg/net.py": """
                from repro.sim import Wire
                from pkg.drivers import DriverA, DriverB

                class Net:
                    def __init__(self, sim):
                        self.bus = Wire(sim, "bus")
                        self.a = DriverA("a", self.bus)
                        self.b = DriverB("b", self.bus)
            """,
        }
        assert len(findings_for(sources, "QL007")) == 1


# ----------------------------------------------------------------------
# QL008 — FIFO topology
# ----------------------------------------------------------------------
class TestQL008:
    def build(self, pusher_b_op, popper_b_op):
        return f"""
            from repro.sim import Component, FIFO

            class PusherA(Component):
                def __init__(self, name, q):
                    super().__init__(name)
                    self._q = q

                def tick(self, sim):
                    self._q.push(1)
                    return None

            class PusherB(Component):
                def __init__(self, name, q):
                    super().__init__(name)
                    self._q = q

                def tick(self, sim):
                    {pusher_b_op}
                    return None

            class PopperA(Component):
                def __init__(self, name, q):
                    super().__init__(name)
                    self._q = q

                def tick(self, sim):
                    self._q.try_pop()
                    return None

            class PopperB(Component):
                def __init__(self, name, q):
                    super().__init__(name)
                    self._q = q

                def tick(self, sim):
                    {popper_b_op}
                    return None

            class Net:
                def __init__(self, sim):
                    self.q = FIFO(sim, "q")
                    self.members = [
                        PusherA("pa", self.q), PusherB("pb", self.q),
                        PopperA("ca", self.q), PopperB("cb", self.q),
                    ]
        """

    def test_multi_producer_and_consumer_flagged(self):
        findings = findings_for(
            self.build("self._q.push(2)", "self._q.try_pop()"), "QL008")
        assert len(findings) == 2

    def test_single_producer_single_consumer_clean(self):
        findings = findings_for(self.build("pass", "pass"), "QL008")
        assert findings == []

    def test_second_party_only_reading_length_clean(self):
        findings = findings_for(
            self.build("len(self._q)", "bool(self._q)"), "QL008")
        assert findings == []


# ----------------------------------------------------------------------
# QL009 — unordered iteration
# ----------------------------------------------------------------------
class TestQL009:
    def build(self, iterable):
        return f"""
            from repro.sim import Component, Wire

            class Hub(Component):
                def __init__(self, name, sim, peers):
                    super().__init__(name)
                    self._peers = set(peers)
                    self.out = Wire(sim, "o")

                def tick(self, sim):
                    for peer in {iterable}:
                        self.out.drive(peer)
                    return None
        """

    def test_set_iteration_reaching_staged_state_flagged(self):
        findings = findings_for(self.build("self._peers"), "QL009")
        assert len(findings) == 1
        assert findings[0].symbol == "Hub.tick"

    def test_sorted_wrapper_clean(self):
        assert findings_for(self.build("sorted(self._peers)"), "QL009") == []

    def test_list_of_set_still_flagged(self):
        # list() freezes the hash order; it does not define one
        assert len(findings_for(self.build("list(self._peers)"),
                                "QL009")) == 1

    def test_loop_without_state_effects_clean(self):
        src = self.build("self._peers").replace(
            "self.out.drive(peer)", "print(peer)")
        assert findings_for(src, "QL009") == []

    def test_rng_in_set_loop_flagged(self):
        src = self.build("self._peers").replace(
            "self.out.drive(peer)", "self.rng.randint(0, peer)")
        assert len(findings_for(src, "QL009")) == 1


# ----------------------------------------------------------------------
# QL010 — vec/object divergence hazard
# ----------------------------------------------------------------------
class TestQL010:
    def build(self, body):
        return f"""
            from repro.sim import Component

            class Arch(Component):
                VEC_FIELDS = ("_inflight",)

                def __init__(self, name):
                    super().__init__(name)
                    self._inflight = []

                def tick(self, sim):
                    self._inflight.append(sim.cycle)
                    return None

                def snapshot(self):
                    {body}
        """

    def test_unflushed_read_flagged(self):
        findings = findings_for(self.build("return len(self._inflight)"),
                                "QL010")
        assert len(findings) == 1
        assert findings[0].symbol == "Arch.snapshot"

    def test_flush_dominator_clean(self):
        src = self.build("""self.sim.flush_kernels()
                    return len(self._inflight)""")
        assert findings_for(src, "QL010") == []

    def test_tick_path_read_clean(self):
        # reads on the tick path are replayed by the kernel itself
        src = self.build("return 0").replace(
            "self._inflight.append(sim.cycle)",
            "self._inflight.append(len(self._inflight))")
        assert findings_for(src, "QL010") == []

    def test_undeclared_class_unaffected(self):
        src = self.build("return len(self._inflight)").replace(
            'VEC_FIELDS = ("_inflight",)', "pass")
        assert findings_for(src, "QL010") == []


# ----------------------------------------------------------------------
# QL011 — fault-policy hook completeness
# ----------------------------------------------------------------------
class TestQL011:
    def build(self, arch_extra=""):
        return f"""
            class MeshArch:
                KEY = "mesh"

                def fail_router(self, coord):
                    return True
                {arch_extra}

            class MeshPolicy:
                KEY = "mesh"

                def on_fault(self, coord):
                    self.arch.fail_router(coord)

                def on_repair(self, coord):
                    self.arch.repair_router(coord)

            _POLICIES = {{
                "mesh": MeshPolicy,
            }}
        """

    def test_missing_hook_flagged(self):
        findings = findings_for(self.build(), "QL011")
        assert len(findings) == 1
        assert "repair_router" in findings[0].message
        assert findings[0].symbol == "MeshPolicy.on_repair"

    def test_complete_hooks_clean(self):
        fixed = self.build("""
                def repair_router(self, coord):
                    pass""")
        assert findings_for(fixed, "QL011") == []

    def test_inherited_hook_clean(self):
        src = """
            class RouterBase:
                def repair_router(self, coord):
                    pass

            class MeshArch(RouterBase):
                KEY = "mesh"

                def fail_router(self, coord):
                    return True

            class MeshPolicy:
                def on_repair(self, coord):
                    self.arch.repair_router(coord)

            _POLICIES = {"mesh": MeshPolicy}
        """
        assert findings_for(src, "QL011") == []

    def test_hasattr_guard_exempts(self):
        src = """
            class MeshArch:
                KEY = "mesh"

            class MeshPolicy:
                def on_fault(self, coord):
                    if hasattr(self.arch, "route_around"):
                        self.arch.route_around(coord)

            _POLICIES = {"mesh": MeshPolicy}
        """
        assert findings_for(src, "QL011") == []

    def test_repo_policies_are_complete(self):
        # the real faults/policies.py must stay hook-complete for all
        # six registered architectures
        from repro.lint import build_graph
        graph, errors = build_graph(["src/repro"])
        assert not errors
        assert "_POLICIES" in graph.registries
        assert len(graph.registries["_POLICIES"]) == 6
        findings = [f for f in run_graph_rules(graph) if f.rule == "QL011"]
        assert findings == []
