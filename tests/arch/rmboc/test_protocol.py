"""RMBoC protocol-object unit tests."""

import pytest

from repro.arch.rmboc.protocol import (
    Channel,
    ChannelState,
    CtrlKind,
    CtrlMsg,
    Transfer,
)


class TestChannel:
    def test_direction_and_distance(self):
        ch = Channel(src_xp=1, dst_xp=3)
        assert ch.direction == 1
        assert ch.distance == 2
        back = Channel(src_xp=3, dst_xp=0)
        assert back.direction == -1
        assert back.distance == 3

    def test_same_endpoints_raise(self):
        with pytest.raises(ValueError):
            Channel(src_xp=2, dst_xp=2)

    def test_segments_forward(self):
        """Segment i joins cross-points i and i+1."""
        ch = Channel(src_xp=0, dst_xp=3)
        assert list(ch.segments()) == [0, 1, 2]

    def test_segments_backward(self):
        ch = Channel(src_xp=3, dst_xp=1)
        assert list(ch.segments()) == [2, 1]

    def test_segment_count_equals_distance(self):
        for src, dst in [(0, 1), (0, 3), (3, 0), (2, 1)]:
            ch = Channel(src_xp=src, dst_xp=dst)
            assert len(list(ch.segments())) == ch.distance

    def test_unique_ids(self):
        a = Channel(src_xp=0, dst_xp=1)
        b = Channel(src_xp=0, dst_xp=1)
        assert a.cid != b.cid

    def test_initial_state(self):
        ch = Channel(src_xp=0, dst_xp=1)
        assert ch.state is ChannelState.REQUESTING
        assert ch.established_cycle == -1
        assert ch.lanes == {}


class TestCtrlMsg:
    def test_fields(self):
        ch = Channel(src_xp=0, dst_xp=2)
        msg = CtrlMsg(CtrlKind.REQUEST, ch, at_xp=0, ready_at=2)
        assert msg.kind is CtrlKind.REQUEST
        assert msg.channel is ch

    def test_kinds_cover_protocol(self):
        assert {k.value for k in CtrlKind} == {
            "request", "reply", "cancel", "destroy",
        }


class TestTransfer:
    def test_bookkeeping(self):
        ch = Channel(src_xp=0, dst_xp=1)
        tr = Transfer(channel=ch, words_left=16, msg=object())
        assert tr.words_left == 16
        assert tr.channel is ch
