"""RMBoC configuration tests."""

import pytest

from repro.arch.rmboc import RMBoCConfig


class TestValidation:
    def test_defaults_are_the_paper_scenario(self):
        cfg = RMBoCConfig()
        assert cfg.num_modules == 4
        assert cfg.num_buses == 4
        assert cfg.width == 32

    @pytest.mark.parametrize("kw", [
        {"num_modules": 1},
        {"num_buses": 0},
        {"width": 0},
        {"xp_proc_cycles": 0},
        {"retry_backoff": 0},
        {"channel_linger": -1},
    ])
    def test_invalid_raises(self, kw):
        with pytest.raises(ValueError):
            RMBoCConfig(**kw)


class TestDerived:
    def test_segments(self):
        assert RMBoCConfig(num_modules=4).num_segments == 3
        assert RMBoCConfig(num_modules=7).num_segments == 6

    def test_dmax_is_s_times_k(self):
        """§4.2: 'RMBoC supports a theoretical upper limit of
        d_max = s x k parallel communications'."""
        cfg = RMBoCConfig(num_modules=4, num_buses=4)
        assert cfg.theoretical_dmax == 12
        assert RMBoCConfig(num_modules=5, num_buses=2).theoretical_dmax == 8

    def test_min_setup_is_8(self):
        """Table 2: minimum of 8 cycles to set up a connection."""
        assert RMBoCConfig().min_setup_latency == 8

    def test_setup_formula(self):
        cfg = RMBoCConfig()
        assert [cfg.setup_latency(d) for d in (1, 2, 3)] == [8, 10, 12]

    def test_max_setup_is_2m_plus_4(self):
        for m in (4, 6, 10):
            cfg = RMBoCConfig(num_modules=m)
            assert cfg.max_setup_latency == 2 * m + 4

    def test_setup_distance_bounds(self):
        cfg = RMBoCConfig()
        with pytest.raises(ValueError):
            cfg.setup_latency(0)
        with pytest.raises(ValueError):
            cfg.setup_latency(4)

    def test_words(self):
        cfg = RMBoCConfig(width=32)
        assert cfg.words(4) == 1
        assert cfg.words(5) == 2
        assert cfg.words(64) == 16

    def test_channels_per_module_defaults_to_buses(self):
        assert RMBoCConfig(num_buses=3).channels_per_module == 3
        assert RMBoCConfig(max_channels_per_module=2).channels_per_module == 2
