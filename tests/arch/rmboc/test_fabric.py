"""RMBoC behavioural tests: circuit establishment, streaming, teardown."""

import pytest

from repro.arch.rmboc import ChannelState, RMBoCConfig, build_rmboc
from repro.core.metrics import probe_single_message


class TestSetupLatency:
    def test_adjacent_setup_is_8_cycles(self):
        """Table 2: 8-cycle minimum setup, then 1 word/cycle."""
        arch = build_rmboc()
        probe = probe_single_message(arch, "m0", "m1", payload_bytes=64)
        assert probe.setup_cycles == 8

    def test_setup_follows_2d_plus_6(self):
        for dist in (1, 2, 3):
            arch = build_rmboc()
            probe = probe_single_message(arch, "m0", f"m{dist}", 64)
            assert probe.setup_cycles == 2 * dist + 6

    def test_data_is_one_word_per_cycle(self):
        arch = build_rmboc()
        probe = probe_single_message(arch, "m0", "m1", payload_bytes=256)
        assert probe.cycles_per_word == 1.0

    def test_total_latency_is_setup_plus_words(self):
        arch = build_rmboc()
        probe = probe_single_message(arch, "m0", "m2", payload_bytes=128)
        assert probe.total_cycles == 10 + 32

    def test_direction_symmetry(self):
        a = probe_single_message(build_rmboc(), "m3", "m2", 64)
        b = probe_single_message(build_rmboc(), "m2", "m3", 64)
        assert a.total_cycles == b.total_cycles


class TestChannelLifecycle:
    def test_channel_destroyed_after_use(self):
        arch = build_rmboc()
        arch.ports["m0"].send("m1", 32)
        arch.run_to_completion()
        stats = arch.sim.stats
        assert stats.counter("rmboc.channels.established").value == 1
        assert stats.counter("rmboc.channels.destroyed").value == 1
        assert arch.lanes_in_use() == 0

    def test_back_to_back_messages_reuse_channel(self):
        """With a one-circuit budget, queued messages for the same
        destination share the circuit — only one establishment."""
        arch = build_rmboc(max_channels_per_module=1)
        for _ in range(4):
            arch.ports["m0"].send("m1", 64)
        arch.run_to_completion()
        assert arch.sim.stats.counter("rmboc.channels.established").value == 1

    def test_queued_messages_open_parallel_circuits_by_default(self):
        """Bandwidth adaptation: with the default budget (k), queued
        messages to one destination spread over parallel circuits."""
        arch = build_rmboc()
        for _ in range(4):
            arch.ports["m0"].send("m1", 64)
        arch.run_to_completion()
        assert arch.sim.stats.counter("rmboc.channels.established").value == 4

    def test_linger_keeps_channel_briefly(self):
        arch = build_rmboc(channel_linger=50)
        port = arch.ports["m0"]
        msg = port.send("m1", 32)
        arch.sim.run_until(lambda s: msg.delivered)
        # within the linger window: a second send reuses the circuit
        port.send("m1", 32)
        arch.run_to_completion(max_cycles=10_000)
        assert arch.sim.stats.counter("rmboc.channels.established").value == 1

    def test_idle_when_done(self):
        arch = build_rmboc()
        arch.ports["m0"].send("m3", 16)
        arch.run_to_completion()
        assert arch.idle()

    def test_lanes_freed_after_teardown(self):
        arch = build_rmboc()
        arch.ports["m0"].send("m3", 512)
        arch.run_to_completion()
        assert arch.lanes_in_use() == 0


class TestContention:
    def test_blocked_request_cancels_and_retries(self):
        """With one bus, a second overlapping channel request on the
        same segment must CANCEL and succeed on retry."""
        arch = build_rmboc(num_buses=1)
        arch.ports["m0"].send("m1", 512)
        arch.ports["m1"].send("m0", 512)  # same segment, opposite way
        arch.run_to_completion(max_cycles=50_000)
        stats = arch.sim.stats
        assert stats.counter("rmboc.cancel.blocked").value >= 1
        assert stats.counter("rmboc.channels.established").value == 2
        assert arch.log.all_delivered()

    def test_parallel_channels_on_disjoint_segments(self):
        """Single-bus RMBoC still does disjoint-segment parallelism."""
        arch = build_rmboc(num_buses=1)
        arch.ports["m0"].send("m1", 512)
        arch.ports["m2"].send("m3", 512)
        arch.run_to_completion()
        assert arch.observed_dmax == 2

    def test_bandwidth_adaptation_multiple_channels_per_pair(self):
        """RMBoC's flexibility credit: k parallel circuits per pair."""
        arch = build_rmboc()
        for _ in range(4):
            arch.ports["m0"].send("m1", 512)
        arch.run_to_completion()
        assert arch.sim.stats.counter("rmboc.channels.established").value == 4
        assert arch.observed_dmax == 4

    def test_channel_budget_respected(self):
        arch = build_rmboc(max_channels_per_module=2)
        for _ in range(6):
            arch.ports["m0"].send("m1", 128)
        arch.run_to_completion()
        assert arch.observed_dmax <= 2
        assert arch.log.all_delivered()

    def test_dmax_reaches_s_times_k(self):
        """§4.2: up to s*k = 12 concurrent transfers for m=4, k=4."""
        arch = build_rmboc()
        for i in range(3):
            for _ in range(4):
                arch.ports[f"m{i}"].send(f"m{i+1}", 2048)
        arch.run_to_completion()
        assert arch.observed_dmax == 12


class TestAttachDetach:
    def test_detach_with_queued_messages_raises(self):
        arch = build_rmboc()
        arch.ports["m0"].send("m1", 32)
        with pytest.raises(RuntimeError):
            arch.detach("m0")

    def test_detach_then_attach_new_module(self):
        arch = build_rmboc()
        arch.detach("m2")
        arch.attach("fresh", xp=2)
        msg = arch.ports["m0"].send("fresh", 32)
        arch.run_to_completion()
        assert msg.delivered

    def test_message_waits_for_detached_destination(self):
        arch = build_rmboc()
        arch.detach("m3")
        msg = arch.ports["m0"].send("m3", 32)
        arch.sim.run(200)
        assert not msg.delivered
        arch.attach("m3", xp=3)
        arch.run_to_completion()
        assert msg.delivered

    def test_attach_occupied_crosspoint_raises(self):
        arch = build_rmboc()
        with pytest.raises(ValueError):
            arch.attach("extra", xp=0)

    def test_attach_out_of_range_raises(self):
        arch = build_rmboc()
        arch.detach("m0")
        with pytest.raises(ValueError):
            arch.attach("x", xp=9)

    def test_send_from_unattached_raises(self):
        arch = build_rmboc()
        port = arch.ports["m1"]
        arch.detach("m1")
        with pytest.raises(KeyError):
            port.send("m0", 8)


class TestFreeze:
    def test_frozen_crosspoint_cancels_new_requests(self):
        """§3.1: frozen cross-points serve only established channels."""
        arch = build_rmboc()
        arch.freeze_slot(1)
        msg = arch.ports["m0"].send("m2", 32)  # path crosses XP1
        arch.sim.run(100)
        assert not msg.delivered
        assert arch.sim.stats.counter("rmboc.cancel.frozen").value >= 1
        arch.unfreeze_slot(1)
        arch.run_to_completion()
        assert msg.delivered

    def test_established_channel_survives_freeze(self):
        """Traffic on an existing circuit keeps flowing through a frozen
        cross-point."""
        arch = build_rmboc(channel_linger=10_000)
        msg1 = arch.ports["m0"].send("m2", 64)
        arch.sim.run_until(lambda s: msg1.delivered)
        arch.freeze_slot(1)
        msg2 = arch.ports["m0"].send("m2", 64)  # reuses the circuit
        arch.sim.run_until(lambda s: msg2.delivered, max_cycles=5_000)
        assert msg2.latency == 16  # 64 B = 16 words, no setup

    def test_frozen_source_holds_traffic(self):
        arch = build_rmboc()
        arch.freeze_slot(0)
        msg = arch.ports["m0"].send("m1", 32)
        arch.sim.run(100)
        assert not msg.delivered
        arch.unfreeze_slot(0)
        arch.run_to_completion()
        assert msg.delivered


class TestMetadata:
    def test_descriptor_matches_table1(self):
        from repro.core.parameters import PAPER_TABLE_1

        assert build_rmboc().descriptor() == PAPER_TABLE_1["RMBoC"]

    def test_area_and_fmax(self):
        arch = build_rmboc()
        assert arch.area_slices() == 5084
        assert arch.fmax_hz() == pytest.approx(94e6)

    def test_xp_of(self):
        arch = build_rmboc()
        assert arch.xp_of("m2") == 2
        assert arch.module_at(2) == "m2"
