"""RMBoC deep-contention scenarios: lane exhaustion, crossing traffic,
freeze races — the protocol paths only stress exposes."""

import pytest

from repro.arch.rmboc import build_rmboc
from repro.sim import Tracer


class TestLaneExhaustion:
    def test_middle_segment_is_the_bottleneck(self):
        """All-crossing traffic funnels through segment 1; lane-exact
        accounting keeps it at <= k lanes at all times."""
        arch = build_rmboc(num_buses=2)
        max_lanes_seen = 0

        def probe(sim):
            nonlocal max_lanes_seen
            used = sum(
                1 for owner in arch._lanes[1] if owner is not None
            )
            max_lanes_seen = max(max_lanes_seen, used)
            if not arch.idle():
                sim.after(1, probe)

        for _ in range(3):
            arch.ports["m0"].send("m2", 256)
            arch.ports["m1"].send("m3", 256)
            arch.ports["m3"].send("m0", 256)
        arch.sim.after(0, probe)
        arch.run_to_completion(max_cycles=200_000)
        assert arch.log.all_delivered()
        assert 0 < max_lanes_seen <= 2

    def test_all_lanes_busy_forces_cancel_then_success(self):
        arch = build_rmboc(num_buses=1)
        first = arch.ports["m0"].send("m3", 2048)   # holds every segment
        arch.sim.run(20)
        second = arch.ports["m1"].send("m2", 64)    # must wait
        arch.run_to_completion(max_cycles=200_000)
        assert first.delivered and second.delivered
        assert second.delivered_cycle > first.delivered_cycle - 512
        assert arch.sim.stats.counter("rmboc.cancel.blocked").value >= 1

    def test_opposite_directions_share_lanes(self):
        """Lanes are direction-agnostic: m0->m3 and m3->m0 both need
        full paths; with one bus they strictly serialize."""
        arch = build_rmboc(num_buses=1)
        a = arch.ports["m0"].send("m3", 512)
        b = arch.ports["m3"].send("m0", 512)
        arch.run_to_completion(max_cycles=200_000)
        # transfers cannot overlap on any shared segment
        overlap = min(a.delivered_cycle, b.delivered_cycle) - max(
            a.accepted_cycle, b.accepted_cycle
        )
        assert overlap <= 0


class TestFreezeRaces:
    def test_freeze_after_reservation_cancels_inflight_request(self):
        """A request already past a cross-point when it freezes still
        dies there and releases its partial reservation."""
        arch = build_rmboc()
        arch.sim.tracer = Tracer()
        msg = arch.ports["m0"].send("m3", 64)
        arch.sim.run(3)                # request processed at XP0, en route
        arch.freeze_slot(2)            # freeze ahead of it
        arch.sim.run(100)
        assert not msg.delivered
        assert arch.lanes_in_use() == 0  # partial reservation rolled back
        arch.unfreeze_slot(2)
        arch.run_to_completion(max_cycles=200_000)
        assert msg.delivered

    def test_freeze_every_slot_stalls_everything(self):
        arch = build_rmboc()
        for xp in range(4):
            arch.freeze_slot(xp)
        msg = arch.ports["m0"].send("m1", 16)
        arch.sim.run(300)
        assert not msg.delivered
        for xp in range(4):
            arch.unfreeze_slot(xp)
        arch.run_to_completion()
        assert msg.delivered


class TestProtocolAccounting:
    def test_every_request_terminates(self):
        """requested == established + cancelled at quiescence, for a
        messy mixed workload."""
        arch = build_rmboc(num_buses=2)
        for i in range(4):
            for j in range(4):
                if i != j:
                    arch.ports[f"m{i}"].send(f"m{j}", 96)
        arch.run_to_completion(max_cycles=500_000)
        stats = arch.sim.stats
        requested = stats.counter("rmboc.channels.requested").value
        established = stats.counter("rmboc.channels.established").value
        cancelled = stats.counter("rmboc.channels.cancelled").value
        assert requested == established + cancelled
        assert established == stats.counter("rmboc.channels.destroyed").value

    def test_trace_shows_retry_chain(self):
        arch = build_rmboc(num_buses=1)
        arch.sim.tracer = Tracer()
        arch.ports["m0"].send("m2", 512)
        arch.ports["m2"].send("m0", 512)
        arch.run_to_completion(max_cycles=200_000)
        tracer = arch.sim.tracer
        cancels = tracer.query(kind="cancel")
        if cancels:  # a cancel implies a later re-request of that pair
            first_cancel = cancels[0].cycle
            later_requests = tracer.query(kind="request",
                                          since=first_cancel + 1)
            assert later_requests
