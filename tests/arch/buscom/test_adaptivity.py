"""Adaptive-arbiter tests: demand-proportional slot reallocation."""

import pytest

from repro.arch.buscom import build_buscom
from repro.arch.buscom.adaptivity import AdaptiveArbiter
from repro.arch.buscom.schedule import SlotKind
from repro.sim import make_rng
from repro.traffic.generators import PeriodicStream, RandomTraffic
from repro.traffic.patterns import uniform_chooser


def static_share(arch, module):
    return len(arch.table.static_slots_of(module))


class TestTargetShares:
    def test_even_split_without_demand(self):
        arch = build_buscom()
        ctl = AdaptiveArbiter("ctl", arch)
        arch.sim.add(ctl)
        arch.sim.run(10)
        shares = ctl.target_shares()
        assert sum(shares.values()) == 64  # 16 static x 4 buses
        assert max(shares.values()) - min(shares.values()) <= 1

    def test_demand_proportional(self):
        arch = build_buscom()
        ctl = AdaptiveArbiter("ctl", arch, min_slots_per_module=2)
        arch.sim.add(ctl)
        # m0 has a huge backlog (stalled by absent destination is not an
        # option here, so use a frozen module to hold its queue)
        arch.freeze_module("m0")
        for _ in range(4):
            arch.ports["m0"].send("m1", 2048)
        arch.sim.run(50)
        shares = ctl.target_shares()
        assert shares["m0"] > shares["m1"]
        assert min(shares.values()) >= 2  # the floor

    def test_share_total_preserved(self):
        arch = build_buscom()
        ctl = AdaptiveArbiter("ctl", arch)
        arch.sim.add(ctl)
        arch.freeze_module("m2")
        arch.ports["m2"].send("m3", 1024)
        arch.sim.run(20)
        shares = ctl.target_shares()
        assert sum(shares.values()) == 64


class TestAdaptationLoop:
    def _run_skewed(self, adaptive):
        arch = build_buscom()
        sim = arch.sim
        if adaptive:
            sim.add(AdaptiveArbiter("ctl", arch, epoch_cycles=1024,
                                    min_slots_per_module=1))
        # m0 streams heavily; others nearly silent
        sim.add(PeriodicStream("hot", arch.ports["m0"], "m1",
                               period=25, payload_bytes=72, stop=12_000))
        sim.add(RandomTraffic(
            "bg", arch.ports["m2"],
            uniform_chooser("m2", list(arch.modules), make_rng(1, "c")),
            make_rng(1, "r"), rate=0.002, payload_bytes=16, stop=12_000))
        sim.run(12_000)
        sim.run_until(lambda s: arch.log.all_delivered() and arch.idle(),
                      max_cycles=400_000)
        hot = [m.latency for m in arch.log.delivered() if m.src == "m0"
               and m.created_cycle > 4096]
        return arch, sum(hot) / len(hot)

    def test_adaptation_rebalances_shares(self):
        arch, _ = self._run_skewed(adaptive=True)
        assert static_share(arch, "m0") > static_share(arch, "m3")
        assert arch.sim.stats.counter(
            "buscom.adaptivity.slots_moved").value > 0

    def test_adaptation_reduces_hot_stream_latency(self):
        _, static_lat = self._run_skewed(adaptive=False)
        _, adaptive_lat = self._run_skewed(adaptive=True)
        assert adaptive_lat < static_lat

    def test_total_static_slot_count_invariant(self):
        arch, _ = self._run_skewed(adaptive=True)
        statics = sum(
            1
            for b in range(arch.table.num_buses)
            for s in range(arch.table.slots_per_bus)
            if arch.table.entry(b, s).kind is SlotKind.STATIC
        )
        assert statics == 64

    def test_hysteresis_prevents_flapping_when_balanced(self):
        arch = build_buscom()
        sim = arch.sim
        ctl = AdaptiveArbiter("ctl", arch, epoch_cycles=512,
                              hysteresis=0.2)
        sim.add(ctl)
        # perfectly symmetric light traffic
        for i in range(4):
            sim.add(PeriodicStream(f"s{i}", arch.ports[f"m{i}"],
                                   f"m{(i + 1) % 4}", period=200,
                                   payload_bytes=16, stop=8_000))
        sim.run(8_000)
        assert ctl.adaptations == 0


class TestValidation:
    def test_invalid_params_raise(self):
        arch = build_buscom()
        with pytest.raises(ValueError):
            AdaptiveArbiter("c", arch, epoch_cycles=0)
        with pytest.raises(ValueError):
            AdaptiveArbiter("c", arch, hysteresis=1.0)
        with pytest.raises(ValueError):
            AdaptiveArbiter("c", arch, min_slots_per_module=-1)

    def test_backlog_accounting(self):
        arch = build_buscom()
        arch.freeze_module("m0")
        arch.ports["m0"].send("m1", 100)
        assert arch.backlog_bytes("m0") == 100
        with pytest.raises(KeyError):
            arch.backlog_bytes("ghost")
