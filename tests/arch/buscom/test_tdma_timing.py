"""Exact TDMA timing arithmetic: slot starts, round progression,
frame landing cycles."""

import pytest

from repro.arch.buscom import BusComConfig, SlotTable, build_buscom


class TestSlotProgression:
    def test_first_static_slot_frame_timing(self):
        """A frame in bus 0 slot 0 lands exactly guard + header +
        payload_words - 1 cycles after the slot opens."""
        cfg = BusComConfig()
        arch = build_buscom()
        msg = arch.ports["m0"].send("m1", 72)  # m0 owns bus0 slot0
        arch.sim.run_until(lambda s: msg.delivered, max_cycles=100)
        expected = cfg.guard_cycles + cfg.header_words + \
            cfg.payload_words(72) - 1
        assert msg.delivered_cycle == expected

    def test_idle_static_slot_still_burns_full_duration(self):
        """With no traffic at all, the wheel turns at fixed speed: the
        first slot of round 2 starts exactly max_round... for an
        all-idle bus: 16 static x 20 + 16 minislots x 1 = 336 cycles."""
        arch = build_buscom()
        sim = arch.sim
        sim.run(336)
        # inject exactly when m0's slot 0 of round 2 opens: latency is
        # identical to a cycle-0 injection
        msg = arch.ports["m0"].send("m1", 72)
        arch.run_to_completion()
        ref = build_buscom()
        ref_msg = ref.ports["m0"].send("m1", 72)
        ref.run_to_completion()
        assert msg.latency == ref_msg.latency

    def test_round_rotation_gives_every_bus_same_schedule_shape(self):
        """Each module owns exactly static_slots/modules slots per bus."""
        arch = build_buscom()
        for m in arch.modules:
            per_bus = {}
            for b, s in arch.table.static_slots_of(m):
                per_bus[b] = per_bus.get(b, 0) + 1
            assert per_bus == {0: 4, 1: 4, 2: 4, 3: 4}

    def test_cross_bus_offset_reduces_worst_wait(self):
        """The rotated tables put some m0 slot near the wheel position
        on *some* bus — worst wait is far below a full round."""
        arch = build_buscom()
        worst = 0
        for offset in range(0, 330, 37):
            a = build_buscom()
            a.sim.run(offset)
            msg = a.ports["m0"].send("m1", 8)
            a.run_to_completion(max_cycles=10_000)
            worst = max(worst, msg.latency)
        assert worst < a.cfg.max_round_cycles / 2


class TestGuardAndHeader:
    def test_zero_guard_shrinks_slot(self):
        cfg = BusComConfig(guard_cycles=0)
        assert cfg.static_slot_cycles == 19

    def test_wide_bus_shrinks_header(self):
        """A 64-bit bus still needs one header word for 20 bits."""
        cfg = BusComConfig(width=64)
        assert cfg.header_words == 1

    def test_narrow_bus_grows_header(self):
        cfg = BusComConfig(width=8)
        assert cfg.header_words == 3  # 20 bits over 8-bit words

    def test_efficiency_rises_on_narrow_bus(self):
        """Counter-intuitive but correct: on a narrow bus the payload
        needs many words while the 20-bit header still fits in a few,
        so the header amortizes *better* (0.947 @8 bit vs 0.900 @32)."""
        assert (BusComConfig(width=8).static_efficiency
                > BusComConfig(width=32).static_efficiency)


class TestSingleBusSerialization:
    def test_two_senders_interleave_by_slot_ownership(self):
        """On one bus, frames appear strictly in slot-table order."""
        table = SlotTable(1, 4)
        table.set_static(0, 0, "m0")
        table.set_static(0, 1, "m1")
        table.set_static(0, 2, "m0")
        table.set_static(0, 3, "m1")
        arch = build_buscom(num_buses=1, table=table)
        arch.sim.tracer = None
        from repro.sim import Tracer

        arch.sim.tracer = Tracer()
        arch.ports["m0"].send("m2", 200)  # several frames
        arch.ports["m1"].send("m3", 200)
        arch.run_to_completion(max_cycles=10_000)
        frames = arch.sim.tracer.query(source="buscom", kind="frame")
        senders = [f.data["src"] for f in frames]
        # strict alternation m0, m1, m0, m1 ... per the table
        assert senders[:4] == ["m0", "m1", "m0", "m1"]
