"""Slot-table tests."""

import pytest

from repro.arch.buscom import SlotKind, SlotTable
from repro.arch.buscom.schedule import SlotEntry


class TestSlotEntry:
    def test_static_needs_owner(self):
        with pytest.raises(ValueError):
            SlotEntry(SlotKind.STATIC)

    def test_dynamic_rejects_owner(self):
        with pytest.raises(ValueError):
            SlotEntry(SlotKind.DYNAMIC, owner="m0")


class TestSlotTable:
    def test_all_dynamic_initially(self):
        t = SlotTable(2, 4)
        for b in range(2):
            for s in range(4):
                assert t.entry(b, s).kind is SlotKind.DYNAMIC

    def test_set_static_and_back(self):
        t = SlotTable(1, 4)
        t.set_static(0, 2, "m1")
        assert t.entry(0, 2).owner == "m1"
        t.set_dynamic(0, 2)
        assert t.entry(0, 2).kind is SlotKind.DYNAMIC

    def test_static_slots_of(self):
        t = SlotTable(2, 4)
        t.set_static(0, 0, "a")
        t.set_static(1, 3, "a")
        t.set_static(0, 1, "b")
        assert t.static_slots_of("a") == [(0, 0), (1, 3)]

    def test_bandwidth_share(self):
        t = SlotTable(1, 4)
        t.set_static(0, 0, "a")
        t.set_static(0, 1, "a")
        t.set_static(0, 2, "b")
        assert t.bandwidth_share("a") == pytest.approx(2 / 3)
        assert t.bandwidth_share("ghost") == 0.0

    def test_bandwidth_share_no_static(self):
        assert SlotTable(1, 4).bandwidth_share("a") == 0.0

    def test_owners(self):
        t = SlotTable(1, 4)
        t.set_static(0, 0, "a")
        t.set_static(0, 1, "a")
        assert t.owners() == {"a": 2}

    def test_drop_module(self):
        t = SlotTable(2, 4)
        t.set_static(0, 0, "a")
        t.set_static(1, 1, "a")
        assert t.drop_module("a") == 2
        assert t.owners() == {}

    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            SlotTable(0, 4)


class TestRoundRobin:
    def test_paper_dimensions(self):
        """§3.1: 32 time slots per bus."""
        modules = [f"m{i}" for i in range(4)]
        t = SlotTable.round_robin(4, 32, 16, modules)
        assert t.num_buses == 4 and t.slots_per_bus == 32

    def test_fair_shares(self):
        modules = [f"m{i}" for i in range(4)]
        t = SlotTable.round_robin(4, 32, 16, modules)
        shares = [t.bandwidth_share(m) for m in modules]
        assert all(s == pytest.approx(0.25) for s in shares)

    def test_static_dynamic_split(self):
        modules = ["a", "b"]
        t = SlotTable.round_robin(1, 32, 10, modules)
        statics = sum(
            1 for s in range(32) if t.entry(0, s).kind is SlotKind.STATIC
        )
        assert statics == 10

    def test_every_module_owns_a_slot_on_every_bus(self):
        """Rotation offsets mean no bus starves any module."""
        modules = [f"m{i}" for i in range(4)]
        t = SlotTable.round_robin(4, 32, 16, modules)
        for m in modules:
            buses = {b for b, _ in t.static_slots_of(m)}
            assert buses == {0, 1, 2, 3}

    def test_empty_modules_all_dynamic(self):
        t = SlotTable.round_robin(2, 8, 4, [])
        assert t.owners() == {}
