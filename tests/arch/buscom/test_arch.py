"""BUS-COM behavioural tests: TDMA arbitration, framing, adaptation."""

import pytest

from repro.arch.buscom import BusComConfig, SlotTable, build_buscom


class TestConfig:
    def test_paper_defaults(self):
        cfg = BusComConfig()
        assert cfg.slots_per_bus == 32
        assert cfg.header_bits == 20
        assert cfg.max_dynamic_payload == 256

    def test_static_efficiency_is_90pct(self):
        """§4.2: effective bandwidth ~90 % — by construction of the
        72-byte static slot (18 payload words per 20-cycle slot)."""
        assert BusComConfig().static_efficiency == pytest.approx(0.90)

    def test_slot_cycles(self):
        cfg = BusComConfig()
        assert cfg.static_slot_cycles == 20
        assert cfg.dynamic_slot_cycles(256) == 1 + 1 + 64

    def test_oversized_dynamic_payload_raises(self):
        with pytest.raises(ValueError):
            BusComConfig().dynamic_slot_cycles(257)

    def test_dmax_is_k(self):
        """§4.2: BUS-COM only supports d_max = k channels per time."""
        assert BusComConfig(num_buses=4).theoretical_dmax == 4

    @pytest.mark.parametrize("kw", [
        {"num_modules": 1},
        {"num_buses": 0},
        {"static_slots": 33},
        {"width": 0},
        {"static_payload_bytes": 0},
        {"guard_cycles": -1},
    ])
    def test_invalid_raises(self, kw):
        with pytest.raises(ValueError):
            BusComConfig(**kw)


class TestTransport:
    def test_single_message_delivered(self):
        arch = build_buscom()
        msg = arch.ports["m0"].send("m1", 64)
        arch.run_to_completion()
        assert msg.delivered

    def test_large_message_fragments_over_slots(self):
        """A 720-byte message needs ten 72-byte static frames."""
        arch = build_buscom()
        msg = arch.ports["m0"].send("m1", 720)
        arch.run_to_completion()
        assert msg.delivered
        assert arch.sim.stats.counter("buscom.frames").value >= 10

    def test_all_pairs_traffic(self):
        arch = build_buscom()
        for i in range(4):
            for j in range(4):
                if i != j:
                    arch.ports[f"m{i}"].send(f"m{j}", 72)
        arch.run_to_completion()
        assert arch.log.all_delivered()

    def test_parallelism_bounded_by_k(self):
        arch = build_buscom()
        for i in range(4):
            arch.ports[f"m{i}"].send(f"m{(i + 1) % 4}", 720)
        arch.run_to_completion()
        assert arch.observed_dmax == 4

    def test_fewer_buses_less_parallelism(self):
        arch = build_buscom(num_buses=2)
        for i in range(4):
            arch.ports[f"m{i}"].send(f"m{(i + 1) % 4}", 720)
        arch.run_to_completion()
        assert arch.observed_dmax <= 2

    def test_static_slot_waits_for_owner_turn(self):
        """A message sent right after the owner's slot passed waits for
        the next round."""
        arch = build_buscom()
        sim = arch.sim
        # let the TDMA wheel advance past m0's first slots
        sim.run(100)
        msg = arch.ports["m0"].send("m1", 16)
        arch.run_to_completion()
        assert msg.delivered
        assert msg.latency >= 1

    def test_bus_utilization_reported(self):
        arch = build_buscom()
        arch.ports["m0"].send("m1", 720)
        arch.run_to_completion()
        util = arch.bus_utilization()
        assert len(util) == 4
        assert any(u > 0 for u in util)


class TestDynamicSegment:
    def test_dynamic_slots_carry_traffic_without_static(self):
        """With an all-dynamic table, priority arbitration still
        delivers everything."""
        table = SlotTable(4, 32)  # all dynamic
        arch = build_buscom(table=table)
        for i in range(4):
            arch.ports[f"m{i}"].send(f"m{(i + 1) % 4}", 100)
        arch.run_to_completion()
        assert arch.log.all_delivered()

    def test_priority_order_wins_dynamic_grants(self):
        table = SlotTable(1, 8)  # single all-dynamic bus
        arch = build_buscom(num_buses=1, table=table)
        lo = arch.ports["m3"].send("m0", 256)
        hi = arch.ports["m0"].send("m1", 256)
        arch.run_to_completion()
        # m0 is highest priority by default attachment order
        assert hi.delivered_cycle < lo.delivered_cycle

    def test_set_priorities_changes_winner(self):
        table = SlotTable(1, 8)
        arch = build_buscom(num_buses=1, table=table)
        arch.set_priorities(["m3", "m2", "m1", "m0"])
        lo = arch.ports["m0"].send("m1", 256)
        hi = arch.ports["m3"].send("m0", 256)
        arch.run_to_completion()
        assert hi.delivered_cycle < lo.delivered_cycle

    def test_set_priorities_validates_permutation(self):
        arch = build_buscom()
        with pytest.raises(ValueError):
            arch.set_priorities(["m0", "m1"])

    def test_dynamic_payload_capped_at_256(self):
        """A 300-byte message in an all-dynamic table needs 2 frames."""
        table = SlotTable(1, 4)
        arch = build_buscom(num_buses=1, table=table)
        msg = arch.ports["m0"].send("m1", 300)
        arch.run_to_completion()
        assert msg.delivered
        assert arch.sim.stats.counter("buscom.frames").value == 2


class TestRuntimeAdaptation:
    def test_reassign_slot_takes_effect_after_latency(self):
        """§3.1: slot assignment changed by dynamic reconfiguration."""
        arch = build_buscom()
        sim = arch.sim
        arch.reassign_slot(0, 0, "m2")
        assert arch.table.entry(0, 0).owner != "m2" or True  # not yet applied
        sim.run(arch.cfg.reassign_latency + 2)
        assert arch.table.entry(0, 0).owner == "m2"
        assert sim.stats.counter("buscom.slots.reassigned").value == 1

    def test_reassign_to_dynamic(self):
        arch = build_buscom()
        arch.reassign_slot(1, 3, None)
        arch.sim.run(arch.cfg.reassign_latency + 2)
        from repro.arch.buscom import SlotKind

        assert arch.table.entry(1, 3).kind is SlotKind.DYNAMIC

    def test_more_slots_more_bandwidth(self):
        """Granting m0 every static slot of bus 0 speeds up its large
        transfer versus the fair table."""
        def run(table):
            arch = build_buscom(table=table)
            msg = arch.ports["m0"].send("m1", 1440)
            arch.run_to_completion()
            return msg.latency

        fair = SlotTable.round_robin(4, 32, 16, [f"m{i}" for i in range(4)])
        greedy = SlotTable.round_robin(4, 32, 16, [f"m{i}" for i in range(4)])
        for s in range(16):
            greedy.set_static(0, s, "m0")
        assert run(greedy) < run(fair)


class TestFreezeAndLifecycle:
    def test_frozen_module_holds_traffic(self):
        arch = build_buscom()
        arch.freeze_module("m0")
        msg = arch.ports["m0"].send("m1", 16)
        arch.sim.run(200)
        assert not msg.delivered
        arch.unfreeze_module("m0")
        arch.run_to_completion()
        assert msg.delivered

    def test_freeze_unknown_raises(self):
        arch = build_buscom()
        with pytest.raises(KeyError):
            arch.freeze_module("ghost")

    def test_detach_with_queue_raises(self):
        arch = build_buscom()
        arch.freeze_module("m0")
        arch.ports["m0"].send("m1", 16)
        with pytest.raises(RuntimeError):
            arch.detach("m0")

    def test_message_to_detached_destination_waits(self):
        arch = build_buscom()
        arch.detach("m3")
        msg = arch.ports["m0"].send("m3", 16)
        arch.sim.run(300)
        assert not msg.delivered
        arch.attach("m3")
        arch.run_to_completion()
        assert msg.delivered

    def test_metadata(self):
        from repro.core.parameters import PAPER_TABLE_1

        arch = build_buscom()
        assert arch.descriptor() == PAPER_TABLE_1["BUS-COM"]
        assert arch.area_slices() == 1294
        assert arch.fmax_hz() == pytest.approx(66e6)


class TestFlexRayDiscipline:
    def test_rt_traffic_bypasses_bulk_backlog(self):
        """A module's tagged real-time frame overtakes its own queued
        bulk transfer (split interface buffers)."""
        arch = build_buscom()
        bulk = arch.ports["m0"].send("m1", 2048)           # bulk
        rt = arch.ports["m0"].send("m1", 8, tag="ctrl")    # real-time
        arch.run_to_completion()
        assert rt.delivered_cycle < bulk.delivered_cycle

    def test_untagged_goes_to_bulk(self):
        arch = build_buscom()
        arch.freeze_module("m0")
        arch.ports["m0"].send("m1", 100)
        arch.ports["m0"].send("m1", 8, tag="stream")
        assert arch.backlog_bytes("m0") == 108

    def test_round_length_bounded_under_saturation(self):
        """The FlexRay property: bulk saturation cannot stretch the
        round beyond max_round_cycles, so a static-slot owner's frame
        meets the one-round bound."""
        arch = build_buscom()
        cfg = arch.cfg
        # saturate bulk from two modules
        for _ in range(20):
            arch.ports["m1"].send("m2", 256)
            arch.ports["m2"].send("m3", 256)
        arch.sim.run(500)
        msg = arch.ports["m0"].send("m3", 8, tag="ctrl")
        arch.run_to_completion(max_cycles=500_000)
        assert msg.latency <= cfg.max_round_cycles + cfg.static_slot_cycles

    def test_dynamic_budget_limits_bulk_share(self):
        """Dynamic frames never exceed the per-round budget."""
        arch = build_buscom(dynamic_segment_cycles=80)
        for _ in range(10):
            arch.ports["m0"].send("m1", 256)
        arch.run_to_completion(max_cycles=500_000)
        assert arch.log.all_delivered()

    def test_zero_dynamic_budget_blocks_bulk(self):
        """With no dynamic budget, bulk traffic cannot move at all (it
        is not eligible for static slots of other... it IS eligible for
        the sender's own static slots, which still serve it)."""
        arch = build_buscom(dynamic_segment_cycles=0)
        msg = arch.ports["m0"].send("m1", 72)
        arch.run_to_completion(max_cycles=100_000)
        assert msg.delivered  # static slots serve bulk when rt is empty
