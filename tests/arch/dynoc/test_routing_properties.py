"""Property-based tests: S-XY delivery under DyNoC's placement rule.

The DyNoC guarantee — the network stays connected and packets arrive —
holds when every module is *completely surrounded* by routers. We
generate random placements obeying that rule (margin 1 from the border,
1-router corridors between modules) and assert S-XY delivers between
all free routers.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.arch.dynoc.routing import trace_route


@st.composite
def surrounded_placements(draw):
    cols = draw(st.integers(6, 12))
    rows = draw(st.integers(6, 12))
    n_obstacles = draw(st.integers(1, 3))
    rects = []
    for _ in range(n_obstacles):
        w = draw(st.integers(1, 3))
        h = draw(st.integers(1, 3))
        x = draw(st.integers(1, max(1, cols - w - 1)))
        y = draw(st.integers(1, max(1, rows - h - 1)))
        rect = (x, y, w, h)
        # enforce 1-router corridors between modules
        ok = all(
            x + w < ox or ox + ow < x or y + h < oy or oy + oh < y
            for ox, oy, ow, oh in rects
        )
        if ok:
            rects.append(rect)
    assume(rects)
    return cols, rows, rects


def _active_and_extent(cols, rows, rects):
    blocked = {
        (xx, yy)
        for x, y, w, h in rects
        for yy in range(y, y + h)
        for xx in range(x, x + w)
    }

    def active(c):
        x, y = c
        return 0 <= x < cols and 0 <= y < rows and c not in blocked

    def extent(c):
        for x, y, w, h in rects:
            if x <= c[0] < x + w and y <= c[1] < y + h:
                return (y, y + h - 1, x, x + w - 1)
        return None

    return active, extent, blocked


@given(data=surrounded_placements(), pick=st.randoms(use_true_random=False))
@settings(max_examples=120, deadline=None)
def test_sxy_delivers_between_random_free_routers(data, pick):
    cols, rows, rects = data
    active, extent, blocked = _active_and_extent(cols, rows, rects)
    free = [
        (x, y) for x in range(cols) for y in range(rows)
        if (x, y) not in blocked
    ]
    src = pick.choice(free)
    dst = pick.choice(free)
    if src == dst:
        return
    path = trace_route(src, dst, active, extent,
                       max_hops=8 * (cols + rows))
    assert path[0] == src and path[-1] == dst
    # every hop is between orthogonal neighbours on active routers
    for a, b in zip(path, path[1:]):
        assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1
        assert active(b)


@given(data=surrounded_placements())
@settings(max_examples=60, deadline=None)
def test_sxy_path_length_bounded(data):
    """Paths never exceed a small multiple of the Manhattan distance
    plus the total obstacle perimeter."""
    cols, rows, rects = data
    active, extent, blocked = _active_and_extent(cols, rows, rects)
    src, dst = (0, 0), (cols - 1, rows - 1)
    path = trace_route(src, dst, active, extent, max_hops=8 * (cols + rows))
    manhattan = abs(dst[0] - src[0]) + abs(dst[1] - src[1])
    perimeter = sum(2 * (w + h) for _, _, w, h in rects)
    assert len(path) - 1 <= manhattan + 2 * perimeter + 4
