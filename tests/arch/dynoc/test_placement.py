"""Online DyNoC placement integration tests."""

import pytest

from repro.arch import build_architecture
from repro.arch.dynoc.placement import (
    candidate_positions,
    detour_cost,
    place_module_online,
    placer_for,
)
from repro.fabric.geometry import Rect
from repro.reconfig.placement import PlacementError


def mesh(cols=8, rows=8):
    return build_architecture("dynoc", num_modules=0, mesh=(cols, rows))


class TestPlacerFor:
    def test_seeds_existing_placements(self):
        arch = mesh()
        arch.attach("a", rect=Rect(2, 2, 2, 2))
        placer = placer_for(arch)
        assert "a" in placer.placements

    def test_margin_and_gap_rules(self):
        arch = mesh()
        placer = placer_for(arch)
        assert placer.margin == 1 and placer.gap == 1


class TestCandidates:
    def test_scan_order(self):
        arch = mesh()
        placer = placer_for(arch)
        cands = list(candidate_positions(placer, 2, 2))
        assert cands[0] == Rect(1, 1, 2, 2)
        assert all(
            1 <= r.x and r.x2 <= 7 and 1 <= r.y and r.y2 <= 7
            for r in cands
        )

    def test_no_candidates_when_full(self):
        arch = mesh(5, 5)
        placer = placer_for(arch)
        placer.commit("big", Rect(1, 1, 3, 3))
        assert list(candidate_positions(placer, 2, 2)) == []


class TestDetourCost:
    def test_cost_zero_without_endpoints(self):
        arch = mesh()
        assert detour_cost(arch, Rect(2, 2, 2, 2)) == 0

    def test_blocking_rect_costs_more(self):
        arch = mesh(9, 5)
        arch.attach("src", rect=Rect(0, 2, 1, 1))
        arch.attach("dst", rect=Rect(8, 2, 1, 1))
        on_path = detour_cost(arch, Rect(4, 1, 2, 3))
        off_path = detour_cost(arch, Rect(4, 3, 2, 1).expand(0))
        assert on_path is not None and off_path is not None
        assert on_path > off_path


class TestOnlinePlacement:
    def test_places_and_attaches(self):
        arch = mesh()
        rect = place_module_online(arch, "job", 2, 2)
        assert "job" in arch.modules
        assert arch.placement_of("job").rect == rect

    def test_traffic_flows_after_placement(self):
        arch = mesh()
        arch.attach("src", rect=Rect(0, 3, 1, 1))
        arch.attach("dst", rect=Rect(7, 3, 1, 1))
        place_module_online(arch, "job", 3, 3)
        msg = arch.ports["src"].send("dst", 32)
        arch.run_to_completion()
        assert msg.delivered

    def test_minimize_detour_prefers_off_path(self):
        arch = mesh(9, 5)
        arch.attach("src", rect=Rect(0, 2, 1, 1))
        arch.attach("dst", rect=Rect(8, 2, 1, 1))
        rect = place_module_online(arch, "job", 2, 1,
                                   minimize_detour=True)
        # a 2x1 module fits off the src-dst row; the chooser must avoid
        # covering row 2 head-on
        cost_after = detour_cost(arch, Rect(1, 1, 1, 1))  # probe only
        assert not (rect.y <= 2 < rect.y2 and 1 <= rect.x <= 7) or \
            cost_after is not None

    def test_no_space_raises(self):
        arch = mesh(5, 5)
        place_module_online(arch, "a", 3, 3)
        with pytest.raises(PlacementError):
            place_module_online(arch, "b", 3, 3)

    def test_sequential_fill(self):
        arch = mesh(10, 10)
        names = []
        for i in range(4):
            place_module_online(arch, f"j{i}", 2, 2)
            names.append(f"j{i}")
        rects = [arch.placement_of(n).rect for n in names]
        for a in rects:
            for b in rects:
                if a != b:
                    assert not a.overlaps(b)
                    assert not a.adjacent(b)  # gap rule preserved
