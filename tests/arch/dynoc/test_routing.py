"""S-XY routing unit tests (pure, no simulator)."""

import pytest

from repro.arch.dynoc.routing import (
    Mode,
    NORMAL,
    RouteState,
    RoutingError,
    sxy_next,
    trace_route,
)


def mesh_active(cols, rows, obstacles=()):
    """Active predicate for a cols x rows mesh minus obstacle cells."""
    blocked = set()
    for rect in obstacles:
        x, y, w, h = rect
        for yy in range(y, y + h):
            for xx in range(x, x + w):
                blocked.add((xx, yy))

    def active(c):
        x, y = c
        return 0 <= x < cols and 0 <= y < rows and c not in blocked

    def extent(c):
        for rect in obstacles:
            x, y, w, h = rect
            if x <= c[0] < x + w and y <= c[1] < y + h:
                return (y, y + h - 1, x, x + w - 1)
        return None

    return active, extent


class TestPlainXY:
    def test_x_first(self):
        active, _ = mesh_active(5, 5)
        nxt, state = sxy_next((0, 0), (3, 3), NORMAL, active)
        assert nxt == (1, 0)
        assert state.mode is Mode.NORMAL

    def test_then_y(self):
        active, _ = mesh_active(5, 5)
        nxt, _ = sxy_next((3, 0), (3, 3), NORMAL, active)
        assert nxt == (3, 1)

    def test_west_and_south(self):
        active, _ = mesh_active(5, 5)
        assert sxy_next((3, 3), (0, 3), NORMAL, active)[0] == (2, 3)
        assert sxy_next((3, 3), (3, 0), NORMAL, active)[0] == (3, 2)

    def test_at_destination_raises(self):
        active, _ = mesh_active(3, 3)
        with pytest.raises(ValueError):
            sxy_next((1, 1), (1, 1), NORMAL, active)

    def test_trace_route_straight_line(self):
        active, _ = mesh_active(5, 5)
        path = trace_route((0, 2), (4, 2), active)
        assert path == [(0, 2), (1, 2), (2, 2), (3, 2), (4, 2)]

    def test_trace_route_xy_shape(self):
        active, _ = mesh_active(5, 5)
        path = trace_route((0, 0), (2, 2), active)
        assert path == [(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)]


class TestSurroundHorizontal:
    def test_detours_around_obstacle(self):
        """Obstacle straddles the straight path; S-XY goes around and
        arrives."""
        active, extent = mesh_active(7, 5, obstacles=[(2, 1, 2, 2)])
        path = trace_route((0, 2), (6, 2), active, extent)
        assert path[0] == (0, 2) and path[-1] == (6, 2)
        assert all(active(c) for c in path)

    def test_same_row_detour_prefers_near_edge(self):
        """Destination in the blocked row: detour exits over the nearer
        obstacle edge (extent knowledge)."""
        active, extent = mesh_active(7, 7, obstacles=[(2, 1, 2, 4)])
        # at row 4 the top edge (y=4) is nearer than the bottom (y=1)
        nxt, state = sxy_next((1, 4), (6, 4), NORMAL, active, extent)
        assert state.mode is Mode.SURROUND_H
        assert nxt == (1, 5)

    def test_surround_resumes_after_clearing(self):
        active, extent = mesh_active(7, 5, obstacles=[(2, 1, 2, 2)])
        state = RouteState(Mode.SURROUND_H, dir_x=1, dir_y=1)
        # at (1, 3): obstacle top edge is y=2, so (2, 3) is clear -> resume
        nxt, new_state = sxy_next((1, 3), (6, 2), state, active, extent)
        assert nxt == (2, 3)
        assert new_state.mode is Mode.NORMAL


class TestSurroundVertical:
    def test_detours_in_destination_column(self):
        """Blocked while travelling Y in the destination column."""
        active, extent = mesh_active(5, 7, obstacles=[(1, 2, 2, 2)])
        path = trace_route((1, 0), (1, 6), active, extent)
        assert path[-1] == (1, 6)
        assert all(active(c) for c in path)

    def test_enters_sv_mode(self):
        active, extent = mesh_active(5, 7, obstacles=[(1, 2, 2, 2)])
        nxt, state = sxy_next((1, 1), (1, 6), NORMAL, active, extent)
        assert state.mode is Mode.SURROUND_V
        assert nxt in ((0, 1), (2, 1))


class TestRobustness:
    def test_boxed_in_raises(self):
        """A source with all four neighbours blocked cannot route."""
        active, extent = mesh_active(3, 3, obstacles=[(0, 0, 3, 3)])

        def only_center(c):
            return c == (1, 1)

        with pytest.raises(RoutingError):
            sxy_next((1, 1), (2, 2), NORMAL, only_center)

    def test_livelock_detected_not_hung(self):
        """trace_route terminates with an error on a pathological
        concave pocket rather than looping forever."""
        # U-shaped trap built from three obstacles
        active, extent = mesh_active(
            9, 9, obstacles=[(3, 2, 1, 4), (5, 2, 1, 4), (3, 5, 3, 1)]
        )
        try:
            path = trace_route((4, 3), (8, 8), active, extent, max_hops=200)
            assert path[-1] == (8, 8)  # escaping is also acceptable
        except RoutingError:
            pass  # detected livelock is the required outcome

    def test_path_never_revisits_state(self):
        active, extent = mesh_active(8, 8, obstacles=[(2, 2, 3, 3)])
        path = trace_route((0, 3), (7, 3), active, extent)
        assert len(path) == len(set(path)) or len(path) <= 64
