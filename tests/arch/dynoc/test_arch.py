"""DyNoC architecture tests: placement, transport, obstacles."""

import pytest

from repro.arch.dynoc import DyNoCConfig, build_dynoc
from repro.core.metrics import probe_single_message
from repro.fabric.geometry import Rect
from repro.sim import SimError


class TestConfig:
    def test_for_modules_squares(self):
        assert DyNoCConfig.for_modules(4).mesh_cols == 2
        assert DyNoCConfig.for_modules(5).mesh_cols == 3
        assert DyNoCConfig.for_modules(9).mesh_cols == 3

    def test_packet_words(self):
        cfg = DyNoCConfig()
        assert cfg.packet_words(4) == 2   # 1 header + 1 payload word
        assert cfg.packet_words(64) == 17

    @pytest.mark.parametrize("kw", [
        {"mesh_cols": 0}, {"width": 0}, {"router_latency": 0},
        {"header_words": 0}, {"ttl_hops_factor": 1},
    ])
    def test_invalid_raises(self, kw):
        with pytest.raises(ValueError):
            DyNoCConfig(**kw)


class TestMinimalSystem:
    def test_builder_places_modules_on_own_pes(self):
        arch = build_dynoc(num_modules=4)
        assert arch.cfg.mesh_cols == 2
        assert arch.active_routers() == 4  # Table 3's assumption

    def test_area_matches_table3(self):
        assert build_dynoc(num_modules=4).area_slices() == 1480

    def test_single_message(self):
        arch = build_dynoc()
        msg = arch.ports["m0"].send("m3", 16)
        arch.run_to_completion()
        assert msg.delivered

    def test_all_pairs(self):
        arch = build_dynoc()
        for i in range(4):
            for j in range(4):
                if i != j:
                    arch.ports[f"m{i}"].send(f"m{j}", 32)
        arch.run_to_completion()
        assert arch.log.all_delivered()

    def test_latency_grows_with_hops(self):
        arch = build_dynoc(num_modules=4, mesh=(4, 1))
        near = probe_single_message(arch, "m0", "m1", 16)
        far = probe_single_message(build_dynoc(num_modules=4, mesh=(4, 1)),
                                   "m0", "m3", 16)
        assert far.total_cycles > near.total_cycles

    def test_hop_latency_slope(self):
        """Each extra hop costs router_latency + link_latency."""
        cfg_cost = DyNoCConfig().router_latency + DyNoCConfig().link_latency
        lat = {}
        for dist in (1, 2, 3):
            arch = build_dynoc(num_modules=4, mesh=(4, 1))
            lat[dist] = probe_single_message(arch, "m0", f"m{dist}", 4).total_cycles
        assert lat[2] - lat[1] == cfg_cost
        assert lat[3] - lat[2] == cfg_cost

    def test_mesh_too_small_raises(self):
        with pytest.raises(ValueError):
            build_dynoc(num_modules=5, mesh=(2, 2))


class TestPlacement:
    def test_multi_pe_module_deactivates_interior_routers(self):
        arch = build_dynoc(num_modules=0, mesh=(6, 6))
        arch.attach("big", rect=Rect(2, 2, 2, 2))
        assert arch.active_routers() == 32
        assert not arch.is_active((2, 2))
        assert not arch.is_active((3, 3))

    def test_multi_pe_module_must_be_surrounded(self):
        """The paper's placement rule: no border contact."""
        arch = build_dynoc(num_modules=0, mesh=(6, 6))
        with pytest.raises(ValueError):
            arch.attach("edge", rect=Rect(0, 2, 2, 2))
        with pytest.raises(ValueError):
            arch.attach("edge", rect=Rect(4, 4, 2, 2))

    def test_single_pe_module_keeps_router(self):
        arch = build_dynoc(num_modules=0, mesh=(4, 4))
        arch.attach("solo", rect=Rect(0, 0, 1, 1))
        assert arch.is_active((0, 0))

    def test_overlapping_placement_raises(self):
        arch = build_dynoc(num_modules=0, mesh=(6, 6))
        arch.attach("a", rect=Rect(2, 2, 2, 2))
        with pytest.raises(ValueError):
            arch.attach("b", rect=Rect(3, 3, 1, 1))

    def test_remove_module_reactivates_routers(self):
        arch = build_dynoc(num_modules=0, mesh=(6, 6))
        arch.attach("big", rect=Rect(2, 2, 2, 2))
        arch.detach("big")
        assert arch.active_routers() == 36

    def test_default_access_router_west_of_corner(self):
        arch = build_dynoc(num_modules=0, mesh=(6, 6))
        arch.attach("big", rect=Rect(2, 2, 2, 2))
        assert arch.placement_of("big").access == (1, 2)

    def test_traffic_routes_around_obstacle(self):
        """End-to-end: a module blocking the straight path forces a
        detour, and messages still arrive."""
        arch = build_dynoc(num_modules=0, mesh=(7, 5))
        arch.attach("src", rect=Rect(0, 2, 1, 1))
        arch.attach("dst", rect=Rect(6, 2, 1, 1))
        arch.attach("wall", rect=Rect(2, 1, 2, 3))  # blocks row 2
        msg = arch.ports["src"].send("dst", 16)
        arch.run_to_completion()
        assert msg.delivered
        hops = arch.sim.stats.histogram("dynoc.hops").samples[-1]
        assert hops > 6  # longer than the straight 6-hop path

    def test_obstacle_increases_latency(self):
        def run(with_wall):
            arch = build_dynoc(num_modules=0, mesh=(7, 5))
            arch.attach("src", rect=Rect(0, 2, 1, 1))
            arch.attach("dst", rect=Rect(6, 2, 1, 1))
            if with_wall:
                arch.attach("wall", rect=Rect(2, 1, 2, 3))
            return probe_single_message(arch, "src", "dst", 16).total_cycles

        assert run(True) > run(False)


class TestContention:
    def test_shared_link_serializes(self):
        """Two packets over the same link: the second waits."""
        arch = build_dynoc(num_modules=4, mesh=(4, 1))
        a = arch.ports["m0"].send("m3", 256)
        b = arch.ports["m0"].send("m3", 256)
        arch.run_to_completion()
        assert abs(a.delivered_cycle - b.delivered_cycle) >= 64  # 65 words

    def test_disjoint_paths_parallel(self):
        arch = build_dynoc(num_modules=4)  # 2x2
        arch.ports["m0"].send("m1", 256)
        arch.ports["m2"].send("m3", 256)
        arch.run_to_completion()
        assert arch.observed_dmax >= 2

    def test_theoretical_dmax_counts_links(self):
        arch = build_dynoc(num_modules=4)  # 2x2 mesh: 4 edges x 2
        assert arch.theoretical_dmax() == 8

    def test_dmax_shrinks_with_obstacle(self):
        arch = build_dynoc(num_modules=0, mesh=(5, 5))
        before = arch.theoretical_dmax()
        arch.attach("big", rect=Rect(1, 1, 3, 3))
        assert arch.theoretical_dmax() < before


class TestSafety:
    def test_send_to_unplaced_module_raises(self):
        arch = build_dynoc()
        with pytest.raises(KeyError):
            arch.ports["m0"].send("ghost", 8)

    def test_detach_then_messages_wait_is_an_error(self):
        """DyNoC requires the destination to be placed at send time."""
        arch = build_dynoc()
        arch.detach("m3")
        with pytest.raises(KeyError):
            arch.ports["m0"].send("m3", 8)

    def test_metadata(self):
        from repro.core.parameters import PAPER_TABLE_1

        arch = build_dynoc()
        assert arch.descriptor() == PAPER_TABLE_1["DyNoC"]
        assert arch.fmax_hz() == pytest.approx(74e6)
