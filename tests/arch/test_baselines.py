"""Static baseline tests: shared bus and static mesh."""

import pytest

from repro.arch import build_architecture
from repro.arch.baselines import build_sharedbus, build_staticmesh
from repro.core.metrics import probe_single_message


class TestSharedBus:
    def test_dmax_is_one(self):
        arch = build_sharedbus()
        assert arch.theoretical_dmax() == 1
        for i in range(4):
            arch.ports[f"m{i}"].send(f"m{(i + 1) % 4}", 256)
        arch.run_to_completion()
        assert arch.observed_dmax == 1

    def test_transfers_serialize(self):
        arch = build_sharedbus()
        a = arch.ports["m0"].send("m1", 256)
        b = arch.ports["m2"].send("m3", 256)
        arch.run_to_completion()
        # non-overlapping: the second is granted no earlier than the
        # first's final delivery cycle
        assert b.accepted_cycle >= a.delivered_cycle or \
            a.accepted_cycle >= b.delivered_cycle

    def test_latency_is_grant_addr_payload(self):
        arch = build_sharedbus()
        probe = probe_single_message(arch, "m0", "m1", 64)
        # 2 grant + 1 addr + 16 words, minus 1 (delivery on last word)
        assert probe.total_cycles == 2 + 1 + 16 - 1

    def test_round_robin_fairness(self):
        arch = build_sharedbus()
        msgs = [arch.ports[f"m{i}"].send(f"m{(i + 1) % 4}", 64)
                for i in range(4)]
        arch.run_to_completion()
        order = sorted(range(4), key=lambda i: msgs[i].accepted_cycle)
        assert order == [0, 1, 2, 3]

    def test_runtime_attach_raises(self):
        arch = build_sharedbus()
        arch.sim.run(1)
        with pytest.raises(RuntimeError):
            arch.attach("late")

    def test_detach_raises(self):
        arch = build_sharedbus()
        with pytest.raises(RuntimeError):
            arch.detach("m0")

    def test_cheapest_area_of_all(self):
        shared = build_sharedbus().area_slices()
        for name in ("rmboc", "buscom", "dynoc", "conochi"):
            assert shared < build_architecture(name).area_slices()

    def test_descriptor(self):
        d = build_sharedbus().descriptor()
        assert d.arch_type == "Bus"
        assert d.name == "SharedBus"


class TestStaticMesh:
    def test_transport_matches_dynoc(self):
        """Same router pipeline: identical latency on identical meshes."""
        static = build_staticmesh(num_modules=4, mesh=(4, 1))
        dynoc = build_architecture("dynoc", num_modules=4, mesh=(4, 1))
        p_static = probe_single_message(static, "m0", "m3", 64)
        p_dynoc = probe_single_message(dynoc, "m0", "m3", 64)
        assert p_static.total_cycles == p_dynoc.total_cycles

    def test_cheaper_and_faster_than_dynoc(self):
        static = build_staticmesh()
        dynoc = build_architecture("dynoc")
        assert static.area_slices() < dynoc.area_slices()
        assert static.fmax_hz() > dynoc.fmax_hz()

    def test_detach_raises(self):
        arch = build_staticmesh()
        with pytest.raises(RuntimeError):
            arch.detach("m0")

    def test_runtime_placement_raises(self):
        from repro.fabric.geometry import Rect

        arch = build_staticmesh(num_modules=2, mesh=(4, 4))
        arch.sim.run(1)
        with pytest.raises(RuntimeError):
            arch.place_module("late", Rect(3, 3, 1, 1))

    def test_multi_pe_module_raises(self):
        from repro.fabric.geometry import Rect

        arch = build_staticmesh(num_modules=0, mesh=(6, 6))
        with pytest.raises(ValueError):
            arch.place_module("big", Rect(2, 2, 2, 2))

    def test_descriptor_fixed_shape(self):
        from repro.core.parameters import ModuleShape

        d = build_staticmesh().descriptor()
        assert d.module_size is ModuleShape.FIXED


class TestE10:
    def test_reconfigurability_tax(self):
        from repro.analysis.experiments import e10_reconfigurability_tax

        result = e10_reconfigurability_tax()
        assert result.static_cannot_reconfigure
        assert result.tax("rmboc", "area_tax") > result.tax("dynoc", "area_tax")
        for arch in result.rows:
            assert result.tax(arch, "area_tax") > 1.0
