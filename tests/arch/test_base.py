"""Common-interface tests across all four architectures."""

import pytest

from repro.arch import ARCHITECTURES, build_all, build_architecture
from repro.arch.base import Message, MessageLog


class TestMessage:
    def test_latency(self):
        m = Message("a", "b", 10)
        m.created_cycle = 5
        m.delivered_cycle = 17
        assert m.latency == 12

    def test_latency_before_delivery_raises(self):
        m = Message("a", "b", 10)
        with pytest.raises(ValueError):
            m.latency

    def test_self_message_raises(self):
        with pytest.raises(ValueError):
            Message("a", "a", 10)

    def test_nonpositive_payload_raises(self):
        with pytest.raises(ValueError):
            Message("a", "b", 0)

    def test_unique_ids(self):
        assert Message("a", "b", 1).mid != Message("a", "b", 1).mid


class TestMessageLog:
    def test_pending_and_delivered(self):
        log = MessageLog()
        m1 = Message("a", "b", 8)
        m2 = Message("a", "b", 8)
        log.sent(m1)
        log.sent(m2)
        m1.created_cycle, m1.delivered_cycle = 0, 4
        assert log.delivered() == [m1]
        assert log.pending() == [m2]
        assert not log.all_delivered()

    def test_latency_filters(self):
        log = MessageLog()
        for src, dst, lat in [("a", "b", 3), ("a", "c", 5), ("b", "c", 7)]:
            m = Message(src, dst, 8)
            m.created_cycle, m.delivered_cycle = 0, lat
            log.sent(m)
        assert log.latencies(src="a") == [3, 5]
        assert log.latencies(dst="c") == [5, 7]
        assert log.latencies(src="a", dst="c") == [5]

    def test_delivered_payload_bytes(self):
        log = MessageLog()
        m = Message("a", "b", 100)
        m.created_cycle, m.delivered_cycle = 0, 1
        log.sent(m)
        log.sent(Message("a", "b", 50))
        assert log.delivered_payload_bytes() == 100


@pytest.mark.parametrize("name", ARCHITECTURES)
class TestCommonBehaviour:
    def test_builds_with_four_modules(self, name):
        arch = build_architecture(name)
        assert arch.modules == ("m0", "m1", "m2", "m3")

    def test_attach_duplicate_raises(self, name):
        arch = build_architecture(name)
        with pytest.raises(ValueError):
            arch.attach("m0")

    def test_detach_unknown_raises(self, name):
        arch = build_architecture(name)
        with pytest.raises(KeyError):
            arch.detach("ghost")

    def test_idle_initially(self, name):
        assert build_architecture(name).idle()

    def test_message_delivery_and_port_receive(self, name):
        arch = build_architecture(name)
        msg = arch.ports["m0"].send("m1", 16)
        arch.run_to_completion()
        assert msg.delivered
        received = arch.ports["m1"].take_received()
        assert received == [msg]
        assert arch.ports["m1"].take_received() == []  # drained

    def test_latency_recorded_centrally(self, name):
        arch = build_architecture(name)
        arch.ports["m0"].send("m1", 16)
        arch.run_to_completion()
        hist = arch.sim.stats.histogram("latency.message")
        assert hist.count == 1

    def test_delivered_counters(self, name):
        arch = build_architecture(name)
        arch.ports["m0"].send("m1", 16)
        arch.run_to_completion()
        assert arch.sim.stats.counter("delivered.messages").value == 1
        assert arch.sim.stats.counter("delivered.bytes").value == 16

    def test_descriptor_and_metadata_present(self, name):
        arch = build_architecture(name)
        d = arch.descriptor()
        assert d.arch_type in ("Bus", "NoC")
        assert arch.area_slices() > 0
        assert arch.fmax_hz() > 0
        assert arch.theoretical_dmax() > 0

    def test_width_parameter_respected(self, name):
        arch8 = build_architecture(name, width=8)
        arch32 = build_architecture(name, width=32)
        assert arch8.width == 8
        # narrower links => same payload needs more cycles
        m8 = arch8.ports["m0"].send("m1", 64)
        m32 = arch32.ports["m0"].send("m1", 64)
        arch8.run_to_completion()
        arch32.run_to_completion()
        assert m8.latency > m32.latency

    def test_zero_width_raises(self, name):
        with pytest.raises(ValueError):
            build_architecture(name, width=0)


class TestFactory:
    def test_unknown_architecture_raises(self):
        with pytest.raises(KeyError):
            build_architecture("amba")

    def test_name_normalization(self):
        assert build_architecture("BUS-COM").KEY == "buscom"
        assert build_architecture("RMBoC").KEY == "rmboc"

    def test_build_all(self):
        archs = build_all()
        assert set(archs) == set(ARCHITECTURES)
        # each architecture has its own simulator
        sims = {id(a.sim) for a in archs.values()}
        assert len(sims) == 4


class TestSummaryByPair:
    def test_counts_bytes_and_latency(self):
        arch = build_architecture("buscom")
        arch.ports["m0"].send("m1", 64)
        arch.ports["m0"].send("m1", 32)
        arch.ports["m2"].send("m3", 16)
        arch.run_to_completion()
        summary = arch.log.summary_by_pair()
        assert summary[("m0", "m1")]["messages"] == 2
        assert summary[("m0", "m1")]["bytes"] == 96
        assert summary[("m0", "m1")]["mean_latency"] > 0
        assert summary[("m2", "m3")]["bytes"] == 16

    def test_undelivered_counts_messages_only(self):
        arch = build_architecture("buscom")
        arch.freeze_module("m0")
        arch.ports["m0"].send("m1", 64)
        arch.sim.run(50)
        summary = arch.log.summary_by_pair()
        import math

        assert summary[("m0", "m1")]["messages"] == 1
        assert summary[("m0", "m1")]["bytes"] == 0
        assert math.isnan(summary[("m0", "m1")]["mean_latency"])
