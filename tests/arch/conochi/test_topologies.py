"""CoNoChi topology-library and TileGrid.parse tests."""

import pytest

from repro.arch.conochi import build_conochi
from repro.arch.conochi.topologies import chain, ring, spaced_mesh, star
from repro.fabric.tiles import TileGrid, TileType


class TestParse:
    def test_round_trip(self):
        grid = chain(3, spacing=2)
        reparsed = TileGrid.parse(grid.render())
        assert reparsed.render() == grid.render()
        assert reparsed.switches() == grid.switches()
        assert reparsed.links() == grid.links()

    def test_parse_orientation(self):
        grid = TileGrid.parse("S 0\n0 V")
        # top line is the higher row
        assert grid.get(0, 1) is TileType.SWITCH
        assert grid.get(1, 0) is TileType.VWIRE

    def test_ragged_raises(self):
        with pytest.raises(ValueError):
            TileGrid.parse("S 0\n0")

    def test_unknown_symbol_raises(self):
        with pytest.raises(ValueError):
            TileGrid.parse("S X")

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            TileGrid.parse("   ")


class TestChain:
    def test_direct_adjacency(self):
        grid = chain(4)
        assert len(grid.switches()) == 4
        assert len(grid.links()) == 3
        assert all(w == 0 for _, _, w in grid.links())

    def test_spacing_adds_wire_tiles(self):
        grid = chain(3, spacing=3)
        assert all(w == 2 for _, _, w in grid.links())

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            chain(0)


class TestRing:
    def test_ring_structure(self):
        grid = ring(6)
        assert len(grid.switches()) == 6
        # a ring has as many links as switches
        assert len(grid.links()) == 6

    def test_ring_halves_diameter(self):
        """Worst-case hop distance on ring(8) beats chain(8)."""
        import networkx as nx

        def diameter(grid):
            g = nx.Graph()
            for a, b, _ in grid.links():
                g.add_edge(a, b)
            return nx.diameter(g)

        assert diameter(ring(8)) < diameter(chain(8))

    def test_odd_raises(self):
        with pytest.raises(ValueError):
            ring(5)


class TestStar:
    def test_hub_degree(self):
        grid = star(4)
        assert len(grid.switches()) == 5
        hub_links = [l for l in grid.links() if (2, 2) in (l[0], l[1])]
        assert len(hub_links) == 4

    def test_five_leaves_raise(self):
        with pytest.raises(ValueError):
            star(5)


class TestSpacedMesh:
    def test_structure(self):
        grid = spaced_mesh(3, 2)
        assert len(grid.switches()) == 6
        # links: 2 rows x 2 horizontal + 3 vertical = 7
        assert len(grid.links()) == 7
        assert grid.is_connected()

    def test_traffic_on_mesh_topology(self):
        """Edge switches host modules; traffic crosses the mesh."""
        grid = spaced_mesh(3, 3)
        arch = build_conochi(num_modules=0, grid=grid)
        # corner switches have 2 links -> 2 free ports
        arch.attach("a", switch=(1, 1))
        arch.attach("b", switch=(5, 5))
        msg = arch.ports["a"].send("b", 64)
        arch.run_to_completion()
        assert msg.delivered

    def test_interior_switch_has_no_free_port(self):
        grid = spaced_mesh(3, 3)
        arch = build_conochi(num_modules=0, grid=grid)
        with pytest.raises(ValueError):
            arch.attach("x", switch=(3, 3))  # interior: 4 links

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            spaced_mesh(1, 2)
