"""Global-control tests: addresses, directory, routing tables."""

import pytest

from repro.arch.conochi.control import GlobalControl, compute_tables
from repro.fabric.tiles import TileGrid, TileType


def chain(n=3, spacing=2):
    """n switches in a row joined by H wires."""
    g = TileGrid(n * spacing + 1, 3)
    coords = []
    for i in range(n):
        x = 1 + i * spacing
        g.set(x, 1, TileType.SWITCH)
        coords.append((x, 1))
    for i in range(n - 1):
        for x in range(coords[i][0] + 1, coords[i + 1][0]):
            g.set(x, 1, TileType.HWIRE)
    return g, coords


class TestAddresses:
    def test_register_assigns_unique_phys(self):
        g, (a, b, c) = chain()
        ctl = GlobalControl(g)
        pa = ctl.register("m0", a)
        pb = ctl.register("m1", b)
        assert pa != pb
        assert ctl.resolve("m0") == pa
        assert ctl.switch_of(pa) == a

    def test_duplicate_logical_raises(self):
        g, (a, *_) = chain()
        ctl = GlobalControl(g)
        ctl.register("m0", a)
        with pytest.raises(ValueError):
            ctl.register("m0", a)

    def test_unregister(self):
        g, (a, *_) = chain()
        ctl = GlobalControl(g)
        ctl.register("m0", a)
        ctl.unregister("m0")
        with pytest.raises(KeyError):
            ctl.resolve("m0")

    def test_unregister_unknown_raises(self):
        g, _ = chain()
        with pytest.raises(KeyError):
            GlobalControl(g).unregister("ghost")

    def test_migrate_keeps_phys_address(self):
        """Logical addressing: peers keep using the old name after a
        module moves (§3.2)."""
        g, (a, b, _) = chain()
        ctl = GlobalControl(g)
        phys = ctl.register("m0", a)
        ctl.migrate("m0", b)
        assert ctl.resolve("m0") == phys
        assert ctl.switch_of(phys) == b

    def test_attachments_at(self):
        g, (a, b, _) = chain()
        ctl = GlobalControl(g)
        ctl.register("m0", a)
        ctl.register("m1", a)
        assert ctl.attachments_at(a) == 2
        assert ctl.attachments_at(b) == 0


class TestTables:
    def test_local_delivery_at_home_switch(self):
        g, (a, b, c) = chain()
        tables = compute_tables(g, {0: a})
        assert tables[a][0] == "local"

    def test_next_hop_toward_target(self):
        g, (a, b, c) = chain()
        tables = compute_tables(g, {0: c})
        assert tables[a][0] == b
        assert tables[b][0] == c

    def test_tables_give_shortest_latency_path(self):
        """With a short and a long route, tables pick the short one."""
        g = TileGrid(5, 5)
        # square of switches with one long edge
        for pos in [(1, 1), (3, 1), (1, 3), (3, 3)]:
            g.set(*pos, TileType.SWITCH)
        g.set(2, 1, TileType.HWIRE)   # (1,1)-(3,1): 1 wire tile
        g.set(1, 2, TileType.VWIRE)   # (1,1)-(1,3): 1 wire tile
        g.set(3, 2, TileType.VWIRE)   # (3,1)-(3,3)
        g.set(2, 3, TileType.HWIRE)   # (1,3)-(3,3)
        tables = compute_tables(g, {0: (3, 3)})
        # from (1,1) both ways are equal length; from (3,1) direct north
        assert tables[(3, 1)][0] == (3, 3)

    def test_attachment_on_non_switch_raises(self):
        g, _ = chain()
        with pytest.raises(ValueError):
            compute_tables(g, {0: (0, 0)})

    def test_recompute_after_topology_change(self):
        g, (a, b, c) = chain()
        ctl = GlobalControl(g)
        ctl.register("m", c)
        ctl.recompute_tables()
        assert ctl.lookup(a, ctl.resolve("m")) == b
        # drop middle switch: route becomes unavailable
        g.set(*b, TileType.FREE)
        ctl.recompute_tables()
        with pytest.raises(KeyError):
            ctl.lookup(a, ctl.resolve("m"))

    def test_route_latency_analytic(self):
        g, (a, b, c) = chain()
        ctl = GlobalControl(g)
        phys = ctl.register("m", c)
        ctl.recompute_tables()
        # a -> b -> c -> local: 3 switch traversals + 2 links of 2 cycles
        assert ctl.route_latency(a, phys, switch_latency=5) == 3 * 5 + 4

    def test_route_latency_unroutable_none(self):
        g, (a, b, c) = chain()
        ctl = GlobalControl(g)
        phys = ctl.register("m", c)
        ctl.recompute_tables()
        g.set(*b, TileType.FREE)
        ctl.recompute_tables()
        assert ctl.route_latency(a, phys, switch_latency=5) is None


class TestAliases:
    """Logical aliasing — the paper's 'modules ... moved or combined'."""

    def test_alias_resolves_to_target(self):
        g, (a, b, c) = chain()
        ctl = GlobalControl(g)
        phys = ctl.register("worker", b)
        ctl.add_alias("oldworker", "worker")
        assert ctl.resolve("oldworker") == phys

    def test_alias_chain(self):
        g, (a, b, c) = chain()
        ctl = GlobalControl(g)
        phys = ctl.register("v3", a)
        ctl.add_alias("v2", "v3")
        ctl.add_alias("v1", "v2")
        assert ctl.resolve("v1") == phys

    def test_alias_cycle_rejected(self):
        g, (a, *_) = chain()
        ctl = GlobalControl(g)
        ctl.register("m", a)
        ctl.add_alias("x", "y")
        with pytest.raises(ValueError):
            ctl.add_alias("y", "x")

    def test_alias_shadowing_live_address_rejected(self):
        g, (a, b, _) = chain()
        ctl = GlobalControl(g)
        ctl.register("m", a)
        ctl.register("n", b)
        with pytest.raises(ValueError):
            ctl.add_alias("m", "n")

    def test_remove_alias(self):
        g, (a, *_) = chain()
        ctl = GlobalControl(g)
        ctl.register("m", a)
        ctl.add_alias("old", "m")
        ctl.remove_alias("old")
        with pytest.raises(KeyError):
            ctl.resolve("old")
        with pytest.raises(KeyError):
            ctl.remove_alias("old")

    def test_combined_service_end_to_end(self):
        """m2's service is absorbed by m3: m2 detaches, an alias keeps
        its logical address alive, peers keep sending unchanged."""
        from repro.arch import build_architecture

        arch = build_architecture("conochi")
        arch.detach("m2")
        arch.control.add_alias("m2", "m3")
        msg = arch.ports["m0"].send("m2", 64)
        arch.run_to_completion()
        # delivered to the absorbing module's port
        assert msg.delivered
        assert arch.ports["m3"].take_received() == []  # dst name is m2
