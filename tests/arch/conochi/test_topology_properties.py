"""Stateful property test: random CoNoChi topology mutations under
traffic never lose packets or break invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import build_architecture
from repro.fabric.tiles import TileType


# each op: (kind, payload) where kind selects add/remove/migrate/send
ops_strategy = st.lists(
    st.tuples(st.sampled_from(["add", "remove", "migrate", "send", "run"]),
              st.integers(0, 3), st.integers(0, 3)),
    min_size=3, max_size=15,
)


@given(ops=ops_strategy)
@settings(max_examples=40, deadline=None)
def test_random_topology_mutations_preserve_delivery(ops):
    arch = build_architecture("conochi", num_modules=4)
    sim = arch.sim
    spare = (2, 3)           # tile used for the optional extra switch
    wire = (2, 2)
    spare_added = False
    modules = list(arch.modules)

    for kind, a, b in ops:
        if kind == "add" and not spare_added:
            arch.add_switch(spare, wires=[(wire, TileType.VWIRE)])
            spare_added = True
        elif kind == "remove" and spare_added:
            # the control unit refuses removals that would strand an
            # attached module or a pending migration — both refusals
            # are legal behaviour
            try:
                arch.remove_switch(spare)
            except ValueError:
                continue
            sim.run(arch.cfg.table_update_latency + 8)
            spare_added = (spare in arch.grid.switches())
        elif kind == "migrate":
            target = arch._module_switch[modules[b]] if a == b else None
            switch = (spare if spare_added
                      else arch._module_switch[modules[a]])
            if (switch in arch.grid.switches()
                    and arch.switch_port_load(switch) < arch.cfg.max_ports):
                arch.migrate_module(modules[a], switch)
        elif kind == "send" and a != b:
            arch.ports[modules[a]].send(modules[b], 32)
        elif kind == "run":
            sim.run(20 * (a + 1))

    # settle any pending removals/updates, then drain all traffic
    sim.run(4 * arch.cfg.table_update_latency + 64)
    sim.run_until(lambda s: arch.log.all_delivered() and arch.idle(),
                  max_cycles=500_000)

    # invariants: connected network, no dangling wires once quiescent,
    # nothing lost
    assert arch.grid.is_connected()
    assert arch.log.all_delivered()
    assert not arch.log.dropped()
    # final sanity traffic across the (possibly mutated) topology
    msg = arch.ports[modules[0]].send(modules[3], 16)
    arch.run_to_completion(max_cycles=500_000)
    assert msg.delivered
