"""CoNoChi fault-injection tests: unplanned switch loss and recovery."""

import pytest

from repro.arch import build_architecture
from repro.arch.conochi.faults import FaultInjector
from repro.fabric.tiles import TileType
from repro.traffic.generators import PeriodicStream


def ladder_arch():
    """Six modules on a 3+3 ladder: redundant paths exist."""
    return build_architecture("conochi", num_modules=7)


class TestInjection:
    def test_fail_non_switch_raises(self):
        arch = build_architecture("conochi")
        inj = FaultInjector(arch)
        with pytest.raises(ValueError):
            inj.fail_switch((0, 0))

    def test_double_fail_raises(self):
        arch = ladder_arch()
        inj = FaultInjector(arch)
        inj.fail_switch((2, 2))
        with pytest.raises(ValueError):
            inj.fail_switch((2, 2))

    def test_repair_unfailed_raises(self):
        arch = ladder_arch()
        inj = FaultInjector(arch)
        with pytest.raises(ValueError):
            inj.repair_switch((2, 2))

    def test_packets_dropped_before_detection(self):
        """Between failure and detection, traffic through the switch is
        lost — and accounted for."""
        arch = build_architecture("conochi", num_modules=4)  # chain
        inj = FaultInjector(arch, detection_latency=10_000)
        inj.fail_switch((2, 1))  # mid-chain
        msg = arch.ports["m0"].send("m3", 64)
        arch.sim.run(500)
        assert msg.dropped
        assert not msg.delivered
        assert arch.sim.stats.counter("conochi.packets.dropped").value >= 1

    def test_reroute_after_detection_on_redundant_topology(self):
        """The ladder offers a second path: after detection, traffic
        between healthy modules flows again."""
        arch = ladder_arch()
        inj = FaultInjector(arch, detection_latency=50)
        # fail a bottom-rail middle switch; the top rail bypasses it
        inj.fail_switch((2, 2))
        arch.sim.run(inj.detection_latency + 2)
        msg = arch.ports["m0"].send("m1", 32)  # (1,2) -> (1,3) via rung
        arch.sim.run_until(lambda s: msg.delivered or msg.dropped,
                           max_cycles=10_000)
        assert msg.delivered

    def test_module_at_failed_switch_unreachable(self):
        arch = ladder_arch()
        inj = FaultInjector(arch, detection_latency=20)
        victim_switch = arch._module_switch["m1"]
        inj.fail_switch(victim_switch)
        arch.sim.run(inj.detection_latency + 2)
        assert not inj.reachable("m1")
        msg = arch.ports["m0"].send("m1", 32)
        arch.sim.run(2_000)
        assert msg.dropped and not msg.delivered

    def test_repair_restores_reachability(self):
        arch = ladder_arch()
        inj = FaultInjector(arch, detection_latency=20)
        victim_switch = arch._module_switch["m1"]
        inj.fail_switch(victim_switch)
        arch.sim.run(100)
        inj.repair_switch(victim_switch)
        arch.sim.run(arch.cfg.table_update_latency + 2)
        msg = arch.ports["m0"].send("m1", 32)
        arch.sim.run_until(lambda s: msg.delivered or msg.dropped,
                           max_cycles=10_000)
        assert msg.delivered


class TestContinuity:
    def test_stream_survives_transient_fault(self):
        """A stream between healthy endpoints loses packets only in the
        detection window; afterwards delivery resumes with zero loss."""
        arch = ladder_arch()
        inj = FaultInjector(arch, detection_latency=100)
        # m0@(1,2) -> m5@(3,3): failing (2,2) leaves the top-rail path
        stream = PeriodicStream("s", arch.ports["m0"], "m5",
                                period=50, payload_bytes=32, stop=6000)
        arch.sim.add(stream)
        arch.sim.run(1000)
        inj.fail_switch((2, 2))
        arch.sim.run(5000)
        arch.sim.run_until(
            lambda s: all(m.delivered or m.dropped for m in stream.sent),
            max_cycles=100_000,
        )
        dropped = [m for m in stream.sent if m.dropped]
        late = [m for m in stream.sent
                if m.created_cycle > 1000 + inj.detection_latency + 50]
        assert late and all(m.delivered for m in late)
        # losses confined to the detection window
        assert all(
            1000 <= m.created_cycle <= 1000 + inj.detection_latency + 50
            for m in dropped
        )

    def test_log_accounting_with_drops(self):
        arch = build_architecture("conochi", num_modules=4)
        inj = FaultInjector(arch, detection_latency=10_000)
        inj.fail_switch((3, 1))  # m3's route crosses it; m0->m1 does not
        arch.ports["m0"].send("m3", 64)
        ok = arch.ports["m0"].send("m1", 64)  # one hop, unaffected
        arch.sim.run(1_000)
        assert arch.log.all_delivered()  # dropped counts as resolved
        assert len(arch.log.dropped()) == 1
        assert ok.delivered

    def test_detection_latency_honored_under_fast_path(self):
        """Regression: the control unit's detection timer is a timed
        wake, so the kernel's quiescent fast-forward must not jump past
        it.  With no traffic in flight during the detection window, a
        fast-path run used to risk recovering late (or never); the
        recovery must land at exactly fail + detection_latency on both
        paths, bit-identically."""
        from repro.sim import Simulator

        def run(fast):
            sim = Simulator(name=f"cono-fp-{fast}", fast_path=fast)
            arch = build_architecture("conochi", num_modules=7, sim=sim)
            inj = FaultInjector(arch, detection_latency=100)
            sim.at(1_000, lambda s: inj.fail_switch((2, 2)))
            # the fabric is fully quiescent over [1000, 1101): the only
            # pending work is the injector's recovery wake at 1100.  A
            # message at 1101 routes m0 -> m5 over the detour tables,
            # which exist only if that wake actually fired on time.
            sim.at(1_101, lambda s: arch.ports["m0"].send("m5", 32))
            sim.run(20_000)
            return sim.stats.snapshot(), len(arch.log.delivered())

        snap_fast, delivered_fast = run(True)
        snap_slow, delivered_slow = run(False)
        assert delivered_fast == delivered_slow == 1
        assert snap_fast == snap_slow

    def test_multi_fragment_message_drop_is_clean(self):
        """Losing one fragment must not leave orphaned reassembly state
        or mis-deliver the message."""
        arch = build_architecture("conochi", num_modules=4)
        inj = FaultInjector(arch, detection_latency=10_000)
        inj.fail_switch((2, 1))
        msg = arch.ports["m0"].send("m3", 3000)  # 3 fragments
        arch.sim.run(2_000)
        assert msg.dropped and not msg.delivered
        assert msg.mid not in arch._landed_fragments
