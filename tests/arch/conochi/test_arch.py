"""CoNoChi architecture tests: transport, protocol, topology changes."""

import pytest

from repro.arch.conochi import CoNoChiConfig, build_conochi
from repro.core.metrics import probe_single_message
from repro.fabric.tiles import TileType


class TestConfig:
    def test_paper_protocol_figures(self):
        cfg = CoNoChiConfig()
        assert cfg.header_bits == 96          # Table 1
        assert cfg.header_words == 3          # 3 words @ 32 bit
        assert cfg.max_payload_bytes == 1024  # Table 1
        assert cfg.switch_latency == 5        # Table 2

    def test_efficiency_90pct_at_108_bytes(self):
        """§4.2's ~90 % effective bandwidth at ~100-byte packets."""
        assert CoNoChiConfig().efficiency(108) == pytest.approx(0.90)

    def test_fragments(self):
        cfg = CoNoChiConfig()
        assert cfg.fragments(1024) == 1
        assert cfg.fragments(1025) == 2
        assert cfg.fragments(4096) == 4

    def test_oversized_payload_words_raises(self):
        with pytest.raises(ValueError):
            CoNoChiConfig().payload_words(2000)

    @pytest.mark.parametrize("kw", [
        {"grid_cols": 1}, {"width": 0}, {"switch_latency": 0},
        {"max_ports": 1}, {"table_update_latency": -1},
    ])
    def test_invalid_raises(self, kw):
        with pytest.raises(ValueError):
            CoNoChiConfig(**kw)


class TestTransport:
    def test_single_message(self):
        arch = build_conochi()
        msg = arch.ports["m0"].send("m3", 64)
        arch.run_to_completion()
        assert msg.delivered

    def test_all_pairs(self):
        arch = build_conochi()
        for i in range(4):
            for j in range(4):
                if i != j:
                    arch.ports[f"m{i}"].send(f"m{j}", 32)
        arch.run_to_completion()
        assert arch.log.all_delivered()

    def test_per_hop_cost_is_switch_plus_link(self):
        cfg = CoNoChiConfig()
        lat = {}
        for dist in (1, 2, 3):
            arch = build_conochi()
            lat[dist] = probe_single_message(arch, "m0", f"m{dist}", 4).total_cycles
        assert lat[2] - lat[1] == cfg.switch_latency + cfg.link_latency
        assert lat[3] - lat[2] == cfg.switch_latency + cfg.link_latency

    def test_large_message_fragments(self):
        arch = build_conochi()
        msg = arch.ports["m0"].send("m1", 3000)  # 3 fragments
        arch.run_to_completion()
        assert msg.delivered
        assert arch.sim.stats.counter("conochi.packets").value == 3

    def test_shared_link_serializes(self):
        arch = build_conochi()
        a = arch.ports["m0"].send("m3", 512)
        b = arch.ports["m1"].send("m3", 512)
        arch.run_to_completion()
        assert a.delivered_cycle != b.delivered_cycle

    def test_unknown_destination_raises(self):
        arch = build_conochi()
        with pytest.raises(KeyError):
            arch.ports["m0"].send("ghost", 8)


class TestTopologyChange:
    def test_add_switch_recomputes_tables_after_latency(self):
        arch = build_conochi()
        n_before = len(arch.grid.switches())
        arch.add_switch((2, 3), wires=[((2, 2), TileType.VWIRE)])
        assert len(arch.grid.switches()) == n_before + 1
        arch.sim.run(arch.cfg.table_update_latency + 2)
        assert (2, 3) in arch.control.tables

    def test_add_switch_on_occupied_tile_raises(self):
        arch = build_conochi()
        with pytest.raises(ValueError):
            arch.add_switch((1, 1))  # existing switch

    def test_remove_switch_keeps_network_connected(self):
        """Removal that would disconnect the NoC is refused."""
        arch = build_conochi()
        with pytest.raises(ValueError):
            arch.remove_switch((2, 1))  # middle of the chain

    def test_remove_added_switch(self):
        arch = build_conochi()
        arch.add_switch((2, 3), wires=[((2, 2), TileType.VWIRE)])
        arch.sim.run(arch.cfg.table_update_latency + 2)
        arch.remove_switch((2, 3))
        arch.sim.run(arch.cfg.table_update_latency + 10)
        assert (2, 3) not in arch.grid.switches()
        # the feeding wire is pruned too
        assert arch.grid.get(2, 2) is TileType.FREE

    def test_remove_switch_with_module_raises(self):
        arch = build_conochi()
        with pytest.raises(ValueError):
            arch.remove_switch((1, 1))  # m0 hangs off it

    def test_traffic_survives_switch_insertion(self):
        """§3.2: switches added 'without stalling the NoC'."""
        arch = build_conochi()
        msgs = [arch.ports["m0"].send("m3", 256) for _ in range(4)]
        arch.sim.run(10)
        arch.add_switch((2, 3), wires=[((2, 2), TileType.VWIRE)])
        arch.run_to_completion()
        assert all(m.delivered for m in msgs)

    def test_migration_preserves_logical_address(self):
        """Move m3's attachment to m0's switch; peers keep sending to
        'm3' unchanged."""
        arch = build_conochi()
        arch.migrate_module("m3", (1, 1))
        arch.sim.run(arch.cfg.table_update_latency + 2)
        msg = arch.ports["m1"].send("m3", 32)
        arch.run_to_completion()
        assert msg.delivered

    def test_migrate_to_full_switch_raises(self):
        arch = build_conochi()
        arch.migrate_module("m2", (1, 1))
        arch.sim.run(arch.cfg.table_update_latency + 2)
        # switch (1,1): link to (2,1) + m0 + m2 -> one port left; m3 fits
        arch.migrate_module("m3", (1, 1))
        arch.sim.run(arch.cfg.table_update_latency + 2)
        with pytest.raises(ValueError):
            arch.migrate_module("m1", (1, 1))


class TestMetadata:
    def test_descriptor(self):
        from repro.core.parameters import PAPER_TABLE_1

        assert build_conochi().descriptor() == PAPER_TABLE_1["CoNoChi"]

    def test_area_matches_table3(self):
        arch = build_conochi()
        assert arch.area_slices() == 1640

    def test_system_area_exceeds_switch_area(self):
        arch = build_conochi()
        assert arch.system_area_slices() > arch.area_slices()

    def test_fmax(self):
        assert build_conochi().fmax_hz() == pytest.approx(73e6)

    def test_port_load_accounting(self):
        arch = build_conochi()
        # end switch: one link + one module
        assert arch.switch_port_load((1, 1)) == 2
        # middle switch: two links + one module
        assert arch.switch_port_load((2, 1)) == 3
