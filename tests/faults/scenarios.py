"""Shared per-architecture fault scenarios for the faults test suite.

Mirrors the canonical chaos scenarios in
:mod:`repro.analysis.chaos`: a steady message stream with one seeded
``NODE_DOWN`` mid-stream on a known-recoverable element.
"""

from repro.arch import build_architecture
from repro.faults import FaultKind, FaultSchedule, inject
from repro.faults.policies import make_policy
from repro.sim import Simulator


class _Probe:
    dead_nodes: dict = {}


def build_arch(key, sim):
    """Canonical per-architecture build with failable spare capacity."""
    if key == "conochi":
        from repro.arch.conochi.arch import ladder_grid

        return build_architecture(key, num_modules=6,
                                  grid=ladder_grid(7), sim=sim)
    if key in ("dynoc", "staticmesh"):
        return build_architecture(key, num_modules=4, mesh=(4, 4),
                                  sim=sim)
    return build_architecture(key, num_modules=4, sim=sim)


def node_target(key, arch):
    """A deterministic recoverable NODE_DOWN target for ``arch``."""
    if key == "conochi":
        return (2, 2)                 # m2's home switch; m0->m4 detours
    targets = make_policy(arch, _Probe()).node_targets()
    assert targets, f"{key}: no node targets"
    return targets[len(targets) // 2]


def traffic_endpoints(key, arch):
    if key == "conochi":
        return "m0", "m4"             # route m2's home, avoid m2 itself
    mods = list(arch.ports)
    return mods[0], mods[-1]


def fault_scenario(key, seed=5, fast_path=None, fault_at=300,
                   duration=900, count=40, period=40):
    """Build one architecture with a single NODE_DOWN schedule and a
    steady message stream; returns ``(sim, arch, injector)`` ready for
    ``sim.run(...)``."""
    kwargs = {} if fast_path is None else {"fast_path": fast_path}
    sim = Simulator(name=f"faults-{key}", **kwargs)
    arch = build_arch(key, sim)
    target = node_target(key, arch)
    sched = FaultSchedule(seed=seed).one_shot(
        fault_at, FaultKind.NODE_DOWN, target, duration=duration)
    injector = inject(arch, sched)
    src, dst = traffic_endpoints(key, arch)
    ports = arch.ports
    for i in range(count):
        sim.at(10 + period * i,
               lambda s, src=src, dst=dst: ports[src].send(dst, 64,
                                                           tag="t"))
    return sim, arch, injector
