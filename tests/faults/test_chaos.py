"""Chaos harness tests: sweep document, validation, CLI."""

import json

import pytest

from repro.analysis.chaos import (
    CHAOS_SCHEMA,
    discover_arch_keys,
    render_chaos,
    run_chaos_scenario,
    run_chaos_sweep,
    validate_chaos,
)


class TestDiscovery:
    def test_e1_builds_rmboc(self):
        assert discover_arch_keys("e1") == ["rmboc"]

    def test_unknown_experiment_diagnosed(self):
        with pytest.raises(KeyError, match="known"):
            discover_arch_keys("e99")


class TestSweep:
    def test_e1_sweep_survives_and_validates(self):
        doc = run_chaos_sweep("e1", seed=7)
        assert doc["schema"] == CHAOS_SCHEMA
        assert doc["survived"]
        assert validate_chaos(doc) == 1
        s = doc["scenarios"][0]
        assert s["metrics"]["messages_undelivered"] == 0
        assert s["metrics"]["mttr_max"] is not None
        # the doc must round-trip through JSON for the CI smoke job
        json.loads(json.dumps(doc, default=repr))

    def test_sweep_is_seed_deterministic(self):
        a = run_chaos_sweep("e1", seed=11, telemetry=False)
        b = run_chaos_sweep("e1", seed=11, telemetry=False)
        assert a == b

    def test_rounds_use_distinct_seeds(self):
        doc = run_chaos_sweep("e1", seed=7, rounds=2, telemetry=False)
        seeds = [s["seed"] for s in doc["scenarios"]]
        assert seeds == [7, 8]

    def test_render_mentions_verdict(self):
        doc = run_chaos_sweep("e1", seed=7, telemetry=False)
        text = render_chaos(doc)
        assert "rmboc" in text
        assert "all scenarios survived" in text


class TestScenarioCoverage:
    @pytest.mark.parametrize("key", ["buscom", "dynoc", "conochi",
                                     "sharedbus", "staticmesh"])
    def test_every_architecture_has_a_surviving_scenario(self, key):
        s = run_chaos_scenario(key, seed=7, telemetry=False)
        assert s["survived"], s["metrics"]


class TestValidation:
    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            validate_chaos({"schema": "repro.chaos/0"})

    def test_empty_scenarios_rejected(self):
        with pytest.raises(ValueError, match="scenario"):
            validate_chaos({"schema": CHAOS_SCHEMA, "scenarios": []})

    def test_missing_metric_diagnosed(self):
        doc = run_chaos_sweep("e1", seed=7, telemetry=False)
        del doc["scenarios"][0]["metrics"]["mttr_max"]
        with pytest.raises(ValueError, match="mttr_max"):
            validate_chaos(doc)


class TestCli:
    def test_chaos_once_json(self, capsys):
        from repro.cli import main

        rc = main(["chaos", "e1", "--once", "--json", "--seed", "7"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert validate_chaos(doc) == 1
        assert doc["survived"]

    def test_chaos_unknown_experiment_exit_2(self, capsys):
        from repro.cli import main

        assert main(["chaos", "e99", "--once"]) == 2
