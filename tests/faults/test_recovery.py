"""Cross-architecture recovery: every design survives a fault.

The acceptance bar of the fault framework: a single link/node fault
mid-stream on each of the six architectures ends with *zero undelivered
messages* after recovery (dropped victims are retransmitted) and a
bounded MTTR driven by the architecture's own reconfiguration
machinery.
"""

import pytest

from repro.arch import ARCHITECTURES, build_architecture
from repro.faults import FaultKind, FaultSchedule, inject
from repro.sim import Simulator

from tests.faults.scenarios import fault_scenario, node_target

#: generous bound: detection + reroute/reconfigure + backoff retries
MTTR_BOUND = 5_000


class TestNodeDownSurvival:
    @pytest.mark.parametrize("key", ARCHITECTURES)
    def test_single_node_fault_zero_undelivered(self, key):
        sim, arch, injector = fault_scenario(key, seed=5)
        sim.run(20_000)
        m = injector.metrics()
        assert m["faults_injected"] == 1
        assert m["faults_recovered"] == 1
        assert m["messages_sent"] > 0
        assert m["messages_undelivered"] == 0, m
        assert m["messages_delivered"] + m["messages_dropped"] \
            >= m["messages_sent"]
        assert m["mttr_max"] is not None
        assert 0 < m["mttr_max"] <= MTTR_BOUND
        assert 0.0 < m["availability"] <= 1.0

    @pytest.mark.parametrize("key", ARCHITECTURES)
    def test_traffic_flows_again_after_repair(self, key):
        sim, arch, injector = fault_scenario(key, seed=5)
        sim.run(20_000)
        mods = list(arch.ports)
        msg = arch.ports[mods[0]].send(mods[-1], 64, tag="post")
        sim.run(20_000)
        assert msg.delivered


class TestLinkFaults:
    def test_dead_link_drops_then_retransmits(self):
        sim = Simulator(name="linkdead")
        arch = build_architecture("buscom", num_modules=4, sim=sim)
        sched = FaultSchedule(seed=3).one_shot(
            100, FaultKind.LINK_DEAD, ("m0", "m1"), duration=2_000)
        injector = inject(arch, sched)
        sim.at(300, lambda s: arch.ports["m0"].send("m1", 64))
        sim.run(30_000)
        m = injector.metrics()
        assert m["messages_dropped"] == 1
        assert m["messages_retransmitted"] == 1
        assert m["messages_undelivered"] == 0

    def test_flaky_link_is_seed_deterministic(self):
        def run(seed):
            sim = Simulator(name=f"flaky{seed}")
            arch = build_architecture("buscom", num_modules=4, sim=sim)
            sched = FaultSchedule(seed=seed).one_shot(
                0, FaultKind.LINK_FLAKY, ("m0", "m1"),
                duration=10_000, drop_prob=0.5)
            injector = inject(arch, sched, retransmit=False)
            for i in range(30):
                sim.at(10 + 100 * i,
                       lambda s: arch.ports["m0"].send("m1", 32))
            sim.run(30_000)
            return injector.metrics()["messages_dropped"]

        drops = run(9)
        assert 0 < drops < 30          # probabilistic, not all-or-nothing
        assert drops == run(9)

    def test_bit_error_link_corrupts_and_recovers(self):
        sim = Simulator(name="biterr")
        arch = build_architecture("buscom", num_modules=4, sim=sim)
        sched = FaultSchedule(seed=3).one_shot(
            0, FaultKind.LINK_BIT_ERROR, ("m0", "m1"),
            duration=5_000, corrupt_prob=1.0)
        injector = inject(arch, sched)
        sim.at(100, lambda s: arch.ports["m0"].send("m1", 64))
        sim.run(30_000)
        assert sim.stats.counter("fault.msg.corrupted").value >= 1
        assert injector.metrics()["messages_undelivered"] == 0


class TestModuleCrash:
    def test_crash_discards_inbound_until_repair(self):
        sim = Simulator(name="crash")
        arch = build_architecture("sharedbus", num_modules=4, sim=sim)
        sched = FaultSchedule(seed=3).one_shot(
            50, FaultKind.MODULE_CRASH, "m1", duration=3_000)
        injector = inject(arch, sched)
        sim.at(500, lambda s: arch.ports["m0"].send("m1", 64))
        sim.run(30_000)
        m = injector.metrics()
        assert m["messages_dropped"] >= 1
        assert m["messages_undelivered"] == 0


class TestManagerFaults:
    """BITSTREAM_CORRUPT / STUCK_QUIESCE route to the hardened
    reconfiguration manager through the injector."""

    def _system(self, **mgr_kwargs):
        from repro.fabric.device import get_device
        from repro.fabric.geometry import Rect
        from repro.reconfig import ModuleSpec, ReconfigurationManager

        sim = Simulator(name="mgr-faults")
        arch = build_architecture("buscom", num_modules=4, sim=sim)
        mgr = ReconfigurationManager(arch, get_device("XC2V6000"),
                                     **mgr_kwargs)
        return sim, arch, mgr, ModuleSpec("m0b"), Rect(0, 0, 4, 96)

    def test_corrupt_bitstream_retries_then_succeeds(self):
        sim, arch, mgr, spec, region = self._system()
        sched = FaultSchedule(seed=3).one_shot(
            0, FaultKind.BITSTREAM_CORRUPT, "m0")
        injector = inject(arch, sched, manager=mgr)
        record = mgr.swap("m0", spec, region)
        sim.run_until(lambda s: record.done, max_cycles=4_000_000)
        assert record.retries == 1
        assert not record.rolled_back
        assert "m0b" in arch.modules
        assert sim.stats.counter("reconfig.bitstream_corrupt").value == 1
        m = injector.metrics()
        assert m["faults_recovered"] == 1
        assert m["mttr_max"] is not None

    def test_persistent_corruption_rolls_back(self):
        sim, arch, mgr, spec, region = self._system(max_retries=2)
        for _ in range(3):                    # first try + 2 retries
            mgr.fault_corrupt_next()
        record = mgr.swap("m0", spec, region)
        sim.run_until(lambda s: record.done, max_cycles=8_000_000)
        assert record.retries == 2
        assert record.rolled_back             # finished, but by reverting
        assert "m0" in arch.modules           # old module back in service
        assert "m0b" not in arch.modules
        assert sim.stats.counter("reconfig.rollbacks").value == 1
        msg = arch.ports["m1"].send("m0", 64)
        sim.run(50_000)
        assert msg.delivered                  # rollback left it reachable

    def test_stuck_quiesce_delays_but_completes(self):
        sim, arch, mgr, spec, region = self._system()
        sched = FaultSchedule(seed=3).one_shot(
            0, FaultKind.STUCK_QUIESCE, "m0", extra_cycles=700)
        injector = inject(arch, sched, manager=mgr)
        records = []
        # request after the fault armed, so the refusal is in effect
        sim.at(50, lambda s: records.append(mgr.swap("m0", spec, region)))
        sim.run_until(lambda s: records and records[0].done,
                      max_cycles=4_000_000)
        record = records[0]
        assert record.detach_cycle >= 700
        assert "m0b" in arch.modules
        m = injector.metrics()
        assert m["faults_recovered"] == 1

    def test_stuck_quiesce_past_deadline_aborts(self):
        sim, arch, mgr, spec, region = self._system(quiesce_timeout=400)
        mgr.fault_stick_quiesce(10_000)
        record = mgr.swap("m0", spec, region)
        sim.run(50_000)
        assert record.aborted
        assert not record.done
        assert "m0" in arch.modules
        assert not mgr.busy
