"""Recovery determinism and golden equivalence.

Two properties the fault framework must never lose:

* **Determinism** — the same seed and schedule produce bit-identical
  ``sim.stats`` snapshots run after run, on every architecture, under
  the quiescence fast path as well as the slow path.
* **Golden equivalence** — merely importing/attaching the faults
  machinery with an *empty* schedule changes nothing: fault-free runs
  stay bit-identical to runs without any injector, so every golden
  snapshot recorded before this framework existed remains valid.
"""

import pytest

from repro.arch import ARCHITECTURES, build_architecture
from repro.faults import FaultSchedule, inject
from repro.sim import Simulator

from tests.faults.scenarios import build_arch, fault_scenario


def _drive(sim, arch, count=40, period=40):
    ports = arch.ports
    mods = list(ports)
    src, dst = mods[0], mods[-1]
    for i in range(count):
        sim.at(10 + period * i,
               lambda s, src=src, dst=dst: ports[src].send(dst, 64,
                                                           tag="t"))


class TestRecoveryDeterminism:
    @pytest.mark.parametrize("key", ARCHITECTURES)
    def test_same_seed_same_snapshot(self, key):
        def run():
            sim, arch, injector = fault_scenario(key, seed=5)
            sim.run(20_000)
            return sim.stats.snapshot(), injector.metrics()

        snap_a, metrics_a = run()
        snap_b, metrics_b = run()
        assert snap_a == snap_b
        assert metrics_a == metrics_b

    @pytest.mark.parametrize("key", ARCHITECTURES)
    def test_fast_path_matches_slow_path(self, key):
        def run(fast):
            sim, arch, injector = fault_scenario(key, seed=5,
                                                 fast_path=fast)
            sim.run(20_000)
            return sim.stats.snapshot()

        assert run(True) == run(False)


class TestGoldenEquivalence:
    @pytest.mark.parametrize("key", ARCHITECTURES)
    def test_empty_schedule_is_invisible(self, key):
        def run(with_injector):
            sim = Simulator(name=f"golden-{key}")
            arch = build_arch(key, sim)
            if with_injector:
                inject(arch, FaultSchedule(seed=5))
            _drive(sim, arch)
            sim.run(20_000)
            return sim.stats.snapshot()

        assert run(True) == run(False)

    def test_empty_schedule_does_not_raise_faulting(self):
        sim = Simulator(name="flag")
        arch = build_architecture("buscom", num_modules=4, sim=sim)
        inject(arch, FaultSchedule(seed=1))
        assert not arch.faulting     # hot-path guard stays cold
