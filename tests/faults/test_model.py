"""Fault-model tests: kinds, event validation, schedule determinism."""

import pytest

from repro.faults import FaultEvent, FaultKind, FaultSchedule


class TestFaultEvent:
    def test_negative_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            FaultEvent(FaultKind.NODE_DOWN, 2, -1)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            FaultEvent(FaultKind.NODE_DOWN, 2, 0, duration=0)

    def test_link_target_must_be_module_pair(self):
        with pytest.raises(ValueError, match="pair"):
            FaultEvent(FaultKind.LINK_DEAD, "m0", 10)
        FaultEvent(FaultKind.LINK_DEAD, ("m0", "m1"), 10)  # fine

    def test_crash_target_must_be_module_name(self):
        with pytest.raises(ValueError, match="module"):
            FaultEvent(FaultKind.MODULE_CRASH, ("m0", "m1"), 10)

    def test_probabilities_bounded(self):
        with pytest.raises(ValueError, match="drop_prob"):
            FaultEvent(FaultKind.LINK_FLAKY, ("m0", "m1"), 10,
                       params={"drop_prob": 1.5})


class TestFaultSchedule:
    def test_one_shot_and_periodic_compose(self):
        sched = (FaultSchedule(seed=3)
                 .one_shot(100, FaultKind.NODE_DOWN, 2, duration=50)
                 .periodic(FaultKind.MODULE_CRASH, "m1", start=500,
                           period=1_000, count=3, duration=100))
        assert len(sched) == 4
        cycles = [e.cycle for e in sched.events()]
        assert cycles == sorted(cycles)

    def test_periodic_validates(self):
        with pytest.raises(ValueError, match="period"):
            FaultSchedule().periodic(FaultKind.NODE_DOWN, 1, 0, 0, 2)

    def test_rate_is_seed_deterministic(self):
        def build(seed):
            return FaultSchedule(seed=seed).rate(
                FaultKind.LINK_FLAKY, [("m0", "m1"), ("m1", "m2")],
                rate=1e-3, horizon=50_000, duration=100,
                drop_prob=0.5).events()

        assert build(11) == build(11)
        assert build(11) != build(12)

    def test_rate_streams_are_independent(self):
        """Distinct stream labels draw distinct sample sequences."""
        def stream(label):
            return FaultSchedule(seed=5).rate(
                FaultKind.LINK_DEAD, [("m0", "m1")], rate=1e-3,
                horizon=50_000, stream=(label,)).events()

        assert stream("a") == stream("a")
        assert stream("a") != stream("b")

    def test_rate_needs_targets(self):
        with pytest.raises(ValueError, match="targets"):
            FaultSchedule().rate(FaultKind.LINK_DEAD, [], rate=1e-3,
                                 horizon=100)
