"""Architecture-advisor tests: the paper's guidance, executable."""

import math

import pytest

from repro.core.advisor import (
    ARCHS,
    Assessment,
    Recommendation,
    Requirements,
    assess,
    recommend,
)


class TestRequirements:
    def test_defaults_valid(self):
        Requirements()

    @pytest.mark.parametrize("kw", [
        {"num_modules": 1},
        {"link_width": 0},
        {"min_parallel_transfers": 0},
        {"max_transfer_bytes": 0},
        {"weight_area": -1.0},
    ])
    def test_invalid_raises(self, kw):
        with pytest.raises(ValueError):
            Requirements(**kw)


class TestVetoes:
    def test_variable_shape_vetoes_buses(self):
        req = Requirements(variable_module_shape=True)
        rec = recommend(req)
        assert not rec.assessments["RMBoC"].feasible
        assert not rec.assessments["BUS-COM"].feasible
        assert rec.assessments["DyNoC"].feasible
        assert rec.assessments["CoNoChi"].feasible

    def test_parallelism_vetoes_buscom(self):
        req = Requirements(min_parallel_transfers=6)
        rec = recommend(req)
        assert not rec.assessments["BUS-COM"].feasible  # d_max = 4
        assert rec.assessments["RMBoC"].feasible        # d_max = 12

    def test_area_budget_vetoes_rmboc(self):
        req = Requirements(area_budget_slices=2000)
        rec = recommend(req)
        assert not rec.assessments["RMBoC"].feasible    # 5084 slices
        assert rec.assessments["BUS-COM"].feasible      # 1294

    def test_runtime_growth_vetoes_rmboc(self):
        """Table 4: RMBoC extensibility is low."""
        req = Requirements(needs_runtime_growth=True)
        rec = recommend(req)
        assert not rec.assessments["RMBoC"].feasible
        assert rec.assessments["CoNoChi"].feasible

    def test_payload_fragmentation_with_tight_budget(self):
        req = Requirements(max_transfer_bytes=4096,
                           latency_budget_cycles=300)
        a = assess("BUS-COM", req)  # 256-byte limit -> 16 fragments
        assert not a.feasible
        assert any("fragments" in v for v in a.vetoes)

    def test_vetoed_assessment_documents_reason(self):
        req = Requirements(variable_module_shape=True)
        a = assess("RMBoC", req)
        assert a.vetoes
        assert math.isinf(a.score)


class TestRecommendations:
    def test_area_critical_design_picks_buscom(self):
        """§4: 'If area efficiency is the main design parameter, the
        bus-based systems are the first choice. Especially BUS-COM.'"""
        req = Requirements(weight_area=10.0, weight_latency=0.1,
                           weight_flexibility=0.1, weight_scalability=0.1)
        assert recommend(req).best == "BUS-COM"

    def test_flexible_reconfig_heavy_design_picks_conochi(self):
        """§4: 'CoNoChi offers the best structural parameters and the
        best conceptional support for dynamic reconfiguration.'"""
        req = Requirements(variable_module_shape=True,
                           reconfigures_often=True,
                           needs_runtime_growth=True,
                           weight_flexibility=5.0, weight_scalability=3.0,
                           weight_area=0.2, weight_latency=0.2)
        assert recommend(req).best == "CoNoChi"

    def test_all_vetoed_gives_none(self):
        req = Requirements(variable_module_shape=True,
                           area_budget_slices=100)
        rec = recommend(req)
        assert rec.best is None
        assert rec.ranking == []

    def test_ranking_sorted_by_score(self):
        rec = recommend(Requirements())
        scores = [rec.assessments[n].score for n in rec.ranking]
        assert scores == sorted(scores, reverse=True)

    def test_report_mentions_every_architecture(self):
        text = recommend(Requirements()).report()
        for name in ARCHS:
            assert name in text
        assert "recommendation:" in text

    def test_assessments_cover_all_archs(self):
        rec = recommend(Requirements())
        assert set(rec.assessments) == set(ARCHS)


class TestEstimates:
    def test_area_estimates_match_table3_for_slot_modules(self):
        req = Requirements(num_modules=4, link_width=32)
        assert assess("RMBoC", req).area_slices == 5084
        assert assess("BUS-COM", req).area_slices == 1294
        assert assess("DyNoC", req).area_slices == 1480

    def test_dynoc_area_grows_for_variable_shapes(self):
        fixed = assess("DyNoC", Requirements())
        variable = assess("DyNoC", Requirements(variable_module_shape=True))
        assert variable.area_slices > fixed.area_slices

    def test_latency_estimate_scales_with_transfer_size(self):
        small = assess("RMBoC", Requirements(max_transfer_bytes=16))
        big = assess("RMBoC", Requirements(max_transfer_bytes=1024))
        assert big.est_latency_cycles > small.est_latency_cycles

    def test_dmax_estimates(self):
        req = Requirements(num_modules=4)
        assert assess("RMBoC", req).dmax == 12
        assert assess("BUS-COM", req).dmax == 4


class TestStaticBaselineCandidates:
    def test_static_designs_excluded_by_default(self):
        rec = recommend(Requirements())
        assert "SharedBus" not in rec.assessments
        assert "StaticMesh" not in rec.assessments

    def test_no_dpr_needed_lets_baseline_win_on_area(self):
        """The E10 result as advice: if the module mix never changes,
        a static design is the cheapest feasible answer."""
        req = Requirements(needs_runtime_module_exchange=False,
                           weight_area=10.0, weight_latency=0.5,
                           weight_flexibility=0.1, weight_scalability=0.1)
        rec = recommend(req)
        assert rec.best in ("SharedBus", "StaticMesh")

    def test_parallelism_still_vetoes_sharedbus(self):
        req = Requirements(needs_runtime_module_exchange=False,
                           min_parallel_transfers=2)
        rec = recommend(req)
        assert not rec.assessments["SharedBus"].feasible
        assert rec.assessments["StaticMesh"].feasible

    def test_growth_requirement_vetoes_statics(self):
        req = Requirements(needs_runtime_module_exchange=False,
                           needs_runtime_growth=True)
        rec = recommend(req)
        assert not rec.assessments["SharedBus"].feasible
        assert not rec.assessments["StaticMesh"].feasible

    def test_report_lists_baselines_when_candidates(self):
        req = Requirements(needs_runtime_module_exchange=False)
        text = recommend(req).report()
        assert "SharedBus" in text and "StaticMesh" in text
