"""Minimal-scenario tests."""

import pytest

from repro.arch import ARCHITECTURES, build_architecture
from repro.core.scenario import minimal_scenario, pattern_pairs


class TestPatternPairs:
    MODULES = ["m0", "m1", "m2", "m3"]

    def test_all_pairs(self):
        pairs = pattern_pairs(self.MODULES, "all-pairs")
        assert len(pairs) == 12
        assert ("m0", "m0") not in pairs

    def test_ring(self):
        assert pattern_pairs(self.MODULES, "ring") == [
            ("m0", "m1"), ("m1", "m2"), ("m2", "m3"), ("m3", "m0"),
        ]

    def test_neighbors(self):
        assert pattern_pairs(self.MODULES, "neighbors") == [
            ("m0", "m1"), ("m1", "m2"), ("m2", "m3"),
        ]

    def test_pairs_disjoint(self):
        assert pattern_pairs(self.MODULES, "pairs") == [
            ("m0", "m1"), ("m2", "m3"),
        ]

    def test_unknown_pattern_raises(self):
        with pytest.raises(ValueError):
            pattern_pairs(self.MODULES, "butterfly")

    def test_single_module_raises(self):
        with pytest.raises(ValueError):
            pattern_pairs(["m0"], "ring")


@pytest.mark.parametrize("name", ARCHITECTURES)
class TestMinimalScenario:
    def test_ring_completes(self, name):
        arch = build_architecture(name)
        result = minimal_scenario(arch, payload_bytes=64, pattern="ring")
        assert result.messages == 4
        assert len(result.latencies) == 4
        assert result.total_cycles > 0
        assert result.arch_key == arch.KEY

    def test_all_pairs_completes(self, name):
        arch = build_architecture(name)
        result = minimal_scenario(arch, payload_bytes=32,
                                  pattern="all-pairs")
        assert result.messages == 12

    def test_repeats_scale_message_count(self, name):
        arch = build_architecture(name)
        result = minimal_scenario(arch, payload_bytes=16, pattern="pairs",
                                  repeats=3, gap_cycles=50)
        assert result.messages == 6

    def test_pair_latency_mapping(self, name):
        arch = build_architecture(name)
        result = minimal_scenario(arch, payload_bytes=16, pattern="ring")
        assert set(result.pair_latency) == {
            ("m0", "m1"), ("m1", "m2"), ("m2", "m3"), ("m3", "m0"),
        }
        assert result.mean_latency == pytest.approx(
            sum(result.latencies) / 4
        )

    def test_stats_properties(self, name):
        arch = build_architecture(name)
        result = minimal_scenario(arch, payload_bytes=64, pattern="ring")
        assert result.min_latency <= result.mean_latency <= result.max_latency
        assert result.delivered_payload_bytes == 4 * 64
        assert result.observed_dmax >= 1


class TestValidation:
    def test_zero_repeats_raises(self):
        arch = build_architecture("buscom")
        with pytest.raises(ValueError):
            minimal_scenario(arch, repeats=0)


@pytest.mark.parametrize("name", ["sharedbus", "staticmesh"])
class TestMinimalScenarioOnBaselines:
    def test_baselines_run_the_scenario(self, name):
        arch = build_architecture(name)
        result = minimal_scenario(arch, payload_bytes=64, pattern="ring")
        assert result.messages == 4
        assert result.observed_dmax >= 1

    def test_sharedbus_serializes_ring(self, name):
        arch = build_architecture(name)
        result = minimal_scenario(arch, payload_bytes=64, pattern="pairs")
        if name == "sharedbus":
            assert result.observed_dmax == 1
        else:
            assert result.observed_dmax >= 1
