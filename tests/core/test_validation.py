"""Validation-harness tests."""

from repro.core.validation import Check, ValidationReport, validate_reproduction


class TestReport:
    def test_all_pass(self):
        r = ValidationReport()
        r.add("a", True, "ok")
        r.add("b", True, "ok")
        assert r.passed
        assert "2/2 checks passed" in r.render()

    def test_one_failure_fails(self):
        r = ValidationReport()
        r.add("a", True, "ok")
        r.add("b", False, "broken")
        assert not r.passed
        assert "[FAIL] b" in r.render()


class TestValidateReproduction:
    def test_fast_mode_passes(self):
        report = validate_reproduction(fast=True)
        assert report.passed, report.render()
        names = [c.name for c in report.checks]
        assert any("Table 1" in n for n in names)
        assert any("Table 3" in n for n in names)
        assert any("E3" in n for n in names)

    def test_fast_skips_slow_checks(self):
        fast = validate_reproduction(fast=True)
        assert not any("E2" in c.name for c in fast.checks)
