"""Table-generator regression tests: the reproduction's headline checks."""

import pytest

from repro.core import tables
from repro.core.parameters import PAPER_TABLE_1, PAPER_TABLE_4


class TestTable1:
    def test_matches_paper_transcription(self):
        assert tables.table1() == PAPER_TABLE_1


class TestTable2:
    @pytest.fixture(scope="class")
    def t2(self):
        return tables.table2()

    def test_rmboc_row(self, t2):
        row = t2["RMBoC"]
        assert row.setup_latency_cycles == 8     # published minimum
        assert row.data_cycles_per_word == 1.0   # published streaming rate
        assert row.slices == 5084
        assert row.fmax_mhz == pytest.approx(94.0)

    def test_buscom_row(self, t2):
        row = t2["BUS-COM"]
        assert row.slices == 1294
        assert row.fmax_mhz == 66.0
        assert "296" in row.config  # published prototype figure

    def test_conochi_row(self, t2):
        row = t2["CoNoChi"]
        assert row.per_hop_latency_cycles == 5   # published switch latency
        assert row.slices == 410                 # published per-switch area

    def test_dynoc_row_flagged_assumed(self, t2):
        row = t2["DyNoC"]
        assert row.slices == 370
        assert "assumed" in row.provenance

    def test_fmax_bracket(self, t2):
        """§4.2: prototypes cluster in the same order of magnitude."""
        values = [row.fmax_mhz for row in t2.values()]
        assert max(values) / min(values) < 1.5


class TestTable3:
    def test_exact_paper_values(self):
        assert tables.table3() == {
            "RMBoC": 5084, "BUS-COM": 1294, "DyNoC": 1480, "CoNoChi": 1640,
        }

    def test_scales_with_modules(self):
        t8 = tables.table3(m=8)
        t4 = tables.table3(m=4)
        for arch in t4:
            assert t8[arch] > t4[arch]


class TestTable4:
    def test_matches_paper(self):
        ranked = tables.table4()
        for name, expected in PAPER_TABLE_4.items():
            assert ranked[name].as_tuple() == expected.as_tuple()


class TestAllTables:
    def test_bundle_keys(self):
        bundle = tables.all_tables()
        assert set(bundle) == {"table1", "table2", "table3", "table4"}
