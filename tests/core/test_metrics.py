"""Metric-probe tests."""

import math

import pytest

from repro.arch import build_architecture
from repro.core.metrics import (
    effective_bandwidth,
    measure_min_setup_latency,
    measure_per_hop_latency,
    observed_parallelism,
    probe_single_message,
)


class TestProbeSingleMessage:
    def test_rmboc_decomposition(self):
        arch = build_architecture("rmboc")
        p = probe_single_message(arch, "m0", "m1", 64)
        assert p.setup_cycles == 8
        assert p.transfer_cycles == 16
        assert p.total_cycles == 24
        assert p.cycles_per_word == 1.0

    def test_noc_has_no_setup(self):
        arch = build_architecture("conochi")
        p = probe_single_message(arch, "m0", "m1", 64)
        assert p.setup_cycles is None
        assert p.transfer_cycles == p.total_cycles

    def test_payload_words(self):
        arch = build_architecture("dynoc")
        p = probe_single_message(arch, "m0", "m1", 100)
        assert p.payload_words == 25


class TestPublishedFigures:
    def test_min_setup_latency_is_8(self):
        """Table 2's RMBoC row."""
        assert measure_min_setup_latency() == 8

    def test_conochi_per_hop_slope(self):
        """Table 2: 5-cycle switch + 1-cycle link = 6/hop."""
        slope, samples = measure_per_hop_latency("conochi")
        assert slope == pytest.approx(6.0)
        assert set(samples) == {1, 2, 3}

    def test_dynoc_per_hop_slope(self):
        slope, _ = measure_per_hop_latency("dynoc")
        assert slope == pytest.approx(4.0)  # 3-cycle router + 1 link


class TestEffectiveBandwidth:
    def test_buscom_90pct_with_full_static_slots(self):
        arch = build_architecture("buscom")
        for _ in range(4):
            arch.ports["m0"].send("m1", 72)
        arch.run_to_completion()
        assert effective_bandwidth(arch) == pytest.approx(0.90)

    def test_conochi_90pct_at_108_bytes(self):
        arch = build_architecture("conochi")
        arch.ports["m0"].send("m1", 108)
        arch.run_to_completion()
        assert effective_bandwidth(arch) == pytest.approx(0.90)

    def test_rmboc_negligible_overhead(self):
        """§4.2: 'the protocol overhead becomes neglectable here'."""
        arch = build_architecture("rmboc")
        arch.ports["m0"].send("m1", 8192)
        arch.run_to_completion()
        assert effective_bandwidth(arch) > 0.99

    def test_nan_without_traffic(self):
        arch = build_architecture("buscom")
        assert math.isnan(effective_bandwidth(arch))


class TestObservedParallelism:
    def test_zero_without_traffic(self):
        arch = build_architecture("buscom")
        assert observed_parallelism(arch) == (0, pytest.approx(math.nan, nan_ok=True))

    def test_max_and_mean(self):
        arch = build_architecture("buscom")
        for i in range(4):
            arch.ports[f"m{i}"].send(f"m{(i + 1) % 4}", 720)
        arch.run_to_completion()
        mx, mean = observed_parallelism(arch)
        assert mx == 4
        assert 0 < mean <= 4


class TestLatencyDecomposition:
    def test_empty_is_nan(self):
        from repro.core.metrics import latency_decomposition

        arch = build_architecture("buscom")
        d = latency_decomposition(arch)
        assert d.samples == 0
        assert math.isnan(d.total_mean)

    def test_buscom_queueing_visible(self):
        """A message sent just after its slot passed queues measurably."""
        from repro.core.metrics import latency_decomposition

        arch = build_architecture("buscom")
        arch.sim.run(100)
        arch.ports["m0"].send("m1", 16)
        arch.run_to_completion()
        d = latency_decomposition(arch)
        assert d.samples == 1
        assert d.queueing_mean >= 0
        assert d.transport_mean > 0
        assert d.total_mean == pytest.approx(
            arch.log.latencies()[0], abs=1e-9
        )

    def test_rmboc_setup_counts_as_queueing(self):
        from repro.core.metrics import latency_decomposition

        arch = build_architecture("rmboc")
        arch.ports["m0"].send("m1", 64)
        arch.run_to_completion()
        d = latency_decomposition(arch)
        # the 8-cycle circuit setup precedes acceptance into a transfer
        assert d.queueing_mean == 8.0
        assert d.transport_mean == 16.0

    def test_decomposition_sums_to_latency(self):
        from repro.core.metrics import latency_decomposition

        for name in ("rmboc", "buscom", "dynoc", "conochi"):
            arch = build_architecture(name)
            for i in range(4):
                arch.ports[f"m{i}"].send(f"m{(i + 1) % 4}", 48)
            arch.run_to_completion()
            d = latency_decomposition(arch)
            lat = arch.log.latencies()
            assert d.total_mean == pytest.approx(sum(lat) / len(lat))


class TestJainFairness:
    def test_perfectly_fair(self):
        from repro.core.metrics import jain_fairness

        assert jain_fairness([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_one_flow_takes_all(self):
        from repro.core.metrics import jain_fairness

        assert jain_fairness([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_empty_raises(self):
        from repro.core.metrics import jain_fairness

        with pytest.raises(ValueError):
            jain_fairness([])

    def test_all_zero_is_vacuously_fair(self):
        from repro.core.metrics import jain_fairness

        assert jain_fairness([0, 0]) == 1.0
