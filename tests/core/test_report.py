"""Report-rendering tests."""

from repro.core import tables
from repro.core.report import (
    format_table,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bbb"], [["x", 1], ["yy", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a ")
        # all rows same width
        assert len(set(len(l.rstrip()) for l in lines[2:])) <= 2

    def test_title(self):
        text = format_table(["h"], [["v"]], title="T")
        assert text.splitlines()[0] == "T"

    def test_empty_rows(self):
        text = format_table(["h1", "h2"], [])
        assert "h1" in text


class TestRenderers:
    def test_table1_contains_all_rows(self):
        text = render_table1(tables.table1())
        for name in ("RMBoC", "BUS-COM", "DyNoC", "CoNoChi"):
            assert name in text
        assert "circuit" in text
        assert "96 bit" in text
        assert "n. p." in text  # DyNoC's unpublished payload

    def test_table3_contains_published_numbers(self):
        text = render_table3(tables.table3())
        for number in ("5084", "1294", "1480", "1640"):
            assert number in text

    def test_table4_levels(self):
        text = render_table4(tables.table4())
        assert "high" in text and "medium" in text and "low" in text

    def test_table2_slow_but_complete(self):
        text = render_table2(tables.table2())
        assert "94" in text    # RMBoC f_max
        assert "410" in text   # CoNoChi switch slices
