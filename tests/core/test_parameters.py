"""Taxonomy datatype tests + the paper's transcribed ground truth."""

import pytest

from repro.core.parameters import (
    ARCH_NAMES,
    PAPER_TABLE_1,
    PAPER_TABLE_4,
    DesignParameters,
    Level,
    ModuleShape,
    StructuralRanking,
    Switching,
    Topology,
)


class TestLevel:
    def test_ordering(self):
        assert Level.LOW < Level.MEDIUM < Level.HIGH

    def test_str(self):
        assert str(Level.HIGH) == "high"


class TestDesignParameters:
    def test_invalid_type_raises(self):
        with pytest.raises(ValueError):
            DesignParameters(
                name="x", arch_type="Star", topology=Topology.ARRAY_1D,
                module_size=ModuleShape.FIXED, switching=Switching.CIRCUIT,
                bit_width=(1, 32), overhead="", overhead_bits=None,
                max_payload_bytes=None, protocol_layers=1,
            )

    def test_invalid_width_range_raises(self):
        with pytest.raises(ValueError):
            DesignParameters(
                name="x", arch_type="Bus", topology=Topology.ARRAY_1D,
                module_size=ModuleShape.FIXED, switching=Switching.CIRCUIT,
                bit_width=(32, 1), overhead="", overhead_bits=None,
                max_payload_bytes=None, protocol_layers=1,
            )

    def test_zero_layers_raises(self):
        with pytest.raises(ValueError):
            DesignParameters(
                name="x", arch_type="Bus", topology=Topology.ARRAY_1D,
                module_size=ModuleShape.FIXED, switching=Switching.CIRCUIT,
                bit_width=(1, 32), overhead="", overhead_bits=None,
                max_payload_bytes=None, protocol_layers=0,
            )


class TestPaperTable1:
    """Row-by-row transcription checks against the paper's Table 1."""

    def test_all_architectures_present(self):
        assert set(PAPER_TABLE_1) == set(ARCH_NAMES)

    def test_bus_rows(self):
        for name in ("RMBoC", "BUS-COM"):
            row = PAPER_TABLE_1[name]
            assert row.arch_type == "Bus"
            assert row.topology is Topology.ARRAY_1D
            assert row.module_size is ModuleShape.FIXED

    def test_noc_rows(self):
        for name in ("DyNoC", "CoNoChi"):
            row = PAPER_TABLE_1[name]
            assert row.arch_type == "NoC"
            assert row.topology is Topology.ARRAY_2D
            assert row.module_size is ModuleShape.VARIABLE
            assert row.switching is Switching.PACKET

    def test_switching_kinds(self):
        assert PAPER_TABLE_1["RMBoC"].switching is Switching.CIRCUIT
        assert PAPER_TABLE_1["BUS-COM"].switching is Switching.TIME_MULTIPLEXED

    def test_payload_limits(self):
        assert PAPER_TABLE_1["BUS-COM"].max_payload_bytes == 256
        assert PAPER_TABLE_1["CoNoChi"].max_payload_bytes == 1024
        assert PAPER_TABLE_1["RMBoC"].max_payload_bytes is None
        assert PAPER_TABLE_1["DyNoC"].max_payload_bytes is None

    def test_protocol_layers(self):
        layers = {n: PAPER_TABLE_1[n].protocol_layers for n in ARCH_NAMES}
        assert layers == {"RMBoC": 1, "BUS-COM": 1, "DyNoC": 1, "CoNoChi": 3}

    def test_overhead_bits(self):
        assert PAPER_TABLE_1["BUS-COM"].overhead_bits == 20
        assert PAPER_TABLE_1["CoNoChi"].overhead_bits == 96


class TestPaperTable4:
    def test_all_architectures_present(self):
        assert set(PAPER_TABLE_4) == set(ARCH_NAMES)

    def test_conochi_all_high(self):
        r = PAPER_TABLE_4["CoNoChi"]
        assert r.as_tuple() == (Level.HIGH,) * 4

    def test_buscom_all_medium(self):
        r = PAPER_TABLE_4["BUS-COM"]
        assert r.as_tuple() == (Level.MEDIUM,) * 4

    def test_rmboc_row(self):
        r = PAPER_TABLE_4["RMBoC"]
        assert (r.flexibility, r.scalability, r.extensibility,
                r.modularity) == (Level.HIGH, Level.MEDIUM, Level.LOW,
                                  Level.MEDIUM)

    def test_dynoc_row(self):
        r = PAPER_TABLE_4["DyNoC"]
        assert (r.flexibility, r.scalability, r.extensibility,
                r.modularity) == (Level.LOW, Level.HIGH, Level.HIGH,
                                  Level.HIGH)
