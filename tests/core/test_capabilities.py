"""Capability-profile tests."""

import dataclasses

import pytest

from repro.core.capabilities import PROFILES, CapabilityProfile
from repro.core.parameters import ARCH_NAMES, ModuleShape


class TestProfiles:
    def test_all_four_present(self):
        assert set(PROFILES) == set(ARCH_NAMES)

    def test_names_match_keys(self):
        for key, profile in PROFILES.items():
            assert profile.name == key

    def test_nocs_concurrent_buses_not(self):
        assert PROFILES["DyNoC"].concurrent_medium
        assert PROFILES["CoNoChi"].concurrent_medium
        assert not PROFILES["RMBoC"].concurrent_medium
        assert not PROFILES["BUS-COM"].concurrent_medium

    def test_only_conochi_has_tables_and_redirection(self):
        for name, p in PROFILES.items():
            expected = name == "CoNoChi"
            assert p.routing_tables is expected
            assert p.packet_redirection is expected

    def test_shape_freedom_matches_style(self):
        for name in ("RMBoC", "BUS-COM"):
            assert PROFILES[name].module_shape is ModuleShape.FIXED
        for name in ("DyNoC", "CoNoChi"):
            assert PROFILES[name].module_shape is ModuleShape.VARIABLE

    def test_extension_dims_bounds(self):
        with pytest.raises(ValueError):
            dataclasses.replace(PROFILES["RMBoC"], extension_dims=-1)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            PROFILES["RMBoC"].extension_dims = 2

    def test_model_agreement_with_simulators(self):
        """Capability booleans match what the simulators actually do."""
        from repro.arch import build_architecture

        # RMBoC bandwidth adaptation: >1 circuit per pair exists
        arch = build_architecture("rmboc")
        for _ in range(2):
            arch.ports["m0"].send("m1", 512)
        arch.run_to_completion()
        established = arch.sim.stats.counter(
            "rmboc.channels.established").value
        assert (established > 1) == PROFILES["RMBoC"].bandwidth_adaptation

        # BUS-COM virtual topology: slot reassignment exists and works
        arch = build_architecture("buscom")
        arch.reassign_slot(0, 0, "m2")
        arch.sim.run(arch.cfg.reassign_latency + 2)
        assert (arch.table.entry(0, 0).owner == "m2") == \
            PROFILES["BUS-COM"].virtual_topology
