"""Ranking-rubric tests: the rubric must regenerate Table 4 exactly."""

import dataclasses

import pytest

from repro.core.capabilities import PROFILES, CapabilityProfile
from repro.core.parameters import PAPER_TABLE_4, Level, ModuleShape
from repro.core.ranking import (
    extensibility_score,
    flexibility_score,
    modularity_score,
    rank,
    rank_all,
    scalability_score,
    score,
)


class TestTable4Reproduction:
    def test_exact_match_with_paper(self):
        """The headline regression: rubric(capabilities) == Table 4."""
        ranked = rank_all()
        for name, expected in PAPER_TABLE_4.items():
            assert ranked[name].as_tuple() == expected.as_tuple(), name

    def test_all_profiles_present(self):
        assert set(PROFILES) == set(PAPER_TABLE_4)


class TestRubricComponents:
    def test_flexibility_order(self):
        """CoNoChi >= RMBoC > BUS-COM > DyNoC in raw score."""
        f = {n: flexibility_score(p) for n, p in PROFILES.items()}
        assert f["CoNoChi"] >= f["RMBoC"] > f["BUS-COM"] > f["DyNoC"]

    def test_scalability_noc_beats_bus(self):
        s = {n: scalability_score(p) for n, p in PROFILES.items()}
        assert s["DyNoC"] == s["CoNoChi"] == 2
        assert s["RMBoC"] == s["BUS-COM"] == 1

    def test_extensibility_is_dimensions(self):
        e = {n: extensibility_score(p) for n, p in PROFILES.items()}
        assert e == {"RMBoC": 0, "BUS-COM": 1, "DyNoC": 2, "CoNoChi": 2}

    def test_modularity_tiled_beats_slots(self):
        m = {n: modularity_score(p) for n, p in PROFILES.items()}
        assert m["DyNoC"] == m["CoNoChi"] == 2
        assert m["RMBoC"] == m["BUS-COM"] == 1

    def test_score_breakdown_fields(self):
        b = score(PROFILES["CoNoChi"])
        assert b.flexibility >= 3
        assert b.scalability == 2

    def test_single_bus_without_mitigation_scores_zero(self):
        plain = dataclasses.replace(
            PROFILES["BUS-COM"],
            name="PlainBus",
            virtual_topology=False,
            dynamic_arbitration=False,
            bandwidth_adaptation=False,
        )
        assert scalability_score(plain) == 0
        assert rank(plain).scalability is Level.LOW


class TestProfiles:
    def test_extension_dims_validated(self):
        with pytest.raises(ValueError):
            dataclasses.replace(PROFILES["DyNoC"], extension_dims=3)

    def test_paper_citations_consistent(self):
        """Spot-check the capability facts against the paper's prose."""
        assert PROFILES["RMBoC"].bandwidth_adaptation       # §4.3
        assert not PROFILES["DyNoC"].bandwidth_adaptation   # §4.3
        assert PROFILES["CoNoChi"].packet_redirection       # §4.2
        assert PROFILES["BUS-COM"].virtual_topology         # §3.1
        assert not PROFILES["BUS-COM"].segmented_medium     # §4.2
        assert PROFILES["DyNoC"].module_shape is ModuleShape.VARIABLE
