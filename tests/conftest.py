"""Shared fixtures: keep the opt-out run ledger out of the repo tree.

Ledgering is opt-out (every experiment/fleet/chaos run persists a
``repro.run/1`` record), so without isolation the suite would scatter
records into ``.repro-cache`` under the working directory.  Pointing
``REPRO_LEDGER_DIR`` at a per-test temporary directory keeps the
behavior exercised — records are still written and readable — while
leaving the checkout clean.  Tests that need the ledger *disabled*
set ``REPRO_LEDGER=0`` themselves.
"""

import pytest


@pytest.fixture(autouse=True)
def _isolated_run_ledger(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "run-ledger"))
