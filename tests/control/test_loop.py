"""Closed-loop behaviour: determinism, rollback, saturation, and the
guarantee that a controller-free run is unaffected by the machinery."""

import json

import pytest

from repro.arch import build_architecture
from repro.control import ControlLoop, GuardConfig, run_adaptive_pair
from repro.control.evaluate import (ADAPT_GUARD, ADAPT_HORIZON,
                                    _scenario_buscom, _scenario_sharedbus)
from repro.control.loop import FINAL_STATUSES
from repro.obs.alerts import AlertEngine
from repro.obs.flows import FlowTelemetry
from repro.control.actions import adaptive_rules
from repro.sim import Simulator


def _wired(scenario, seed=7, guard=None, name="loop-test"):
    """Scenario + telemetry + adaptive alert engine + control loop."""
    sim = Simulator(name=name)
    tel = FlowTelemetry()
    tel.engine = AlertEngine(rules=adaptive_rules())
    tel.attach(sim)
    arch = scenario(sim, seed)
    loop = ControlLoop(arch, tel=tel, guard=guard or ADAPT_GUARD)
    return sim, arch, loop


class TestDeterminism:
    def test_same_seed_byte_identical_pair(self):
        a = run_adaptive_pair("buscom", seed=7)
        b = run_adaptive_pair("buscom", seed=7)
        assert (json.dumps(a, sort_keys=True)
                == json.dumps(b, sort_keys=True))

    def test_action_log_identical_across_engines(self):
        pytest.importorskip("numpy")
        obj = run_adaptive_pair("buscom", seed=7, engine="object")
        vec = run_adaptive_pair("buscom", seed=7, engine="vec")
        assert (json.dumps(obj["adaptive"]["control"], sort_keys=True)
                == json.dumps(vec["adaptive"]["control"],
                              sort_keys=True))
        assert obj["static"] == vec["static"]

    def test_records_settle_to_final_statuses(self):
        sim, _arch, loop = _wired(_scenario_buscom)
        sim.run(ADAPT_HORIZON)
        assert loop.actions, "the starved-slot scenario must actuate"
        assert all(r.status in FINAL_STATUSES for r in loop.actions)


class TestControllerOffIsInert:
    """Telemetry + alert rules with no subscriber must not perturb the
    run — the loop's only hook is the engine's listener list."""

    def _run(self, with_noop_listener):
        sim = Simulator(name="inert")
        tel = FlowTelemetry()
        tel.engine = AlertEngine(rules=adaptive_rules())
        tel.attach(sim)
        arch = _scenario_buscom(sim, 7)
        if with_noop_listener:
            tel.engine.subscribe(lambda event, alert: None)
        sim.run(ADAPT_HORIZON)
        tel.evaluate_now(sim.cycle)
        return sim, arch, tel.engine

    def test_noop_listener_is_bit_identical(self):
        sim_a, arch_a, eng_a = self._run(False)
        sim_b, arch_b, eng_b = self._run(True)
        assert sim_a.cycle == sim_b.cycle
        assert arch_a.log.total == arch_b.log.total
        assert (len(arch_a.log.delivered())
                == len(arch_b.log.delivered()))
        assert eng_a.snapshot(sim_a.cycle) == eng_b.snapshot(sim_b.cycle)

    def test_no_loop_means_no_control_hook(self):
        sim, _arch, _eng = self._run(False)
        assert sim.control is None


class TestRollback:
    def test_unhelpful_action_is_rolled_back_and_order_restored(self):
        sim, arch, loop = _wired(_scenario_sharedbus)
        before = arch.arbitration_order()
        sim.run(ADAPT_HORIZON)
        rolled = [r for r in loop.actions if r.status == "rolled_back"]
        assert rolled, "rebalancing a fair bus must fail its check"
        assert rolled[0].reason == "no improvement in observation window"
        # rollback reinstalls the scan order captured at plan time —
        # the same service rotation the arbiter was using
        after = arch.arbitration_order()
        rotations = [before[i:] + before[:i] for i in range(len(before))]
        assert after in rotations

    def test_confirmed_action_persists(self):
        from repro.control.evaluate import _scenario_rmboc

        sim, arch, loop = _wired(_scenario_rmboc)
        assert arch.channel_cap == 1
        sim.run(ADAPT_HORIZON)
        confirmed = [r for r in loop.actions
                     if r.status == "confirmed"]
        assert confirmed and confirmed[0].kind == "raise-channel-cap"
        assert arch.channel_cap == 2  # the fix stays in


class TestSaturation:
    TINY = GuardConfig(observe_window=4_096, cooldown=0,
                       max_actions_per_window=1,
                       budget_window=1_000_000)

    def test_budget_trips_to_observe_only(self):
        sim, _arch, loop = _wired(_scenario_buscom, guard=self.TINY)
        sim.run(ADAPT_HORIZON)
        assert loop.observe_only
        suppressed = [r for r in loop.actions
                      if r.status == "suppressed"]
        assert suppressed
        assert all(r.reason == "saturated" for r in suppressed)
        # at most one apply ever happened under a budget of one
        applied = [r for r in loop.actions
                   if r.status in ("confirmed", "rolled_back")]
        assert len(applied) == 1

    def test_saturation_raises_its_own_alert_once(self):
        sim, _arch, loop = _wired(_scenario_buscom, guard=self.TINY)
        sim.run(ADAPT_HORIZON)
        saturation = [a for a in loop.engine.alerts
                      if a.rule == "controller-saturated"]
        assert len(saturation) == 1
        assert "observe-only" in saturation[0].message

    def test_action_log_snapshot_reflects_saturation(self):
        sim, _arch, loop = _wired(_scenario_buscom, guard=self.TINY)
        sim.run(ADAPT_HORIZON)
        doc = loop.action_log(sim.cycle)
        assert doc["observe_only"] is True
        assert doc["guard"]["saturated"] is True


class TestWiring:
    def test_loop_requires_telemetry(self):
        sim = Simulator(name="bare")
        arch = build_architecture("sharedbus", num_modules=4, sim=sim)
        with pytest.raises(ValueError, match="telemetry"):
            ControlLoop(arch)

    def test_loop_builds_default_engine(self):
        sim = Simulator(name="deftel")
        tel = FlowTelemetry()
        tel.attach(sim)
        arch = build_architecture("sharedbus", num_modules=4, sim=sim)
        loop = ControlLoop(arch, tel=tel)
        assert loop.engine is tel.engine
        assert {"fabric-pressure", "backoff-storm"} <= {
            r.name for r in loop.engine.rules}

    def test_loop_registers_discovery_hook(self):
        sim, _arch, loop = _wired(_scenario_sharedbus)
        assert sim.control is loop
