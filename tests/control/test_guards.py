"""Unit tests for the actuation guard: admission order, cooldown
hysteresis, the trailing safety budget, and deterministic retry
pacing."""

import pytest

from repro.control import ActuationGuard, GuardConfig
from repro.sim.backoff import bounded_backoff


class TestGuardConfig:
    def test_defaults_valid(self):
        cfg = GuardConfig()
        assert cfg.cooldown > 0 and cfg.max_actions_per_window >= 1

    def test_negative_cooldown_rejected(self):
        with pytest.raises(ValueError, match="cooldown"):
            GuardConfig(cooldown=-1)

    def test_observe_window_must_be_positive(self):
        with pytest.raises(ValueError, match="observe_window"):
            GuardConfig(observe_window=0)

    def test_improve_frac_bounds(self):
        with pytest.raises(ValueError, match="improve_frac"):
            GuardConfig(improve_frac=1.5)

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError, match="budget"):
            GuardConfig(max_actions_per_window=0)


class TestAdmission:
    def test_fresh_guard_admits(self):
        guard = ActuationGuard()
        assert guard.admit("r", "t", 0) is None

    def test_cooldown_blocks_same_pair_only(self):
        guard = ActuationGuard(GuardConfig(cooldown=100))
        guard.note_applied("a0", "r", "t", now=10)
        assert guard.admit("r", "t", 50) == "cooldown"
        assert guard.admit("r", "other", 50) is None
        assert guard.admit("r", "t", 110) is None

    def test_rollback_extends_cooldown(self):
        cfg = GuardConfig(cooldown=100, rollback_penalty=4)
        guard = ActuationGuard(cfg)
        guard.note_applied("a0", "r", "t", now=0)
        guard.note_settled("a0", "r", "t", now=50, rolled_back=True)
        # base cooldown would have expired at 100; the penalty holds
        # the knob cold until 50 + 400
        assert guard.admit("r", "t", 200) == "cooldown"
        assert guard.admit("r", "t", 449) == "cooldown"
        assert guard.admit("r", "t", 450) is None

    def test_confirmed_settle_keeps_base_cooldown(self):
        guard = ActuationGuard(GuardConfig(cooldown=100))
        guard.note_applied("a0", "r", "t", now=0)
        guard.note_settled("a0", "r", "t", now=50, rolled_back=False)
        assert guard.admit("r", "t", 100) is None

    def test_concurrent_limit(self):
        guard = ActuationGuard(GuardConfig(cooldown=0, max_concurrent=2))
        guard.note_applied("a0", "r0", "t0", now=0)
        guard.note_applied("a1", "r1", "t1", now=0)
        assert guard.inflight() == 2
        assert guard.admit("r2", "t2", 1) == "concurrent-limit"
        guard.note_settled("a0", "r0", "t0", now=2, rolled_back=False)
        assert guard.admit("r2", "t2", 3) is None

    def test_suppression_reasons_counted(self):
        guard = ActuationGuard(GuardConfig(cooldown=100))
        guard.note_applied("a0", "r", "t", now=0)
        guard.admit("r", "t", 10)
        guard.admit("r", "t", 20)
        assert guard.suppressed_counts == {"cooldown": 2}


class TestSafetyBudget:
    def test_budget_trips_and_drains(self):
        cfg = GuardConfig(cooldown=0, max_actions_per_window=2,
                          budget_window=1_000)
        guard = ActuationGuard(cfg)
        guard.note_applied("a0", "r", "t0", now=100)
        guard.note_applied("a1", "r", "t1", now=200)
        assert guard.saturated(300)
        assert guard.admit("r", "t2", 300) == "saturated"
        guard.note_settled("a0", "r", "t0", now=350, rolled_back=False)
        guard.note_settled("a1", "r", "t1", now=350, rolled_back=False)
        # the trailing window drains: the 100-cycle apply ages out
        assert not guard.saturated(1_101)
        assert guard.admit("r", "t2", 1_101) is None

    def test_snapshot_reports_window_state(self):
        guard = ActuationGuard(GuardConfig(max_actions_per_window=1,
                                           budget_window=1_000))
        guard.note_applied("a0", "r", "t", now=10)
        snap = guard.snapshot(20)
        assert snap["inflight"] == 1
        assert snap["window_applies"] == 1
        assert snap["saturated"] is True


class TestRetryPacing:
    def test_delay_is_deterministic(self):
        guard = ActuationGuard()
        a = guard.retry_delay(1, "rule", "target")
        b = guard.retry_delay(1, "rule", "target")
        assert a == b

    def test_delay_grows_bounded(self):
        cfg = GuardConfig(retry_backoff=512, retry_backoff_cap=8_192,
                          jitter=64)
        guard = ActuationGuard(cfg)
        for attempt in (1, 2, 5, 50):
            delay = guard.retry_delay(attempt, "r", "t")
            base = bounded_backoff(512, attempt, cap=8_192)
            assert base <= delay < base + 64

    def test_distinct_streams_decorrelate(self):
        guard = ActuationGuard()
        delays = {guard.retry_delay(1, "r", f"t{i}") for i in range(8)}
        assert len(delays) > 1
