"""Action-policy tests: registry wiring, the adaptive rule set, and a
policy's plan/apply/rollback round trip on a live architecture."""

import pytest

from repro.arch import build_architecture
from repro.control import adaptive_rules, make_action_policy
from repro.control.actions import (ActionPolicy, SharedBusActionPolicy,
                                   StaticMeshActionPolicy,
                                   register_action_policy)
from repro.obs.alerts import Alert, default_rules


def _alert(rule="fabric-pressure", subject=""):
    return Alert(rule=rule, metric="queue_current", cycle=100,
                 value=12.0, threshold=8.0, severity="critical",
                 kind="sustained", since=90, subject=subject)


class TestRegistry:
    @pytest.mark.parametrize("key", ["buscom", "conochi", "dynoc",
                                     "staticmesh", "rmboc", "sharedbus"])
    def test_every_architecture_has_a_policy(self, key):
        arch = (build_architecture(key, num_modules=4)
                if key not in ("conochi", "dynoc")
                else build_architecture(key, num_modules=2))
        policy = make_action_policy(arch)
        assert policy.ARCH == key
        assert policy.RULES, "a policy must cover at least one rule"

    def test_unknown_architecture_raises(self):
        class Fake:
            KEY = "nonesuch"

        with pytest.raises(KeyError, match="nonesuch"):
            make_action_policy(Fake())

    def test_out_of_tree_registration(self):
        class MyPolicy(ActionPolicy):
            ARCH = "custom-arch"
            RULES = ("flow-latency-p99",)

        class Fake:
            KEY = "custom-arch"

        register_action_policy("custom-arch", MyPolicy)
        try:
            assert isinstance(make_action_policy(Fake()), MyPolicy)
        finally:
            from repro.control.actions import _POLICIES

            del _POLICIES["custom-arch"]


class TestAdaptiveRules:
    def test_extends_defaults(self):
        names = {r.name for r in adaptive_rules()}
        assert {r.name for r in default_rules()} <= names
        assert {"fabric-pressure", "backoff-storm"} <= names

    def test_staticmesh_covers_fabric_pressure(self):
        # the welded-shut baseline must still *react* (and honestly
        # fail) when router queues stay deep
        assert "fabric-pressure" in StaticMeshActionPolicy.RULES

    def test_rmboc_covers_both_famine_signals(self):
        arch = build_architecture("rmboc", num_modules=4)
        policy = make_action_policy(arch)
        assert policy.covers("backoff-storm")
        assert policy.covers("fabric-pressure")
        assert not policy.covers("tdma-slot-overrun")


class TestSharedBusRoundTrip:
    """plan/apply/rollback against a real arbiter, no control loop."""

    def _loaded_bus(self):
        arch = build_architecture("sharedbus", num_modules=4)
        ports = arch.ports
        for _ in range(6):
            ports["m2"].send("m0", 64, tag="t")
        return arch

    def test_plan_targets_most_backlogged_module(self):
        arch = self._loaded_bus()
        action = make_action_policy(arch).plan(_alert(), None, 100)
        assert action is not None
        assert action.kind == "rebalance-arbiter"
        assert action.target == "m2"

    def test_apply_then_rollback_restores_scan_order(self):
        arch = self._loaded_bus()
        before = arch.arbitration_order()
        action = make_action_policy(arch).plan(_alert(), None, 100)
        action.apply()
        assert arch.arbitration_order()[0] == "m2"
        action.rollback()
        assert arch.arbitration_order() == before

    def test_no_backlog_means_no_action(self):
        arch = build_architecture("sharedbus", num_modules=4)
        assert make_action_policy(arch).plan(_alert(), None, 100) is None


class TestRMBoCRoundTrip:
    def test_cap_raise_and_restore(self):
        arch = build_architecture("rmboc", num_modules=4,
                                  max_channels_per_module=1)
        action = make_action_policy(arch).plan(
            _alert(rule="backoff-storm"), None, 100)
        assert action is not None and action.kind == "raise-channel-cap"
        action.apply()
        assert arch.channel_cap == 2
        action.rollback()
        assert arch.channel_cap == 1

    def test_cap_at_bus_count_is_infeasible(self):
        arch = build_architecture("rmboc", num_modules=4)
        arch.set_channel_cap(arch.cfg.num_buses)
        policy = make_action_policy(arch)
        assert policy.plan(_alert(rule="backoff-storm"), None, 100) is None


class TestSharedBusBacklogs:
    def test_backlogs_reflect_queued_sends(self):
        arch = build_architecture("sharedbus", num_modules=3)
        arch.ports["m1"].send("m0", 64, tag="t")
        arch.ports["m1"].send("m2", 64, tag="t")
        depths = arch.backlogs()
        assert depths["m1"] == 2 and depths["m0"] == 0
        assert list(depths) == sorted(depths)
