"""The control plane's observability surfaces: the watch dashboard's
actions pane, the ``repro_control_*`` Prometheus series, and the
``repro adapt`` / ``repro chaos --adaptive`` CLI paths."""

import json

import pytest

from repro.cli import main
from repro.control import ControlLoop
from repro.control.evaluate import ADAPT_GUARD, ADAPT_HORIZON, \
    _scenario_buscom
from repro.obs import collect_snapshot, render_dashboard, \
    validate_snapshot
from repro.obs.prom import to_prometheus_text
from repro.obs.session import ObservationSession
from repro.sim import Simulator


@pytest.fixture(scope="module")
def adaptive_session():
    session = ObservationSession(trace=False, telemetry=True)
    with session:
        sim = Simulator(name="adaptw")
        arch = _scenario_buscom(sim, 7)
        loop = ControlLoop(arch, guard=ADAPT_GUARD)
        sim.run(ADAPT_HORIZON)
    return session, sim, loop


class TestWatchActionsPane:
    def test_snapshot_carries_versioned_extension(self, adaptive_session):
        session, _sim, loop = adaptive_session
        doc = collect_snapshot(session, "unit")
        assert "actions/1" in doc["extensions"]
        assert doc["actions"]["counts"] == loop.status_counts()
        assert doc["actions"]["observe_only"] is False
        assert validate_snapshot(doc) >= 1

    def test_recent_records_name_their_sim(self, adaptive_session):
        session, sim, _loop = adaptive_session
        doc = collect_snapshot(session, "unit")
        recent = doc["actions"]["recent"]
        assert recent
        assert all(r["sim"] == sim.name for r in recent)
        cycles = [r["cycle"] for r in recent]
        assert cycles == sorted(cycles)

    def test_validate_rejects_pane_without_extension(self,
                                                     adaptive_session):
        session, _sim, _loop = adaptive_session
        doc = collect_snapshot(session, "unit")
        doc["extensions"] = [e for e in doc["extensions"]
                             if e != "actions/1"]
        with pytest.raises(ValueError, match="actions/1"):
            validate_snapshot(doc)

    def test_dashboard_renders_the_pane(self, adaptive_session):
        session, _sim, _loop = adaptive_session
        text = render_dashboard(collect_snapshot(session, "unit"))
        assert "actions:" in text
        assert "confirmed" in text

    def test_controller_free_session_has_no_pane(self):
        session = ObservationSession(trace=False, telemetry=True)
        with session:
            sim = Simulator(name="plain")
            sim.telemetry.record_flow(1, "a", "b", 5, payload_bytes=8)
            sim.run(16)
        doc = collect_snapshot(session, "unit")
        assert "actions" not in doc
        assert validate_snapshot(doc) >= 1


class TestPrometheusControlSeries:
    def test_series_present_with_controller(self, adaptive_session):
        _session, sim, loop = adaptive_session
        text = to_prometheus_text(sim)
        assert "repro_control_actions_total" in text
        for status, count in loop.status_counts().items():
            assert (f'repro_control_actions_total{{status="{status}"}} '
                    f"{count}") in text
        assert "repro_control_observe_only 0" in text
        assert "repro_control_inflight 0" in text
        assert "repro_control_burn_cycles" in text

    def test_series_absent_without_controller(self):
        sim = Simulator(name="nocontrol")
        sim.run(8)
        assert "repro_control_" not in to_prometheus_text(sim)


class TestCLI:
    def test_adapt_json_round_trip(self, monkeypatch, capsys):
        import repro.analysis.chaos as chaos

        monkeypatch.setattr(chaos, "discover_arch_keys",
                            lambda experiment: ["buscom"])
        monkeypatch.setenv("REPRO_LEDGER", "0")
        rc = main(["adapt", "e1", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert doc["improved"] == ["buscom"]

    def test_adapt_renders_table(self, monkeypatch, capsys):
        import repro.analysis.chaos as chaos

        monkeypatch.setattr(chaos, "discover_arch_keys",
                            lambda experiment: ["buscom"])
        monkeypatch.setenv("REPRO_LEDGER", "0")
        rc = main(["adapt", "e1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "adaptive sweep" in out
        assert "buscom" in out

    def test_adapt_unknown_experiment_fails(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_LEDGER", "0")
        rc = main(["adapt", "nonesuch"])
        assert rc == 2
