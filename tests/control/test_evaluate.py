"""Adaptive-vs-static harness: document shape, validators, verdicts
and rendering."""

import pytest

from repro.control import (ADAPT_SCHEMA, render_adapt, run_adapt,
                           run_adaptive_pair, validate_adapt,
                           validate_control)
from repro.control.loop import CONTROL_SCHEMA


@pytest.fixture(scope="module")
def buscom_pair():
    return run_adaptive_pair("buscom", seed=7)


class TestAdaptivePair:
    def test_unknown_architecture_raises(self):
        with pytest.raises(KeyError, match="nonesuch"):
            run_adaptive_pair("nonesuch")

    def test_strict_win_on_the_starved_slot_scenario(self, buscom_pair):
        s, a = buscom_pair["static"], buscom_pair["adaptive"]
        assert buscom_pair["improved"]
        assert a["slo_burn_cycles"] < s["slo_burn_cycles"]
        assert a["mttr_max"] < s["mttr_max"]
        assert a["messages_undelivered"] <= s["messages_undelivered"]
        assert buscom_pair["deltas"]["slo_burn_cycles"] < 0

    def test_static_variant_carries_no_action_log(self, buscom_pair):
        assert "control" not in buscom_pair["static"]
        assert buscom_pair["adaptive"]["control"]["schema"] == \
            CONTROL_SCHEMA

    def test_identical_traffic_both_variants(self, buscom_pair):
        assert (buscom_pair["static"]["messages_sent"]
                == buscom_pair["adaptive"]["messages_sent"])

    def test_action_log_validates(self, buscom_pair):
        n = validate_control(buscom_pair["adaptive"]["control"])
        assert n >= 1


class TestValidateControl:
    def test_rejects_wrong_schema(self, buscom_pair):
        doc = dict(buscom_pair["adaptive"]["control"], schema="bogus")
        with pytest.raises(ValueError, match="schema"):
            validate_control(doc)

    def test_rejects_missing_field(self, buscom_pair):
        doc = dict(buscom_pair["adaptive"]["control"])
        del doc["guard"]
        with pytest.raises(ValueError, match="guard"):
            validate_control(doc)

    def test_rejects_unknown_status(self, buscom_pair):
        doc = dict(buscom_pair["adaptive"]["control"])
        doc["actions"] = [dict(doc["actions"][0], status="sideways")]
        with pytest.raises(ValueError, match="unknown status"):
            validate_control(doc)

    def test_rejects_count_mismatch(self, buscom_pair):
        doc = dict(buscom_pair["adaptive"]["control"])
        doc["counts"] = {"confirmed": 99}
        with pytest.raises(ValueError, match="disagree"):
            validate_control(doc)


class TestRunAdapt:
    @pytest.fixture()
    def doc(self, monkeypatch):
        import repro.analysis.chaos as chaos

        monkeypatch.setattr(chaos, "discover_arch_keys",
                            lambda experiment: ["buscom"])
        return run_adapt("e1", seed=7, ledger=False)

    def test_document_validates(self, doc):
        assert doc["schema"] == ADAPT_SCHEMA
        assert validate_adapt(doc) == 1
        assert doc["architectures"] == ["buscom"]
        assert doc["improved"] == ["buscom"]
        assert doc["regressions"] == []

    def test_static_control_rejected(self, doc):
        bad = dict(doc)
        bad["pairs"] = [dict(doc["pairs"][0])]
        bad["pairs"][0]["static"] = dict(
            bad["pairs"][0]["static"], control={})
        with pytest.raises(ValueError, match="static"):
            validate_adapt(bad)

    def test_empty_pairs_rejected(self):
        with pytest.raises(ValueError, match="pairs"):
            validate_adapt({"schema": ADAPT_SCHEMA, "pairs": []})

    def test_render_names_the_winner(self, doc):
        text = render_adapt(doc)
        assert "buscom" in text
        assert "improved" in text
        assert "1/1" in text

    def test_unknown_experiment_raises(self, monkeypatch):
        import repro.analysis.chaos as chaos

        monkeypatch.setattr(chaos, "discover_arch_keys",
                            lambda experiment: ["no-scenario-arch"])
        with pytest.raises(RuntimeError, match="no\\s"):
            run_adapt("e1", ledger=False)
