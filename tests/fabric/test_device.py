"""Device catalog tests: the real Virtex-II slice arithmetic."""

import pytest

from repro.fabric.device import Device, get_device, list_devices


class TestCatalog:
    def test_xc2v6000_slices(self):
        """The paper's main prototyping platform: 33,792 slices."""
        assert get_device("XC2V6000").total_slices == 33792

    def test_xc2v3000_slices(self):
        """BUS-COM's platform: 14,336 slices."""
        assert get_device("XC2V3000").total_slices == 14336

    def test_lookup_case_insensitive(self):
        assert get_device("xc2v6000") is get_device("XC2V6000")

    def test_unknown_device_raises(self):
        with pytest.raises(KeyError):
            get_device("XC7Z020")

    def test_list_devices_sorted(self):
        devices = list_devices()
        assert list(devices) == sorted(devices)
        assert "XC2V6000" in devices

    def test_rmboc_overhead_fits_published_range(self):
        """RMBoC's 5084 slices land at the top of the 4-15 % of-XC2V6000
        window the source paper reported (15.04 % — the paper's '15 %'
        rounded down)."""
        dev = get_device("XC2V6000")
        util = dev.utilization(5084)
        assert 0.04 <= util <= 0.155


class TestDevice:
    def test_column_slices(self):
        dev = get_device("XC2V3000")
        assert dev.column_slices() == 64 * 4
        assert dev.column_slices(2) == 64 * 8

    def test_slices_in(self):
        dev = get_device("XC2V1000")
        assert dev.slices_in(10) == 40

    def test_slices_in_negative_raises(self):
        with pytest.raises(ValueError):
            get_device("XC2V1000").slices_in(-1)

    def test_degenerate_grid_raises(self):
        with pytest.raises(ValueError):
            Device("bad", clb_rows=0, clb_cols=10)

    def test_frame_bytes_derived_from_rows(self):
        dev = Device("t", clb_rows=10, clb_cols=10)
        assert dev.frame_bytes == 130

    def test_explicit_frame_bytes_kept(self):
        dev = Device("t", clb_rows=10, clb_cols=10, frame_bytes=99)
        assert dev.frame_bytes == 99

    def test_total_clbs(self):
        assert Device("t", clb_rows=3, clb_cols=5).total_clbs == 15


class TestSmallestDeviceFor:
    def test_picks_smallest_fitting(self):
        from repro.fabric.device import smallest_device_for

        assert smallest_device_for(5000).name == "XC2V1000"
        assert smallest_device_for(14000).name == "XC2V3000"
        assert smallest_device_for(20000).name == "XC2V6000"

    def test_margin_pushes_up(self):
        from repro.fabric.device import smallest_device_for

        # 5000 slices fit the XC2V1000 (5120) raw but not with 20% room
        assert smallest_device_for(5000, margin=0.2).name != "XC2V1000"

    def test_nothing_fits_raises(self):
        from repro.fabric.device import smallest_device_for

        with pytest.raises(LookupError):
            smallest_device_for(10**6)

    def test_invalid_args_raise(self):
        from repro.fabric.device import smallest_device_for

        with pytest.raises(ValueError):
            smallest_device_for(-1)
        with pytest.raises(ValueError):
            smallest_device_for(1, margin=-0.5)
