"""Bus-macro model tests."""

import pytest

from repro.fabric.busmacro import (
    BusMacroSpec,
    duplex_macro_slices,
    macro_slices,
    macros_for_width,
)


class TestMacroCounts:
    def test_published_granularity(self):
        """BUS-COM: 8 bits per macro, 20 slices per macro."""
        spec = BusMacroSpec()
        assert spec.bits == 8
        assert spec.slices == 20

    @pytest.mark.parametrize("bits,macros", [
        (1, 1), (8, 1), (9, 2), (16, 2), (32, 4), (48, 6), (0, 0),
    ])
    def test_macros_for_width(self, bits, macros):
        assert macros_for_width(bits) == macros

    def test_negative_width_raises(self):
        with pytest.raises(ValueError):
            macros_for_width(-1)

    def test_published_buscom_bus(self):
        """§3.1: 32-bit in + 16-bit out = six macros = 120 slices/bus."""
        assert duplex_macro_slices(32, 16) == 120

    def test_macro_slices(self):
        assert macro_slices(32) == 80

    def test_custom_spec(self):
        wide = BusMacroSpec(bits=16, slices=30)
        assert macros_for_width(32, wide) == 2
        assert macro_slices(32, wide) == 60

    def test_invalid_spec_raises(self):
        with pytest.raises(ValueError):
            BusMacroSpec(bits=0)
        with pytest.raises(ValueError):
            BusMacroSpec(slices=-1)
