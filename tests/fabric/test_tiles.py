"""Tile-grid tests: CoNoChi geometry and topology extraction."""

import pytest

from repro.fabric.geometry import Rect
from repro.fabric.tiles import TileGrid, TileType


def chain_grid():
    """Three switches joined by wire runs of different lengths."""
    g = TileGrid(7, 3)
    g.set(1, 1, TileType.SWITCH)
    g.set(2, 1, TileType.HWIRE)
    g.set(3, 1, TileType.SWITCH)
    g.set(5, 1, TileType.SWITCH)
    g.set(4, 1, TileType.HWIRE)
    return g


class TestBasics:
    def test_all_free_initially(self):
        g = TileGrid(3, 3)
        assert all(t is TileType.FREE for _, t in g)

    def test_set_get(self):
        g = TileGrid(3, 3)
        g.set(1, 2, TileType.SWITCH)
        assert g.get(1, 2) is TileType.SWITCH

    def test_out_of_bounds_raises(self):
        g = TileGrid(2, 2)
        with pytest.raises(IndexError):
            g.get(2, 0)
        with pytest.raises(IndexError):
            g.set(0, -1, TileType.SWITCH)

    def test_degenerate_grid_raises(self):
        with pytest.raises(ValueError):
            TileGrid(0, 5)

    def test_conducts(self):
        assert TileType.HWIRE.conducts(1, 0)
        assert not TileType.HWIRE.conducts(0, 1)
        assert TileType.VWIRE.conducts(0, -1)
        assert not TileType.VWIRE.conducts(1, 0)
        assert TileType.SWITCH.conducts(1, 0)
        assert not TileType.FREE.conducts(1, 0)
        assert not TileType.MODULE.conducts(0, 1)


class TestTopology:
    def test_direct_adjacency_link(self):
        g = TileGrid(3, 1)
        g.set(0, 0, TileType.SWITCH)
        g.set(1, 0, TileType.SWITCH)
        assert g.links() == [((0, 0), (1, 0), 0)]

    def test_wire_run_link(self):
        g = chain_grid()
        links = g.links()
        assert (((1, 1), (3, 1), 1)) in links
        assert (((3, 1), (5, 1), 1)) in links
        assert len(links) == 2

    def test_wrong_orientation_breaks_run(self):
        g = TileGrid(4, 1)
        g.set(0, 0, TileType.SWITCH)
        g.set(1, 0, TileType.VWIRE)  # vertical wire on a horizontal run
        g.set(2, 0, TileType.SWITCH)
        assert g.links() == []

    def test_vertical_run(self):
        g = TileGrid(1, 4)
        g.set(0, 0, TileType.SWITCH)
        g.set(0, 1, TileType.VWIRE)
        g.set(0, 2, TileType.VWIRE)
        g.set(0, 3, TileType.SWITCH)
        assert g.links() == [((0, 0), (0, 3), 2)]

    def test_neighbors(self):
        g = chain_grid()
        assert g.neighbors((3, 1)) == [(5, 1), (1, 1)]

    def test_connectivity(self):
        g = chain_grid()
        assert g.is_connected()
        g.set(2, 1, TileType.FREE)  # cut the first link
        assert not g.is_connected()

    def test_single_switch_is_connected(self):
        g = TileGrid(2, 2)
        g.set(0, 0, TileType.SWITCH)
        assert g.is_connected()

    def test_no_switch_is_connected(self):
        assert TileGrid(2, 2).is_connected()

    def test_dangling_wires(self):
        g = TileGrid(4, 1)
        g.set(0, 0, TileType.SWITCH)
        g.set(1, 0, TileType.HWIRE)
        g.set(2, 0, TileType.HWIRE)  # run ends in FREE: dangling
        assert g.dangling_wires() == [(1, 0), (2, 0)]

    def test_no_dangling_on_valid_run(self):
        assert chain_grid().dangling_wires() == []

    def test_switches_sorted(self):
        g = chain_grid()
        assert g.switches() == [(1, 1), (3, 1), (5, 1)]


class TestModules:
    def test_place_and_remove(self):
        g = TileGrid(4, 4)
        g.place_module("m", Rect(1, 1, 2, 2))
        assert g.get(1, 1) is TileType.MODULE
        assert g.modules == {"m": Rect(1, 1, 2, 2)}
        rect = g.remove_module("m")
        assert rect == Rect(1, 1, 2, 2)
        assert g.get(1, 1) is TileType.FREE

    def test_place_on_nonfree_raises(self):
        g = TileGrid(4, 4)
        g.set(1, 1, TileType.SWITCH)
        with pytest.raises(ValueError):
            g.place_module("m", Rect(0, 0, 2, 2))
        # failed placement must not leave partial MODULE tiles
        assert g.get(0, 0) is TileType.FREE

    def test_place_outside_raises(self):
        g = TileGrid(3, 3)
        with pytest.raises(ValueError):
            g.place_module("m", Rect(2, 2, 2, 2))

    def test_duplicate_module_raises(self):
        g = TileGrid(4, 4)
        g.place_module("m", Rect(0, 0, 1, 1))
        with pytest.raises(ValueError):
            g.place_module("m", Rect(2, 2, 1, 1))

    def test_remove_unknown_raises(self):
        with pytest.raises(KeyError):
            TileGrid(2, 2).remove_module("ghost")


class TestRender:
    def test_render_shape_and_symbols(self):
        g = chain_grid()
        text = g.render()
        lines = text.splitlines()
        assert len(lines) == 3
        # row y=1 is the middle line (rendered top-down)
        assert lines[1].split() == ["0", "S", "H", "S", "H", "S", "0"]
