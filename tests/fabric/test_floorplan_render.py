"""Floorplan-renderer tests."""

import pytest

from repro.fabric.device import get_device
from repro.fabric.floorplan_render import render_floorplan
from repro.fabric.geometry import Rect


class TestRender:
    def test_letters_and_free_area(self):
        dev = get_device("XC2V1000")  # 32x40 CLBs
        text = render_floorplan(dev, {"alpha": Rect(0, 0, 8, 40)},
                                cell_clbs=4)
        assert "A" in text and "·" in text
        assert "alpha" in text  # legend

    def test_overlap_marked(self):
        dev = get_device("XC2V1000")
        text = render_floorplan(
            dev,
            {"a": Rect(0, 0, 8, 8), "b": Rect(4, 4, 8, 8)},
            cell_clbs=4,
        )
        assert "#" in text

    def test_dimensions(self):
        dev = get_device("XC2V1000")
        text = render_floorplan(dev, {}, cell_clbs=4, legend=False)
        lines = text.splitlines()
        assert len(lines) == 10            # 40 rows / 4
        assert all(len(l) == 8 for l in lines)  # 32 cols / 4

    def test_region_outside_raises(self):
        dev = get_device("XC2V1000")
        with pytest.raises(ValueError):
            render_floorplan(dev, {"x": Rect(30, 0, 8, 8)})

    def test_invalid_scale_raises(self):
        dev = get_device("XC2V1000")
        with pytest.raises(ValueError):
            render_floorplan(dev, {}, cell_clbs=0)

    def test_system_report_includes_floorplan(self):
        from repro.system import ReconfigurableSystem

        system = ReconfigurableSystem("rmboc")
        text = system.report()
        assert "CLBs" in text
        assert "A = m0" in text

    def test_slots_render_disjoint(self):
        """Disjoint slots never show conflict marks, even when slot
        edges share a raster cell."""
        from repro.system import ReconfigurableSystem

        system = ReconfigurableSystem("buscom")
        assert "#" not in system.report()

    def test_boundary_sharing_keeps_first_letter(self):
        dev = get_device("XC2V1000")
        # adjacent but non-overlapping regions splitting a raster cell
        text = render_floorplan(
            dev, {"a": Rect(0, 0, 6, 8), "b": Rect(6, 0, 6, 8)},
            cell_clbs=4, legend=False,
        )
        assert "#" not in text
        assert "A" in text and "B" in text
