"""Area-model tests: Table 3 and Table 2 calibration points, plus the
scaling structure the §4.1 discussion relies on."""

import pytest

from repro.fabric.area import AreaModel


@pytest.fixture
def area():
    return AreaModel()


class TestTable3Calibration:
    """The paper's Table 3, reproduced exactly."""

    def test_table3_values(self, area):
        assert area.table3() == {
            "RMBoC": 5084,
            "BUS-COM": 1294,
            "DyNoC": 1480,
            "CoNoChi": 1640,
        }

    def test_rmboc_complete_system(self, area):
        assert area.rmboc_total(4, 4, 32) == 5084

    def test_buscom_total(self, area):
        assert area.buscom_total(4, 4, 32) == 1294

    def test_dynoc_per_switch(self, area):
        """Table 2/3: 370 slices per 32-bit DyNoC router."""
        assert area.dynoc_router(32) == 370
        assert area.dynoc_total(4, 32) == 1480

    def test_conochi_per_switch(self, area):
        """Table 2: 410 slices per 32-bit CoNoChi switch."""
        assert area.conochi_switch(32) == 410
        assert area.conochi_total(4, 32) == 1640

    def test_buscom_prototype_296(self, area):
        """§3.1: the published 32-in/16-out system needs 296 slices."""
        assert area.buscom_prototype() == 296

    def test_minimum_interconnect_dispatch(self, area):
        assert area.minimum_interconnect("rmboc") == 5084
        assert area.minimum_interconnect("BUS-COM") == 1294
        assert area.minimum_interconnect("DyNoC") == 1480
        assert area.minimum_interconnect("conochi") == 1640

    def test_unknown_architecture_raises(self, area):
        with pytest.raises(KeyError):
            area.minimum_interconnect("amba")


class TestScalingStructure:
    """§4.1: how area grows away from the calibration point."""

    def test_rmboc_scales_linearly_in_modules(self, area):
        per = area.rmboc_crosspoint(4, 32)
        assert area.rmboc_total(8, 4, 32) == 8 * per

    def test_rmboc_crosspoint_scales_with_buses(self, area):
        assert area.rmboc_crosspoint(8, 32) > area.rmboc_crosspoint(4, 32)

    def test_noc_switch_grows_with_width(self, area):
        assert area.conochi_switch(64) > area.conochi_switch(32)
        assert area.dynoc_router(64) > area.dynoc_router(32)

    def test_conochi_switch_larger_than_dynoc(self, area):
        """Table lookup + 3-layer protocol make the CoNoChi switch
        bigger than the DyNoC router at equal width."""
        for width in (8, 16, 32):
            assert area.conochi_switch(width) > area.dynoc_router(width)

    def test_buscom_macros_follow_8bit_granularity(self, area):
        # 33 bits need 5 macros per direction
        assert area.buscom_bus_macros(1, 33, 0) == 5 * 20

    def test_buscom_arbiter_grows_with_buses(self, area):
        assert area.buscom_arbiter(8) > area.buscom_arbiter(4)

    def test_conochi_control_unit_offset(self, area):
        """§4.1: control-unit area appears as an offset when scaling."""
        delta = (area.conochi_control_unit(8)
                 - area.conochi_control_unit(4))
        assert delta == 4 * area.CONOCHI_CONTROL_PER_SWITCH

    def test_bus_area_flat_in_module_size(self, area):
        """Slot systems cost the same regardless of module footprint;
        only module count matters."""
        assert area.buscom_total(4, 4, 32) == 1294  # no size parameter exists

    def test_invalid_inputs_raise(self, area):
        with pytest.raises(ValueError):
            area.rmboc_total(0, 4, 32)
        with pytest.raises(ValueError):
            area.rmboc_crosspoint(4, 0)
        with pytest.raises(ValueError):
            area.dynoc_total(-1, 32)
        with pytest.raises(ValueError):
            area.conochi_total(-1, 32)
        with pytest.raises(ValueError):
            area.buscom_interface(0)


class TestTable3Trend:
    """'The values in table 3 show a trend': bus < NoC for fixed-size
    minimal systems — except RMBoC, whose per-bus datapaths dominate."""

    def test_buscom_cheapest(self, area):
        t = area.table3()
        assert t["BUS-COM"] == min(t.values())

    def test_rmboc_most_expensive(self, area):
        t = area.table3()
        assert t["RMBoC"] == max(t.values())

    def test_conochi_adds_one_switch_per_module(self, area):
        base = area.conochi_total(4, 32)
        assert area.conochi_total(5, 32) - base == area.conochi_switch(32)
