"""Slot-floorplan tests."""

import pytest

from repro.fabric.device import get_device
from repro.fabric.slots import SlotFloorplan


@pytest.fixture
def plan():
    return SlotFloorplan(get_device("XC2V6000"), num_slots=4)


class TestPartition:
    def test_slot_count(self, plan):
        assert len(plan) == 4

    def test_slots_cover_all_columns(self, plan):
        total = sum(s.rect.w for s in plan)
        assert total == get_device("XC2V6000").clb_cols

    def test_slots_are_full_height(self, plan):
        dev = get_device("XC2V6000")
        for slot in plan:
            assert slot.rect.h == dev.clb_rows
            assert slot.rect.y == 0

    def test_slots_do_not_overlap(self, plan):
        slots = list(plan)
        for a in slots:
            for b in slots:
                if a is not b:
                    assert not a.rect.overlaps(b.rect)

    def test_uneven_division(self):
        plan = SlotFloorplan(get_device("XC2V6000"), num_slots=3)
        widths = [s.rect.w for s in plan]
        assert sum(widths) == 88
        assert max(widths) - min(widths) <= 1

    def test_reserved_columns(self):
        plan = SlotFloorplan(get_device("XC2V6000"), num_slots=4,
                             reserved_cols=8)
        assert plan[0].rect.x == 8
        assert sum(s.rect.w for s in plan) == 80

    def test_too_many_slots_raises(self):
        with pytest.raises(ValueError):
            SlotFloorplan(get_device("XC2V1000"), num_slots=33)

    def test_zero_slots_raises(self):
        with pytest.raises(ValueError):
            SlotFloorplan(get_device("XC2V1000"), num_slots=0)


class TestOccupancy:
    def test_place_first_free(self, plan):
        slot = plan.place("a")
        assert slot.index == 0
        assert plan.slot_of("a") is slot

    def test_place_specific(self, plan):
        slot = plan.place("a", slot_index=2)
        assert slot.index == 2

    def test_double_place_raises(self, plan):
        plan.place("a")
        with pytest.raises(ValueError):
            plan.place("a")

    def test_occupied_slot_raises(self, plan):
        plan.place("a", slot_index=1)
        with pytest.raises(ValueError):
            plan.place("b", slot_index=1)

    def test_frozen_slot_rejected(self, plan):
        plan[0].frozen = True
        slot = plan.place("a")  # falls through to slot 1
        assert slot.index == 1
        with pytest.raises(ValueError):
            plan.place("b", slot_index=0)

    def test_evict(self, plan):
        plan.place("a", slot_index=3)
        slot = plan.evict("a")
        assert slot.index == 3 and slot.is_free

    def test_evict_unknown_raises(self, plan):
        with pytest.raises(KeyError):
            plan.evict("ghost")

    def test_full_floorplan(self, plan):
        for i in range(4):
            plan.place(f"m{i}")
        assert not plan.free_slots()
        with pytest.raises(ValueError):
            plan.place("extra")

    def test_occupied_mapping(self, plan):
        plan.place("a", slot_index=2)
        plan.place("b", slot_index=0)
        assert plan.occupied() == {"a": 2, "b": 0}

    def test_slot_slices(self, plan):
        dev = get_device("XC2V6000")
        assert plan[0].slices == plan[0].rect.w * dev.clb_rows * 4
