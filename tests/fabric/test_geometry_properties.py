"""Property-based tests for Rect geometry."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric.geometry import Rect

rects = st.builds(
    Rect,
    x=st.integers(0, 20),
    y=st.integers(0, 20),
    w=st.integers(1, 10),
    h=st.integers(1, 10),
)


@given(a=rects, b=rects)
@settings(max_examples=200, deadline=None)
def test_overlap_symmetry(a, b):
    assert a.overlaps(b) == b.overlaps(a)


@given(a=rects, b=rects)
@settings(max_examples=200, deadline=None)
def test_adjacent_symmetry_and_disjointness(a, b):
    assert a.adjacent(b) == b.adjacent(a)
    if a.adjacent(b):
        assert not a.overlaps(b)


@given(a=rects)
@settings(max_examples=100, deadline=None)
def test_self_relations(a):
    assert a.overlaps(a)
    assert a.contains(a)
    assert not a.adjacent(a)


@given(a=rects, b=rects)
@settings(max_examples=200, deadline=None)
def test_containment_implies_overlap(a, b):
    if a.contains(b):
        assert a.overlaps(b)
        assert a.area_clbs >= b.area_clbs


@given(a=rects)
@settings(max_examples=100, deadline=None)
def test_cells_match_area_and_membership(a):
    cells = list(a.cells())
    assert len(cells) == a.area_clbs
    assert len(set(cells)) == len(cells)
    assert all(a.contains_point(x, y) for x, y in cells)


@given(a=rects, b=rects)
@settings(max_examples=200, deadline=None)
def test_overlap_agrees_with_cell_intersection(a, b):
    shared = set(a.cells()) & set(b.cells())
    assert a.overlaps(b) == bool(shared)


@given(a=rects, margin=st.integers(0, 5))
@settings(max_examples=100, deadline=None)
def test_expand_contains_original(a, margin):
    assert a.expand(margin).contains(a)


# ----------------------------------------------------------------------
# TileGrid render/parse round-trip
# ----------------------------------------------------------------------
from repro.fabric.tiles import TileGrid, TileType

tile_grids = st.builds(
    lambda cols, rows, cells: _fill_grid(cols, rows, cells),
    cols=st.integers(1, 8),
    rows=st.integers(1, 8),
    cells=st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7),
                  st.sampled_from(list(TileType))),
        max_size=20,
    ),
)


def _fill_grid(cols, rows, cells):
    grid = TileGrid(cols, rows)
    for x, y, t in cells:
        if x < cols and y < rows:
            grid.set(x, y, t)
    return grid


@given(grid=tile_grids)
@settings(max_examples=100, deadline=None)
def test_tilegrid_render_parse_round_trip(grid):
    reparsed = TileGrid.parse(grid.render())
    assert reparsed.cols == grid.cols and reparsed.rows == grid.rows
    assert list(reparsed) == list(grid)
    assert reparsed.links() == grid.links()
    assert reparsed.dangling_wires() == grid.dangling_wires()
