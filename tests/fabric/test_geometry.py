"""Rect geometry tests."""

import pytest

from repro.fabric.device import Device
from repro.fabric.geometry import Rect


class TestConstruction:
    def test_valid(self):
        r = Rect(1, 2, 3, 4)
        assert (r.x, r.y, r.w, r.h) == (1, 2, 3, 4)
        assert r.x2 == 4 and r.y2 == 6

    @pytest.mark.parametrize("w,h", [(0, 1), (1, 0), (-1, 1)])
    def test_degenerate_raises(self, w, h):
        with pytest.raises(ValueError):
            Rect(0, 0, w, h)

    def test_negative_origin_raises(self):
        with pytest.raises(ValueError):
            Rect(-1, 0, 1, 1)

    def test_area(self):
        r = Rect(0, 0, 3, 4)
        assert r.area_clbs == 12
        assert r.area_slices == 48


class TestPredicates:
    def test_contains_point(self):
        r = Rect(1, 1, 2, 2)
        assert r.contains_point(1, 1)
        assert r.contains_point(2, 2)
        assert not r.contains_point(3, 1)
        assert not r.contains_point(0, 1)

    def test_contains_rect(self):
        outer = Rect(0, 0, 4, 4)
        assert outer.contains(Rect(1, 1, 2, 2))
        assert outer.contains(outer)
        assert not Rect(1, 1, 2, 2).contains(outer)

    def test_overlaps(self):
        a = Rect(0, 0, 2, 2)
        assert a.overlaps(Rect(1, 1, 2, 2))
        assert not a.overlaps(Rect(2, 0, 2, 2))  # edge-touching
        assert not a.overlaps(Rect(5, 5, 1, 1))

    def test_overlaps_is_symmetric(self):
        a, b = Rect(0, 0, 3, 3), Rect(2, 2, 3, 3)
        assert a.overlaps(b) == b.overlaps(a)

    def test_adjacent_edge(self):
        a = Rect(0, 0, 2, 2)
        assert a.adjacent(Rect(2, 0, 1, 2))   # east edge
        assert a.adjacent(Rect(0, 2, 2, 1))   # north edge
        assert not a.adjacent(Rect(2, 2, 1, 1))  # corner only
        assert not a.adjacent(Rect(3, 0, 1, 1))  # gap
        assert not a.adjacent(Rect(1, 1, 2, 2))  # overlapping

    def test_expand(self):
        r = Rect(2, 2, 2, 2).expand(1)
        assert r == Rect(1, 1, 4, 4)

    def test_expand_clips_at_zero(self):
        r = Rect(0, 0, 1, 1).expand(2)
        assert r.x == 0 and r.y == 0
        assert r.x2 == 3 and r.y2 == 3

    def test_cells(self):
        cells = list(Rect(1, 2, 2, 2).cells())
        assert cells == [(1, 2), (2, 2), (1, 3), (2, 3)]

    def test_fits_in_device(self):
        dev = Device("t", clb_rows=4, clb_cols=4)
        assert Rect(0, 0, 4, 4).fits_in(dev)
        assert not Rect(1, 0, 4, 4).fits_in(dev)

    def test_ordering_and_hash(self):
        assert Rect(0, 0, 1, 1) < Rect(1, 0, 1, 1)
        assert len({Rect(0, 0, 1, 1), Rect(0, 0, 1, 1)}) == 1

    def test_str(self):
        assert str(Rect(1, 2, 3, 4)) == "[1,2 3x4]"
