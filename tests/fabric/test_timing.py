"""Clock-model tests: the published f_max figures."""

import pytest

from repro.fabric.timing import ClockModel


@pytest.fixture
def clock():
    return ClockModel()


class TestPublishedFigures:
    def test_rmboc_100mhz_pm_6pct(self, clock):
        """§3.1: 'about 100 MHz +/- 6 % depending on the bus width'."""
        for width in range(1, 33):
            mhz = clock.fmax_mhz("rmboc", width)
            assert 94.0 <= mhz <= 106.0

    def test_rmboc_at_32bit_is_94(self, clock):
        assert clock.fmax_mhz("rmboc", 32) == pytest.approx(94.0)

    def test_buscom_66mhz(self, clock):
        assert clock.fmax_mhz("buscom", 32) == 66.0

    def test_conochi_73mhz(self, clock):
        assert clock.fmax_mhz("conochi", 32) == pytest.approx(73.0)

    def test_survey_bracket_73_to_94(self, clock):
        """§4.2 brackets the (NoC + RMBoC) prototypes at 73-94 MHz;
        BUS-COM's published 66 MHz sits below the bracket (the survey's
        own inconsistency, recorded in EXPERIMENTS.md)."""
        for arch in ("rmboc", "dynoc", "conochi"):
            assert 73.0 <= clock.fmax_mhz(arch, 32) <= 94.0

    def test_buscom_width_insensitive(self, clock):
        assert clock.fmax_mhz("buscom", 8) == clock.fmax_mhz("buscom", 32)


class TestModelBehaviour:
    def test_wider_is_slower(self, clock):
        for arch in ("rmboc", "dynoc", "conochi"):
            assert clock.fmax_hz(arch, 8) > clock.fmax_hz(arch, 32)

    def test_bandwidth_scales_with_width(self, clock):
        bw8 = clock.link_bandwidth_bytes("conochi", 8)
        bw32 = clock.link_bandwidth_bytes("conochi", 32)
        assert bw32 > bw8

    def test_cycle_ns(self, clock):
        assert clock.cycle_ns("buscom", 32) == pytest.approx(1e9 / 66e6)

    def test_unknown_arch_raises(self, clock):
        with pytest.raises(KeyError):
            clock.fmax_hz("amba")

    def test_nonpositive_width_raises(self, clock):
        with pytest.raises(ValueError):
            clock.fmax_hz("rmboc", 0)

    def test_table_keys(self, clock):
        assert set(clock.table()) == {"RMBoC", "BUS-COM", "DyNoC", "CoNoChi"}

    def test_clamped_beyond_64bit(self, clock):
        assert clock.fmax_hz("rmboc", 64) == clock.fmax_hz("rmboc", 128)
