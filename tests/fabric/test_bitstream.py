"""Reconfiguration-timing model tests."""

import pytest

from repro.fabric.bitstream import ConfigPort, ReconfigTimingModel
from repro.fabric.device import get_device
from repro.fabric.geometry import Rect


@pytest.fixture
def model():
    return ReconfigTimingModel(get_device("XC2V6000"))


class TestColumnGranularity:
    def test_columns_touched_is_width(self, model):
        assert model.columns_touched(Rect(0, 0, 4, 96)) == 4

    def test_height_is_irrelevant(self, model):
        """Virtex-II reconfigures full columns: a 1-row region costs the
        same as a full-height one."""
        short = model.bitstream_bytes(Rect(0, 0, 4, 1))
        tall = model.bitstream_bytes(Rect(0, 0, 4, 96))
        assert short == tall

    def test_region_outside_device_raises(self, model):
        with pytest.raises(ValueError):
            model.columns_touched(Rect(86, 0, 4, 1))

    def test_bytes_scale_with_columns(self, model):
        b1 = model.bitstream_bytes(Rect(0, 0, 1, 1))
        b2 = model.bitstream_bytes(Rect(0, 0, 2, 1))
        dev = get_device("XC2V6000")
        assert b2 - b1 == dev.frames_per_clb_col * dev.frame_bytes


class TestTiming:
    def test_seconds_positive(self, model):
        assert model.seconds(Rect(0, 0, 1, 1)) > 0

    def test_cycles_at_clock(self, model):
        region = Rect(0, 0, 2, 1)
        secs = model.seconds(region)
        assert model.cycles(region, 100e6) == pytest.approx(
            secs * 100e6, abs=1
        )

    def test_faster_port_is_faster(self):
        dev = get_device("XC2V6000")
        slow = ReconfigTimingModel(dev, ConfigPort(width_bits=8))
        fast = ReconfigTimingModel(dev, ConfigPort(width_bits=32))
        region = Rect(0, 0, 4, 1)
        assert fast.seconds(region) < slow.seconds(region)

    def test_nonpositive_clock_raises(self, model):
        with pytest.raises(ValueError):
            model.cycles(Rect(0, 0, 1, 1), 0)

    def test_invalid_port_raises(self):
        with pytest.raises(ValueError):
            ConfigPort(width_bits=0)

    def test_port_bandwidth(self):
        port = ConfigPort(width_bits=8, clock_hz=50e6)
        assert port.bytes_per_second == 50e6

    def test_realistic_magnitude(self, model):
        """A 4-column region at 50 MB/s should take on the order of a
        millisecond or two — the magnitude real Virtex-II DPR showed."""
        secs = model.seconds(Rect(0, 0, 4, 96))
        assert 1e-4 < secs < 1e-2
