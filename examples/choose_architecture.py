#!/usr/bin/env python
"""Architecture selection demo — the survey as executable guidance.

Three system designs with different constraints are run through the
advisor; each recommendation is then validated by actually simulating
the recommended architecture under a matching workload.

Run:  python examples/choose_architecture.py
"""

from repro import build_architecture, minimal_scenario
from repro.core.advisor import Requirements, recommend


CASES = {
    "area-critical automotive controller": Requirements(
        num_modules=4,
        link_width=16,
        variable_module_shape=False,
        min_parallel_transfers=2,
        max_transfer_bytes=64,
        area_budget_slices=1500,
        weight_area=10.0, weight_latency=1.0,
        weight_flexibility=0.2, weight_scalability=0.2,
    ),
    "reconfiguration-heavy streaming SoC": Requirements(
        num_modules=6,
        link_width=32,
        variable_module_shape=True,
        reconfigures_often=True,
        needs_runtime_growth=True,
        max_transfer_bytes=1024,
        weight_flexibility=5.0, weight_scalability=3.0,
        weight_area=0.3, weight_latency=0.5,
    ),
    "latency-bound DSP pipeline": Requirements(
        num_modules=4,
        link_width=32,
        min_parallel_transfers=6,
        max_transfer_bytes=512,
        latency_budget_cycles=160,
        weight_latency=6.0, weight_area=1.0,
        weight_flexibility=0.5, weight_scalability=0.5,
    ),
}

_KEY = {"RMBoC": "rmboc", "BUS-COM": "buscom",
        "DyNoC": "dynoc", "CoNoChi": "conochi"}


def main() -> None:
    for label, req in CASES.items():
        print("=" * 72)
        print(f"case: {label}")
        rec = recommend(req)
        print(rec.report())
        if rec.best is None:
            continue
        # validate the pick with a live simulation
        arch = build_architecture(_KEY[rec.best],
                                  num_modules=req.num_modules,
                                  width=req.link_width)
        result = minimal_scenario(
            arch,
            payload_bytes=min(req.max_transfer_bytes, 256),
            pattern="ring",
        )
        print(f"validated by simulation: mean latency "
              f"{result.mean_latency:.1f} cycles, observed d_max "
              f"{result.observed_dmax}, area {arch.area_slices()} slices")
        print()


if __name__ == "__main__":
    main()
