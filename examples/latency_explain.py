#!/usr/bin/env python
"""Latency attribution demo: explaining a DyNoC detour storm.

The same workload as `congestion_monitor.py` — a steady stream across
a 9x7 DyNoC, then a 3x5 module placed squarely across the route — but
observed through message *journeys* instead of SLO alerts. A
`JourneyRecorder` stamps every message's life as a chain of segments
(arbitration waits, link transits, detour hops...), and the aggregator
decomposes each phase's latency into per-segment attributions. The
alert said *that* a storm happened; the journey breakdown shows *where
the cycles went*: `router_detour` appears from nothing to claim the
extra latency, and the p99 critical path names the exact hop chain.

Run:  python examples/latency_explain.py
"""

from repro import build_architecture
from repro.fabric.geometry import Rect
from repro.obs import aggregate_flows
from repro.obs.journey import JourneyRecorder, critical_path
from repro.traffic.generators import PeriodicStream


def report(recorder, phase):
    rows = aggregate_flows(recorder)
    print(f"\n{phase}")
    for row in rows:
        lat = row["latency"]
        print(f"  flow {row['src']}->{row['dst']}: {row['sampled']} msgs, "
              f"p50 {lat['p50']}, p99 {lat['p99']} cycles, "
              f"{row['coverage']:.0%} attributed")
        for kind, seg in sorted(row["segments"].items(),
                                key=lambda kv: -kv[1]["cycles"]):
            print(f"    {kind:<18} {seg['cycles']:>7} cycles "
                  f"({seg['share']:.0%})")
        cp = row["critical_paths"]["p99"]
        chain = " + ".join(f"{s['kind']}:{s['cycles']}"
                           for s in cp["chain"])
        print(f"    p99 critical path (mid {cp['mid']}): {chain}")
    return rows


def main() -> None:
    arch = build_architecture("dynoc", num_modules=0, mesh=(9, 7))
    sim = arch.sim

    arch.attach("src", rect=Rect(0, 3, 1, 1))
    arch.attach("dst", rect=Rect(8, 3, 1, 1))
    stream = PeriodicStream("stream", arch.ports["src"], "dst",
                            period=40, payload_bytes=64, stop=8_000)
    sim.add(stream)

    # phase 0: clear mesh — record journeys of the direct X-Y route
    sim.journey = JourneyRecorder()
    sim.run(4_000)
    clear = report(sim.journey, "phase 0: clear mesh (direct X-Y route)")
    assert "router_detour" not in clear[0]["segments"], \
        "no detours expected on a clear mesh"

    # phase 1: a 3x5 module lands across the route; swap in a fresh
    # recorder so the attribution isolates the storm
    sim.journey = JourneyRecorder()
    arch.attach("wall", rect=Rect(4, 1, 3, 5))
    sim.run(4_000)
    sim.run_until(lambda s: stream.all_delivered() and arch.idle(),
                  max_cycles=100_000)
    storm = report(sim.journey, "phase 1: 3x5 module across the route")

    detour = storm[0]["segments"].get("router_detour")
    assert detour is not None, "expected detour hops in the storm phase"
    worst = max(sim.journey.delivered_records(), key=lambda r: r.latency)
    dominant = critical_path(worst)["dominant"]
    print(f"\nslowest message (mid {worst.mid}, {worst.latency} cycles) "
          f"dominated by: {dominant}")
    print(f"the storm's cost, attributed: router_detour went from 0 to "
          f"{detour['share']:.0%} of flow latency.")
    assert stream.all_delivered()


if __name__ == "__main__":
    main()
