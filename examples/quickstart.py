#!/usr/bin/env python
"""Quickstart: build all four interconnects, run the paper's minimal
4-module scenario on each, and print the normalized comparison.

Run:  python examples/quickstart.py
"""

from repro import build_architecture, minimal_scenario
from repro.core.report import format_table


def main() -> None:
    rows = []
    for name in ("rmboc", "buscom", "dynoc", "conochi"):
        arch = build_architecture(name, num_modules=4, width=32)
        result = minimal_scenario(arch, payload_bytes=64, pattern="ring")
        rows.append([
            name,
            result.messages,
            result.total_cycles,
            f"{result.mean_latency:.1f}",
            result.min_latency,
            result.max_latency,
            f"{result.observed_dmax}/{arch.theoretical_dmax()}",
            arch.area_slices(),
            f"{arch.fmax_hz() / 1e6:.0f}",
        ])
    print(format_table(
        ["arch", "msgs", "cycles", "mean lat", "min", "max",
         "d_max obs/theo", "slices", "f_max MHz"],
        rows,
        title="Minimal scenario: 4 modules, ring traffic, 64 B payloads",
    ))
    print()
    print("Reading the table against the paper:")
    print(" * RMBoC pays its 8-cycle circuit setup, then streams a word")
    print("   per cycle (Table 2).")
    print(" * BUS-COM has no setup; latency is TDMA slot waiting.")
    print(" * The NoCs pay per-switch latency (DyNoC ~4, CoNoChi ~6 per")
    print("   hop) but win on concurrency and structural flexibility.")
    print(" * Slice counts are the paper's Table 3: 5084 / 1294 / 1480 /")
    print("   1640.")


if __name__ == "__main__":
    main()
