#!/usr/bin/env python
"""DyNoC online-placement demo.

A 9x7 DyNoC hosts a stream between two fixed endpoints while modules of
growing size are placed and removed *between* them at runtime. The
S-XY routing detours around each obstacle; the printout shows the mesh,
the live hop counts, and the latency penalty each placement causes —
the §4.2 effect that makes DyNoC's path latency depend on module sizes.

Run:  python examples/dynoc_placement.py
"""

from repro import build_architecture
from repro.analysis.render import render_dynoc_figure
from repro.fabric.geometry import Rect
from repro.reconfig import FreeRectPlacer
from repro.traffic.generators import PeriodicStream


def phase_stats(gen, start, end):
    window = [m for m in gen.sent
              if m.delivered and start <= m.created_cycle < end]
    if not window:
        return "no frames"
    lats = [m.latency for m in window]
    return f"{len(lats)} frames, mean latency {sum(lats) / len(lats):.1f}"


def main() -> None:
    arch = build_architecture("dynoc", num_modules=0, mesh=(9, 7))
    sim = arch.sim
    arch.attach("src", rect=Rect(0, 3, 1, 1))
    arch.attach("dst", rect=Rect(8, 3, 1, 1))
    stream = PeriodicStream("stream", arch.ports["src"], "dst",
                            period=60, payload_bytes=64, stop=24_000)
    sim.add(stream)

    # an online placer managing the free area between the endpoints,
    # with DyNoC's margin-1 / gap-1 surround rules
    placer = FreeRectPlacer(9, 7, margin=1, gap=1)

    print("phase 0: empty mesh")
    sim.run(6000)
    print(" ", phase_stats(stream, 0, 6000))

    for phase, side in enumerate((2, 3), start=1):
        rect = placer.place(f"job{side}", side, side, strategy="best")
        # keep clear of the endpoints' row edges if the placer chose them
        arch.attach(f"job{side}", rect=rect)
        print(f"\nphase {phase}: placed a {side}x{side} module at {rect}")
        print(render_dynoc_figure(arch))
        sim.run(6000)
        print(" ", phase_stats(stream, phase * 6000, (phase + 1) * 6000))

    # remove both obstacle modules: latency returns to baseline
    for side in (2, 3):
        arch.detach(f"job{side}")
        placer.remove(f"job{side}")
    print("\nphase 3: obstacles removed")
    sim.run(6000)
    sim.run_until(lambda s: stream.all_delivered() and arch.idle(),
                  max_cycles=200_000)
    print(" ", phase_stats(stream, 18_000, 24_000))

    hops = arch.sim.stats.histogram("dynoc.hops")
    print(f"\nhop-count distribution: min {hops.min:.0f}, "
          f"mean {hops.mean:.1f}, max {hops.max:.0f}")
    assert stream.all_delivered()
    print("every frame arrived despite three topology changes.")


if __name__ == "__main__":
    main()
