#!/usr/bin/env python
"""Apples-to-apples comparison via trace replay.

A bursty network workload is generated once (on BUS-COM), its trace
captured, and the *identical* offered traffic replayed on all four DPR
architectures plus the two static §2.2 baselines — the cleanest way to
compare interconnects the taxonomy allows.

Run:  python examples/trace_comparison.py
"""

from repro.arch import build_architecture
from repro.core.report import format_table
from repro.sim import make_rng
from repro.traffic.generators import RandomTraffic
from repro.traffic.patterns import uniform_chooser
from repro.traffic.trace import capture_trace, replay_trace


def main() -> None:
    # 1. generate the reference workload
    ref = build_architecture("buscom")
    for src in ref.modules:
        ref.sim.add(RandomTraffic(
            f"g.{src}", ref.ports[src],
            uniform_chooser(src, list(ref.modules), make_rng(17, src, "c")),
            make_rng(17, src, "r"), rate=0.015, payload_bytes=96,
            stop=4000))
    ref.sim.run(4000)
    ref.run_to_completion(max_cycles=200_000)
    trace = capture_trace(ref.log)
    print(f"captured {len(trace)} messages "
          f"({sum(t[3] for t in trace)} payload bytes)\n")

    # 2. replay on everything
    rows = []
    for name in ("rmboc", "buscom", "dynoc", "conochi",
                 "sharedbus", "staticmesh"):
        arch = build_architecture(name)
        result = replay_trace(arch, trace)
        rows.append([
            name, result.messages, f"{result.mean_latency:.1f}",
            result.max_latency, result.completion_cycle,
            arch.area_slices(),
        ])
    print(format_table(
        ["arch", "msgs", "mean lat", "max lat", "done @", "slices"],
        rows,
        title="identical trace on every interconnect",
    ))
    print("\nnote how the shared bus (d_max = 1) stretches the tail and")
    print("how the DPR architectures compare to their static baselines")
    print("at the area cost Table 3 and E10 quantify.")


if __name__ == "__main__":
    main()
