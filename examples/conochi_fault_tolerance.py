#!/usr/bin/env python
"""CoNoChi fault tolerance (extension demo).

A seven-module ladder NoC carries streams while a switch *fails
unplanned*. Packets through it are lost until the control unit detects
the failure and re-routes over the redundant rail; the switch is then
repaired and routes re-optimize. Loss, detection, re-route and repair
are all visible in the protocol trace.

Run:  python examples/conochi_fault_tolerance.py
"""

from repro import build_architecture
from repro.arch.conochi.faults import FaultInjector
from repro.sim import Tracer
from repro.traffic.generators import PeriodicStream


def window(msgs, lo, hi):
    sel = [m for m in msgs if lo <= m.created_cycle < hi]
    done = [m for m in sel if m.delivered]
    lost = [m for m in sel if m.dropped]
    lat = sum(m.latency for m in done) / len(done) if done else float("nan")
    return len(done), len(lost), lat


def main() -> None:
    arch = build_architecture("conochi", num_modules=7)  # 4+3 ladder
    sim = arch.sim
    sim.tracer = Tracer()
    inj = FaultInjector(arch, detection_latency=150)
    # m0@(1,2) -> m6@(4,2): the shortest route runs along the bottom
    # rail straight through the switch we will fail
    stream = PeriodicStream("s", arch.ports["m0"], "m6",
                            period=40, payload_bytes=64, stop=12_000)
    sim.add(stream)

    print(arch.grid.render(), "\n")
    sim.run(3_000)
    inj.fail_switch((2, 2))
    print(f"[cycle {sim.cycle}] switch (2,2) FAILED "
          f"(detection in {inj.detection_latency} cycles)")
    sim.run(4_000)
    inj.repair_switch((2, 2))
    print(f"[cycle {sim.cycle}] switch (2,2) repaired")
    sim.run(5_000)
    sim.run_until(lambda s: all(m.delivered or m.dropped
                                for m in stream.sent), max_cycles=200_000)

    for label, lo, hi in [("healthy", 0, 3000),
                          ("fault window", 3000, 3000 + 200),
                          ("re-routed", 3300, 7000),
                          ("repaired", 7200, 12000)]:
        done, lost, lat = window(stream.sent, lo, hi)
        print(f"  {label:13s} delivered={done:3d} lost={lost:2d} "
              f"mean latency={lat:6.1f}")

    drops = sim.tracer.query(source="conochi", kind="drop")
    print(f"\ntrace: {len(drops)} drop event(s); first few:")
    for ev in drops[:3]:
        print(" ", ev)
    assert all(m.delivered for m in stream.sent
               if m.created_cycle >= 3300)
    print("\nafter detection, zero further losses — redundancy + table "
          "redirection did their job.")


if __name__ == "__main__":
    main()
