#!/usr/bin/env python
"""Closed-loop adaptive fabric demo: the controller re-plans a TDMA
slot and beats the static configuration.

A BUS-COM segmented bus is misconfigured the way real systems drift
into: every static slot belongs to a module that stopped talking, and
the dynamic segment is too short to move even one payload.  A bulk
sender's backlog grows without bound — the ``tdma-slot-overrun`` SLO
alert fires and *stays* fired for the rest of the run.

The same scenario is run twice under identical traffic and identical
alert rules:

* **static** — telemetry and alerts attached, nobody acting on them
  (the alert feed is a wall of red nobody reads);
* **adaptive** — a :class:`repro.control.ControlLoop` subscribes to
  the alert stream, re-plans a slot to the backlogged module through
  the guarded actuation pipeline, verifies the breach actually
  cleared one observation window later, and rolls back anything that
  did not help.

The printout compares SLO burn (cycles spent in breach), MTTR (the
longest fire-to-clear recovery), delivered traffic, and shows the
controller's action trail — including the honest rollbacks.

Run:  python examples/adaptive_failover.py
"""

from repro.control import run_adaptive_pair


def show(tag, variant):
    mttr = variant["mttr_max"]
    print(f"  {tag:<9} burn {variant['slo_burn_cycles']:>6} cycles   "
          f"MTTR {'-' if mttr is None else mttr:>6}   "
          f"delivered {variant['messages_delivered']}"
          f"/{variant['messages_sent']}")


def main() -> None:
    print("starved-slot scenario on BUS-COM (seed 7, identical "
          "traffic and rules in both runs)\n")
    pair = run_adaptive_pair("buscom", seed=7)
    static, adaptive = pair["static"], pair["adaptive"]

    print("slo outcome:")
    show("static", static)
    show("adaptive", adaptive)

    control = adaptive["control"]
    print(f"\ncontroller action trail ({control['counts']}):")
    for action in control["actions"]:
        line = (f"  cycle {action['cycle']:>6} [{action['status']:>11}] "
                f"{action['kind']} {action['target']}")
        if action["detail"]:
            line += f": {action['detail']}"
        if action["reason"]:
            line += f" ({action['reason']})"
        print(line)

    print(f"\nverdict: {'improved' if pair['improved'] else 'no win'} "
          f"(burn delta {pair['deltas']['slo_burn_cycles']}, "
          f"mttr delta {pair['deltas']['mttr_max']})")

    # the demo is executable documentation: the win must be real
    assert pair["improved"], "adaptive run failed to beat static"
    assert (adaptive["messages_undelivered"]
            <= static["messages_undelivered"])
    confirmed = [a for a in control["actions"]
                 if a["status"] == "confirmed"]
    assert confirmed, "no action survived its improvement check"


if __name__ == "__main__":
    main()
