#!/usr/bin/env python
"""A long-running reconfigurable accelerator service on DyNoC.

Jobs arrive over time; each is served by the best repository variant
that fits, placed online (S-XY-routability validated), streams results
to the I/O module, and is removed when done. A mid-mesh removal leaves
the free space split; when a wide job then cannot be placed, the
defragmentation planner compacts the layout and placement succeeds —
the full DPR operations story (repository, online placement,
fragmentation, compaction) in one run.

Run:  python examples/job_marketplace.py
"""

from repro import build_architecture
from repro.arch.dynoc.placement import place_module_online, placer_for
from repro.fabric.geometry import Rect
from repro.reconfig.defrag import fragmentation, plan_compaction
from repro.reconfig.module import ModuleSpec
from repro.reconfig.placement import PlacementError
from repro.reconfig.repository import ModuleRepository, Variant
from repro.traffic.generators import PeriodicStream


def build_repo() -> ModuleRepository:
    repo = ModuleRepository()
    repo.add("fir", Variant(ModuleSpec("fir_l", 3, 3, 900), 2.0))
    repo.add("fft", Variant(ModuleSpec("fft_l", 3, 3, 950), 2.0))
    repo.add("aes", Variant(ModuleSpec("aes_l", 3, 3, 800), 2.0))
    repo.add("video", Variant(ModuleSpec("video_l", 4, 3, 1300), 2.0))
    return repo


# (arrival cycle, function, run duration in cycles)
JOBS = [
    (0, "fir", 9_000),     # 3x3 -> (1,1), long-running
    (200, "fft", 2_000),   # 3x3 -> (5,1), finishes early: mid-mesh hole
    (400, "aes", 9_000),   # 3x3 -> (9,1)
    (4_000, "video", 5_000),  # 4x3: fragmented! triggers compaction
]


def main() -> None:
    arch = build_architecture("dynoc", num_modules=0, mesh=(14, 8))
    sim = arch.sim
    arch.attach("io", rect=Rect(0, 6, 1, 1))
    repo = build_repo()
    placer = placer_for(arch)
    active = {}
    stats = {"placed": 0, "compaction_moves": 0, "rejected": 0}

    def try_place(name, spec) -> bool:
        try:
            place_module_online(arch, name, spec.width, spec.height,
                                placer=placer)
            return True
        except PlacementError:
            pass
        frag_before = fragmentation(placer)
        try:
            moves = plan_compaction(placer, spec.width, spec.height)
        except PlacementError:
            return False
        for move in moves:
            arch.detach(move.module)
            placer.remove(move.module)
            arch.attach(move.module, rect=move.dst)
            placer.commit(move.module, move.dst)
            gen = active.get(move.module)
            if gen is not None:
                gen.port = arch.ports[move.module]  # re-home the stream
            print(f"  [cycle {sim.cycle}] compaction: moved "
                  f"{move.module} {move.src} -> {move.dst}")
        stats["compaction_moves"] += len(moves)
        print(f"  [cycle {sim.cycle}] fragmentation "
              f"{frag_before:.2f} -> {fragmentation(placer):.2f}")
        place_module_online(arch, name, spec.width, spec.height,
                            placer=placer)
        return True

    for job_no, (arrive, function, duration) in enumerate(JOBS, start=1):
        def start(sim_, job_no=job_no, function=function,
                  duration=duration):
            name = f"{function}{job_no}"
            variant = repo.select(function)
            if not try_place(name, variant.spec):
                stats["rejected"] += 1
                print(f"  [cycle {sim_.cycle}] {name} REJECTED (no fit)")
                return
            stats["placed"] += 1
            print(f"  [cycle {sim_.cycle}] placed {name} "
                  f"({variant.spec.width}x{variant.spec.height}) at "
                  f"{arch.placement_of(name).rect}")
            gen = PeriodicStream(f"s.{name}", arch.ports[name], "io",
                                 period=80, payload_bytes=64,
                                 start=sim_.cycle,
                                 stop=sim_.cycle + duration)
            sim_.add(gen)
            active[name] = gen

            def finish(sim2, name=name):
                gen = active[name]
                if not gen.all_delivered():
                    sim2.after(50, finish)
                    return
                del active[name]
                arch.detach(name)
                placer.remove(name)
                print(f"  [cycle {sim2.cycle}] removed {name} "
                      f"({len(gen.sent)} frames delivered)")

            sim_.after(duration + 200, finish)

        sim.at(arrive, start)

    sim.run(14_000)
    sim.run_until(lambda s: arch.log.all_delivered() and arch.idle(),
                  max_cycles=200_000)
    print(f"\ndone: {arch.log.total} frames delivered, "
          f"{stats['placed']} jobs placed, {stats['rejected']} rejected, "
          f"{stats['compaction_moves']} compaction move(s)")
    assert arch.log.all_delivered()
    assert stats["compaction_moves"] >= 1, "scenario should defragment"


if __name__ == "__main__":
    main()
