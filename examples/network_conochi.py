#!/usr/bin/env python
"""Streaming-network demo — CoNoChi's target domain.

Bursty flows converge on an egress module. When the egress link
saturates, the global control unit *reshapes the NoC at runtime*: it
inserts a new switch (tile reconfiguration), migrates the egress module
to it (logical addressing keeps peers oblivious), and later removes the
switch again — all without stalling unrelated traffic.

Run:  python examples/network_conochi.py
"""

from repro import build_architecture
from repro.fabric.tiles import TileType
from repro.traffic.apps import network_workload


def window_latency(arch, start, end):
    lats = [m.latency for m in arch.log.delivered()
            if start <= m.created_cycle < end]
    return sum(lats) / len(lats) if lats else float("nan")


def main() -> None:
    arch = build_architecture("conochi", num_modules=4, width=32)
    sim = arch.sim
    network_workload(arch, sink="m3", packet_bytes=108, stop=30_000)

    print("initial tile grid:")
    print(arch.grid.render())

    # Phase 1: baseline chain topology.
    sim.run(10_000)
    print(f"\nphase 1 mean latency: "
          f"{window_latency(arch, 0, 10_000):.1f} cycles")

    # Phase 2: the control unit inserts a switch above the chain and
    # migrates the hot egress module m3 next to the centre of the
    # network, shortening everyone's path to it.
    arch.add_switch((2, 3), wires=[((2, 2), TileType.VWIRE)])
    arch.migrate_module("m3", (2, 3))
    print("\ntile grid after switch insertion + migration:")
    print(arch.grid.render())
    sim.run(10_000)
    print(f"phase 2 mean latency: "
          f"{window_latency(arch, 10_000, 20_000):.1f} cycles")

    # Phase 3: migrate m3 back and remove the extra switch — packets in
    # flight are redirected by the table updates, nothing stalls.
    arch.migrate_module("m3", (4, 1))
    sim.run(arch.cfg.table_update_latency + 4)
    arch.remove_switch((2, 3))
    sim.run(10_000)
    sim.run_until(lambda s: arch.log.all_delivered() and arch.idle(),
                  max_cycles=500_000)
    print(f"phase 3 mean latency: "
          f"{window_latency(arch, 20_000, 30_000):.1f} cycles")

    print("\nfinal tile grid (switch removed, wires pruned):")
    print(arch.grid.render())
    stats = sim.stats
    print(f"\npackets: {stats.counter('conochi.packets').value}, "
          f"switch adds: "
          f"{stats.counter('conochi.reconfig.switch_added').value}, "
          f"removals: "
          f"{stats.counter('conochi.reconfig.switch_removed').value}, "
          f"migrations: "
          f"{stats.counter('conochi.reconfig.migrations').value}")
    assert arch.log.all_delivered(), "no packet may be lost"
    print("all packets delivered — the NoC never stalled.")


if __name__ == "__main__":
    main()
