#!/usr/bin/env python
"""DyNoC failover demo: a router dies mid-stream, traffic detours.

A 9x7 DyNoC carries a periodic stream between endpoints on opposite
edges.  Mid-stream, the router squarely on the X-first path fails
(via the unified fault framework in ``repro.faults``).  Packets caught
at the dead router are lost and retransmitted; once the failure is
*detected*, the router is masked as an S-XY obstacle — the same
mechanism DyNoC uses for placed modules — and the stream detours
around it with a small latency penalty until the router is repaired.

The printout shows the three phases (healthy, outage + detour,
repaired) and the resilience metrics: detection latency, MTTR,
drops/retransmissions, and end-to-end availability.

Run:  python examples/failover_demo.py
"""

from repro import build_architecture
from repro.fabric.geometry import Rect
from repro.faults import FaultKind, FaultSchedule, inject
from repro.traffic.generators import PeriodicStream

FAIL_AT = 6_000
REPAIR_AFTER = 6_000
HORIZON = 24_000


def phase_stats(gen, start, end):
    window = [m for m in gen.sent if start <= m.created_cycle < end]
    done = [m for m in window if m.delivered]
    lost = [m for m in window if m.dropped]
    if not window:
        return "no frames"
    lats = [m.latency for m in done]
    mean = sum(lats) / len(lats) if lats else float("nan")
    return (f"{len(done)}/{len(window)} frames delivered "
            f"({len(lost)} lost to the outage), "
            f"mean latency {mean:.1f}")


def main() -> None:
    arch = build_architecture("dynoc", num_modules=0, mesh=(9, 7))
    sim = arch.sim
    arch.attach("src", rect=Rect(0, 3, 1, 1))
    arch.attach("dst", rect=Rect(8, 3, 1, 1))
    stream = PeriodicStream("stream", arch.ports["src"], "dst",
                            period=60, payload_bytes=64, stop=HORIZON)
    sim.add(stream)

    # router (4, 3) sits exactly on the X-first route src -> dst
    schedule = FaultSchedule(seed=7).one_shot(
        FAIL_AT, FaultKind.NODE_DOWN, (4, 3), duration=REPAIR_AFTER)
    injector = inject(arch, schedule)

    print("phase 0: healthy mesh, straight-line route")
    sim.run(FAIL_AT)
    print(" ", phase_stats(stream, 0, FAIL_AT))

    print(f"\nphase 1: router (4, 3) fails at cycle {FAIL_AT}; after "
          "detection it is masked as an S-XY obstacle")
    sim.run(FAIL_AT + REPAIR_AFTER)
    print(" ", phase_stats(stream, FAIL_AT, FAIL_AT + REPAIR_AFTER))

    print(f"\nphase 2: router repaired at cycle {FAIL_AT + REPAIR_AFTER}; "
          "route straightens again")
    sim.run(HORIZON)
    sim.run_until(
        lambda s: all(m.delivered or m.dropped for m in stream.sent),
        max_cycles=200_000,
    )
    print(" ", phase_stats(stream, FAIL_AT + REPAIR_AFTER, HORIZON))

    m = injector.metrics()
    print("\nresilience metrics")
    print(f"  detection latency : {m['detection_max']} cycles")
    print(f"  mttr              : {m['mttr_max']} cycles")
    print(f"  dropped           : {m['messages_dropped']} "
          f"(retransmitted {m['messages_retransmitted']})")
    print(f"  undelivered       : {m['messages_undelivered']}")
    print(f"  availability      : {m['availability']:.4f}")
    assert m["messages_undelivered"] == 0, "failover left traffic behind"


if __name__ == "__main__":
    main()
