#!/usr/bin/env python
"""Video-pipeline demo — the RMBoC/DyNoC proof-of-concept workload.

A four-stage pipeline (capture -> filter -> scale -> display) streams
240-byte tiles stage to stage. Mid-run, the *filter* stage is swapped
for an upgraded module by the reconfiguration manager while the rest of
the pipeline keeps its circuits.

Run:  python examples/video_pipeline.py [rmboc|dynoc]
"""

import sys

from repro import build_architecture
from repro.fabric.device import get_device
from repro.fabric.geometry import Rect
from repro.reconfig import ModuleSpec, ReconfigurationManager
from repro.traffic.apps import video_pipeline


def main(arch_name: str = "rmboc") -> None:
    arch = build_architecture(arch_name, num_modules=4, width=32)
    sim = arch.sim
    stages = dict(zip(arch.modules, ["capture", "filter", "scale",
                                     "display"]))
    print(f"pipeline on {arch_name}: "
          + " -> ".join(stages.values()))

    gens = video_pipeline(arch, frame_bytes=240, period=200, stop=20_000)

    # Swap the filter stage (m1) for 'filter_v2' at cycle 4000. The
    # manager quiesces m1's traffic, rewrites its slot, and reattaches.
    manager = ReconfigurationManager(arch, get_device("XC2V6000"))
    record_holder = {}

    def request_swap(s) -> None:
        # the application must stop streams into *and out of* the
        # module being swapped (the fairness discipline the paper's
        # protocol assumes)
        gens[0].stop = s.cycle   # capture -> filter
        gens[1].stop = s.cycle   # filter -> scale
        record_holder["rec"] = manager.swap(
            "m1", ModuleSpec("filter_v2"), Rect(8, 0, 4, 96),
        )

    sim.at(4000, request_swap)
    sim.run_until(lambda s: "rec" in record_holder
                  and record_holder["rec"].done, max_cycles=2_000_000)
    rec = record_holder["rec"]
    print(f"filter swapped out at cycle {rec.detach_cycle}, "
          f"filter_v2 live at cycle {rec.attach_cycle} "
          f"({rec.reconfig_cycles} reconfiguration cycles)")

    # resume the streams through the new filter
    from repro.traffic.generators import PeriodicStream

    horizon = rec.attach_cycle + 8_000
    resumed = [
        PeriodicStream("video.stage0b", arch.ports["m0"], "filter_v2",
                       period=200, payload_bytes=240,
                       start=rec.attach_cycle, stop=horizon),
        PeriodicStream("video.stage1b", arch.ports["filter_v2"], "m2",
                       period=200, payload_bytes=240,
                       start=rec.attach_cycle, stop=horizon),
    ]
    sim.add_all(resumed)
    sim.run_until(lambda s: s.cycle >= horizon)
    sim.run_until(lambda s: arch.log.all_delivered() and arch.idle(),
                  max_cycles=2_000_000)

    for gen in gens + resumed:
        lats = gen.latencies()
        if lats:
            print(f"  {gen.name:15s} frames={len(lats):3d} "
                  f"mean latency={sum(lats) / len(lats):6.1f} cycles")
    total = arch.log.delivered_payload_bytes()
    print(f"total video payload delivered: {total} bytes "
          f"in {sim.cycle} cycles")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "rmboc")
