#!/usr/bin/env python
"""Automotive demo — BUS-COM's target domain.

Four inner-cabin functions exchange hard-periodic control frames over
the FlexRay-like TDMA buses, with sporadic infotainment bursts in the
background. Mid-run, the slot tables are rewritten (BUS-COM's virtual
topology adaptation) to grant the busiest module more guaranteed
bandwidth, and the deadline statistics before/after are compared.

Run:  python examples/automotive_buscom.py
"""

from repro import build_architecture
from repro.core.report import format_table
from repro.traffic.apps import automotive_workload


def deadline_stats(gens, start, end):
    rows = []
    for g in gens:
        if not g.name.startswith("auto.ctrl"):
            continue
        window = [m for m in g.sent
                  if m.delivered and start <= m.created_cycle < end]
        if not window:
            continue
        lats = [m.latency for m in window]
        misses = sum(1 for l in lats if l > g.deadline)
        rows.append([g.name, len(window), f"{sum(lats) / len(lats):.1f}",
                     max(lats), misses])
    return rows


def main() -> None:
    arch = build_architecture("buscom", num_modules=4, width=32)
    sim = arch.sim
    gens = automotive_workload(arch, control_period=64, deadline=200,
                               infotainment_rate=0.05, stop=40_000)

    # Phase 1: the design-time fair slot table.
    sim.run(20_000)

    # Virtual topology adaptation: give m0 (the infotainment source)
    # every static slot of bus 3 — rewritten through the LUT-based
    # reconfiguration path, one slot entry at a time.
    for slot in range(arch.cfg.static_slots):
        arch.reassign_slot(3, slot, "m0")

    sim.run(20_000)
    sim.run_until(lambda s: arch.log.all_delivered() and arch.idle(),
                  max_cycles=500_000)

    print("Phase 1 (fair round-robin table), cycles 0-20000:")
    print(format_table(["stream", "frames", "mean lat", "max lat",
                        "misses"], deadline_stats(gens, 0, 20_000)))
    print("\nPhase 2 (bus 3 granted to m0), cycles 20000-40000:")
    print(format_table(["stream", "frames", "mean lat", "max lat",
                        "misses"], deadline_stats(gens, 20_000, 40_000)))
    print(f"\nslot reassignments applied: "
          f"{sim.stats.counter('buscom.slots.reassigned').value}")
    util = arch.bus_utilization()
    print("bus utilization: "
          + ", ".join(f"bus{i}={u:.2f}" for i, u in enumerate(util)))
    m0 = [m for m in arch.log.delivered() if m.src == "m0"
          and m.payload_bytes > 100]
    early = [m.latency for m in m0 if m.created_cycle < 20_000]
    late = [m.latency for m in m0 if m.created_cycle >= 20_000]
    if early and late:
        print(f"infotainment mean latency: "
              f"{sum(early) / len(early):.0f} -> "
              f"{sum(late) / len(late):.0f} cycles after adaptation")


if __name__ == "__main__":
    main()
