#!/usr/bin/env python
"""Fabric congestion monitoring demo: a DyNoC detour storm.

A 9x7 DyNoC carries a steady stream between two fixed endpoints. At
runtime a 3x5 module is placed squarely across the path, so S-XY must
detour every packet around it — the detour-rate SLO rule (`detour-storm`
in `default_rules()`) sees the counter burn and fires. The printout
shows the telemetry the alert was computed from and the fired-alert
timeline, exactly what `repro watch` renders live.

Run:  python examples/congestion_monitor.py
"""

from repro import build_architecture
from repro.fabric.geometry import Rect
from repro.obs import AlertEngine, FlowTelemetry, default_rules
from repro.traffic.generators import PeriodicStream


def main() -> None:
    arch = build_architecture("dynoc", num_modules=0, mesh=(9, 7))
    sim = arch.sim
    tel = FlowTelemetry().attach(sim)
    # lower the storm threshold a touch so a short demo run trips it
    tel.engine = AlertEngine(rules=default_rules(detours=12))

    arch.attach("src", rect=Rect(0, 3, 1, 1))
    arch.attach("dst", rect=Rect(8, 3, 1, 1))
    stream = PeriodicStream("stream", arch.ports["src"], "dst",
                            period=40, payload_bytes=64, stop=8_000)
    sim.add(stream)

    print("phase 0: clear mesh — direct X-Y route")
    sim.run(4_000)
    tel.evaluate_now(sim.cycle)
    print(f"  detours so far: {tel.counters.get('dynoc.detour', 0)}, "
          f"alerts: {len(tel.engine.alerts)}")

    print("\nphase 1: a 3x5 module lands across the route")
    arch.attach("wall", rect=Rect(4, 1, 3, 5))
    sim.run(4_000)
    sim.run_until(lambda s: stream.all_delivered() and arch.idle(),
                  max_cycles=100_000)
    tel.evaluate_now(sim.cycle)

    print(f"  detours total: {tel.counters.get('dynoc.detour', 0)}")
    for (src, dst), flow in sorted(tel.flows.items()):
        lat = flow.latency
        print(f"  flow {src}->{dst}: {flow.messages} msgs, "
              f"p50 {lat.percentile(50):.0f}, p99 {lat.percentile(99):.0f}, "
              f"max {lat.max:.0f} cycles")

    print("\nfired alerts:")
    for alert in tel.engine.alerts:
        print(f"  ! cycle {alert.cycle:>6}  [{alert.severity}] "
              f"{alert.rule}: {alert.message}")

    fired = {a.rule for a in tel.engine.alerts}
    assert "detour-storm" in fired, "expected the detour storm to fire"
    assert stream.all_delivered()
    print("\nthe storm was detected while every frame still arrived.")


if __name__ == "__main__":
    main()
