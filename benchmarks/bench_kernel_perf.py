"""Kernel and model micro-benchmarks (true pytest-benchmark timing).

These are not paper artifacts; they track the simulator's own speed so
performance regressions in the hot paths (kernel step, FIFO, S-XY
decision, end-to-end scenario) are visible."""

from repro.arch import build_architecture
from repro.arch.dynoc.routing import NORMAL, sxy_next
from repro.core.scenario import minimal_scenario
from repro.sim import FIFO, Component, Simulator


class _Spin(Component):
    def __init__(self):
        super().__init__("spin")
        self.count = 0

    def tick(self, sim):
        self.count += 1


class _MostlyIdle(Component):
    """Active one cycle in ``period``: the quiescence-kernel's sweet spot."""

    def __init__(self, idx, period=100):
        super().__init__(f"idle{idx}")
        self.period = period
        self.phase = idx % period
        self.count = 0

    def tick(self, sim):
        self.count += 1
        gap = (self.phase - sim.cycle) % self.period
        return sim.cycle + (gap or self.period)


def test_perf_kernel_step(benchmark):
    def run():
        sim = Simulator()
        for i in range(8):
            sim.add(_Spin())
        sim.run(2000)
        return sim.cycle

    assert benchmark(run) == 2000


def _run_idle_heavy(fast_path):
    """64 components, each active ~1% of cycles, over 20k cycles."""
    sim = Simulator(fast_path=fast_path)
    comps = [sim.add(_MostlyIdle(i)) for i in range(64)]
    sim.run(20_000)
    # every component fired once per period plus its cycle-0 tick
    assert all(c.count >= 20_000 // c.period for c in comps)
    return sim.cycle


def test_perf_idle_heavy_fastpath(benchmark):
    """The headline win: sleep/wake + fast-forward on idle-heavy load."""
    assert benchmark(_run_idle_heavy, True) == 20_000


def test_perf_idle_heavy_slowpath(benchmark):
    """Baseline for the same workload with the optimization disabled."""
    assert benchmark(_run_idle_heavy, False) == 20_000


def _run_idle_heavy_telemetry(fast_path):
    """The idle-heavy workload with telemetry collectors attached.

    No instrumentation site fires here (plain components, no fabric),
    so any delta against ``_run_idle_heavy`` is pure attachment
    overhead leaking into the kernel loop — which must not happen."""
    from repro.obs import FlowTelemetry

    sim = Simulator(fast_path=fast_path)
    FlowTelemetry().attach(sim)
    comps = [sim.add(_MostlyIdle(i)) for i in range(64)]
    sim.run(20_000)
    assert all(c.count >= 20_000 // c.period for c in comps)
    return sim.cycle


def test_perf_idle_heavy_telemetry_attached(benchmark):
    """Tracked alongside idle_heavy_fastpath: the two must coincide."""
    assert benchmark(_run_idle_heavy_telemetry, True) == 20_000


def test_telemetry_off_overhead_within_noise():
    """Guard: attaching telemetry must not perturb the idle-heavy fast
    path (its hot loop never consults the collector).  Paired min-of-5
    timing with a generous noise margin keeps this CI-stable."""
    import timeit

    plain = min(timeit.repeat(lambda: _run_idle_heavy(True),
                              number=1, repeat=5))
    attached = min(timeit.repeat(lambda: _run_idle_heavy_telemetry(True),
                                 number=1, repeat=5))
    assert attached <= plain * 1.5 + 0.01, (
        f"telemetry attachment slowed the idle-heavy fast path: "
        f"{attached:.4f}s vs {plain:.4f}s"
    )


def test_perf_fifo_throughput(benchmark):
    def run():
        sim = Simulator()
        f = FIFO(sim, "f")
        for i in range(500):
            f.push(i)
            sim.step()
            f.pop()
        return sim.cycle

    assert benchmark(run) == 500


def test_perf_sxy_decision(benchmark):
    def active(c):
        x, y = c
        return 0 <= x < 16 and 0 <= y < 16 and not (4 <= x < 8 and 4 <= y < 8)

    def run():
        hops = 0
        cur, state = (0, 5), NORMAL
        while cur != (15, 5):
            cur, state = sxy_next(cur, (15, 5), state, active)
            hops += 1
        return hops

    assert benchmark(run) > 10


def test_perf_minimal_scenario_all_archs(benchmark):
    def run():
        total = 0
        for name in ("rmboc", "buscom", "dynoc", "conochi"):
            arch = build_architecture(name)
            total += minimal_scenario(arch, payload_bytes=64,
                                      pattern="ring").total_cycles
        return total

    assert benchmark(run) > 0
