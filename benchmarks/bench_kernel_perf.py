"""Kernel and model micro-benchmarks (true pytest-benchmark timing).

These are not paper artifacts; they track the simulator's own speed so
performance regressions in the hot paths (kernel step, FIFO, S-XY
decision, end-to-end scenario) are visible.

Besides the pytest-benchmark suite, the module is a CLI guarding the
journey-recording overhead contract (``docs/observability.md``)::

    PYTHONPATH=src python benchmarks/bench_kernel_perf.py --smoke --check

times a dense fabric workload per architecture with journeys off and
on; ``--check`` exits 1 if a journeys-off/on run pair diverges in its
stats fingerprint or delivered count (journeys must never perturb the
simulation), or if journeys-on overhead exceeds the contract bound.
"""

from repro.arch import build_architecture
from repro.arch.dynoc.routing import NORMAL, sxy_next
from repro.core.scenario import minimal_scenario
from repro.sim import FIFO, Component, Simulator


class _Spin(Component):
    def __init__(self):
        super().__init__("spin")
        self.count = 0

    def tick(self, sim):
        self.count += 1


class _MostlyIdle(Component):
    """Active one cycle in ``period``: the quiescence-kernel's sweet spot."""

    def __init__(self, idx, period=100):
        super().__init__(f"idle{idx}")
        self.period = period
        self.phase = idx % period
        self.count = 0

    def tick(self, sim):
        self.count += 1
        gap = (self.phase - sim.cycle) % self.period
        return sim.cycle + (gap or self.period)


def test_perf_kernel_step(benchmark):
    def run():
        sim = Simulator()
        for i in range(8):
            sim.add(_Spin())
        sim.run(2000)
        return sim.cycle

    assert benchmark(run) == 2000


def _run_idle_heavy(fast_path):
    """64 components, each active ~1% of cycles, over 20k cycles."""
    sim = Simulator(fast_path=fast_path)
    comps = [sim.add(_MostlyIdle(i)) for i in range(64)]
    sim.run(20_000)
    # every component fired once per period plus its cycle-0 tick
    assert all(c.count >= 20_000 // c.period for c in comps)
    return sim.cycle


def test_perf_idle_heavy_fastpath(benchmark):
    """The headline win: sleep/wake + fast-forward on idle-heavy load."""
    assert benchmark(_run_idle_heavy, True) == 20_000


def test_perf_idle_heavy_slowpath(benchmark):
    """Baseline for the same workload with the optimization disabled."""
    assert benchmark(_run_idle_heavy, False) == 20_000


def _run_idle_heavy_telemetry(fast_path):
    """The idle-heavy workload with telemetry collectors attached.

    No instrumentation site fires here (plain components, no fabric),
    so any delta against ``_run_idle_heavy`` is pure attachment
    overhead leaking into the kernel loop — which must not happen."""
    from repro.obs import FlowTelemetry

    sim = Simulator(fast_path=fast_path)
    FlowTelemetry().attach(sim)
    comps = [sim.add(_MostlyIdle(i)) for i in range(64)]
    sim.run(20_000)
    assert all(c.count >= 20_000 // c.period for c in comps)
    return sim.cycle


def test_perf_idle_heavy_telemetry_attached(benchmark):
    """Tracked alongside idle_heavy_fastpath: the two must coincide."""
    assert benchmark(_run_idle_heavy_telemetry, True) == 20_000


def test_telemetry_off_overhead_within_noise():
    """Guard: attaching telemetry must not perturb the idle-heavy fast
    path (its hot loop never consults the collector).  Paired min-of-5
    timing with a generous noise margin keeps this CI-stable."""
    import timeit

    plain = min(timeit.repeat(lambda: _run_idle_heavy(True),
                              number=1, repeat=5))
    attached = min(timeit.repeat(lambda: _run_idle_heavy_telemetry(True),
                                 number=1, repeat=5))
    assert attached <= plain * 1.5 + 0.01, (
        f"telemetry attachment slowed the idle-heavy fast path: "
        f"{attached:.4f}s vs {plain:.4f}s"
    )


def test_perf_fifo_throughput(benchmark):
    def run():
        sim = Simulator()
        f = FIFO(sim, "f")
        for i in range(500):
            f.push(i)
            sim.step()
            f.pop()
        return sim.cycle

    assert benchmark(run) == 500


def test_perf_sxy_decision(benchmark):
    def active(c):
        x, y = c
        return 0 <= x < 16 and 0 <= y < 16 and not (4 <= x < 8 and 4 <= y < 8)

    def run():
        hops = 0
        cur, state = (0, 5), NORMAL
        while cur != (15, 5):
            cur, state = sxy_next(cur, (15, 5), state, active)
            hops += 1
        return hops

    assert benchmark(run) > 10


def test_perf_minimal_scenario_all_archs(benchmark):
    def run():
        total = 0
        for name in ("rmboc", "buscom", "dynoc", "conochi"):
            arch = build_architecture(name)
            total += minimal_scenario(arch, payload_bytes=64,
                                      pattern="ring").total_cycles
        return total

    assert benchmark(run) > 0


# ----------------------------------------------------------------------
# journey overhead CLI (CI: --smoke --check)
# ----------------------------------------------------------------------
JOURNEY_ARCHS = ("dynoc", "staticmesh", "sharedbus", "buscom", "rmboc",
                 "conochi")

#: journeys-on may cost at most this factor over journeys-off on the
#: dense workload (plus an absolute CI-noise allowance) — the
#: documented overhead contract for full-rate recording.  The same
#: factor+slack envelope is the noise guard ``repro diff`` applies to
#: wall-clock comparisons (:func:`repro.obs.diff.within_noise`).
JOURNEY_OVERHEAD_FACTOR = 2.0
JOURNEY_OVERHEAD_SLACK_S = 0.05


def _run_journey_workload(key, journeys, cycles=4_000, seed=13,
                          period=25):
    """One seeded steady-traffic run; returns
    ``(wall_seconds, stats_fingerprint, delivered, sampled)``."""
    import json
    import random
    import time

    from repro.obs.journey import JourneyRecorder
    from repro.sim import Simulator

    sim = Simulator(name=f"journey-bench-{key}")
    arch = build_architecture(key, sim=sim, seed=seed)
    if journeys:
        sim.journey = JourneyRecorder(seed=seed)
    mods = list(arch.modules)
    rng = random.Random(seed)
    t = 1
    while t < cycles:
        src, dst = rng.sample(mods, 2)
        pb = rng.choice([64, 256, 1024])
        sim.at(t, lambda _s, a=arch, s=src, d=dst, p=pb:
               a.ports[s].send(d, p))
        t += rng.randrange(1, period)
    t0 = time.perf_counter()
    sim.run(cycles)
    wall = time.perf_counter() - t0
    fp = json.dumps(sim.stats.snapshot(), sort_keys=True, default=str)
    sampled = len(sim.journey) if sim.journey is not None else 0
    return wall, fp, len(arch.log.delivered()), sampled


def main(argv=None) -> int:
    import argparse
    import json
    import sys
    import time

    ap = argparse.ArgumentParser(
        description="journey-recording overhead/parity gate")
    ap.add_argument("--smoke", action="store_true",
                    help="CI scale: fewer cycles and repeats")
    ap.add_argument("--check", action="store_true",
                    help="exit 1 on stats divergence or overhead "
                         "beyond the contract bound")
    ap.add_argument("--write", metavar="PATH",
                    help="write results JSON to PATH")
    ap.add_argument("--archs", nargs="+", default=list(JOURNEY_ARCHS),
                    choices=JOURNEY_ARCHS)
    args = ap.parse_args(argv)

    cycles, repeats = (2_000, 1) if args.smoke else (6_000, 3)
    rows = []
    failures = []
    for key in args.archs:
        best = {}
        fps = {}
        meta = {}
        for journeys in (False, True):
            times = []
            for _ in range(repeats):
                wall, fp, delivered, sampled = _run_journey_workload(
                    key, journeys, cycles=cycles)
                times.append(wall)
            best[journeys] = min(times)
            fps[journeys] = fp
            meta[journeys] = (delivered, sampled)
        overhead = best[True] / best[False] if best[False] else 1.0
        row = {
            "arch": key,
            "off_seconds": round(best[False], 4),
            "on_seconds": round(best[True], 4),
            "overhead": round(overhead, 3),
            "delivered": meta[True][0],
            "sampled_journeys": meta[True][1],
            "stats_identical": fps[False] == fps[True],
        }
        rows.append(row)
        print(f"journeys {key:>10}: off {best[False]:.4f}s  "
              f"on {best[True]:.4f}s  ({overhead:.2f}x, "
              f"{row['sampled_journeys']} journeys, "
              f"stats {'==' if row['stats_identical'] else '!='})")
        if not row["stats_identical"]:
            failures.append(f"{key}: journeys-on changed the stats "
                            f"fingerprint (must be bit-identical)")
        if meta[False][0] != meta[True][0]:
            failures.append(f"{key}: delivered count diverged "
                            f"({meta[False][0]} vs {meta[True][0]})")
        from repro.obs.diff import within_noise

        if not within_noise(best[True], best[False],
                            factor=JOURNEY_OVERHEAD_FACTOR,
                            slack=JOURNEY_OVERHEAD_SLACK_S):
            bound = (best[False] * JOURNEY_OVERHEAD_FACTOR
                     + JOURNEY_OVERHEAD_SLACK_S)
            failures.append(f"{key}: journeys-on {best[True]:.4f}s "
                            f"exceeds bound {bound:.4f}s")

    if args.write:
        doc = {
            "schema": "repro.bench_journey/1",
            "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "workload": {"cycles": cycles, "repeats": repeats},
            "rows": rows,
        }
        with open(args.write, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.write}")

    if args.check:
        if failures:
            for f in failures:
                print(f"FAIL: {f}", file=sys.stderr)
            return 1
        print("check passed: journeys-off/on stats identical, "
              "overhead within contract on every architecture")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
