"""E6 — communication during reconfiguration (§3, §4).

Paper: RMBoC freezes cross-points (established circuits keep working);
BUS-COM reassigns slots; CoNoChi adds/removes switches without stalling
the NoC. The harness swaps a module on every architecture under
bystander traffic, then drives CoNoChi's live switch insert/remove."""

from repro.analysis.experiments import (
    e6_reconfiguration,
    e6b_conochi_topology_change,
)


def test_e6_module_swap_under_traffic(benchmark):
    result = benchmark.pedantic(e6_reconfiguration, rounds=1, iterations=1)
    print()
    print("  arch      reconfig[cyc]  downtime[cyc]  bystander msgs  "
          "mean lat during")
    for arch, row in result.rows.items():
        print(f"  {arch:8s}  {row['reconfig_cycles']:13.0f}  "
              f"{row['downtime_cycles']:13.0f}  "
              f"{row['bystander_delivered']:14.0f}  "
              f"{row['bystander_mean_latency_during']:15.1f}")
    for arch in result.rows:
        assert result.survived(arch)


def test_e6b_conochi_switch_insert_remove(benchmark):
    result = benchmark.pedantic(e6b_conochi_topology_change, rounds=1,
                                iterations=1)
    print()
    print(f"  switch added: {result.added_ok}, removed: {result.removed_ok}")
    print(f"  stream messages delivered: {result.messages_delivered}")
    print(f"  mean latency before {result.mean_latency_before:.1f} / "
          f"after insertion {result.mean_latency_after_add:.1f} cycles")
    assert result.added_ok and result.removed_ok
    assert result.messages_delivered > 0
