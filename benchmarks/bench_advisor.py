"""Advisor regression bench: the paper's §4 guidance as assertions.

The survey's summary guidance must fall out of the advisor: BUS-COM
when area rules, CoNoChi for reconfiguration-heavy flexible designs,
the bus family when variable module shapes are not needed and latency
budgets are tight."""

from repro.core.advisor import Requirements, recommend


def test_advisor_reproduces_paper_guidance(benchmark):
    def run():
        return {
            "area_first": recommend(Requirements(
                weight_area=10.0, weight_latency=0.1,
                weight_flexibility=0.1, weight_scalability=0.1)).best,
            "reconfig_heavy": recommend(Requirements(
                variable_module_shape=True, reconfigures_often=True,
                needs_runtime_growth=True,
                weight_flexibility=5.0, weight_scalability=3.0,
                weight_area=0.2, weight_latency=0.2)).best,
            "parallel_bus": recommend(Requirements(
                min_parallel_transfers=10,
                weight_latency=4.0, weight_area=2.0,
                weight_flexibility=0.3, weight_scalability=0.3)).best,
        }

    picks = benchmark(run)
    print()
    for case, best in picks.items():
        print(f"  {case:14s} -> {best}")
    # §4: "If area efficiency is the main design parameter, the
    # bus-based systems are the first choice. Especially BUS-COM."
    assert picks["area_first"] == "BUS-COM"
    # §4: "CoNoChi offers the best structural parameters and the best
    # conceptional support for dynamic reconfiguration."
    assert picks["reconfig_heavy"] == "CoNoChi"
    # 10 parallel transfers excludes BUS-COM (k=4) and the mesh
    # estimates (2m=8); only RMBoC's s*k=12 qualifies
    assert picks["parallel_bus"] == "RMBoC"
