"""T1 — regenerate Table 1 (design parameters) and verify it against
the paper's transcription."""

from repro.core import tables
from repro.core.parameters import PAPER_TABLE_1
from repro.core.report import render_table1


def test_table1_design_parameters(benchmark):
    data = benchmark(tables.table1)
    print()
    print(render_table1(data))
    assert data == PAPER_TABLE_1
