"""E4 — path-latency scaling with module size (§4.2).

Paper: bus path latency is 1 once established; NoC latency scales with
the number of switches traversed, and for larger modules DyNoC passes
more switches than CoNoChi (whose switch count depends only on the
module count)."""

from repro.analysis.experiments import e4_latency_scaling


def test_e4_latency_scaling(benchmark):
    result = benchmark.pedantic(e4_latency_scaling, rounds=1, iterations=1)
    print()
    print("  DyNoC obstacle-size sweep (side, hops, latency):")
    for side, hops, lat in result.dynoc_rows:
        print(f"    {side}x{side}: {hops:2d} hops, {lat:3d} cycles")
    print("  CoNoChi (side, latency):")
    for side, lat in result.conochi_rows:
        print(f"    {side}x{side}: {lat:3d} cycles")
    print(f"  RMBoC established circuit: "
          f"{result.rmboc_established_cpw} cycles/word")
    assert result.dynoc_latency_grows
    assert result.conochi_latency_flat
    assert result.rmboc_established_cpw == 1.0
