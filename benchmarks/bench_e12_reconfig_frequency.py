"""E12 — sustainable reconfiguration frequency (extension).

One slot is churned at a fixed cadence while a bystander stream runs:
how much module availability does the cadence cost, and does the
interconnect's service degrade? (Frame rewrites of a 4-column region
take ~150-210k user cycles, so the sweep brackets that.)"""

from repro.analysis.experiments import e12_reconfiguration_frequency


def test_e12_reconfiguration_frequency(benchmark):
    result = benchmark.pedantic(e12_reconfiguration_frequency, rounds=1,
                                iterations=1)
    print()
    print("  arch      period     swaps  availability  bystander lat")
    for arch, by_period in result.rows.items():
        for period, row in by_period.items():
            print(f"  {arch:8s}  {period:8d}  {row['swaps']:5.0f}  "
                  f"{row['availability']:12.3f}  "
                  f"{row['bystander_mean_latency']:13.1f}")
    for arch, by_period in result.rows.items():
        periods = sorted(by_period)
        # slower churn -> higher availability of the churned slot
        assert result.availability(arch, periods[-1]) >= \
            result.availability(arch, periods[0])
        # bystander service survives every cadence
        for row in by_period.values():
            assert row["bystander_mean_latency"] < 200
