"""E3 — effective bandwidth / protocol overhead (§4.2).

Paper: header overheads reduce BUS-COM and CoNoChi to ~90 %; RMBoC's
circuit-switched overhead is negligible."""

from repro.analysis.experiments import e3_effective_bandwidth


def test_e3_effective_bandwidth(benchmark):
    result = benchmark.pedantic(e3_effective_bandwidth, rounds=1,
                                iterations=1)
    print()
    for arch, eff in result.rows.items():
        print(f"  {arch:8s}: {eff:6.3f}")
    print("  CoNoChi payload sweep (payload bytes -> efficiency):")
    for payload, eff in result.conochi_sweep:
        print(f"    {payload:5d} B  {eff:6.3f}")
    assert result.close_to_claim("buscom")
    assert result.close_to_claim("conochi")
    assert result.rows["rmboc"] > 0.99
