"""E10 — the reconfigurability tax (extension).

§2.2 describes the conventional shared bus and static NoC the DPR
architectures grew out of; E10 measures what runtime module exchange
costs relative to those static baselines in area, clock and latency —
and asserts the baselines indeed cannot exchange modules."""

from repro.analysis.experiments import e10_reconfigurability_tax


def test_e10_reconfigurability_tax(benchmark):
    result = benchmark.pedantic(e10_reconfigurability_tax, rounds=1,
                                iterations=1)
    print()
    print("  arch      vs          area tax  clock tax  latency tax")
    for arch, row in result.rows.items():
        print(f"  {arch:8s}  {row['baseline']:10s}  {row['area_tax']:8.2f}"
              f"  {row['clock_tax']:9.2f}  {row['latency_tax']:11.2f}")
    assert result.static_cannot_reconfigure
    # every DPR architecture pays area for its reconfigurability
    for arch in result.rows:
        assert result.tax(arch, "area_tax") > 1.0
        assert result.tax(arch, "clock_tax") >= 1.0
