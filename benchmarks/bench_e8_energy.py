"""E8 — energy per delivered byte (extension).

The survey's §2.2 argues buses burn power in long unsegmented lines
while NoCs use local wires; E8 quantifies it with a shared per-bit
energy model (synthetic coefficients — ratios meaningful, absolute
joules not calibrated)."""

from repro.analysis.experiments import e8_energy


def test_e8_energy_per_byte(benchmark):
    result = benchmark.pedantic(e8_energy, rounds=1, iterations=1)
    print()
    for arch, pj in sorted(result.rows.items(), key=lambda kv: kv[1]):
        print(f"  {arch:8s} {pj:7.2f} pJ/payload-byte")
    assert result.buscom_worst        # unsegmented broadcast is costliest
    assert result.segmentation_helps  # RMBoC segments beat the broadcast
    # NoCs use local wires: cheapest of all (paper's qualitative claim)
    noc_best = min(result.rows["dynoc"], result.rows["conochi"])
    assert noc_best < result.rows["rmboc"] < result.rows["buscom"]
