"""F2 — Figure 2: the BUS-COM architecture (4 interface modules, 4 TDMA
buses, central arbiter)."""

from repro.analysis.render import render_buscom_figure
from repro.arch import build_architecture


def test_fig2_buscom_architecture(benchmark):
    text = benchmark(lambda: render_buscom_figure(build_architecture("buscom")))
    print()
    print(text)
    assert text.count("BUS-COM") == 4
    assert "Arbiter" in text
