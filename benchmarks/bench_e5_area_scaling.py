"""E5 — area scaling (§4.1).

Paper: per added module CoNoChi needs one switch, DyNoC possibly
several (module-size dependent); Table 3 is the m=4 point."""

from repro.analysis.experiments import e5_area_scaling


def test_e5_area_scaling(benchmark):
    result = benchmark(e5_area_scaling)
    print()
    print("  slices vs module count (m, area):")
    for arch, series in result.by_modules.items():
        pts = "  ".join(f"{m}:{a}" for m, a in series[:6])
        print(f"    {arch:8s} {pts} ...")
    print("  slices vs module side (4 modules of side x side):")
    for (side, d), (_, c) in zip(result.dynoc_by_size,
                                 result.conochi_by_size):
        print(f"    {side}x{side}: DyNoC {d:6d}  CoNoChi {c:6d}")
    by4 = {k: dict(v)[4] for k, v in result.by_modules.items()}
    assert by4 == {"rmboc": 5084, "buscom": 1294,
                   "dynoc": 1480, "conochi": 1640}
    assert result.conochi_beats_dynoc_for_large_modules
