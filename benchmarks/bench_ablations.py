"""A1-A5 — ablations over the design choices the survey discusses.

Not paper tables: each sweep isolates one architectural knob
(DESIGN.md's design-choice list) and prints its measured effect."""

from repro.analysis import ablations as A
from repro.analysis.parallel import run_named


def test_ablations_via_parallel_runner(benchmark, tmp_path):
    """The runner fans ablations across processes and returns the same
    results the direct calls produce (simulations are deterministic)."""
    cache = str(tmp_path / "cache")

    def run():
        return run_named(["a4", "a5"], max_workers=2, cache_dir=cache,
                         use_cache=False)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    direct_a4 = A.a4_dynoc_router_latency()
    direct_a5 = A.a5_buscom_adaptivity()
    assert results["a4"].points == direct_a4.points
    assert results["a5"] == direct_a5


def test_a1_rmboc_bus_count(benchmark):
    result = benchmark.pedantic(A.a1_rmboc_bus_count, rounds=1, iterations=1)
    print()
    print("  k -> completion cycles:", result["completion"].points)
    print("  k -> blocked cancels:  ", result["cancels"].points)
    assert result["completion"].monotone_decreasing()
    assert result["cancels"].monotone_decreasing()


def test_a2_buscom_static_split(benchmark):
    result = benchmark.pedantic(A.a2_buscom_static_split, rounds=1,
                                iterations=1)
    print()
    print("  static slots -> worst victim-control latency:",
          result["periodic_worst"].points)
    print("  static slots -> mean burst latency:",
          [(s, round(v)) for s, v in result["bursty_mean"].points])
    # the FlexRay trade-off: guarantees improve, burst service degrades
    assert result["periodic_worst"].monotone_decreasing()
    burst = [v for _, v in result["bursty_mean"].points]
    assert burst[-1] > burst[0]


def test_a3_conochi_table_update_latency(benchmark):
    result = benchmark.pedantic(A.a3_conochi_table_update_latency,
                                rounds=1, iterations=1)
    print()
    print("  table-update latency -> mean post-migration latency:",
          [(t, round(v, 1)) for t, v in result.points])
    vals = [v for _, v in result.points]
    assert vals[-1] >= vals[0]          # slower updates never help
    assert vals[-1] - vals[0] < 10      # ...but traffic never stalls


def test_a4_dynoc_router_latency(benchmark):
    result = benchmark.pedantic(A.a4_dynoc_router_latency, rounds=1,
                                iterations=1)
    print()
    print("  router pipeline depth -> 3-hop latency:", result.points)
    # linear: each extra pipeline stage costs exactly one cycle per hop
    diffs = [
        (b[1] - a[1]) / (b[0] - a[0])
        for a, b in zip(result.points, result.points[1:])
    ]
    hops = 4  # 3 inter-router + 1 local delivery reservation
    assert all(d == hops for d in diffs)


def test_a5_buscom_adaptivity(benchmark):
    result = benchmark.pedantic(A.a5_buscom_adaptivity, rounds=1,
                                iterations=1)
    print()
    print(f"  hot-stream mean latency: static {result['static']:.1f} -> "
          f"adaptive {result['adaptive']:.1f} cycles")
    assert result["adaptive"] < result["static"]


def test_a6_dynoc_switching_mode(benchmark):
    result = benchmark.pedantic(A.a6_dynoc_switching_mode, rounds=1,
                                iterations=1)
    print()
    print("  payload -> 3-hop latency:")
    print("    vct:", result["vct"].points)
    print("    saf:", result["saf"].points)
    vct = dict(result["vct"].points)
    saf = dict(result["saf"].points)
    # equal for tiny packets, diverging with payload: SAF pays the
    # serialization at every hop
    for payload in vct:
        assert saf[payload] >= vct[payload]
    assert saf[256] > 3 * vct[256] - 2 * saf[4]


def test_a7_rmboc_retry_backoff(benchmark):
    result = benchmark.pedantic(A.a7_rmboc_fairness, rounds=1, iterations=1)
    print()
    print("  backoff -> Jain fairness @ horizon:",
          [(b, round(v, 3)) for b, v in result["fairness"].points])
    print("  backoff -> mean latency:",
          [(b, round(v, 1)) for b, v in result["mean_latency"].points])
    lat = [v for _, v in result["mean_latency"].points]
    # waiting longer never helps under saturation...
    assert lat[-1] > lat[0]
    # ...and does not buy fairness either: contention outcomes stay
    # structural (no backoff reaches perfect fairness)
    assert all(v < 0.95 for _, v in result["fairness"].points)
