"""Design-space sweep + Pareto frontier across all six interconnects.

Not a paper table: the computed version of the §4 trade-off prose —
who dominates in (area, latency) space, at which widths."""

from repro.analysis.pareto import dominated_by, pareto_frontier, render_frontier
from repro.analysis.parallel import run_sweep_parallel
from repro.analysis.sweeps import SweepGrid, render_sweep, run_sweep


def test_design_space_sweep_parallel(benchmark):
    """Process-parallel sweep reproduces the serial sweep exactly."""
    grid = SweepGrid(
        arch=["rmboc", "buscom", "dynoc", "conochi"],
        width=[16, 32],
        payload_bytes=[64],
    )
    points = benchmark.pedantic(
        lambda: run_sweep_parallel(grid, max_workers=4),
        rounds=1, iterations=1,
    )
    assert points == run_sweep(grid)


def test_design_space_pareto(benchmark):
    grid = SweepGrid(
        arch=["rmboc", "buscom", "dynoc", "conochi", "sharedbus",
              "staticmesh"],
        width=[16, 32],
        payload_bytes=[64],
    )
    points = benchmark.pedantic(lambda: run_sweep(grid), rounds=1,
                                iterations=1)
    print()
    print(render_sweep(grid, points))
    frontier = pareto_frontier(points, objectives=("area", "latency"))
    print()
    print(render_frontier(frontier, ("area", "latency")))
    names = {e.point.params["arch"] for e in frontier}
    # the cheapest (shared bus) and something fast are always on the
    # frontier; the pure-loss points are dominated
    assert "sharedbus" in names
    assert len(names) >= 2
    mapping = dominated_by(points, ("area", "latency"))
    assert any(mapping.values())  # somebody dominates somebody
