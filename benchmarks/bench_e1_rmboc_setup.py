"""E1 — RMBoC connection-setup latency (§3.1, Table 2).

Paper: minimum 8 cycles for the 4-module/4-bus system; data transfer in
a single cycle once established. Our hop model yields setup = 2d + 6
over d segments, bounded by 2m + 4 (matching the paper's garbled
upper-bound expression's '2m+4' fragment)."""

from repro.analysis.experiments import e1_rmboc_setup


def test_e1_setup_latency(benchmark):
    result = benchmark.pedantic(e1_rmboc_setup, rounds=1, iterations=1)
    print()
    print("  distance  measured  model(2d+6)")
    for dist, measured, model in result.rows:
        print(f"  {dist:8d}  {measured:8d}  {model:11d}")
    print(f"  min setup = {result.min_setup} (paper: 8); "
          f"upper bound = {result.upper_bound} (model 2m+4 = "
          f"{result.model_upper_bound})")
    assert result.matches_paper


def test_e1_setup_scales_with_module_count(benchmark):
    def sweep():
        return {m: e1_rmboc_setup(num_modules=m).upper_bound
                for m in (4, 6, 8)}

    bounds = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for m, bound in bounds.items():
        print(f"  m={m}: worst-case setup {bound} cycles (2m+4={2*m+4})")
        assert bound == 2 * m + 4
