"""F1 — Figure 1: the RMBoC architecture (m=4 cross-points, k=4
segmented buses) rendered from a live system, with a circuit held."""

from repro.analysis.render import render_rmboc_figure
from repro.arch import build_architecture


def build_and_render():
    arch = build_architecture("rmboc")
    arch.ports["m0"].send("m2", 4096)   # hold a circuit while drawing
    arch.sim.run(16)
    return arch, render_rmboc_figure(arch)


def test_fig1_rmboc_architecture(benchmark):
    arch, text = benchmark(build_and_render)
    print()
    print(text)
    assert "XP0" in text and "XP3" in text
    assert "#" in text  # reserved lane segments visible
    assert arch.lanes_in_use() == 2  # two segments held by the circuit
