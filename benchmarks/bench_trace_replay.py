"""Identical-workload comparison via trace replay (extension).

Captures one bursty workload and replays it on all six interconnects —
the cleanest apples-to-apples latency comparison the taxonomy allows
(the §2.2 serialization argument shows up as the shared bus's tail)."""

from repro.arch import build_architecture
from repro.sim import make_rng
from repro.traffic.generators import RandomTraffic
from repro.traffic.patterns import uniform_chooser
from repro.traffic.trace import capture_trace, replay_trace


def _reference_trace():
    ref = build_architecture("buscom")
    for src in ref.modules:
        ref.sim.add(RandomTraffic(
            f"g.{src}", ref.ports[src],
            uniform_chooser(src, list(ref.modules), make_rng(17, src, "c")),
            make_rng(17, src, "r"), rate=0.015, payload_bytes=96,
            stop=3000))
    ref.sim.run(3000)
    ref.run_to_completion(max_cycles=200_000)
    return capture_trace(ref.log)


def test_identical_trace_on_every_interconnect(benchmark):
    trace = _reference_trace()

    def run():
        return {
            name: replay_trace(build_architecture(name), trace)
            for name in ("rmboc", "buscom", "dynoc", "conochi",
                         "sharedbus", "staticmesh")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"  trace: {len(trace)} messages")
    print("  arch        mean lat  max lat  done @")
    for name, r in results.items():
        print(f"  {name:10s}  {r.mean_latency:8.1f}  {r.max_latency:7d}  "
              f"{r.completion_cycle:6d}")
    # everyone carries the full trace
    assert all(r.messages == len(trace) for r in results.values())
    # the single shared bus pays the serialization tail
    parallel_max = max(r.mean_latency for n, r in results.items()
                       if n != "sharedbus")
    assert results["sharedbus"].mean_latency > parallel_max
    # staticmesh == dynoc transport, identical numbers
    assert results["staticmesh"].mean_latency == \
        results["dynoc"].mean_latency
