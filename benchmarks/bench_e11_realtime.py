"""E11 — real-time capability study (extension).

The automotive control workload (BUS-COM's target domain) with bursty
interference, run on every interconnect including the static §2.2
baselines: who keeps the deadlines?"""

from repro.analysis.experiments import e11_realtime_study


def test_e11_realtime_study(benchmark):
    result = benchmark.pedantic(e11_realtime_study, rounds=1, iterations=1)
    print()
    print("  arch        met-ratio  worst control latency")
    for arch, row in result.rows.items():
        print(f"  {arch:10s}  {row['met_ratio']:9.3f}  "
              f"{row['worst_latency']:21.0f}")
    # the TDMA bus and the circuit bus keep their guarantees
    assert result.met_ratio("buscom") >= 0.99
    assert result.met_ratio("rmboc") >= 0.99
    # the single shared bus collapses under the interference
    assert result.met_ratio("sharedbus") < result.met_ratio("buscom")
