"""Dense-traffic (busy-path) benchmark: vec engine vs object kernel.

The idle-heavy benchmark (``bench_kernel_perf.py`` / BENCH_kernel.json)
tracks what quiescence fast-forward saves; this one tracks the opposite
regime — bursts dense enough that per-object dispatch dominates — which
is what the SoA batch kernels collapse.  Two measurements:

* **dense**: one simulation per architecture, bursts of ``--burst``
  messages every ``--gap`` cycles with large payloads, timed under both
  engines.  Delivered-message counts must match exactly (the engines
  are bit-identical; the full proof lives in
  ``tests/sim/test_vec_equivalence.py``).
* **fleet**: a ``--seeds``-seed Monte-Carlo sweep of the canonical
  burst workload, the seed-major batched runner
  (:func:`repro.analysis.batch.run_seed_fleet`) against the
  process-pool comparator (one task per seed).

``--write BENCH_busy.json`` persists the results; ``--check`` exits
nonzero if vec is slower than object on any dense workload (the CI
gate).  ``--smoke`` scales everything down for CI.

Usage::

    PYTHONPATH=src python benchmarks/bench_busy_perf.py \
        --write BENCH_busy.json --check
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time

from repro.analysis.batch import run_seed_fleet, run_seed_fleet_pool
from repro.arch import build_architecture
from repro.sim.vec import make_simulator

DENSE_ARCHS = ("dynoc", "staticmesh", "sharedbus", "buscom", "rmboc")


def _run_dense(key: str, engine: str, cycles: int, gap: int, burst: int,
               payloads=(256, 1024, 4096), seed: int = 11):
    """One bursty dense run; returns (wall_seconds, delivered_count)."""
    sim = make_simulator(name=f"busy-{key}-{engine}", engine=engine)
    arch = build_architecture(key, sim=sim, seed=seed)
    mods = list(arch.modules)
    rng = random.Random(seed)
    for b in range(max(1, cycles // gap)):
        base = 1 + b * gap
        for _ in range(burst):
            at = base + rng.randrange(0, 50)
            src, dst = rng.sample(mods, 2)
            pb = rng.choice(payloads)
            sim.at(at, lambda _s, a=arch, s=src, d=dst, p=pb:
                   a.ports[s].send(d, p))
    t0 = time.perf_counter()
    sim.run(cycles)
    wall = time.perf_counter() - t0
    return wall, len(arch.log.delivered())


def bench_dense(archs, cycles, gap, burst, repeats):
    rows = []
    for key in archs:
        best = {}
        delivered = {}
        for engine in ("object", "vec"):
            times = []
            for _ in range(repeats):
                wall, n = _run_dense(key, engine, cycles, gap, burst)
                times.append(wall)
                delivered[engine] = n
            best[engine] = min(times)
        if delivered["object"] != delivered["vec"]:
            raise AssertionError(
                f"{key}: engines disagree on delivered count "
                f"({delivered['object']} vs {delivered['vec']})")
        rows.append({
            "arch": key,
            "object_seconds": round(best["object"], 4),
            "vec_seconds": round(best["vec"], 4),
            "speedup": round(best["object"] / best["vec"], 3),
            "delivered": delivered["vec"],
        })
        print(f"dense {key:>10}: object {best['object']:.3f}s  "
              f"vec {best['vec']:.3f}s  "
              f"speedup {rows[-1]['speedup']:.2f}x  "
              f"({delivered['vec']} delivered)")
    return rows


def bench_fleet(arch, seeds):
    batched = run_seed_fleet(arch, range(seeds), engine="vec")
    pooled = run_seed_fleet_pool(arch, range(seeds), engine="vec")
    if ([r.key() for r in batched.results]
            != [r.key() for r in pooled.results]):
        raise AssertionError("fleet runners disagree on per-seed results")
    row = {
        "arch": arch,
        "seeds": seeds,
        "batched_seconds": round(batched.wall_seconds, 3),
        "pool_seconds": round(pooled.wall_seconds, 3),
        "batched_seeds_per_second":
            round(seeds / batched.wall_seconds, 2),
        "pool_seeds_per_second": round(seeds / pooled.wall_seconds, 2),
        "batched_speedup":
            round(pooled.wall_seconds / batched.wall_seconds, 3),
    }
    print(f"fleet {arch}: {seeds} seeds  "
          f"batched {row['batched_seconds']}s  "
          f"pool {row['pool_seconds']}s  "
          f"({row['batched_speedup']:.2f}x)")
    return row


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="CI scale: fewer cycles, seeds and repeats")
    ap.add_argument("--write", metavar="PATH",
                    help="write results JSON to PATH")
    ap.add_argument("--check", action="store_true",
                    help="exit 1 if vec is slower than object on any "
                         "dense workload")
    ap.add_argument("--archs", nargs="+", default=list(DENSE_ARCHS),
                    choices=DENSE_ARCHS)
    ap.add_argument("--seeds", type=int, default=None,
                    help="fleet sweep size (default 1000, smoke 100)")
    ap.add_argument("--fleet-arch", default="dynoc")
    args = ap.parse_args(argv)

    if args.smoke:
        cycles, gap, burst, repeats = 10_000, 5_000, 100, 1
        seeds = args.seeds or 100
    else:
        cycles, gap, burst, repeats = 30_000, 5_000, 150, 2
        seeds = args.seeds or 1_000

    dense = bench_dense(args.archs, cycles, gap, burst, repeats)
    fleet = bench_fleet(args.fleet_arch, seeds)

    doc = {
        "schema": "repro.bench_busy/1",
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "workload": {
            "cycles": cycles, "burst_gap": gap, "burst_size": burst,
            "repeats": repeats,
        },
        "dense": dense,
        "fleet": fleet,
    }
    if args.write:
        with open(args.write, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.write}")

    if args.check:
        slow = [r for r in dense if r["speedup"] < 1.0]
        if slow:
            print("FAIL: vec slower than object on: "
                  + ", ".join(f"{r['arch']} ({r['speedup']:.2f}x)"
                              for r in slow))
            return 1
        print("check passed: vec >= object on every dense workload")
    return 0


if __name__ == "__main__":
    sys.exit(main())
