"""T4 — regenerate Table 4 (structural characteristics) from the
capability rubric."""

from repro.core import tables
from repro.core.parameters import PAPER_TABLE_4
from repro.core.report import render_table4


def test_table4_structural_ranking(benchmark):
    data = benchmark(tables.table4)
    print()
    print(render_table4(data))
    for name, expected in PAPER_TABLE_4.items():
        assert data[name].as_tuple() == expected.as_tuple()
