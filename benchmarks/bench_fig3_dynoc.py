"""F3 — Figure 3: a 5x5 DyNoC with a multi-PE module (interior routers
removed) and two single-PE modules, as in the paper's example."""

from repro.analysis.render import render_dynoc_figure
from repro.arch import build_architecture
from repro.fabric.geometry import Rect


def build_and_render():
    arch = build_architecture("dynoc", num_modules=0, mesh=(5, 5))
    arch.attach("a", rect=Rect(1, 1, 2, 2))
    arch.attach("b", rect=Rect(0, 4, 1, 1))
    arch.attach("c", rect=Rect(4, 4, 1, 1))
    return arch, render_dynoc_figure(arch)


def test_fig3_dynoc_architecture(benchmark):
    arch, text = benchmark(build_and_render)
    print()
    print(text)
    assert arch.active_routers() == 21  # 25 - 4 interior routers
    msg = arch.ports["b"].send("c", 32)
    arch.run_to_completion()
    assert msg.delivered
