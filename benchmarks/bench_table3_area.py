"""T3 — regenerate Table 3 (minimum slices for 4 modules, 32-bit links)
and sweep the normalization parameters the paper holds fixed."""

from repro.core import tables
from repro.core.report import render_table3


def test_table3_minimum_area(benchmark):
    data = benchmark(tables.table3)
    print()
    print(render_table3(data))
    assert data == {"RMBoC": 5084, "BUS-COM": 1294,
                    "DyNoC": 1480, "CoNoChi": 1640}


def test_table3_width_sweep(benchmark):
    def sweep():
        return {w: tables.table3(width=w) for w in (8, 16, 32)}

    rows = benchmark(sweep)
    print()
    for width, data in rows.items():
        print(f"  width={width:2d}: " + "  ".join(
            f"{k}={v}" for k, v in data.items()))
    # RMBoC's per-bus datapaths dominate at every width; the full
    # BUS-COM < DyNoC < CoNoChi ordering holds at the paper's 32-bit
    # normalization point (at 8 bits the bus-macro granularity puts
    # BUS-COM marginally above the slim DyNoC router — worth knowing
    # when extrapolating Table 3 to narrow links).
    for data in rows.values():
        assert data["RMBoC"] == max(data.values())
    data32 = rows[32]
    assert data32["BUS-COM"] < data32["DyNoC"] < data32["CoNoChi"]
