"""F4 — Figure 4: a CoNoChi tile grid with S/H/V/0 tiles, including a
runtime-inserted switch joined by a wire tile."""

from repro.analysis.render import render_conochi_figure
from repro.arch import build_architecture
from repro.fabric.tiles import TileType


def build_and_render():
    arch = build_architecture("conochi")
    arch.add_switch((2, 3), wires=[((2, 2), TileType.VWIRE)])
    arch.sim.run(arch.cfg.table_update_latency + 2)
    return arch, render_conochi_figure(arch)


def test_fig4_conochi_architecture(benchmark):
    arch, text = benchmark(build_and_render)
    print()
    print(text)
    for symbol in ("S", "V", "M", "0"):
        assert symbol in text
    assert arch.grid.is_connected()
