"""T2 — regenerate Table 2 (implementation parameters): measured cycle
figures + calibrated area/timing, normalized to the 4-module system."""

from repro.core import tables
from repro.core.report import render_table2


def test_table2_implementation_parameters(benchmark):
    data = benchmark.pedantic(tables.table2, rounds=1, iterations=1)
    print()
    print(render_table2(data))
    # paper's published values
    assert data["RMBoC"].setup_latency_cycles == 8
    assert data["RMBoC"].slices == 5084
    assert data["RMBoC"].fmax_mhz == 94.0
    assert data["BUS-COM"].fmax_mhz == 66.0
    assert data["CoNoChi"].per_hop_latency_cycles == 5
    assert data["CoNoChi"].slices == 410
    assert all(row.data_cycles_per_word == 1.0 for row in data.values())
