"""E9 — latency decomposition under load (extension).

Splits each architecture's mean latency into queueing (waiting for the
interconnect to start serving: TDMA slot wait, circuit setup) and
transport. Buses concentrate latency in queueing; NoCs in multi-hop
transport — the structural difference behind the §4.2 numbers."""

from repro.analysis.experiments import e9_latency_decomposition


def test_e9_latency_decomposition(benchmark):
    result = benchmark.pedantic(e9_latency_decomposition, rounds=1,
                                iterations=1)
    print()
    print("  arch      queueing  transport  queue-fraction")
    for arch, (q, t) in result.rows.items():
        print(f"  {arch:8s}  {q:8.1f}  {t:9.1f}  {result.queueing_fraction(arch):13.2f}")
    # buses queue (slot wait / setup); NoCs spend latency in transport
    assert result.queueing_fraction("buscom") > result.queueing_fraction("dynoc")
    assert result.queueing_fraction("rmboc") > result.queueing_fraction("conochi")
    for arch in result.rows:
        q, t = result.rows[arch]
        assert q >= 0 and t > 0
