"""E7 — bus serialization vs NoC concurrency (§2.2).

Paper: shared buses split their effective bandwidth as components are
added; NoCs add links with every module. Two sweeps: offered load at
fixed size, and module count at fixed per-module load."""

from repro.analysis.experiments import e7_bus_vs_noc, e7b_module_scaling


def test_e7_load_sweep(benchmark):
    result = benchmark.pedantic(e7_bus_vs_noc, rounds=1, iterations=1)
    print()
    print("  mean latency vs injection rate (msgs/module/cycle):")
    for arch, series in result.rows.items():
        pts = "  ".join(f"{rate:g}:{lat:.0f}" for rate, lat in series)
        print(f"    {arch:8s} {pts}")
    for series in result.rows.values():
        assert all(lat > 0 for _, lat in series)


def test_e7b_module_count_sweep(benchmark):
    result = benchmark.pedantic(e7b_module_scaling, rounds=1, iterations=1)
    print()
    print("  mean latency vs module count:")
    for arch, series in result.rows.items():
        pts = "  ".join(f"m={m}:{lat:.0f}" for m, lat in series)
        print(f"    {arch:8s} {pts}  "
              f"(degradation x{result.degradation(arch):.2f})")
    assert result.degradation("buscom") > result.degradation("dynoc")
