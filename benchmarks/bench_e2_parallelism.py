"""E2 — parallelism d_max (§4.2).

Paper: RMBoC reaches s*k (12 for m=4, k=4), BUS-COM only k (4); the
NoCs are limited by their link count."""

from repro.analysis.experiments import e2_parallelism


def test_e2_parallelism(benchmark):
    result = benchmark.pedantic(e2_parallelism, rounds=1, iterations=1)
    print()
    print("  arch      observed  theoretical")
    for arch, (obs, theo) in result.rows.items():
        print(f"  {arch:8s}  {obs:8d}  {theo:11d}")
    assert result.rows["rmboc"] == (12, 12)
    assert result.rows["buscom"] == (4, 4)
    assert result.rmboc_beats_buscom
    for key in ("dynoc", "conochi"):
        obs, theo = result.rows[key]
        assert obs <= theo
