"""The paper's primary contribution: a parameter taxonomy and a
normalized comparison framework for runtime-adaptable interconnects.

* :mod:`~repro.core.parameters` — the classification taxonomy of §2
  (performance parameters: latency, bandwidth, throughput, parallelism;
  structural parameters: flexibility, scalability, extensibility,
  modularity) as typed objects;
* :mod:`~repro.core.scenario` — the minimal 4-module comparison scenario
  all architectures are normalized to;
* :mod:`~repro.core.metrics` — measurement probes over simulations;
* :mod:`~repro.core.ranking` — the structural-ranking rubric (Table 4);
* :mod:`~repro.core.tables` — generators for Tables 1-4;
* :mod:`~repro.core.report` — plain-text table rendering.
"""

from repro.core.parameters import (
    DesignParameters,
    Level,
    ModuleShape,
    PerformanceEnvelope,
    StructuralRanking,
    Switching,
    Topology,
)

__all__ = [
    "DesignParameters",
    "Level",
    "ModuleShape",
    "PerformanceEnvelope",
    "StructuralRanking",
    "Switching",
    "Topology",
]
