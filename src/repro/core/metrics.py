"""Measurement probes implementing the paper's §2.1 parameter
definitions against running simulations.

* latency l_i / path latency l_p — from message timestamps and hop
  counters;
* bandwidth b_L — from the calibrated clock model (link property);
* parallelism d_max — from the per-cycle concurrent-transfer histogram;
* effective bandwidth — payload bits as a fraction of occupied wire
  bits, the quantity behind the survey's "~90 %" statements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.arch import build_architecture
from repro.arch.base import CommArchitecture


@dataclass(frozen=True)
class LatencyProbe:
    """Decomposed latency of a single point-to-point message."""

    total_cycles: int
    setup_cycles: Optional[int]    # connection establishment (buses)
    transfer_cycles: int           # total - setup (or total for NoCs)
    payload_words: int

    @property
    def cycles_per_word(self) -> float:
        return self.transfer_cycles / self.payload_words


def probe_single_message(
    arch: CommArchitecture, src: str, dst: str, payload_bytes: int,
    max_cycles: int = 100_000,
) -> LatencyProbe:
    """Send one message through an otherwise idle system and decompose
    its latency."""
    sim = arch.sim
    msg = arch.ports[src].send(dst, payload_bytes)
    sim.run_until(lambda s: msg.delivered and arch.idle(),
                  max_cycles=max_cycles)
    words = math.ceil(payload_bytes * 8 / arch.width)
    setup: Optional[int] = None
    hist = sim.stats.get_histogram(f"{arch.KEY}.setup_latency")
    if hist is not None and hist.count:
        setup = int(hist.samples[-1])
    total = msg.latency
    return LatencyProbe(
        total_cycles=total,
        setup_cycles=setup,
        transfer_cycles=total - (setup or 0),
        payload_words=words,
    )


def measure_min_setup_latency(num_modules: int = 4, num_buses: int = 4,
                              width: int = 32,
                              payload_bytes: int = 64) -> int:
    """RMBoC's Table 2 figure: the minimum connection-setup latency over
    all module pairs (achieved by neighbours)."""
    best: Optional[int] = None
    for i in range(num_modules - 1):
        arch = build_architecture("rmboc", num_modules=num_modules,
                                  width=width, num_buses=num_buses)
        probe = probe_single_message(arch, f"m{i}", f"m{i+1}", payload_bytes)
        assert probe.setup_cycles is not None
        if best is None or probe.setup_cycles < best:
            best = probe.setup_cycles
    assert best is not None
    return best


def measure_per_hop_latency(arch_name: str, payload_bytes: int = 4,
                            width: int = 32) -> Tuple[float, Dict[int, int]]:
    """NoC per-hop header latency: regress message latency against hop
    count using a chain of modules (returns slope and the raw samples).

    With one-word payloads, the slope isolates the per-switch cost.
    """
    num_modules = 4
    samples: Dict[int, int] = {}
    for dist in range(1, num_modules):
        arch = build_architecture(arch_name, num_modules=num_modules,
                                  width=width)
        # pick src/dst `dist` apart in the builder's canonical layout
        if arch_name == "dynoc":
            # chain along a 1 x n mesh for controlled hop counts
            arch = build_architecture("dynoc", num_modules=num_modules,
                                      width=width,
                                      mesh=(num_modules, 1))
        probe = probe_single_message(arch, "m0", f"m{dist}", payload_bytes)
        samples[dist] = probe.total_cycles
    dists = sorted(samples)
    diffs = [
        (samples[b] - samples[a]) / (b - a)
        for a, b in zip(dists, dists[1:])
    ]
    slope = sum(diffs) / len(diffs)
    return slope, samples


def effective_bandwidth(arch: CommArchitecture) -> float:
    """Payload fraction of occupied wire capacity, from the counters the
    architectures maintain. Meaningful after traffic has run."""
    stats = arch.sim.stats
    payload_bits = stats.counter("delivered.bytes").value * 8
    if arch.KEY == "buscom":
        busy = stats.counter("buscom.busy_wire_cycles").value
        if busy == 0:
            return math.nan
        return payload_bits / (busy * arch.width)
    if arch.KEY in ("conochi", "dynoc"):
        header_words = stats.counter(f"{arch.KEY}.header_words").value
        total_bits = payload_bits + header_words * arch.width
        if total_bits == 0:
            return math.nan
        return payload_bits / total_bits
    if arch.KEY == "rmboc":
        # circuit switched: overhead is the (tiny) control messages
        ctrl = (
            stats.counter("rmboc.channels.requested").value * 2
        )  # request + reply, one word each
        total_bits = payload_bits + ctrl * arch.width
        if total_bits == 0:
            return math.nan
        return payload_bits / total_bits
    raise KeyError(f"unknown architecture {arch.KEY!r}")


def observed_parallelism(arch: CommArchitecture) -> Tuple[int, float]:
    """(max, mean) concurrent independent transfers per active cycle."""
    h = arch.sim.stats.get_histogram("parallelism.concurrent")
    if h is None or not h.count:
        return (0, math.nan)
    return (int(h.max), h.mean)


@dataclass(frozen=True)
class LatencyDecomposition:
    """Mean queueing vs transport latency over a set of messages.

    Queueing = cycles between injection and the interconnect starting to
    serve the message (slot wait on BUS-COM, circuit setup + NI wait on
    RMBoC); transport = the rest. NoC NIs accept immediately, so their
    queueing shows up as port-contention inside transport — noted so
    cross-architecture comparisons read the right column.
    """

    samples: int
    queueing_mean: float
    transport_mean: float

    @property
    def total_mean(self) -> float:
        return self.queueing_mean + self.transport_mean


def latency_decomposition(arch: CommArchitecture) -> LatencyDecomposition:
    """Decompose every delivered message's latency."""
    done = [
        m for m in arch.log.delivered() if m.accepted_cycle >= 0
    ]
    if not done:
        return LatencyDecomposition(0, math.nan, math.nan)
    queue = [m.accepted_cycle - m.created_cycle for m in done]
    transport = [m.delivered_cycle - m.accepted_cycle for m in done]
    return LatencyDecomposition(
        samples=len(done),
        queueing_mean=sum(queue) / len(queue),
        transport_mean=sum(transport) / len(transport),
    )


def jain_fairness(values) -> float:
    """Jain's fairness index over per-flow allocations: 1 = perfectly
    fair, 1/n = one flow takes everything."""
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("jain_fairness needs at least one value")
    total = sum(vals)
    squares = sum(v * v for v in vals)
    if squares == 0:
        return 1.0  # all-zero allocations are (vacuously) fair
    return total * total / (len(vals) * squares)
