"""The paper's §2 classification taxonomy as typed objects.

Performance parameters
    *latency* l_i (cycles a transfer is delayed by network element i),
    *path latency* l_p = sum of l_i along the route, *bandwidth* b_L of a
    link, and — because the topologies change at runtime, making fixed
    throughput meaningless — *parallelism* d_max, the maximum number of
    independent simultaneous transfers.

Structural parameters
    *flexibility* (support different communication patterns in a fixed
    design without performance loss), *scalability* (keep a fixed
    performance envelope as the system grows, extended by the paper to
    runtime growth), *extensibility* (grow at runtime at all, without
    the performance guarantee), and *modularity* (decomposability into
    submodules / granularity of replacement).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple


class Topology(enum.Enum):
    ARRAY_1D = "1D-Array"
    ARRAY_2D = "2D-Array"


class Switching(enum.Enum):
    CIRCUIT = "circuit"
    TIME_MULTIPLEXED = "time mult."
    PACKET = "packet"


class ModuleShape(enum.Enum):
    FIXED = "fixed"       # slot-bound: height and width fixed at design time
    VARIABLE = "variable"  # arbitrary rectangular shape


class Level(enum.IntEnum):
    """Ordinal scale used by the paper's Table 4."""

    LOW = 0
    MEDIUM = 1
    HIGH = 2

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class DesignParameters:
    """One row of the paper's Table 1.

    ``overhead`` and ``bit_width`` are kept descriptive (the paper mixes
    units across rows: "control msg.", "20 bit", ">= 4 bit", "96 bit");
    the numeric fields used by experiments are broken out separately.
    """

    name: str
    arch_type: str                      # "Bus" | "NoC"
    topology: Topology
    module_size: ModuleShape
    switching: Switching
    bit_width: Tuple[int, int]          # supported link-width range
    overhead: str                       # descriptive, as printed in Table 1
    overhead_bits: Optional[int]        # per-frame header bits (None: n/a)
    max_payload_bytes: Optional[int]    # None where the paper gives none
    protocol_layers: int

    def __post_init__(self) -> None:
        if self.arch_type not in ("Bus", "NoC"):
            raise ValueError(f"arch_type must be Bus or NoC, got {self.arch_type!r}")
        lo, hi = self.bit_width
        if lo <= 0 or hi < lo:
            raise ValueError(f"invalid bit width range {self.bit_width}")
        if self.protocol_layers <= 0:
            raise ValueError(f"protocol_layers must be >= 1")


@dataclass(frozen=True)
class PerformanceEnvelope:
    """Measured/derived performance figures for one architecture
    normalized to the minimal scenario (one row of Table 2)."""

    name: str
    config: str                      # e.g. "c=4, m=4, <->32 bit"
    setup_latency_cycles: Optional[int]   # connection establishment (buses)
    data_cycles_per_word: float           # established-path transfer rate
    per_hop_latency_cycles: Optional[int]  # NoC switch traversal (None: bus)
    slices: int
    fmax_mhz: float
    device: str
    provenance: str = "measured"      # "measured" | "calibrated" | "assumed"


@dataclass(frozen=True)
class StructuralRanking:
    """One row of Table 4."""

    name: str
    flexibility: Level
    scalability: Level
    extensibility: Level
    modularity: Level

    def as_tuple(self) -> Tuple[Level, Level, Level, Level]:
        return (
            self.flexibility,
            self.scalability,
            self.extensibility,
            self.modularity,
        )


#: The paper's Table 1, transcribed as ground truth for regression tests.
PAPER_TABLE_1 = {
    "RMBoC": DesignParameters(
        name="RMBoC", arch_type="Bus", topology=Topology.ARRAY_1D,
        module_size=ModuleShape.FIXED, switching=Switching.CIRCUIT,
        bit_width=(1, 32), overhead="control msg.", overhead_bits=None,
        max_payload_bytes=None, protocol_layers=1,
    ),
    "BUS-COM": DesignParameters(
        name="BUS-COM", arch_type="Bus", topology=Topology.ARRAY_1D,
        module_size=ModuleShape.FIXED, switching=Switching.TIME_MULTIPLEXED,
        bit_width=(1, 32), overhead="20 bit", overhead_bits=20,
        max_payload_bytes=256, protocol_layers=1,
    ),
    "DyNoC": DesignParameters(
        name="DyNoC", arch_type="NoC", topology=Topology.ARRAY_2D,
        module_size=ModuleShape.VARIABLE, switching=Switching.PACKET,
        bit_width=(8, 32), overhead=">= 4 bit", overhead_bits=4,
        max_payload_bytes=None, protocol_layers=1,
    ),
    "CoNoChi": DesignParameters(
        name="CoNoChi", arch_type="NoC", topology=Topology.ARRAY_2D,
        module_size=ModuleShape.VARIABLE, switching=Switching.PACKET,
        bit_width=(8, 32), overhead="96 bit", overhead_bits=96,
        max_payload_bytes=1024, protocol_layers=3,
    ),
}

#: The paper's Table 4, transcribed as ground truth for regression tests.
PAPER_TABLE_4 = {
    "RMBoC": StructuralRanking(
        "RMBoC", flexibility=Level.HIGH, scalability=Level.MEDIUM,
        extensibility=Level.LOW, modularity=Level.MEDIUM,
    ),
    "BUS-COM": StructuralRanking(
        "BUS-COM", flexibility=Level.MEDIUM, scalability=Level.MEDIUM,
        extensibility=Level.MEDIUM, modularity=Level.MEDIUM,
    ),
    "DyNoC": StructuralRanking(
        "DyNoC", flexibility=Level.LOW, scalability=Level.HIGH,
        extensibility=Level.HIGH, modularity=Level.HIGH,
    ),
    "CoNoChi": StructuralRanking(
        "CoNoChi", flexibility=Level.HIGH, scalability=Level.HIGH,
        extensibility=Level.HIGH, modularity=Level.HIGH,
    ),
}

ARCH_NAMES = ("RMBoC", "BUS-COM", "DyNoC", "CoNoChi")
