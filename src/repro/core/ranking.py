"""The structural-ranking rubric: capabilities -> Table 4 levels.

Each of the four structural parameters gets an integer score from the
capability profile; scores map to the survey's low/medium/high scale.
The rubric is the reproduction's *formalization* of the survey's §4.3
prose — `tests/core/test_ranking.py` asserts it reproduces Table 4
exactly, and the score breakdown makes the judgement auditable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.capabilities import PROFILES, CapabilityProfile
from repro.core.parameters import Level, ModuleShape, StructuralRanking


@dataclass(frozen=True)
class ScoreBreakdown:
    """Raw rubric scores before mapping to levels."""

    flexibility: int
    scalability: int
    extensibility: int
    modularity: int


def flexibility_score(p: CapabilityProfile) -> int:
    """Ability to serve different communication patterns in a fixed
    design without performance loss.

    Routing tables are worth 2 (arbitrary path reshaping), packet
    redirection 1, a variable number of connections per pair 2
    (bandwidth adaptation), a segmented medium 1 (locality, §2.2),
    runtime resource reassignment 1, on-demand arbitration 1, and
    load-adaptive routing 1 — but segmentation only counts when the
    medium offers something to re-shape (tables or extra connections),
    so DyNoC's fixed minimal routing stays at zero.

    Note: the survey's Table 4 (followed here) marks RMBoC *high* and
    BUS-COM *medium*, while its §4.3 prose orders BUS-COM above RMBoC;
    the tabulated ranking is taken as authoritative.
    """
    seg_bonus = p.segmented_medium and (p.bandwidth_adaptation or p.routing_tables)
    return (
        2 * p.routing_tables
        + 1 * p.packet_redirection
        + 2 * p.bandwidth_adaptation
        + 1 * seg_bonus
        + 1 * p.virtual_topology
        + 1 * p.dynamic_arbitration
        + 1 * p.load_adaptive_routing
    )


def scalability_score(p: CapabilityProfile) -> int:
    """Keep the performance envelope as the system grows.

    A concurrent (link-parallel) medium scores 2; a shared bus medium
    scores 1 when at least segmentation or multiple buses mitigate the
    serialization (all surveyed bus systems do), else 0.
    """
    if p.concurrent_medium:
        return 2
    return 1 if (p.segmented_medium or p.bandwidth_adaptation
                 or p.dynamic_arbitration or p.virtual_topology) else 0


def extensibility_score(p: CapabilityProfile) -> int:
    """Runtime growth: one point per dimension along which new
    components can be added by reconfiguration."""
    return p.extension_dims


def modularity_score(p: CapabilityProfile) -> int:
    """Replacement granularity: tiled grids with variable rectangular
    modules score 2; fixed slots with a standard interface score 1."""
    score = 0
    if p.tiled_replacement:
        score += 1
    if p.module_shape is ModuleShape.VARIABLE:
        score += 1
    elif p.standard_interface:
        score += 1  # fixed slots, but cleanly interchangeable modules
    return score


_LEVEL_MAP = {
    "flexibility": ((3, Level.HIGH), (1, Level.MEDIUM)),
    "scalability": ((2, Level.HIGH), (1, Level.MEDIUM)),
    "extensibility": ((2, Level.HIGH), (1, Level.MEDIUM)),
    "modularity": ((2, Level.HIGH), (1, Level.MEDIUM)),
}


def _to_level(parameter: str, score: int) -> Level:
    for threshold, level in _LEVEL_MAP[parameter]:
        if score >= threshold:
            return level
    return Level.LOW


def score(p: CapabilityProfile) -> ScoreBreakdown:
    return ScoreBreakdown(
        flexibility=flexibility_score(p),
        scalability=scalability_score(p),
        extensibility=extensibility_score(p),
        modularity=modularity_score(p),
    )


def rank(p: CapabilityProfile) -> StructuralRanking:
    s = score(p)
    return StructuralRanking(
        name=p.name,
        flexibility=_to_level("flexibility", s.flexibility),
        scalability=_to_level("scalability", s.scalability),
        extensibility=_to_level("extensibility", s.extensibility),
        modularity=_to_level("modularity", s.modularity),
    )


def rank_all() -> Dict[str, StructuralRanking]:
    """Regenerate Table 4 from the capability profiles."""
    return {name: rank(profile) for name, profile in PROFILES.items()}
