"""Plain-text rendering of the regenerated tables.

The benchmark harness prints these so a run's output can be laid next
to the paper's Tables 1-4 line by line.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.parameters import (
    DesignParameters,
    PerformanceEnvelope,
    StructuralRanking,
)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Column-aligned text table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_table1(data: Dict[str, DesignParameters]) -> str:
    headers = ["Architecture", "Type", "Topology", "Module Size",
               "Switching", "Bit width", "Overhead", "max. Payload",
               "Protocol Layers"]
    rows = []
    for name, d in data.items():
        lo, hi = d.bit_width
        rows.append([
            name, d.arch_type, d.topology.value, d.module_size.value,
            d.switching.value, f"{lo} - {hi}", d.overhead,
            "n. p." if d.max_payload_bytes is None
            else f"{d.max_payload_bytes} byte",
            d.protocol_layers,
        ])
    return format_table(headers, rows, title="Table 1: Design Parameters")


def render_table2(data: Dict[str, PerformanceEnvelope]) -> str:
    headers = ["Architecture", "Config", "Setup [cyc]", "Data [cyc/word]",
               "Per-hop [cyc]", "Slices", "f_max [MHz]", "Device",
               "Provenance"]
    rows = []
    for name, p in data.items():
        rows.append([
            name, p.config,
            "-" if p.setup_latency_cycles is None else p.setup_latency_cycles,
            f"{p.data_cycles_per_word:.2f}",
            "-" if p.per_hop_latency_cycles is None else p.per_hop_latency_cycles,
            p.slices, f"{p.fmax_mhz:.0f}", p.device, p.provenance,
        ])
    return format_table(headers, rows,
                        title="Table 2: Implementation Parameters")


def render_table3(data: Dict[str, int], m: int = 4, width: int = 32) -> str:
    headers = list(data.keys())
    rows = [[data[k] for k in headers]]
    return format_table(
        headers, rows,
        title=f"Table 3: Estimated minimum number of slices for "
              f"connecting {m} modules with {width} bit links",
    )


def render_table4(data: Dict[str, StructuralRanking]) -> str:
    headers = ["Architecture", "Flexibility", "Scalability",
               "Extensibility", "Modularity"]
    rows = [
        [name, str(r.flexibility), str(r.scalability),
         str(r.extensibility), str(r.modularity)]
        for name, r in data.items()
    ]
    return format_table(
        headers, rows,
        title="Table 4: Characteristics of the communication architectures",
    )


def render_all() -> str:
    """Regenerate and render all four tables (convenience for the CLI)."""
    from repro.core import tables

    parts = [
        render_table1(tables.table1()),
        render_table2(tables.table2()),
        render_table3(tables.table3()),
        render_table4(tables.table4()),
    ]
    return "\n\n".join(parts)
