"""Architecture advisor — the survey's stated purpose, made executable.

§5: "this survey and analysis can serve as a guidance when a decision
for one or the other interconnection architecture has to be made."

:func:`recommend` scores the four architectures against a
:class:`Requirements` profile using exactly the evidence the paper
assembles: the Table 4 structural levels, the Table 3 area model, the
Table 2 latency figures, and the §4 discussion's hard constraints
(fixed vs variable module shape, payload limits, parallelism needs).
Every score carries its justifications so the recommendation is
auditable rather than oracular.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.capabilities import PROFILES
from repro.core.parameters import PAPER_TABLE_1, Level, ModuleShape
from repro.core.ranking import rank_all
from repro.fabric.area import AreaModel

ARCHS = ("RMBoC", "BUS-COM", "DyNoC", "CoNoChi")
#: static §2.2 baselines, candidates only when runtime module exchange
#: is not required (see Requirements.needs_runtime_module_exchange)
STATIC_ARCHS = ("SharedBus", "StaticMesh")


@dataclass(frozen=True)
class Requirements:
    """What the system under design needs from its interconnect."""

    num_modules: int = 4
    link_width: int = 32
    #: modules of varying rectangular footprint (True) or slot-sized (False)
    variable_module_shape: bool = False
    #: simultaneous independent transfers the application needs
    min_parallel_transfers: int = 1
    #: largest single transfer unit the application sends, in bytes
    max_transfer_bytes: int = 256
    #: established-path latency budget in cycles (None: unconstrained)
    latency_budget_cycles: Optional[int] = None
    #: slice budget for the interconnect (None: unconstrained)
    area_budget_slices: Optional[int] = None
    #: whether modules must be exchangeable at runtime at all; when
    #: False the static §2.2 baselines become candidates (and usually
    #: win on area/clock — the E10 result as advice)
    needs_runtime_module_exchange: bool = True
    #: how often the module mix changes at runtime
    reconfigures_often: bool = False
    #: needs the system to grow (new modules appear) at runtime
    needs_runtime_growth: bool = False
    #: relative importance weights (0..) for the soft criteria
    weight_area: float = 1.0
    weight_latency: float = 1.0
    weight_flexibility: float = 1.0
    weight_scalability: float = 1.0

    def __post_init__(self) -> None:
        if self.num_modules < 2:
            raise ValueError("need at least two modules")
        if self.link_width < 1:
            raise ValueError("link width must be >= 1")
        if self.min_parallel_transfers < 1:
            raise ValueError("min_parallel_transfers must be >= 1")
        if self.max_transfer_bytes < 1:
            raise ValueError("max_transfer_bytes must be >= 1")
        for w in (self.weight_area, self.weight_latency,
                  self.weight_flexibility, self.weight_scalability):
            if w < 0:
                raise ValueError("weights must be non-negative")


@dataclass
class Assessment:
    """One architecture's evaluation against the requirements."""

    name: str
    feasible: bool
    score: float                     # higher is better; nan when infeasible
    area_slices: int
    est_latency_cycles: float        # single established transfer estimate
    dmax: int
    reasons: List[str] = field(default_factory=list)
    vetoes: List[str] = field(default_factory=list)


@dataclass
class Recommendation:
    requirements: Requirements
    assessments: Dict[str, Assessment]
    ranking: List[str]               # feasible architectures, best first

    @property
    def best(self) -> Optional[str]:
        return self.ranking[0] if self.ranking else None

    def report(self) -> str:
        lines = [f"recommendation: {self.best or 'none feasible'}"]
        for name in self.assessments:
            a = self.assessments[name]
            status = "VETO" if not a.feasible else f"score {a.score:5.2f}"
            lines.append(f"  {name:8s} [{status}] area={a.area_slices} "
                         f"lat~{a.est_latency_cycles:.0f} d_max={a.dmax}")
            for reason in a.vetoes + a.reasons:
                lines.append(f"           - {reason}")
        return "\n".join(lines)


_LEVEL_POINTS = {Level.LOW: 0.0, Level.MEDIUM: 0.5, Level.HIGH: 1.0}


def _estimate_area(name: str, req: Requirements, area: AreaModel) -> int:
    m, w = req.num_modules, req.link_width
    if name == "RMBoC":
        return area.rmboc_total(m, 4, w)
    if name == "BUS-COM":
        return area.buscom_total(m, 4, w)
    if name == "DyNoC":
        # one router per module if slot-sized; surrounding routers for
        # variable shapes (2-PE-average assumption)
        routers = m if not req.variable_module_shape else 3 * m
        return area.dynoc_total(routers, w)
    if name == "CoNoChi":
        return area.conochi_total(m, w) + area.conochi_control_unit(m)
    if name == "SharedBus":
        return area.sharedbus_total(m, w)
    # StaticMesh
    return area.staticmesh_total(m, w)


def _estimate_latency(name: str, req: Requirements) -> float:
    """Cycles for one max-size transfer between typical endpoints."""
    words = -(-req.max_transfer_bytes * 8 // req.link_width)
    m = req.num_modules
    if name == "RMBoC":
        avg_d = max(1, (m - 1) // 2)
        return (2 * avg_d + 6) + words
    if name == "BUS-COM":
        # wait half a static slot round on average + serialization
        slot = 20  # default static slot duration
        return slot * 1.5 + words
    if name == "SharedBus":
        # grant + address + serialization, plus expected queueing behind
        # (m-1)/2 competing transfers on the single medium
        return 3 + words * (1 + (m - 1) / 2)
    hops = max(1, round((m ** 0.5)))  # mesh/chain diameter scale
    if name in ("DyNoC", "StaticMesh"):
        return hops * 4 + 1 + words
    return hops * 6 + 3 + words  # CoNoChi


def _dmax(name: str, req: Requirements) -> int:
    m = req.num_modules
    if name == "RMBoC":
        return (m - 1) * 4
    if name == "BUS-COM":
        return 4
    if name == "SharedBus":
        return 1
    # NoCs (incl. StaticMesh): links scale with modules
    return 2 * m


def _assess_static(name: str, req: Requirements,
                   area_model: AreaModel) -> Assessment:
    """Evaluate a §2.2 static baseline (no Table 1/4 rows exist)."""
    a = Assessment(
        name=name,
        feasible=True,
        score=0.0,
        area_slices=_estimate_area(name, req, area_model),
        est_latency_cycles=_estimate_latency(name, req),
        dmax=_dmax(name, req),
    )
    if req.needs_runtime_module_exchange:
        a.vetoes.append("static design: no runtime module exchange")
    if req.needs_runtime_growth or req.reconfigures_often:
        a.vetoes.append("static design: module mix is fixed at design time")
    if req.variable_module_shape and name == "SharedBus":
        a.vetoes.append("slot-style design: fixed module shapes only")
    if req.min_parallel_transfers > a.dmax:
        a.vetoes.append(f"needs {req.min_parallel_transfers} parallel "
                        f"transfers, d_max is {a.dmax}")
    if (req.area_budget_slices is not None
            and a.area_slices > req.area_budget_slices):
        a.vetoes.append(f"area {a.area_slices} exceeds budget "
                        f"{req.area_budget_slices}")
    if (req.latency_budget_cycles is not None
            and a.est_latency_cycles > req.latency_budget_cycles):
        a.vetoes.append(f"estimated latency {a.est_latency_cycles:.0f} "
                        f"exceeds budget {req.latency_budget_cycles}")
    if a.vetoes:
        a.feasible = False
        a.score = float("-inf")
        return a
    a.reasons.append("no reconfiguration machinery to pay for (E10)")
    a.score = (
        req.weight_area * (1000.0 / max(a.area_slices, 1))
        + req.weight_latency * (100.0 / max(a.est_latency_cycles, 1.0))
    )
    if a.dmax >= 2 * req.min_parallel_transfers:
        a.score += 0.25
    return a


def assess(name: str, req: Requirements,
           area_model: Optional[AreaModel] = None) -> Assessment:
    """Evaluate one architecture; vetoes are the paper's hard limits."""
    area_model = area_model or AreaModel()
    if name in STATIC_ARCHS:
        return _assess_static(name, req, area_model)
    profile = PROFILES[name]
    table1 = PAPER_TABLE_1[name]
    levels = rank_all()[name]

    a = Assessment(
        name=name,
        feasible=True,
        score=0.0,
        area_slices=_estimate_area(name, req, area_model),
        est_latency_cycles=_estimate_latency(name, req),
        dmax=_dmax(name, req),
    )

    # ---- hard constraints (vetoes) -----------------------------------
    if req.variable_module_shape and table1.module_size is ModuleShape.FIXED:
        a.vetoes.append("requires variable rectangular modules; "
                        "slot-based architecture supports fixed shapes only")
    if req.min_parallel_transfers > a.dmax:
        a.vetoes.append(f"needs {req.min_parallel_transfers} parallel "
                        f"transfers, d_max is {a.dmax}")
    if (table1.max_payload_bytes is not None
            and req.max_transfer_bytes > table1.max_payload_bytes
            and req.latency_budget_cycles is not None):
        # segmentation is possible but costs header overhead per fragment;
        # only veto when a tight latency budget forbids it
        frags = -(-req.max_transfer_bytes // table1.max_payload_bytes)
        if frags * a.est_latency_cycles > req.latency_budget_cycles:
            a.vetoes.append(
                f"{req.max_transfer_bytes}-byte transfers need {frags} "
                f"fragments (payload limit {table1.max_payload_bytes}), "
                "blowing the latency budget")
    if (req.area_budget_slices is not None
            and a.area_slices > req.area_budget_slices):
        a.vetoes.append(f"area {a.area_slices} exceeds budget "
                        f"{req.area_budget_slices}")
    if (req.latency_budget_cycles is not None
            and a.est_latency_cycles > req.latency_budget_cycles):
        a.vetoes.append(f"estimated latency {a.est_latency_cycles:.0f} "
                        f"exceeds budget {req.latency_budget_cycles}")
    if req.needs_runtime_growth and levels.extensibility is Level.LOW:
        a.vetoes.append("runtime growth required but extensibility is low")

    if a.vetoes:
        a.feasible = False
        a.score = float("-inf")
        return a

    # ---- soft scoring --------------------------------------------------
    # normalize area/latency against the best achievable among archs
    score = 0.0
    score += req.weight_flexibility * _LEVEL_POINTS[levels.flexibility]
    if levels.flexibility is Level.HIGH:
        a.reasons.append("flexibility high (Table 4)")
    score += req.weight_scalability * _LEVEL_POINTS[levels.scalability]
    if req.reconfigures_often:
        bonus = 0.0
        if profile.packet_redirection:
            bonus += 0.5
            a.reasons.append("packet redirection eases frequent "
                             "reconfiguration (§4.2)")
        if profile.virtual_topology:
            bonus += 0.5
            a.reasons.append("runtime communication-resource reassignment")
        if profile.tiled_replacement:
            bonus += 0.25
        score += req.weight_flexibility * bonus
    # area: fraction of the cheapest feasible option (computed by caller
    # would be cleaner; a simple inverse works for ranking)
    score += req.weight_area * (1000.0 / max(a.area_slices, 1))
    score += req.weight_latency * (100.0 / max(a.est_latency_cycles, 1.0))
    if a.dmax >= 2 * req.min_parallel_transfers:
        score += 0.25
        a.reasons.append("parallelism headroom >= 2x requirement")
    a.score = score
    return a


def recommend(req: Requirements,
              area_model: Optional[AreaModel] = None) -> Recommendation:
    """Assess the four DPR architectures — plus the static baselines
    when runtime module exchange is not required — and rank the
    feasible ones."""
    candidates = list(ARCHS)
    if not req.needs_runtime_module_exchange:
        candidates += list(STATIC_ARCHS)
    assessments = {
        name: assess(name, req, area_model) for name in candidates
    }
    ranking = sorted(
        (n for n, a in assessments.items() if a.feasible),
        key=lambda n: assessments[n].score,
        reverse=True,
    )
    return Recommendation(requirements=req, assessments=assessments,
                          ranking=ranking)
