"""The paper's minimal comparison scenario.

§1: "A minimal communication system for connecting four hardware
modules is assumed, so that a better comparison of the diverse data
given in the papers on the different architectures could be achieved."

:func:`minimal_scenario` drives any architecture with a canonical
traffic pattern over its attached modules, runs to completion, and
returns the normalized measurements Tables 2 and the §4.2 discussion
are built from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.arch.base import CommArchitecture, Message


def pattern_pairs(modules: Sequence[str], pattern: str) -> List[Tuple[str, str]]:
    """Canonical (src, dst) pairs for a named traffic pattern."""
    n = len(modules)
    if n < 2:
        raise ValueError("need at least two modules")
    if pattern == "all-pairs":
        return [(a, b) for a in modules for b in modules if a != b]
    if pattern == "ring":
        return [(modules[i], modules[(i + 1) % n]) for i in range(n)]
    if pattern == "neighbors":
        return [(modules[i], modules[i + 1]) for i in range(n - 1)]
    if pattern == "pairs":
        # disjoint pairs: (0,1), (2,3), ...
        return [
            (modules[i], modules[i + 1]) for i in range(0, n - 1, 2)
        ]
    raise ValueError(f"unknown pattern {pattern!r}")


@dataclass
class MinimalScenarioResult:
    """Normalized measurements from one minimal-scenario run."""

    arch_key: str
    pattern: str
    payload_bytes: int
    messages: int
    total_cycles: int
    latencies: List[int] = field(default_factory=list)
    pair_latency: Dict[Tuple[str, str], float] = field(default_factory=dict)
    observed_dmax: int = 0
    delivered_payload_bytes: int = 0

    @property
    def mean_latency(self) -> float:
        return sum(self.latencies) / len(self.latencies) if self.latencies else math.nan

    @property
    def min_latency(self) -> int:
        return min(self.latencies)

    @property
    def max_latency(self) -> int:
        return max(self.latencies)

    @property
    def aggregate_words_per_cycle(self) -> float:
        """Delivered payload words per cycle — a throughput proxy."""
        if self.total_cycles == 0:
            return 0.0
        return (self.delivered_payload_bytes * 8) / (
            self.total_cycles * 32
        )


def minimal_scenario(
    arch: CommArchitecture,
    payload_bytes: int = 64,
    pattern: str = "ring",
    repeats: int = 1,
    gap_cycles: int = 0,
    max_cycles: int = 1_000_000,
) -> MinimalScenarioResult:
    """Drive ``arch`` with ``repeats`` rounds of a canonical pattern and
    run to completion.

    ``gap_cycles`` inserts idle time between rounds (0 = inject every
    round as soon as the previous round was injected — rounds then
    overlap in the network, exercising contention).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    modules = list(arch.modules)
    pairs = pattern_pairs(modules, pattern)
    sim = arch.sim
    start_cycle = sim.cycle
    messages: List[Message] = []

    def inject_round(r: int) -> None:
        def do(_sim) -> None:
            for src, dst in pairs:
                messages.append(arch.ports[src].send(dst, payload_bytes))

        sim.at(start_cycle + r * (1 + gap_cycles), do)

    for r in range(repeats):
        inject_round(r)

    sim.run_until(
        lambda s: len(messages) == repeats * len(pairs)
        and all(m.delivered for m in messages)
        and arch.idle(),
        max_cycles=max_cycles,
    )

    result = MinimalScenarioResult(
        arch_key=arch.KEY,
        pattern=pattern,
        payload_bytes=payload_bytes,
        messages=len(messages),
        total_cycles=sim.cycle - start_cycle,
        latencies=[m.latency for m in messages],
        observed_dmax=arch.observed_dmax,
        delivered_payload_bytes=sum(m.payload_bytes for m in messages),
    )
    by_pair: Dict[Tuple[str, str], List[int]] = {}
    for m in messages:
        by_pair.setdefault((m.src, m.dst), []).append(m.latency)
    result.pair_latency = {
        pair: sum(v) / len(v) for pair, v in by_pair.items()
    }
    return result
