"""Capability profiles: the structural facts behind Table 4.

The survey ranks the four architectures on flexibility, scalability,
extensibility and modularity from *architectural capabilities* (§4.3),
not measurements. :class:`CapabilityProfile` captures those capabilities
as booleans/enums with citations to the survey's own justifications, and
:mod:`repro.core.ranking` turns them into ordinal levels through a
documented rubric.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.parameters import ModuleShape


@dataclass(frozen=True)
class CapabilityProfile:
    """Structural capabilities of one architecture."""

    name: str
    #: communication medium is segmented (locality exploitable)
    segmented_medium: bool
    #: several independent transfers can proceed on distinct links
    concurrent_medium: bool
    #: per-switch routing tables (re-programmable paths)
    routing_tables: bool
    #: in-flight packets can be redirected during reconfiguration
    packet_redirection: bool
    #: communication resources re-assignable at runtime (virtual topology)
    virtual_topology: bool
    #: a module pair can use a variable number of parallel connections
    bandwidth_adaptation: bool
    #: arbitration grants extra bandwidth on demand (dynamic TDMA slots)
    dynamic_arbitration: bool
    #: routing adapts to load (beyond deterministic minimal)
    load_adaptive_routing: bool
    #: dimensions along which the system can grow at runtime (0, 1, 2)
    extension_dims: int
    #: module footprint freedom
    module_shape: ModuleShape
    #: replacement granularity is a tile/PE grid (not fixed slots)
    tiled_replacement: bool
    #: standard interface for any kind of module (all four have one)
    standard_interface: bool = True

    def __post_init__(self) -> None:
        if self.extension_dims not in (0, 1, 2):
            raise ValueError(f"extension_dims must be 0..2")


#: Capabilities as stated in the survey's §3 and §4.3.
PROFILES = {
    "RMBoC": CapabilityProfile(
        name="RMBoC",
        segmented_medium=True,        # k buses segmented at cross-points
        concurrent_medium=False,      # still a bus medium
        routing_tables=False,
        packet_redirection=False,
        virtual_topology=False,       # overlay channels, not resource moves
        bandwidth_adaptation=True,    # variable #connections per pair (§4.3)
        dynamic_arbitration=False,
        load_adaptive_routing=False,
        extension_dims=0,             # "no details about the extensibility"
        module_shape=ModuleShape.FIXED,
        tiled_replacement=False,
    ),
    "BUS-COM": CapabilityProfile(
        name="BUS-COM",
        segmented_medium=False,       # unsegmented buses (§4.2)
        concurrent_medium=False,
        routing_tables=False,
        packet_redirection=False,
        virtual_topology=True,        # slot-table reassignment (§3.1)
        bandwidth_adaptation=False,   # one unsegmented frame per bus at a time
        dynamic_arbitration=True,     # dynamic slots grant extra bus time
        load_adaptive_routing=False,
        extension_dims=1,             # bus structure: one dimension (§4.3)
        module_shape=ModuleShape.FIXED,
        tiled_replacement=False,
    ),
    "DyNoC": CapabilityProfile(
        name="DyNoC",
        segmented_medium=True,
        concurrent_medium=True,
        routing_tables=False,         # light-weight deterministic S-XY
        packet_redirection=False,
        virtual_topology=False,
        bandwidth_adaptation=False,   # "does not support variable bandwidth"
        dynamic_arbitration=False,
        load_adaptive_routing=False,
        extension_dims=2,             # new components at each border
        module_shape=ModuleShape.VARIABLE,
        tiled_replacement=True,
    ),
    "CoNoChi": CapabilityProfile(
        name="CoNoChi",
        segmented_medium=True,
        concurrent_medium=True,
        routing_tables=True,          # distributed routing tables (§4.3)
        packet_redirection=True,      # reconfiguration feature (§4.2)
        virtual_topology=True,        # switches added/removed at runtime
        bandwidth_adaptation=False,
        dynamic_arbitration=False,
        load_adaptive_routing=False,
        extension_dims=2,
        module_shape=ModuleShape.VARIABLE,
        tiled_replacement=True,
    ),
}
