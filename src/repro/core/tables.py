"""Regenerate the paper's Tables 1-4.

Table 1 (design parameters) comes from the architecture descriptors;
Table 2 (implementation parameters) combines *measured* cycle figures
from small simulations with the *calibrated* area/timing model; Table 3
is the area model's normalized minimum-interconnect accounting; Table 4
is the structural-ranking rubric over the capability profiles.
"""

from __future__ import annotations

from typing import Dict

from repro.arch import build_architecture
from repro.core.metrics import (
    measure_min_setup_latency,
    measure_per_hop_latency,
    probe_single_message,
)
from repro.core.parameters import (
    DesignParameters,
    PerformanceEnvelope,
    StructuralRanking,
)
from repro.core.ranking import rank_all
from repro.fabric.area import AreaModel
from repro.fabric.timing import ClockModel

_KEY = {"RMBoC": "rmboc", "BUS-COM": "buscom",
        "DyNoC": "dynoc", "CoNoChi": "conochi"}


def table1() -> Dict[str, DesignParameters]:
    """Design parameters, read back from live architecture instances."""
    return {
        name: build_architecture(key).descriptor()
        for name, key in _KEY.items()
    }


def table2(width: int = 32) -> Dict[str, PerformanceEnvelope]:
    """Implementation parameters for the minimal 4-module system.

    Cycle figures are measured from simulation; slices and f_max come
    from the calibrated models (provenance is flagged per row). DyNoC's
    per-hop latency is flagged ``assumed`` — the survey gives none.
    """
    area = AreaModel()
    clock = ClockModel()
    rows: Dict[str, PerformanceEnvelope] = {}

    # RMBoC — minimum setup latency + streaming rate.
    setup = measure_min_setup_latency(width=width)
    arch = build_architecture("rmboc", width=width)
    probe = probe_single_message(arch, "m0", "m1", payload_bytes=512)
    rows["RMBoC"] = PerformanceEnvelope(
        name="RMBoC",
        config=f"c=4, m=4, <->{width} bit",
        setup_latency_cycles=setup,
        data_cycles_per_word=probe.cycles_per_word,
        per_hop_latency_cycles=None,
        slices=area.rmboc_total(4, 4, width),
        fmax_mhz=clock.fmax_mhz("rmboc", width),
        device="XC2V6000",
        provenance="measured+calibrated",
    )

    # BUS-COM — no connection setup; one word per cycle during a frame.
    arch = build_architecture("buscom", width=width)
    probe = probe_single_message(arch, "m0", "m1", payload_bytes=64)
    rows["BUS-COM"] = PerformanceEnvelope(
        name="BUS-COM",
        config=f"k=4, m=4, {width} bit (published proto: <-32/->16 bit, "
               f"{area.buscom_prototype()} slices)",
        setup_latency_cycles=None,
        data_cycles_per_word=1.0,
        per_hop_latency_cycles=None,
        slices=area.buscom_total(4, 4, width),
        fmax_mhz=clock.fmax_mhz("buscom", width),
        device="XC2V3000",
        provenance="measured+calibrated",
    )

    # DyNoC — per-hop latency measured on a chain (assumed router cost).
    slope_d, _ = measure_per_hop_latency("dynoc", width=width)
    rows["DyNoC"] = PerformanceEnvelope(
        name="DyNoC",
        config=f"switch, {width} bit",
        setup_latency_cycles=None,
        data_cycles_per_word=1.0,
        per_hop_latency_cycles=round(slope_d),
        slices=area.dynoc_router(width),
        fmax_mhz=clock.fmax_mhz("dynoc", width),
        device="XC2V6000",
        provenance="assumed router latency",
    )

    # CoNoChi — per-hop slope minus the link cycle gives the published
    # 5-cycle switch traversal.
    slope_c, _ = measure_per_hop_latency("conochi", width=width)
    arch = build_architecture("conochi", width=width)
    switch_cycles = round(slope_c) - arch.cfg.link_latency
    rows["CoNoChi"] = PerformanceEnvelope(
        name="CoNoChi",
        config=f"switch, {width} bit",
        setup_latency_cycles=None,
        data_cycles_per_word=1.0,
        per_hop_latency_cycles=switch_cycles,
        slices=area.conochi_switch(width),
        fmax_mhz=clock.fmax_mhz("conochi", width),
        device="XC2VP100",
        provenance="measured+calibrated",
    )
    return rows


def table3(m: int = 4, width: int = 32, k: int = 4) -> Dict[str, int]:
    """Estimated minimum slices for connecting ``m`` modules (Table 3)."""
    return AreaModel().table3(m=m, width=width, k=k)


def table4() -> Dict[str, StructuralRanking]:
    """Structural characteristics (Table 4) from the ranking rubric."""
    return rank_all()


def all_tables() -> Dict[str, object]:
    return {
        "table1": table1(),
        "table2": table2(),
        "table3": table3(),
        "table4": table4(),
    }
