"""Unified fault injection and recovery across all six architectures.

Quick start::

    from repro.arch import build_architecture
    from repro.faults import FaultKind, FaultSchedule, inject

    arch = build_architecture("dynoc", num_modules=4, mesh=(4, 4))
    sched = FaultSchedule(seed=7).one_shot(
        500, FaultKind.NODE_DOWN, (1, 1), duration=2_000)
    injector = inject(arch, sched)
    # ... drive traffic, run the sim ...
    print(injector.metrics())

See ``docs/faults.md`` for the fault model, the per-architecture
recovery policies, and the chaos harness (``repro chaos``).
"""

from repro.faults.injector import FaultInjector, FaultRecord, inject
from repro.faults.model import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    LINK_KINDS,
    RECONFIG_KINDS,
)
from repro.faults.policies import (
    BusComPolicy,
    ConoChiPolicy,
    DyNoCPolicy,
    RMBoCPolicy,
    RecoveryPolicy,
    SharedBusPolicy,
    make_policy,
)

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultRecord",
    "FaultSchedule",
    "LINK_KINDS",
    "RECONFIG_KINDS",
    "RecoveryPolicy",
    "RMBoCPolicy",
    "BusComPolicy",
    "DyNoCPolicy",
    "ConoChiPolicy",
    "SharedBusPolicy",
    "inject",
    "make_policy",
]
