"""Per-architecture recovery policies.

Each policy answers three questions for ``NODE_DOWN`` faults — what
breaks *immediately* (:meth:`fail_node`), what the architecture's own
reconfiguration machinery does once the failure is *detected*
(:meth:`on_detected`), and what physical *repair* restores
(:meth:`repair_node`) — reusing exactly the mechanisms the paper gives
each design for planned reconfiguration:

* **RMBoC** — circuits crossing a dead cross-point are torn down with
  the CANCEL protocol (lane release, retry bookkeeping); the network
  interfaces keep re-requesting with capped exponential backoff until
  the cross-point is repaired (a 1-D chain has no alternate path).
* **BUS-COM** — the in-flight frame on a failed bus is lost; at
  detection the slot table migrates the dead bus's static slots into
  dynamic slots of healthy buses (``SlotTable.plan_migration_off_bus``),
  charged at the LUT-reconfiguration latency; repair undoes the moves.
* **DyNoC** (and the static mesh, which inherits its transport) — the
  failed router silently eats packets until detection deactivates it,
  turning it into an obstacle the existing S-XY surround routing
  detours around; repair reactivates it.
* **CoNoChi** — the global control unit distributes routing tables that
  avoid the failed switch (the paper's table-update machinery as fault
  response); repair re-optimizes tables after the table-update latency.
* **shared bus** — a single bus has no redundancy: the outage halts
  arbitration; repair resumes it and retransmission refills the bus.

Policies also supply deterministic ``node_targets()`` candidate lists
(used by the chaos harness to pick safe, recoverable injection points)
and a ``default_detection_latency`` scaled to each design's control
plane.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.faults.injector import FaultInjector, FaultRecord


class RecoveryPolicy:
    """Default policy: generic link/crash faults work on any
    architecture; ``NODE_DOWN`` needs an architecture-specific policy."""

    KEY = "base"

    def __init__(self, arch, injector: FaultInjector):
        self.arch = arch
        self.injector = injector

    @property
    def default_detection_latency(self) -> int:
        """Cycles the control plane needs to notice a fault."""
        return 16

    def node_targets(self) -> List[Any]:
        """Deterministic candidates for ``NODE_DOWN`` injection whose
        failure the architecture can survive (no isolated module)."""
        return []

    def fail_node(self, target: Any, now: int,
                  record: FaultRecord) -> None:
        """The element dies *now*; drop whatever it was carrying."""
        raise NotImplementedError(
            f"architecture {self.arch.KEY!r} has no NODE_DOWN recovery "
            f"policy; only link/module/reconfiguration faults apply"
        )

    def on_detected(self, target: Any, now: int) -> Optional[int]:
        """Reconfiguration response at detection time.  Returns the
        cycle service is restored (counts as recovery), or ``None``
        when only physical repair recovers."""
        return None

    def repair_node(self, target: Any, now: int) -> int:
        """Physical repair at ``now``; returns the cycle the element is
        back in service."""
        return now


# ----------------------------------------------------------------------
class RMBoCPolicy(RecoveryPolicy):
    """CANCEL-based teardown + capped exponential re-request backoff."""

    KEY = "rmboc"

    @property
    def default_detection_latency(self) -> int:
        # a control message crossing the whole chain notices the outage
        cfg = self.arch.cfg
        return cfg.xp_proc_cycles * (cfg.num_segments + 1)

    def node_targets(self) -> List[Any]:
        # interior cross-points: an endpoint cross-point would isolate
        # its module outright (still injectable explicitly)
        return list(range(1, self.arch.cfg.num_modules - 1))

    def fail_node(self, xp: int, now: int, record: FaultRecord) -> None:
        for msg in self.arch.fail_crosspoint(xp):
            self.injector.drop_message(msg, record, why="dead_crosspoint")

    def on_detected(self, xp: int, now: int) -> Optional[int]:
        return None  # 1-D chain: no alternate path around a cross-point

    def repair_node(self, xp: int, now: int) -> int:
        self.arch.repair_crosspoint(xp)
        return now


# ----------------------------------------------------------------------
class BusComPolicy(RecoveryPolicy):
    """Slot-table migration off the failed bus at detection."""

    KEY = "buscom"

    def __init__(self, arch, injector: FaultInjector):
        super().__init__(arch, injector)
        # bus -> applied migration plan (for undo at repair)
        self._plans: Dict[int, List[Tuple[int, int, int, int, str]]] = {}

    @property
    def default_detection_latency(self) -> int:
        # one full TDMA round: every owner missed its static slot once
        return self.arch.cfg.max_round_cycles

    def node_targets(self) -> List[Any]:
        return list(range(self.arch.cfg.num_buses))

    def fail_node(self, bus: int, now: int, record: FaultRecord) -> None:
        for msg in self.arch.fail_bus(bus):
            self.injector.drop_message(msg, record, why="dead_bus")
            self.arch.purge_message(msg)

    def on_detected(self, bus: int, now: int) -> Optional[int]:
        plan = self.arch.migrate_slots_off_bus(bus)
        self._plans[bus] = plan
        if not plan:
            return None  # nowhere to migrate (single bus or all static)
        return now + self.arch.cfg.reassign_latency

    def repair_node(self, bus: int, now: int) -> int:
        self.arch.repair_bus(bus)
        plan = self._plans.pop(bus, [])
        if plan:
            self.arch.restore_slots(plan)
            return now + self.arch.cfg.reassign_latency
        return now


# ----------------------------------------------------------------------
class DyNoCPolicy(RecoveryPolicy):
    """Failed routers become S-XY obstacles once detected."""

    KEY = "dynoc"

    @property
    def default_detection_latency(self) -> int:
        # neighbour heartbeat: a few router pipeline delays
        return 4 * self.arch.cfg.router_latency

    def node_targets(self) -> List[Any]:
        arch = self.arch
        return [coord for coord in sorted(arch._router_active)
                if arch.is_active(coord) and arch.detour_routable(coord)]

    def fail_node(self, coord: Any, now: int,
                  record: FaultRecord) -> None:
        # silently dead until detection: packets reaching the router are
        # eaten by the arch._route guard (injector.dead_nodes)
        pass

    def on_detected(self, coord: Any, now: int) -> Optional[int]:
        if self.arch.fail_router(coord):
            return now  # S-XY now detours the obstacle
        return None  # undetourable: black hole until physical repair

    def repair_node(self, coord: Any, now: int) -> int:
        self.arch.repair_router(coord)
        return now


# ----------------------------------------------------------------------
class ConoChiPolicy(RecoveryPolicy):
    """Table redistribution avoiding failed switches (global control)."""

    KEY = "conochi"

    @property
    def default_detection_latency(self) -> int:
        return 2 * self.arch.cfg.table_update_latency

    def node_targets(self) -> List[Any]:
        # switches that are nobody's home: failing one never isolates a
        # module (delivery still needs a redundant topology)
        homes = set(self.arch._module_switch.values())
        return [s for s in self.arch.grid.switches() if s not in homes]

    def fail_node(self, coord: Any, now: int,
                  record: FaultRecord) -> None:
        from repro.fabric.tiles import TileType
        if self.arch.grid.get(*coord) is not TileType.SWITCH:
            raise ValueError(f"{coord} is not a switch tile")
        # silently dead until detection: the arch._route guard drops

    def on_detected(self, coord: Any, now: int) -> Optional[int]:
        self.arch.route_around(set(self.injector.dead_nodes))
        return now

    def repair_node(self, coord: Any, now: int) -> int:
        arch = self.arch
        lat = arch.cfg.table_update_latency
        still_failed = set(self.injector.dead_nodes)
        arch.sim.after(lat, lambda s: arch.route_around(still_failed))
        return now + lat


# ----------------------------------------------------------------------
class SharedBusPolicy(RecoveryPolicy):
    """No redundancy: halt on failure, resume + retransmit on repair."""

    KEY = "sharedbus"

    @property
    def default_detection_latency(self) -> int:
        return 2 * (self.arch.grant_cycles + self.arch.addr_cycles + 1)

    def node_targets(self) -> List[Any]:
        return ["bus"]

    def fail_node(self, target: Any, now: int,
                  record: FaultRecord) -> None:
        for msg in self.arch.halt_bus():
            self.injector.drop_message(msg, record, why="bus_halted")

    def on_detected(self, target: Any, now: int) -> Optional[int]:
        return None

    def repair_node(self, target: Any, now: int) -> int:
        self.arch.resume_bus()
        return now


# ----------------------------------------------------------------------
_POLICIES = {
    "rmboc": RMBoCPolicy,
    "buscom": BusComPolicy,
    "dynoc": DyNoCPolicy,
    "staticmesh": DyNoCPolicy,  # inherits DyNoC transport and routing
    "conochi": ConoChiPolicy,
    "sharedbus": SharedBusPolicy,
}


def make_policy(arch, injector: FaultInjector) -> RecoveryPolicy:
    """The recovery policy for ``arch`` (generic fallback otherwise)."""
    cls = _POLICIES.get(arch.KEY, RecoveryPolicy)
    return cls(arch, injector)
