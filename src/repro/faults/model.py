"""Generic fault model: kinds, events and deterministic schedules.

A fault is *what* breaks (:class:`FaultKind`), *where* (a target the
owning architecture's recovery policy interprets — a cross-point index
on RMBoC, a bus index on BUS-COM, a router/switch coordinate on the
NoCs, a ``(src, dst)`` module pair for link faults, a module name for
crashes) and *when* (:class:`FaultEvent.cycle`, plus an optional
``duration`` after which the element is repaired).

Schedules are **deterministic**: every sampled quantity (rate-based
arrival gaps, target choices) comes from :func:`repro.sim.rng.make_rng`
streams derived from the schedule seed, so the same seed + the same
builder calls produce the same event list on every run — the property
the recovery-determinism tests pin down.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from repro.sim.rng import make_rng


class FaultKind(enum.Enum):
    """What breaks.  Targets are interpreted per architecture."""

    #: link between a (src, dst) module pair drops every message
    LINK_DEAD = "link_dead"
    #: link drops each message with probability ``drop_prob``
    LINK_FLAKY = "link_flaky"
    #: link corrupts each message with probability ``corrupt_prob``
    #: (the message still arrives; an application-level check catches it)
    LINK_BIT_ERROR = "link_bit_error"
    #: a fabric element dies: router (DyNoC/static mesh), switch
    #: (CoNoChi), cross-point (RMBoC), bus segment (BUS-COM/shared bus)
    NODE_DOWN = "node_down"
    #: a module stops consuming input; traffic to it is discarded
    MODULE_CRASH = "module_crash"
    #: the next partial bitstream written by the reconfiguration
    #: manager fails its integrity check (rolls back to the old module)
    BITSTREAM_CORRUPT = "bitstream_corrupt"
    #: a module refuses to quiesce for ``extra_cycles`` beyond normal
    STUCK_QUIESCE = "stuck_quiesce"


#: kinds implemented generically at the delivery hook in ``arch/base.py``
LINK_KINDS = (FaultKind.LINK_DEAD, FaultKind.LINK_FLAKY,
              FaultKind.LINK_BIT_ERROR)

#: kinds routed to the reconfiguration manager, not the fabric
RECONFIG_KINDS = (FaultKind.BITSTREAM_CORRUPT, FaultKind.STUCK_QUIESCE)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault injection."""

    kind: FaultKind
    target: Any
    cycle: int
    #: cycles until the element is repaired; ``None`` = permanent
    duration: Any = None
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ValueError(f"fault cycle must be >= 0, got {self.cycle}")
        if self.duration is not None and self.duration <= 0:
            raise ValueError(
                f"fault duration must be positive, got {self.duration}"
            )
        if self.kind in LINK_KINDS:
            pair = self.target
            if (not isinstance(pair, tuple) or len(pair) != 2
                    or not all(isinstance(p, str) for p in pair)):
                raise ValueError(
                    f"{self.kind.value} target must be a (src, dst) "
                    f"module pair, got {self.target!r}"
                )
        if self.kind is FaultKind.MODULE_CRASH \
                and not isinstance(self.target, str):
            raise ValueError(
                f"module_crash target must be a module name, "
                f"got {self.target!r}"
            )
        for key in ("drop_prob", "corrupt_prob"):
            p = self.params.get(key)
            if p is not None and not (0.0 <= p <= 1.0):
                raise ValueError(f"{key} must be in [0, 1], got {p}")


class FaultSchedule:
    """A deterministic, seeded list of :class:`FaultEvent`\\ s.

    Builder methods return ``self`` so schedules compose fluently::

        sched = (FaultSchedule(seed=7)
                 .one_shot(500, FaultKind.NODE_DOWN, (2, 2), duration=400)
                 .rate(FaultKind.LINK_FLAKY, pairs, rate=1e-4,
                       horizon=50_000, duration=200, drop_prob=0.5))
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._events: List[FaultEvent] = []

    # ------------------------------------------------------------------
    def add(self, event: FaultEvent) -> "FaultSchedule":
        self._events.append(event)
        return self

    def one_shot(self, cycle: int, kind: FaultKind, target: Any,
                 duration: Any = None, **params: Any) -> "FaultSchedule":
        """One fault at a fixed cycle."""
        return self.add(FaultEvent(kind, target, cycle, duration,
                                   dict(params)))

    def periodic(self, kind: FaultKind, target: Any, start: int,
                 period: int, count: int, duration: Any = None,
                 **params: Any) -> "FaultSchedule":
        """``count`` faults at ``start, start+period, ...``."""
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        for i in range(count):
            self.add(FaultEvent(kind, target, start + i * period,
                                duration, dict(params)))
        return self

    def rate(self, kind: FaultKind, targets: Sequence[Any], rate: float,
             horizon: int, duration: Any = None,
             stream: Sequence[str] = (), **params: Any) -> "FaultSchedule":
        """Faults arriving at ``rate`` per cycle over ``[0, horizon)``.

        Inter-arrival gaps are geometric-like (exponential, floored to
        one cycle) and targets are drawn uniformly — both from an RNG
        stream derived from the schedule seed, the fault kind and the
        optional extra ``stream`` labels, so distinct ``rate`` calls on
        one schedule do not share samples.
        """
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if not targets:
            raise ValueError("rate-based schedule needs targets")
        rng = make_rng(self.seed, "faults", "rate", kind.value,
                       *[str(s) for s in stream])
        cycle = 0
        while True:
            cycle += int(rng.exponential(1.0 / rate)) + 1
            if cycle >= horizon:
                break
            target = targets[int(rng.integers(len(targets)))]
            self.add(FaultEvent(kind, target, cycle, duration,
                                dict(params)))
        return self

    # ------------------------------------------------------------------
    def events(self) -> Tuple[FaultEvent, ...]:
        """All events in firing order (stable for equal cycles)."""
        return tuple(sorted(self._events, key=lambda e: e.cycle))

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"FaultSchedule(seed={self.seed}, "
                f"events={len(self._events)})")
