"""Fault injection and recovery orchestration for one architecture.

A :class:`FaultInjector` arms a :class:`~repro.faults.model.FaultSchedule`
on a :class:`~repro.arch.base.CommArchitecture` through two hooks:

* timed simulator events (``sim.at``) fire each injection, its
  detection and its repair — timed wakes, never per-cycle polling, so
  the quiescence fast path honours every latency exactly;
* the architecture's single delivery site calls
  :meth:`intercept_delivery` behind the cheap ``arch.faulting`` flag,
  which is only raised while a non-empty schedule is attached — a
  fault-free run executes one dead boolean test and stays bit-identical
  to the golden snapshots.

Link faults (dead/flaky/bit-error) and module crashes are generic and
handled here; ``NODE_DOWN`` faults are delegated to the architecture's
:class:`~repro.faults.policies.RecoveryPolicy`, which reuses the
design's own reconfiguration machinery to recover; reconfiguration
faults (corrupted bitstream, stuck quiesce) are delegated to a bound
:class:`~repro.reconfig.manager.ReconfigurationManager`.

Resilience accounting per fault lives in :class:`FaultRecord`:
detection latency (``detected - injected``), MTTR
(``recovered - injected``), messages dropped/corrupted, retransmissions
issued.  Aggregates — plus availability and the delivered/dropped/
duplicated message census — come from :meth:`FaultInjector.metrics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.faults.model import (FaultEvent, FaultKind, FaultSchedule,
                                LINK_KINDS, RECONFIG_KINDS)
from repro.sim.rng import make_rng


@dataclass
class FaultRecord:
    """Lifecycle of one injected fault."""

    kind: FaultKind
    target: Any
    injected: int
    detected: int = -1
    recovered: int = -1
    dropped: int = 0
    corrupted: int = 0
    retransmitted: int = 0

    @property
    def mttr(self) -> Optional[int]:
        """Cycles from injection to recovery (None while unrecovered)."""
        return self.recovered - self.injected if self.recovered >= 0 else None

    @property
    def detection_latency(self) -> Optional[int]:
        return self.detected - self.injected if self.detected >= 0 else None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind.value,
            "target": str(self.target),
            "injected": self.injected,
            "detected": self.detected,
            "recovered": self.recovered,
            "mttr": self.mttr,
            "detection_latency": self.detection_latency,
            "dropped": self.dropped,
            "corrupted": self.corrupted,
            "retransmitted": self.retransmitted,
        }


@dataclass
class _LinkFault:
    event: FaultEvent
    record: FaultRecord
    drop_prob: float = 1.0
    corrupt_prob: float = 0.0


class FaultInjector:
    """Arms one schedule on one architecture and tracks recovery."""

    def __init__(self, arch, schedule: FaultSchedule,
                 detection_latency: Optional[int] = None,
                 retransmit: bool = True, manager=None,
                 undelivered_grace: int = 256):
        from repro.faults.policies import make_policy
        self.arch = arch
        self.schedule = schedule
        self.retransmit = retransmit
        self.manager = manager
        self.undelivered_grace = undelivered_grace
        self.policy = make_policy(arch, self)
        self.detection_latency = (
            detection_latency if detection_latency is not None
            else self.policy.default_detection_latency
        )
        if self.detection_latency < 1:
            raise ValueError("detection_latency must be >= 1")
        self.records: List[FaultRecord] = []
        #: per-message fault decisions (flaky drops, bit errors)
        self._rng = make_rng(schedule.seed, "faults", "inject", arch.KEY)
        self._link_faults: Dict[Tuple[str, str], _LinkFault] = {}
        self._crashed: Dict[str, FaultRecord] = {}
        #: currently-failed fabric elements (routers/switches/...); the
        #: architectures' routing guards consult this via node_dead()
        self.dead_nodes: Dict[Any, FaultRecord] = {}
        #: dropped originals awaiting retransmission
        self._victims: List[Any] = []
        #: delivered-but-corrupted originals awaiting retransmission
        self._corrupt_victims: List[Any] = []
        #: retransmit copy mid -> original message
        self._retrans_origin: Dict[int, Any] = {}
        self._armed = False

    # ------------------------------------------------------------------
    def attach(self) -> "FaultInjector":
        """Schedule every event; raises the ``arch.faulting`` guard only
        when there is something to inject."""
        if self._armed:
            raise RuntimeError("injector already attached")
        self._armed = True
        events = self.schedule.events()
        if not events:
            return self
        if any(ev.kind in RECONFIG_KINDS for ev in events) \
                and self.manager is None:
            raise RuntimeError(
                "schedule contains reconfiguration faults but no "
                "ReconfigurationManager is bound (pass manager=...)"
            )
        sim = self.arch.sim
        self.arch.faulting = True
        self.arch.fault_injector = self
        for ev in events:
            sim.at(max(ev.cycle, sim.cycle),
                   lambda s, ev=ev: self._fire(ev))
        return self

    # ------------------------------------------------------------------
    # hot path — called from CommArchitecture._deliver behind
    # ``arch.faulting``; must not touch stats unless a fault acts
    # ------------------------------------------------------------------
    def intercept_delivery(self, msg) -> bool:
        """Returns True when the message was consumed by a fault."""
        origin = self._retrans_origin.get(msg.mid)
        if origin is not None and origin.delivered:
            # retransmit copy of a bit-error victim that did arrive
            self._count("fault.msg.duplicated")
        rec = self._crashed.get(msg.dst)
        if rec is not None:
            self.drop_message(msg, rec, why="module_crashed")
            return True
        lf = self._link_faults.get((msg.src, msg.dst))
        if lf is not None:
            if lf.drop_prob >= 1.0 or self._rng.random() < lf.drop_prob:
                self.drop_message(msg, lf.record, why="link")
                return True
            if lf.corrupt_prob > 0.0 \
                    and self._rng.random() < lf.corrupt_prob:
                lf.record.corrupted += 1
                self._corrupt_victims.append(msg)
                self._count("fault.msg.corrupted")
        return False

    # ------------------------------------------------------------------
    # shared helpers (also used by recovery policies)
    # ------------------------------------------------------------------
    def _fault_ref(self, record: Optional[FaultRecord]
                   ) -> Optional[Dict[str, Any]]:
        """Stable reference to a fault record for journey linkage (the
        index doubles as the Perfetto flow-arc id)."""
        if record is None:
            return None
        return {
            "index": self.records.index(record),
            "kind": record.kind.value,
            "target": str(record.target),
            "injected": record.injected,
        }

    def drop_message(self, msg, record: Optional[FaultRecord] = None,
                     why: str = "fault") -> None:
        """Mark ``msg`` lost to a fault; queue it for retransmission."""
        if msg.dropped:
            return
        msg.dropped = True
        if record is not None:
            record.dropped += 1
        self._victims.append(msg)
        self._count("fault.msg.dropped")
        sim = self.arch.sim
        if sim.journeying:
            sim.journey.drop(msg, sim.cycle, why=why,
                             fault=self._fault_ref(record))
        if (self.retransmit and record is not None
                and record.recovered >= 0):
            # straggler: the fault already recovered (e.g. a detour took
            # effect) but this packet was in flight toward the dead
            # element — the recovery retransmit won't run again, so
            # resend promptly
            sim.after(1, lambda s, r=record: self._retransmit(r))
        if sim.tracing:
            sim.emit("faults", "drop", mid=msg.mid, src=msg.src,
                     dst=msg.dst, why=why)

    def node_dead(self, target: Any) -> bool:
        """Whether a fabric element is currently failed (hot path:
        called from routing guards behind ``arch.faulting``)."""
        return target in self.dead_nodes

    def kill_packet(self, msg, at: Any, why: str = "dead_node") -> None:
        """A packet reached a dead fabric element; the message is lost."""
        self.drop_message(msg, self.dead_nodes.get(at), why=why)

    def note_recovered(self, record: FaultRecord) -> None:
        """Recovery completed *now*; policies call this when a deferred
        repair (e.g. a table redistribution) lands."""
        self._mark_recovered(record)

    def _count(self, name: str, n: int = 1) -> None:
        sim = self.arch.sim
        sim.stats.counter(name).inc(n)
        if sim.telemetering:
            sim.telemetry.count(sim.cycle, name, n)

    # ------------------------------------------------------------------
    # event orchestration (all timed wakes)
    # ------------------------------------------------------------------
    def _fire(self, ev: FaultEvent, _sim=None) -> None:
        sim = self.arch.sim
        now = sim.cycle
        rec = FaultRecord(kind=ev.kind, target=ev.target, injected=now)
        self.records.append(rec)
        key = len(self.records) - 1
        self._count("fault.injected")
        sim.stats.counter(f"fault.injected.{ev.kind.value}").inc()
        if sim.tracing:
            # data key is ``fault`` (not ``kind``) — ``kind`` would
            # collide with span_begin's positional parameter
            sim.span_begin("faults", "outage", key=key,
                           fault=ev.kind.value, target=str(ev.target))

        if ev.kind in LINK_KINDS:
            self._link_faults[ev.target] = _LinkFault(
                ev, rec,
                drop_prob=(0.0 if ev.kind is FaultKind.LINK_BIT_ERROR
                           else ev.params.get("drop_prob", 1.0)),
                corrupt_prob=(ev.params.get("corrupt_prob", 1.0)
                              if ev.kind is FaultKind.LINK_BIT_ERROR
                              else 0.0),
            )
        elif ev.kind is FaultKind.MODULE_CRASH:
            self._crashed[ev.target] = rec
        elif ev.kind is FaultKind.NODE_DOWN:
            self.dead_nodes[ev.target] = rec
            self.policy.fail_node(ev.target, now, rec)
        elif ev.kind is FaultKind.BITSTREAM_CORRUPT:
            self.manager.fault_corrupt_next(
                notify=lambda phase, cyc: self._manager_event(rec, phase))
        elif ev.kind is FaultKind.STUCK_QUIESCE:
            self.manager.fault_stick_quiesce(
                ev.params.get("extra_cycles", 2 * ev.cycle + 1_000),
                notify=lambda phase, cyc: self._manager_event(rec, phase))

        if ev.kind not in RECONFIG_KINDS:
            sim.after(self.detection_latency,
                      lambda s: self._detect(ev, rec, key))
            if ev.duration is not None:
                sim.after(ev.duration,
                          lambda s: self._repair(ev, rec, key))

    def _detect(self, ev: FaultEvent, rec: FaultRecord, key: int) -> None:
        sim = self.arch.sim
        rec.detected = sim.cycle
        self._count("fault.detected")
        sim.stats.histogram("fault.detection_cycles").add(
            rec.detection_latency)
        if sim.tracing:
            sim.emit("faults", "detected", fault=ev.kind.value,
                     target=str(ev.target))
        if ev.kind is FaultKind.NODE_DOWN:
            recovery_at = self.policy.on_detected(ev.target, sim.cycle)
            if recovery_at is not None:
                sim.at(max(recovery_at, sim.cycle),
                       lambda s: self._mark_recovered(rec))

    def _repair(self, ev: FaultEvent, rec: FaultRecord, key: int) -> None:
        sim = self.arch.sim
        now = sim.cycle
        if ev.kind in LINK_KINDS:
            self._link_faults.pop(ev.target, None)
            self._mark_recovered(rec)
        elif ev.kind is FaultKind.MODULE_CRASH:
            self._crashed.pop(ev.target, None)
            self._mark_recovered(rec)
        elif ev.kind is FaultKind.NODE_DOWN:
            self.dead_nodes.pop(ev.target, None)
            done_at = self.policy.repair_node(ev.target, now)
            sim.at(max(done_at, now), lambda s: self._mark_recovered(rec))

    def _manager_event(self, rec: FaultRecord, phase: str) -> None:
        sim = self.arch.sim
        if phase == "detected" and rec.detected < 0:
            rec.detected = sim.cycle
            self._count("fault.detected")
            sim.stats.histogram("fault.detection_cycles").add(
                rec.detection_latency)
        elif phase == "recovered":
            if rec.detected < 0:
                rec.detected = sim.cycle
                self._count("fault.detected")
                sim.stats.histogram("fault.detection_cycles").add(
                    rec.detection_latency)
            self._mark_recovered(rec)

    # ------------------------------------------------------------------
    def _mark_recovered(self, rec: FaultRecord) -> None:
        if rec.recovered >= 0:
            return
        sim = self.arch.sim
        rec.recovered = sim.cycle
        self._count("fault.recovered")
        sim.stats.histogram("fault.mttr_cycles").add(rec.mttr)
        if sim.telemetering:
            sim.telemetry.record_fault_recovery(sim.cycle, rec.mttr)
        if sim.tracing:
            key = self.records.index(rec)
            sim.span_end("faults", "outage", key=key,
                         mttr=rec.mttr, dropped=rec.dropped)
        if self.retransmit:
            self._retransmit(rec)
        sim.after(self.undelivered_grace, self._note_undelivered)

    def _retransmit(self, rec: FaultRecord) -> None:
        """Application-level recovery: resend every victim whose sender
        is still attached (new message ids; the originals stay flagged
        dropped/corrupted in the log)."""
        pending = self._victims + self._corrupt_victims
        self._victims, self._corrupt_victims = [], []
        for msg in pending:
            port = self.arch.ports.get(msg.src)
            if port is None or msg.dst not in self.arch.ports:
                continue
            copy = port.send(msg.dst, msg.payload_bytes, tag=msg.tag)
            self._retrans_origin[copy.mid] = msg
            rec.retransmitted += 1
            self._count("fault.msg.retransmitted")
            sim = self.arch.sim
            if sim.journeying:
                # chain the copy's journey back to the dropped original
                # and the fault that caused the resend
                sim.journey.link_retransmission(
                    copy.mid, msg.mid, self._fault_ref(rec))

    def _note_undelivered(self, _sim=None, rechecks: int = 8) -> None:
        """Gauge the undelivered backlog; while it is non-zero (e.g.
        retransmits still in flight) keep re-sampling every grace
        period — bounded, so a truly lost message leaves the gauge
        pinned above zero instead of rescheduling forever."""
        sim = self.arch.sim
        pending = len(self.arch.log.pending())
        if sim.telemetering:
            sim.telemetry.gauge(sim.cycle, "fault.undelivered",
                                float(pending))
        if pending and rechecks > 0:
            sim.after(self.undelivered_grace,
                      lambda s, n=rechecks - 1: self._note_undelivered(
                          rechecks=n))

    # ------------------------------------------------------------------
    def metrics(self, now: Optional[int] = None) -> Dict[str, Any]:
        """Resilience summary: census, per-fault latencies, availability."""
        sim = self.arch.sim
        at = now if now is not None else sim.cycle
        log = self.arch.log
        mttrs = [r.mttr for r in self.records if r.mttr is not None]
        detections = [r.detection_latency for r in self.records
                      if r.detection_latency is not None]
        outage = sum(
            (r.recovered if r.recovered >= 0 else at) - r.injected
            for r in self.records
        )
        duplicated = int(sim.stats.counter("fault.msg.duplicated").value) \
            if self.records else 0
        return {
            "arch": self.arch.KEY,
            "faults_injected": len(self.records),
            "faults_recovered": sum(
                1 for r in self.records if r.recovered >= 0),
            "messages_sent": log.total,
            "messages_delivered": len(log.delivered()),
            "messages_dropped": len(log.dropped()),
            "messages_duplicated": duplicated,
            "messages_retransmitted": sum(
                r.retransmitted for r in self.records),
            "messages_undelivered": len(log.pending()),
            "mttr_max": max(mttrs) if mttrs else None,
            "mttr_mean": (sum(mttrs) / len(mttrs)) if mttrs else None,
            "detection_max": max(detections) if detections else None,
            "availability": (
                max(0.0, 1.0 - outage / at) if at > 0 else 1.0),
            "records": [r.as_dict() for r in self.records],
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (f"FaultInjector({self.arch.KEY}, "
                f"events={len(self.schedule)}, "
                f"records={len(self.records)})")


def inject(arch, schedule: FaultSchedule, **kwargs: Any) -> FaultInjector:
    """Build and attach an injector in one call."""
    return FaultInjector(arch, schedule, **kwargs).attach()
