"""repro — reproduction of Pionteck et al., "Communication Architectures
for Dynamically Reconfigurable FPGA Designs" (IPPS/IPDPS 2007).

The package provides cycle-level simulators of the four surveyed
runtime-adaptable on-chip interconnects (RMBoC, BUS-COM, DyNoC,
CoNoChi), a parametric Virtex-II-like fabric substrate with calibrated
area/timing models, a reconfiguration manager, workload generators, and
the comparison framework that regenerates the paper's Tables 1-4 and all
quantitative claims of its evaluation.

Quickstart::

    from repro import build_architecture, minimal_scenario
    arch = build_architecture("conochi", num_modules=4, width=32)
    result = minimal_scenario(arch, payload_bytes=64)
    print(result.mean_latency)

See ``examples/`` and DESIGN.md for the full tour.
"""

__version__ = "1.0.0"

from repro.arch import ARCHITECTURES, build_architecture
from repro.core.scenario import MinimalScenarioResult, minimal_scenario
from repro.sim import Simulator
from repro.system import ReconfigurableSystem

__all__ = [
    "ARCHITECTURES",
    "MinimalScenarioResult",
    "ReconfigurableSystem",
    "Simulator",
    "__version__",
    "build_architecture",
    "minimal_scenario",
]
