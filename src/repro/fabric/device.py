"""Device catalog: Virtex-II-like parts as CLB grids.

Virtex-II CLBs contain 4 slices; the devices used by the surveyed
prototypes are listed with their real CLB array sizes, which yield the
documented slice totals (e.g. XC2V6000: 96 x 88 x 4 = 33,792 slices).
Configuration granularity is a full CLB *column* of frames, which is
what forced the slot-based floorplans of the bus architectures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

SLICES_PER_CLB = 4


@dataclass(frozen=True)
class Device:
    """A partially reconfigurable FPGA device.

    Attributes
    ----------
    name:
        Part number.
    clb_rows, clb_cols:
        CLB array dimensions (height x width).
    frames_per_clb_col:
        Configuration frames covering one CLB column.
    frame_bytes:
        Bytes per configuration frame (scales with device height).
    """

    name: str
    clb_rows: int
    clb_cols: int
    frames_per_clb_col: int = 22
    frame_bytes: int = 0  # 0 -> derived from clb_rows in __post_init__

    def __post_init__(self) -> None:
        if self.clb_rows <= 0 or self.clb_cols <= 0:
            raise ValueError(f"{self.name}: non-positive CLB grid")
        if self.frame_bytes == 0:
            # Virtex-II frame length grows with device height; ~13 bytes of
            # configuration per CLB row per frame is a good fit for the family.
            object.__setattr__(self, "frame_bytes", 13 * self.clb_rows)

    @property
    def total_slices(self) -> int:
        return self.clb_rows * self.clb_cols * SLICES_PER_CLB

    @property
    def total_clbs(self) -> int:
        return self.clb_rows * self.clb_cols

    def slices_in(self, clbs: int) -> int:
        """Slices contained in ``clbs`` CLBs."""
        if clbs < 0:
            raise ValueError(f"negative CLB count {clbs}")
        return clbs * SLICES_PER_CLB

    def column_slices(self, cols: int = 1) -> int:
        """Slices in ``cols`` full-height CLB columns."""
        return self.slices_in(self.clb_rows * cols)

    def utilization(self, slices: int) -> float:
        """Fraction of the device consumed by ``slices``."""
        return slices / self.total_slices


# Real array sizes for the parts the surveyed prototypes used.  The
# Virtex-II Pro entry approximates the "Virtex-II Pro 100" CoNoChi names
# (logic columns only; PPC/MGT columns are ignored by the area model).
_CATALOG: Dict[str, Device] = {
    d.name: d
    for d in (
        Device("XC2V1000", clb_rows=40, clb_cols=32),
        Device("XC2V3000", clb_rows=64, clb_cols=56),
        Device("XC2V6000", clb_rows=96, clb_cols=88),
        Device("XC2V8000", clb_rows=112, clb_cols=104),
        Device("XC2VP30", clb_rows=80, clb_cols=46),
        Device("XC2VP100", clb_rows=120, clb_cols=94),
    )
}


def get_device(name: str) -> Device:
    """Look up a device by part number (case-insensitive)."""
    key = name.upper()
    if key not in _CATALOG:
        raise KeyError(
            f"unknown device {name!r}; known: {', '.join(sorted(_CATALOG))}"
        )
    return _CATALOG[key]


def list_devices() -> Tuple[str, ...]:
    return tuple(sorted(_CATALOG))


def smallest_device_for(slices: int,
                        margin: float = 0.0) -> Device:
    """The smallest catalog device holding ``slices`` (plus an optional
    fractional headroom margin); raises when nothing is big enough."""
    if slices < 0:
        raise ValueError(f"negative slice demand {slices}")
    if margin < 0:
        raise ValueError(f"negative margin {margin}")
    needed = slices * (1.0 + margin)
    fitting = [d for d in _CATALOG.values() if d.total_slices >= needed]
    if not fitting:
        raise LookupError(
            f"no catalog device holds {needed:.0f} slices "
            f"(largest: {max(d.total_slices for d in _CATALOG.values())})"
        )
    return min(fitting, key=lambda d: d.total_slices)
