"""Rectangles and regions in CLB coordinate space.

Coordinates are CLB-granular: ``x`` grows with columns (left to right),
``y`` with rows (bottom to top, matching FPGA editor convention). All
rectangles are half-open in neither axis — ``Rect(x, y, w, h)`` covers
CLBs with x <= col < x+w and y <= row < y+h.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.fabric.device import SLICES_PER_CLB, Device


@dataclass(frozen=True, order=True)
class Rect:
    """An axis-aligned rectangle of CLBs."""

    x: int
    y: int
    w: int
    h: int

    def __post_init__(self) -> None:
        if self.w <= 0 or self.h <= 0:
            raise ValueError(f"degenerate rect {self.w}x{self.h}")
        if self.x < 0 or self.y < 0:
            raise ValueError(f"negative origin ({self.x},{self.y})")

    # ------------------------------------------------------------------
    @property
    def x2(self) -> int:
        """One past the right edge."""
        return self.x + self.w

    @property
    def y2(self) -> int:
        """One past the top edge."""
        return self.y + self.h

    @property
    def area_clbs(self) -> int:
        return self.w * self.h

    @property
    def area_slices(self) -> int:
        return self.area_clbs * SLICES_PER_CLB

    # ------------------------------------------------------------------
    def contains_point(self, x: int, y: int) -> bool:
        return self.x <= x < self.x2 and self.y <= y < self.y2

    def contains(self, other: "Rect") -> bool:
        return (
            self.x <= other.x
            and self.y <= other.y
            and other.x2 <= self.x2
            and other.y2 <= self.y2
        )

    def overlaps(self, other: "Rect") -> bool:
        return (
            self.x < other.x2
            and other.x < self.x2
            and self.y < other.y2
            and other.y < self.y2
        )

    def adjacent(self, other: "Rect") -> bool:
        """Whether the rectangles share an edge segment (no overlap)."""
        if self.overlaps(other):
            return False
        touch_x = self.x2 == other.x or other.x2 == self.x
        touch_y = self.y2 == other.y or other.y2 == self.y
        overlap_y = self.y < other.y2 and other.y < self.y2
        overlap_x = self.x < other.x2 and other.x < self.x2
        return (touch_x and overlap_y) or (touch_y and overlap_x)

    def expand(self, margin: int) -> "Rect":
        """Grow by ``margin`` CLBs on each side (clipped at 0)."""
        nx = max(0, self.x - margin)
        ny = max(0, self.y - margin)
        return Rect(nx, ny, self.x2 - nx + margin, self.y2 - ny + margin)

    def cells(self) -> Iterator[Tuple[int, int]]:
        """Iterate all (x, y) CLB coordinates covered."""
        for yy in range(self.y, self.y2):
            for xx in range(self.x, self.x2):
                yield (xx, yy)

    def fits_in(self, device: Device) -> bool:
        return self.x2 <= device.clb_cols and self.y2 <= device.clb_rows

    def __str__(self) -> str:
        return f"[{self.x},{self.y} {self.w}x{self.h}]"
