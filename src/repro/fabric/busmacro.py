"""Virtex-II bus-macro model.

On Virtex-II, signals crossing a reconfigurable region boundary must pass
through pre-routed *bus macros* built from tri-state buffer pairs. The
BUS-COM prototype used macros carrying 8 unidirectional bits at a cost of
20 slices each; those constants are the calibration points here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class BusMacroSpec:
    """Physical parameters of one bus-macro primitive."""

    bits: int = 8           # data bits carried per macro (unidirectional)
    slices: int = 20        # slice cost per macro (BUS-COM prototype)
    delay_ns: float = 2.5   # boundary-crossing delay contribution

    def __post_init__(self) -> None:
        if self.bits <= 0 or self.slices < 0:
            raise ValueError("invalid bus-macro spec")


DEFAULT_MACRO = BusMacroSpec()


def macros_for_width(width_bits: int, spec: BusMacroSpec = DEFAULT_MACRO) -> int:
    """Macros needed to carry ``width_bits`` unidirectional bits."""
    if width_bits < 0:
        raise ValueError(f"negative width {width_bits}")
    return math.ceil(width_bits / spec.bits)


def macro_slices(width_bits: int, spec: BusMacroSpec = DEFAULT_MACRO) -> int:
    """Slice cost of macros for a ``width_bits`` unidirectional crossing."""
    return macros_for_width(width_bits, spec) * spec.slices


def duplex_macro_slices(
    in_bits: int, out_bits: int, spec: BusMacroSpec = DEFAULT_MACRO
) -> int:
    """Slice cost for a boundary crossing with distinct in/out widths."""
    return macro_slices(in_bits, spec) + macro_slices(out_bits, spec)
