"""ASCII device-floorplan rendering.

Draws a device's CLB area with occupied regions — the view a floorplan
tool gives a DPR designer. Used by ``ReconfigurableSystem.report()``
and handy in examples/tests to *see* slot layouts and region overlaps.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.fabric.device import Device
from repro.fabric.geometry import Rect


def render_floorplan(
    device: Device,
    regions: Dict[str, Rect],
    cell_clbs: int = 4,
    legend: bool = True,
) -> str:
    """Draw the device at ``cell_clbs`` CLBs per character cell.

    Each region is filled with a letter (assigned in name order).
    ``#`` marks genuine region *overlap* (rects intersecting in CLB
    space) — a floorplanning conflict; adjacent regions merely sharing a
    character cell keep the first region's letter. Free area renders as
    ``·``.
    """
    if cell_clbs < 1:
        raise ValueError("cell_clbs must be >= 1")
    for name, rect in regions.items():
        if not rect.fits_in(device):
            raise ValueError(f"region {name!r} {rect} exceeds {device.name}")
    cols = -(-device.clb_cols // cell_clbs)
    rows = -(-device.clb_rows // cell_clbs)
    canvas: List[List[Optional[str]]] = [
        [None] * cols for _ in range(rows)
    ]
    owners: List[List[Optional[str]]] = [
        [None] * cols for _ in range(rows)
    ]
    letters = {}
    for i, name in enumerate(sorted(regions)):
        letters[name] = chr(ord("A") + i % 26)
    for name in sorted(regions):
        rect = regions[name]
        mark = letters[name]
        for cy in range(rect.y // cell_clbs,
                        -(-rect.y2 // cell_clbs)):
            for cx in range(rect.x // cell_clbs,
                            -(-rect.x2 // cell_clbs)):
                if cy >= rows or cx >= cols:
                    continue
                prev = owners[cy][cx]
                if prev is None:
                    owners[cy][cx] = name
                    canvas[cy][cx] = mark
                elif regions[prev].overlaps(rect):
                    canvas[cy][cx] = "#"  # true floorplan conflict
    lines = []
    for cy in range(rows - 1, -1, -1):
        lines.append("".join(c or "·" for c in canvas[cy]))
    if legend:
        lines.append("")
        lines.append(f"{device.name}: {device.clb_cols}x{device.clb_rows} "
                     f"CLBs ({cell_clbs} CLBs/char)")
        for name in sorted(regions):
            rect = regions[name]
            lines.append(f"  {letters[name]} = {name} {rect} "
                         f"({rect.area_slices} slices)")
    return "\n".join(lines)
