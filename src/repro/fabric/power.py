"""Interconnect energy model — quantifying the paper's §2.2 claims.

The survey argues qualitatively that buses suffer from "long
communication lines [which] are costly to route, and in general lead to
huge power consumption", while segmented NoCs "only use local wires,
resulting in less power consumption". This model makes the claim
measurable: energy is charged per bit for

* wire traversal, proportional to geometric length (CLB pitch x CLBs);
* switch/cross-point traversal (buffers + crossbar + arbitration);
* bus broadcast driving (tri-state drivers see the whole line).

The coefficients are synthetic but physically shaped (order of
magnitude of 150 nm-era published figures) and identical across
architectures, so *ratios* between architectures are meaningful even
though absolute joules are not calibrated to silicon. Flagged as an
extension (not in the paper) in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyModel:
    """Per-bit energy coefficients and device geometry."""

    clb_pitch_mm: float = 0.35        # physical pitch of one CLB
    wire_pj_per_bit_mm: float = 0.40  # repeated wire, per bit per mm
    switch_pj_per_bit: float = 1.20   # NoC switch traversal (buffer+xbar)
    crosspoint_pj_per_bit: float = 0.60  # RMBoC cross-point (no buffering)
    bus_driver_pj_per_bit: float = 1.80  # tri-state broadcast drivers

    def __post_init__(self) -> None:
        for f in ("clb_pitch_mm", "wire_pj_per_bit_mm",
                  "switch_pj_per_bit", "crosspoint_pj_per_bit",
                  "bus_driver_pj_per_bit"):
            if getattr(self, f) <= 0:
                raise ValueError(f"{f} must be positive")

    # ------------------------------------------------------------------
    def wire_pj(self, bits: float, length_clbs: float) -> float:
        """Energy to move ``bits`` over ``length_clbs`` of wire."""
        return bits * length_clbs * self.clb_pitch_mm * self.wire_pj_per_bit_mm

    def bus_broadcast_pj(self, bits: float, bus_length_clbs: float) -> float:
        """One frame driven onto an unsegmented bus: the whole line
        toggles regardless of the receiver's position."""
        return (
            bits * self.bus_driver_pj_per_bit
            + self.wire_pj(bits, bus_length_clbs)
        )

    def segmented_hop_pj(self, bits: float, segment_clbs: float) -> float:
        """One RMBoC segment: local line + cross-point pass-through."""
        return (
            self.wire_pj(bits, segment_clbs)
            + bits * self.crosspoint_pj_per_bit
        )

    def noc_hop_pj(self, bits: float, link_clbs: float) -> float:
        """One NoC hop: short link + full switch traversal."""
        return self.wire_pj(bits, link_clbs) + bits * self.switch_pj_per_bit
