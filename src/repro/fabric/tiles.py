"""Tile grids for CoNoChi-style reconfigurable NoCs.

CoNoChi partitions the reconfigurable area into an i x j grid of tiles
``t_ij in {0, S, H, V}``: ``S`` tiles hold a switch, ``H``/``V`` tiles
hold horizontal/vertical communication lines, and ``0`` tiles are free
for modules and their network interfaces. Topology changes replace
individual tiles with tiles of another type.

This module owns tile *geometry and legality*; packet behaviour lives in
:mod:`repro.arch.conochi`.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.fabric.geometry import Rect

Coord = Tuple[int, int]


class TileType(enum.Enum):
    """CoNoChi tile types (``0``, ``S``, ``H``, ``V`` in the paper)."""

    FREE = "0"
    SWITCH = "S"
    HWIRE = "H"
    VWIRE = "V"
    MODULE = "M"  # a FREE tile occupied by a module (still type 0 on-chip)

    def conducts(self, dx: int, dy: int) -> bool:
        """Whether this tile passes signals along direction (dx, dy)."""
        if self is TileType.SWITCH:
            return True
        if self is TileType.HWIRE:
            return dy == 0
        if self is TileType.VWIRE:
            return dx == 0
        return False


# direction vectors: east, west, north, south
DIRS: Tuple[Coord, ...] = ((1, 0), (-1, 0), (0, 1), (0, -1))


class TileGrid:
    """A rectangular grid of CoNoChi tiles.

    The grid maintains the paper's structural invariant checks:

    * wire tiles must form straight runs that terminate at switches (a
      dangling wire is reported by :meth:`dangling_wires`);
    * the switch-level topology is obtained by tracing wire runs
      (:meth:`links`), and global connectivity can be asserted with
      :meth:`is_connected`.
    """

    @classmethod
    def parse(cls, text: str) -> "TileGrid":
        """Build a grid from its ASCII rendering (inverse of
        :meth:`render`): whitespace-separated tile symbols, one line per
        row, **top row first** — so a parsed render round-trips.

        ``M`` tiles are restored as MODULE type but carry no module
        name; use :meth:`place_module` for named occupancy.
        """
        lines = [ln.split() for ln in text.strip().splitlines()]
        if not lines or not lines[0]:
            raise ValueError("empty tile-grid text")
        cols = len(lines[0])
        if any(len(ln) != cols for ln in lines):
            raise ValueError("ragged tile-grid text")
        rows = len(lines)
        grid = cls(cols, rows)
        symbols = {t.value: t for t in TileType}
        for i, line in enumerate(lines):
            y = rows - 1 - i  # top line is the highest row
            for x, sym in enumerate(line):
                if sym not in symbols:
                    raise ValueError(f"unknown tile symbol {sym!r}")
                grid.set(x, y, symbols[sym])
        return grid

    def __init__(self, cols: int, rows: int):
        if cols <= 0 or rows <= 0:
            raise ValueError(f"degenerate grid {cols}x{rows}")
        self.cols = cols
        self.rows = rows
        self._tiles: Dict[Coord, TileType] = {
            (x, y): TileType.FREE for x in range(cols) for y in range(rows)
        }
        self._modules: Dict[str, Rect] = {}

    # ------------------------------------------------------------------
    def in_bounds(self, x: int, y: int) -> bool:
        return 0 <= x < self.cols and 0 <= y < self.rows

    def get(self, x: int, y: int) -> TileType:
        if not self.in_bounds(x, y):
            raise IndexError(f"tile ({x},{y}) outside {self.cols}x{self.rows}")
        return self._tiles[(x, y)]

    def set(self, x: int, y: int, tile: TileType) -> None:
        """Replace one tile — the primitive reconfiguration operation."""
        if not self.in_bounds(x, y):
            raise IndexError(f"tile ({x},{y}) outside {self.cols}x{self.rows}")
        self._tiles[(x, y)] = tile

    def tiles_of_type(self, tile: TileType) -> List[Coord]:
        return sorted(pos for pos, t in self._tiles.items() if t is tile)

    def switches(self) -> List[Coord]:
        return self.tiles_of_type(TileType.SWITCH)

    # ------------------------------------------------------------------
    # module occupancy
    # ------------------------------------------------------------------
    def place_module(self, name: str, rect: Rect) -> None:
        """Mark a rectangle of FREE tiles as occupied by ``name``."""
        if name in self._modules:
            raise ValueError(f"module {name!r} already placed")
        if rect.x2 > self.cols or rect.y2 > self.rows:
            raise ValueError(f"module {name!r} rect {rect} outside grid")
        for pos in rect.cells():
            if self._tiles[pos] is not TileType.FREE:
                raise ValueError(
                    f"module {name!r}: tile {pos} is "
                    f"{self._tiles[pos].name}, not FREE"
                )
        for pos in rect.cells():
            self._tiles[pos] = TileType.MODULE
        self._modules[name] = rect

    def remove_module(self, name: str) -> Rect:
        rect = self._modules.pop(name, None)
        if rect is None:
            raise KeyError(f"module {name!r} is not placed")
        for pos in rect.cells():
            self._tiles[pos] = TileType.FREE
        return rect

    @property
    def modules(self) -> Dict[str, Rect]:
        return dict(self._modules)

    # ------------------------------------------------------------------
    # topology extraction
    # ------------------------------------------------------------------
    def _trace(self, start: Coord, d: Coord) -> Optional[Tuple[Coord, int]]:
        """Follow wire tiles from a switch in direction ``d``.

        Returns (switch coordinate, wire-tile count) if the run ends at a
        switch, else None.
        """
        dx, dy = d
        x, y = start[0] + dx, start[1] + dy
        hops = 0
        while self.in_bounds(x, y):
            t = self._tiles[(x, y)]
            if t is TileType.SWITCH:
                return ((x, y), hops)
            if not t.conducts(dx, dy):
                return None
            hops += 1
            x, y = x + dx, y + dy
        return None

    def links(self) -> List[Tuple[Coord, Coord, int]]:
        """All switch-to-switch links as (a, b, wire_tiles) with a < b."""
        out: Set[Tuple[Coord, Coord, int]] = set()
        for s in self.switches():
            for d in DIRS:
                hit = self._trace(s, d)
                if hit is not None:
                    other, hops = hit
                    a, b = sorted((s, other))
                    out.add((a, b, hops))
        return sorted(out)

    def neighbors(self, switch: Coord) -> List[Coord]:
        """Switches directly linked to ``switch``."""
        result = []
        for d in DIRS:
            hit = self._trace(switch, d)
            if hit is not None:
                result.append(hit[0])
        return result

    def is_connected(self) -> bool:
        """Whether all switches form one connected component."""
        sw = self.switches()
        if len(sw) <= 1:
            return True
        seen = {sw[0]}
        frontier = [sw[0]]
        while frontier:
            cur = frontier.pop()
            for nxt in self.neighbors(cur):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return len(seen) == len(sw)

    def dangling_wires(self) -> List[Coord]:
        """Wire tiles that do not sit on a switch-to-switch run."""
        on_link: Set[Coord] = set()
        for (ax, ay), (bx, by), _ in self.links():
            if ax == bx:
                for y in range(min(ay, by) + 1, max(ay, by)):
                    on_link.add((ax, y))
            else:
                for x in range(min(ax, bx) + 1, max(ax, bx)):
                    on_link.add((x, ay))
        return sorted(
            pos
            for pos, t in self._tiles.items()
            if t in (TileType.HWIRE, TileType.VWIRE) and pos not in on_link
        )

    # ------------------------------------------------------------------
    def render(self) -> str:
        """ASCII rendering (row 0 at the bottom, as in the paper's figure)."""
        lines = []
        for y in range(self.rows - 1, -1, -1):
            lines.append(
                " ".join(self._tiles[(x, y)].value for x in range(self.cols))
            )
        return "\n".join(lines)

    def __iter__(self) -> Iterator[Tuple[Coord, TileType]]:
        return iter(sorted(self._tiles.items()))
