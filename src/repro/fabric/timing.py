"""Calibrated clock-frequency and raw-bandwidth model.

The survey brackets all four prototypes between 66 and ~100 MHz on
Virtex-II. f_max is modelled as a mild linear function of link width,
anchored at the published values:

* RMBoC: "about 100 MHz +/- 6 % depending on the bus width" — modelled
  as 106 MHz at 1 bit falling to 94 MHz at 32 bits;
* BUS-COM: 66 MHz (published, width-insensitive: the TDMA arbiter, not
  the datapath, is the critical path);
* CoNoChi: 73 MHz at 32-bit links;
* DyNoC: the survey gives no figure; we place it at 74 MHz @ 32 bit,
  inside the survey's 73-94 MHz bracket (provenance flagged as
  ``assumed`` in Table 2 output).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

MHZ = 1e6

_KNOWN = ("rmboc", "buscom", "dynoc", "conochi", "sharedbus",
          "staticmesh")


def _canon(architecture: str) -> str:
    key = architecture.lower().replace("-", "")
    if key == "buscom" or key == "bus_com":
        key = "buscom"
    if key not in _KNOWN:
        raise KeyError(f"unknown architecture {architecture!r}")
    return key


@dataclass(frozen=True)
class ClockModel:
    """f_max in Hz as a function of architecture and link width."""

    def fmax_hz(self, architecture: str, width: int = 32) -> float:
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        key = _canon(architecture)
        if key == "rmboc":
            # 106 MHz at width 1 -> 94 MHz at width 32, clamped beyond.
            w = min(max(width, 1), 64)
            return (106.0 - (w - 1) * (12.0 / 31.0)) * MHZ
        if key == "buscom":
            return 66.0 * MHZ
        if key == "dynoc":
            w = min(max(width, 1), 64)
            return (82.0 - 0.25 * w) * MHZ
        if key == "sharedbus":
            # no partial-reconfiguration boundary crossings to slow it
            return 100.0 * MHZ
        if key == "staticmesh":
            w = min(max(width, 1), 64)
            return (88.0 - 0.25 * w) * MHZ
        # conochi
        w = min(max(width, 1), 64)
        return (81.0 - 0.25 * w) * MHZ

    def fmax_mhz(self, architecture: str, width: int = 32) -> float:
        return self.fmax_hz(architecture, width) / MHZ

    def cycle_ns(self, architecture: str, width: int = 32) -> float:
        return 1e9 / self.fmax_hz(architecture, width)

    def link_bandwidth_bytes(self, architecture: str, width: int = 32) -> float:
        """Raw bandwidth b_L of one ``width``-bit link in bytes/second."""
        return self.fmax_hz(architecture, width) * width / 8.0

    def table(self, width: int = 32) -> Dict[str, float]:
        return {
            name: self.fmax_mhz(name, width)
            for name in ("RMBoC", "BUS-COM", "DyNoC", "CoNoChi")
        }
