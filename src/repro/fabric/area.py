"""Calibrated slice-cost model — regenerates the paper's Tables 2 and 3.

Every architecture's area is expressed as an explicit function of its
structural parameters (bus count ``k``, module count ``m``, link width
``w``). The coefficients are calibrated so the model reproduces the
paper's published figures exactly at the published operating points:

==============  =====================================  ==================
architecture    published figure                       calibration point
==============  =====================================  ==================
RMBoC           5084 slices, complete system           m=4, k=4, w=32
BUS-COM         1294 slices (Table 3, excl. arbiter    m=4, k=4, w=32
                in the paper; our total *includes*
                the arbiter and still lands on 1294
                — see :meth:`AreaModel.buscom_total`)
BUS-COM proto   296 slices (32-bit in / 16-bit out)    published variant
DyNoC           1480 slices for 4 switches             w=32 (370/switch)
CoNoChi         410 slices per switch -> 1640 for 4    w=32
==============  =====================================  ==================

Away from the calibration points the model extrapolates with the scaling
structure each source paper describes (linear in width for datapaths,
per-bus replication for RMBoC cross-points, bus-macro granularity for
BUS-COM), which is what experiments E5/E7 sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.fabric.busmacro import BusMacroSpec, DEFAULT_MACRO, macro_slices


def _check_positive(**kwargs: int) -> None:
    for name, value in kwargs.items():
        if value <= 0:
            raise ValueError(f"{name} must be positive, got {value}")


@dataclass
class AreaModel:
    """Slice-cost model for the four interconnect architectures."""

    macro_spec: BusMacroSpec = field(default_factory=lambda: DEFAULT_MACRO)

    # RMBoC cross-point: per-bus datapath (9 slices/bit + 25 control)
    # plus a 19-slice crosspoint FSM.  k*(9w+25)+19 = 1271 @ k=4, w=32.
    RMBOC_SLICES_PER_BIT_PER_BUS: int = 9
    RMBOC_PER_BUS_CONTROL: int = 25
    RMBOC_CROSSPOINT_FSM: int = 19

    # BUS-COM: arbiter 70+16k (=134 @ k=4); interface 34+3w (=130 @ w=32);
    # slot I/O registers of the published 32/16-bit prototype: 42.
    BUSCOM_ARBITER_BASE: int = 70
    BUSCOM_ARBITER_PER_BUS: int = 16
    BUSCOM_IFACE_BASE: int = 34
    BUSCOM_IFACE_PER_BIT: int = 3
    BUSCOM_PROTO_SLOT_IO: int = 42

    # NoC switches: affine in link width.
    DYNOC_ROUTER_BASE: int = 50
    DYNOC_ROUTER_PER_BIT: int = 10
    CONOCHI_SWITCH_BASE: int = 90
    CONOCHI_SWITCH_PER_BIT: int = 10
    # CoNoChi extras excluded from Table 3 (the paper excludes control
    # units there) but needed for whole-system accounting.
    CONOCHI_IFACE_BASE: int = 40
    CONOCHI_IFACE_PER_BIT: int = 4
    CONOCHI_CONTROL_BASE: int = 180
    CONOCHI_CONTROL_PER_SWITCH: int = 22

    # ------------------------------------------------------------------
    # RMBoC
    # ------------------------------------------------------------------
    def rmboc_crosspoint(self, k: int, width: int) -> int:
        """One cross-point serving ``k`` segmented buses of ``width`` bits."""
        _check_positive(k=k, width=width)
        return (
            k * (self.RMBOC_SLICES_PER_BIT_PER_BUS * width
                 + self.RMBOC_PER_BUS_CONTROL)
            + self.RMBOC_CROSSPOINT_FSM
        )

    def rmboc_total(self, m: int, k: int, width: int) -> int:
        """Complete RMBoC system: one cross-point per module slot.

        The paper notes RMBoC's figure is the only one covering *all*
        hardware needed for operation — there is no external arbiter or
        control unit to add.
        """
        _check_positive(m=m)
        return m * self.rmboc_crosspoint(k, width)

    # ------------------------------------------------------------------
    # BUS-COM
    # ------------------------------------------------------------------
    def buscom_bus_macros(self, k: int, in_bits: int, out_bits: int) -> int:
        """Macros for ``k`` unsegmented buses with given in/out widths."""
        _check_positive(k=k)
        per_bus = macro_slices(in_bits, self.macro_spec) + macro_slices(
            out_bits, self.macro_spec
        )
        return k * per_bus

    def buscom_arbiter(self, k: int) -> int:
        _check_positive(k=k)
        return self.BUSCOM_ARBITER_BASE + self.BUSCOM_ARBITER_PER_BUS * k

    def buscom_interface(self, width: int) -> int:
        """One BUS-COM interface module (module <-> bus attachment)."""
        _check_positive(width=width)
        return self.BUSCOM_IFACE_BASE + self.BUSCOM_IFACE_PER_BIT * width

    def buscom_total(self, m: int, k: int, width: int) -> int:
        """Full BUS-COM system with symmetric ``width``-bit links."""
        _check_positive(m=m)
        return (
            self.buscom_bus_macros(k, width, width)
            + self.buscom_arbiter(k)
            + m * self.buscom_interface(width)
        )

    def buscom_prototype(self) -> int:
        """The published 296-slice figure of the 32-in/16-out prototype.

        Reconstructed as: the six 8-bit macros of one slot's bus
        attachment (120 slices) + arbiter for k=4 (134) + slot I/O
        registers (42). The source paper's own accounting is ambiguous
        (it also states six macros *per bus*); we preserve the published
        total and document the reconstruction.
        """
        one_slot_macros = macro_slices(32, self.macro_spec) + macro_slices(
            16, self.macro_spec
        )
        return one_slot_macros + self.buscom_arbiter(4) + self.BUSCOM_PROTO_SLOT_IO

    # ------------------------------------------------------------------
    # DyNoC
    # ------------------------------------------------------------------
    def dynoc_router(self, width: int) -> int:
        _check_positive(width=width)
        return self.DYNOC_ROUTER_BASE + self.DYNOC_ROUTER_PER_BIT * width

    def dynoc_total(self, n_routers: int, width: int) -> int:
        """DyNoC interconnect area: routers only (PEs belong to modules)."""
        if n_routers < 0:
            raise ValueError(f"negative router count {n_routers}")
        return n_routers * self.dynoc_router(width)

    # ------------------------------------------------------------------
    # CoNoChi
    # ------------------------------------------------------------------
    def conochi_switch(self, width: int) -> int:
        _check_positive(width=width)
        return self.CONOCHI_SWITCH_BASE + self.CONOCHI_SWITCH_PER_BIT * width

    def conochi_interface(self, width: int) -> int:
        """Module network interface (logical-address handling, 0-tiles)."""
        _check_positive(width=width)
        return self.CONOCHI_IFACE_BASE + self.CONOCHI_IFACE_PER_BIT * width

    def conochi_control_unit(self, n_switches: int) -> int:
        """Global control unit (routing tables, reconfiguration control)."""
        if n_switches < 0:
            raise ValueError(f"negative switch count {n_switches}")
        return (
            self.CONOCHI_CONTROL_BASE
            + self.CONOCHI_CONTROL_PER_SWITCH * n_switches
        )

    def conochi_total(self, n_switches: int, width: int) -> int:
        """CoNoChi switches only — the Table 3 accounting basis."""
        if n_switches < 0:
            raise ValueError(f"negative switch count {n_switches}")
        return n_switches * self.conochi_switch(width)

    # ------------------------------------------------------------------
    # static baselines (§2.2's conventional schemes, for experiment E10)
    # ------------------------------------------------------------------
    SHAREDBUS_ARBITER_BASE: int = 40
    SHAREDBUS_ARBITER_PER_MODULE: int = 8
    SHAREDBUS_IFACE_BASE: int = 20
    SHAREDBUS_IFACE_PER_BIT: int = 2
    STATICMESH_ROUTER_BASE: int = 40
    STATICMESH_ROUTER_PER_BIT: int = 9

    def sharedbus_total(self, m: int, width: int) -> int:
        """A conventional single shared bus (no reconfigurable region
        boundaries, hence no bus macros): arbiter + per-module taps."""
        _check_positive(m=m, width=width)
        return (
            self.SHAREDBUS_ARBITER_BASE
            + self.SHAREDBUS_ARBITER_PER_MODULE * m
            + m * (self.SHAREDBUS_IFACE_BASE
                   + self.SHAREDBUS_IFACE_PER_BIT * width)
        )

    def staticmesh_router(self, width: int) -> int:
        """A mesh router without removal/bypass support (static NoC)."""
        _check_positive(width=width)
        return (self.STATICMESH_ROUTER_BASE
                + self.STATICMESH_ROUTER_PER_BIT * width)

    def staticmesh_total(self, n_routers: int, width: int) -> int:
        if n_routers < 0:
            raise ValueError(f"negative router count {n_routers}")
        return n_routers * self.staticmesh_router(width)

    # ------------------------------------------------------------------
    # Table 3
    # ------------------------------------------------------------------
    def minimum_interconnect(
        self, architecture: str, m: int = 4, width: int = 32, k: int = 4
    ) -> int:
        """Minimum slices for connecting ``m`` modules with ``width``-bit
        links, under the paper's Table 3 assumptions:

        * DyNoC: each module occupies exactly one PE -> ``m`` routers;
        * CoNoChi: one switch per module, control unit excluded;
        * BUS-COM: arbiter *included* in our calibration (total matches
          the published 1294 either way at the calibration point);
        * RMBoC: complete system.
        """
        key = architecture.lower()
        if key == "rmboc":
            return self.rmboc_total(m, k, width)
        if key in ("bus-com", "buscom"):
            return self.buscom_total(m, k, width)
        if key == "dynoc":
            return self.dynoc_total(m, width)
        if key == "conochi":
            return self.conochi_total(m, width)
        raise KeyError(f"unknown architecture {architecture!r}")

    def table3(self, m: int = 4, width: int = 32, k: int = 4) -> Dict[str, int]:
        """Regenerate Table 3 as an ordered mapping."""
        return {
            name: self.minimum_interconnect(name, m=m, width=width, k=k)
            for name in ("RMBoC", "BUS-COM", "DyNoC", "CoNoChi")
        }
