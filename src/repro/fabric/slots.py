"""Column-slot floorplans for the bus-based architectures.

Virtex-II is configured in full-height CLB columns, so RMBoC and BUS-COM
both partition the device into vertical *slots*, each holding at most one
hardware module (the survey notes extended BUS-COM variants with stacked
modules; :class:`SlotFloorplan` supports an optional ``lanes`` split for
that extension).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.fabric.device import Device
from repro.fabric.geometry import Rect


@dataclass
class Slot:
    """One reconfigurable slot: a span of full-height CLB columns."""

    index: int
    rect: Rect
    occupant: Optional[str] = None  # module name
    frozen: bool = False  # True while the slot is being reconfigured

    @property
    def is_free(self) -> bool:
        return self.occupant is None

    @property
    def slices(self) -> int:
        return self.rect.area_slices


class SlotFloorplan:
    """Partition of a device into equal-width column slots.

    Parameters
    ----------
    device:
        The target device.
    num_slots:
        Number of slots; the device's CLB columns are divided as evenly
        as possible, with ``reserved_cols`` columns kept for static logic
        (arbiter / cross-point columns / IO).
    reserved_cols:
        Columns excluded from slot area, allocated from the left edge.
    """

    def __init__(self, device: Device, num_slots: int, reserved_cols: int = 0):
        if num_slots <= 0:
            raise ValueError(f"num_slots must be positive, got {num_slots}")
        usable = device.clb_cols - reserved_cols
        if usable < num_slots:
            raise ValueError(
                f"{device.name}: {usable} usable columns cannot host "
                f"{num_slots} slots"
            )
        self.device = device
        self.reserved_cols = reserved_cols
        base, extra = divmod(usable, num_slots)
        self._slots: List[Slot] = []
        x = reserved_cols
        for i in range(num_slots):
            w = base + (1 if i < extra else 0)
            self._slots.append(
                Slot(index=i, rect=Rect(x, 0, w, device.clb_rows))
            )
            x += w

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._slots)

    def __iter__(self):
        return iter(self._slots)

    def __getitem__(self, index: int) -> Slot:
        return self._slots[index]

    @property
    def slots(self) -> Tuple[Slot, ...]:
        return tuple(self._slots)

    def free_slots(self) -> List[Slot]:
        return [s for s in self._slots if s.is_free and not s.frozen]

    def occupied(self) -> Dict[str, int]:
        """module name -> slot index."""
        return {
            s.occupant: s.index for s in self._slots if s.occupant is not None
        }

    # ------------------------------------------------------------------
    def place(self, module: str, slot_index: Optional[int] = None) -> Slot:
        """Place ``module`` into a slot (first free slot if unspecified)."""
        if module in self.occupied():
            raise ValueError(f"module {module!r} is already placed")
        if slot_index is None:
            free = self.free_slots()
            if not free:
                raise ValueError("no free slot available")
            slot = free[0]
        else:
            slot = self._slots[slot_index]
            if not slot.is_free:
                raise ValueError(
                    f"slot {slot_index} occupied by {slot.occupant!r}"
                )
            if slot.frozen:
                raise ValueError(f"slot {slot_index} is being reconfigured")
        slot.occupant = module
        return slot

    def evict(self, module: str) -> Slot:
        """Remove ``module`` from its slot."""
        for slot in self._slots:
            if slot.occupant == module:
                slot.occupant = None
                return slot
        raise KeyError(f"module {module!r} is not placed")

    def slot_of(self, module: str) -> Slot:
        for slot in self._slots:
            if slot.occupant == module:
                return slot
        raise KeyError(f"module {module!r} is not placed")
