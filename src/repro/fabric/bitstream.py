"""Partial-reconfiguration timing model (column/frame based).

Virtex-II is configured through SelectMAP/ICAP in units of *frames*; the
smallest addressable unit spans a full CLB column. Replacing a module
therefore rewrites every frame of every column its region touches. The
model converts a region into configuration bytes and then into wall-clock
time and user-clock cycles, which is what the reconfiguration manager
charges for module exchange and for CoNoChi tile swaps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.fabric.device import Device
from repro.fabric.geometry import Rect


@dataclass(frozen=True)
class ConfigPort:
    """A configuration port (ICAP / SelectMAP)."""

    name: str = "ICAP"
    width_bits: int = 8
    clock_hz: float = 50e6

    def __post_init__(self) -> None:
        if self.width_bits <= 0 or self.clock_hz <= 0:
            raise ValueError("invalid configuration port parameters")

    @property
    def bytes_per_second(self) -> float:
        return self.clock_hz * self.width_bits / 8.0


@dataclass(frozen=True)
class ReconfigTimingModel:
    """Converts regions to reconfiguration cost.

    ``overhead_bytes`` covers the bitstream header, frame-address writes
    and the final CRC/desync commands of a partial bitstream.
    """

    device: Device
    port: ConfigPort = ConfigPort()
    overhead_bytes: int = 512

    def columns_touched(self, region: Rect) -> int:
        """CLB columns rewritten when reconfiguring ``region``.

        Full-column granularity: height is irrelevant on Virtex-II.
        """
        if not region.fits_in(self.device):
            raise ValueError(
                f"region {region} exceeds device "
                f"{self.device.clb_cols}x{self.device.clb_rows}"
            )
        return region.w

    def bitstream_bytes(self, region: Rect) -> int:
        frames = self.columns_touched(region) * self.device.frames_per_clb_col
        return frames * self.device.frame_bytes + self.overhead_bytes

    def seconds(self, region: Rect) -> float:
        return self.bitstream_bytes(region) / self.port.bytes_per_second

    def cycles(self, region: Rect, system_clock_hz: float) -> int:
        """Reconfiguration duration in *user-clock* cycles (ceil)."""
        if system_clock_hz <= 0:
            raise ValueError(f"non-positive clock {system_clock_hz}")
        return math.ceil(self.seconds(region) * system_clock_hz)
