"""FPGA fabric substrate: a parametric Virtex-II-like device model.

The paper's four architectures were prototyped on Xilinx Virtex-II /
Virtex-II Pro parts. All area numbers in its Tables 2-3 are *slice*
counts and all performance numbers are cycle counts at a reported f_max.
This package supplies the substrate those numbers are defined against:

* :mod:`~repro.fabric.device` — device catalog (CLB grid, slices);
* :mod:`~repro.fabric.geometry` — rectangles and regions in CLB space;
* :mod:`~repro.fabric.slots` — 1D column-slot floorplans (bus systems);
* :mod:`~repro.fabric.tiles` — 2D tile grids (CoNoChi);
* :mod:`~repro.fabric.busmacro` — Virtex-II bus-macro model;
* :mod:`~repro.fabric.area` — calibrated slice-cost model (Tables 2-3);
* :mod:`~repro.fabric.timing` — calibrated f_max / bandwidth model;
* :mod:`~repro.fabric.bitstream` — column/frame partial-reconfiguration
  timing (SelectMAP/ICAP).
"""

from repro.fabric.area import AreaModel
from repro.fabric.bitstream import ConfigPort, ReconfigTimingModel
from repro.fabric.busmacro import BusMacroSpec, macros_for_width
from repro.fabric.device import Device, get_device, list_devices
from repro.fabric.geometry import Rect
from repro.fabric.slots import Slot, SlotFloorplan
from repro.fabric.tiles import TileGrid, TileType
from repro.fabric.timing import ClockModel

__all__ = [
    "AreaModel",
    "BusMacroSpec",
    "ClockModel",
    "ConfigPort",
    "Device",
    "Rect",
    "ReconfigTimingModel",
    "Slot",
    "SlotFloorplan",
    "TileGrid",
    "TileType",
    "get_device",
    "list_devices",
    "macros_for_width",
]
