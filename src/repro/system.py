"""High-level facade: a complete reconfigurable system on one device.

:class:`ReconfigurableSystem` assembles what the paper's systems always
pair: a physical device, a floorplan (column slots for the bus
architectures, a scaled 2D area for the NoCs), the interconnect, and a
reconfiguration manager. It resolves module names to physical regions,
so a swap is one call::

    system = ReconfigurableSystem("rmboc", device="XC2V6000")
    system.swap("m1", ModuleSpec("filter_v2"))
    system.sim.run_until(lambda s: system.manager.records[-1].done)

The facade also answers the floor-level questions the paper's §4.1
raises: interconnect area as a fraction of the device, and whether a
module fits its slot.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.arch import build_architecture
from repro.arch.base import CommArchitecture
from repro.fabric.device import Device, get_device
from repro.fabric.geometry import Rect
from repro.fabric.slots import SlotFloorplan
from repro.reconfig.manager import ReconfigurationManager, SwapRecord
from repro.reconfig.module import ModuleSpec
from repro.sim import Simulator

#: CLBs per NoC PE/tile edge in the default region mapping
CLBS_PER_TILE = 4


class ReconfigurableSystem:
    """Device + floorplan + interconnect + reconfiguration manager."""

    def __init__(self, arch_name: str, device: str = "XC2V6000",
                 num_modules: int = 4, width: int = 32,
                 reserved_cols: int = 4, **arch_kwargs: object):
        self.device: Device = get_device(device)
        self.arch: CommArchitecture = build_architecture(
            arch_name, num_modules=num_modules, width=width, **arch_kwargs
        )
        self.manager = ReconfigurationManager(self.arch, self.device)
        self._is_slot_based = self.arch.KEY in ("rmboc", "buscom")
        if self._is_slot_based:
            self.floorplan: Optional[SlotFloorplan] = SlotFloorplan(
                self.device, num_slots=num_modules,
                reserved_cols=reserved_cols,
            )
            for i, module in enumerate(self.arch.modules):
                self.floorplan.place(module, slot_index=i)
        else:
            self.floorplan = None

    # ------------------------------------------------------------------
    @property
    def sim(self) -> Simulator:
        return self.arch.sim

    def region_of(self, module: str) -> Rect:
        """The configuration region a module occupies on the device."""
        if self.floorplan is not None:
            return self.floorplan.slot_of(module).rect
        if self.arch.KEY == "dynoc":
            pe_rect = self.arch.placement_of(module).rect  # type: ignore[attr-defined]
        else:  # conochi
            grid_rect = self.arch.grid.modules.get(module)  # type: ignore[attr-defined]
            if grid_rect is None:
                sx, sy = self.arch._module_switch[module]  # type: ignore[attr-defined]
                grid_rect = Rect(sx, sy, 1, 1)
            pe_rect = grid_rect
        scaled = Rect(
            pe_rect.x * CLBS_PER_TILE,
            pe_rect.y * CLBS_PER_TILE,
            pe_rect.w * CLBS_PER_TILE,
            pe_rect.h * CLBS_PER_TILE,
        )
        if not scaled.fits_in(self.device):
            raise ValueError(
                f"module {module!r} region {scaled} exceeds "
                f"{self.device.name}"
            )
        return scaled

    # ------------------------------------------------------------------
    def swap(self, module_out: str, module_in: ModuleSpec,
             on_done: Optional[Callable[[SwapRecord], None]] = None,
             **attach_kwargs: object) -> SwapRecord:
        """Exchange a module; the region is resolved from the floorplan."""
        region = self.region_of(module_out)
        record = self.manager.swap(module_out, module_in, region,
                                   on_done=on_done, **attach_kwargs)
        if self.floorplan is not None:
            slot = self.floorplan.slot_of(module_out)
            slot.frozen = True

            def _relabel(rec: SwapRecord, _slot=slot) -> None:
                _slot.occupant = rec.module_in
                _slot.frozen = False

            prev = on_done

            def chained(rec: SwapRecord) -> None:
                _relabel(rec)
                if prev is not None:
                    prev(rec)

            # the manager stored `on_done`; rebind through a wrapper
            self._rebind_on_done(record, chained)
        return record

    def _rebind_on_done(self, record: SwapRecord,
                        fn: Callable[[SwapRecord], None]) -> None:
        """Poll for completion to run floorplan bookkeeping.

        The manager's callback belongs to the caller; the facade's
        bookkeeping rides on a cheap completion poll instead.
        """
        def poll(sim: Simulator) -> None:
            if record.done:
                fn(record)
            else:
                sim.after(64, poll)

        self.sim.after(0, poll)

    # ------------------------------------------------------------------
    def module_fits(self, spec: ModuleSpec, module_slot_of: str) -> bool:
        """Whether a module's logic demand fits the slot it would take."""
        region = self.region_of(module_slot_of)
        return spec.fits_in_slices(region.area_slices)

    def interconnect_utilization(self) -> float:
        """Interconnect slices as a fraction of the device (§4.1)."""
        return self.device.utilization(self.arch.area_slices())

    def report(self, floorplan: bool = True) -> str:
        from repro.fabric.floorplan_render import render_floorplan

        lines = [
            f"system: {self.arch.KEY} on {self.device.name} "
            f"({self.device.total_slices} slices)",
            f"interconnect: {self.arch.area_slices()} slices "
            f"({self.interconnect_utilization():.1%} of device) @ "
            f"{self.arch.fmax_hz() / 1e6:.0f} MHz",
        ]
        regions = {m: self.region_of(m) for m in self.arch.modules}
        for module, region in regions.items():
            lines.append(
                f"  {module:10s} region {region} "
                f"({region.area_slices} slices)"
            )
        if floorplan:
            lines.append("")
            lines.append(render_floorplan(self.device, regions))
        return "\n".join(lines)
