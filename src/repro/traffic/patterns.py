"""Destination choosers: pure functions from (rng) to a destination.

A chooser is built once per source module and called per message, so
pattern state (e.g. a fixed permutation) is decided up front and the
draws stay stream-isolated per source.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

Chooser = Callable[[], str]


def uniform_chooser(src: str, modules: Sequence[str],
                    rng: np.random.Generator) -> Chooser:
    """Uniform random destination among all modules except the source."""
    peers = [m for m in modules if m != src]
    if not peers:
        raise ValueError(f"{src!r} has no peers")

    def choose() -> str:
        return peers[int(rng.integers(len(peers)))]

    return choose


def hotspot_chooser(src: str, modules: Sequence[str],
                    rng: np.random.Generator, hotspot: str,
                    hot_fraction: float = 0.5) -> Chooser:
    """With probability ``hot_fraction`` pick the hotspot, else uniform."""
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError(f"hot_fraction {hot_fraction} outside [0, 1]")
    if hotspot == src:
        return uniform_chooser(src, modules, rng)
    uniform = uniform_chooser(src, modules, rng)

    def choose() -> str:
        if rng.random() < hot_fraction:
            return hotspot
        return uniform()

    return choose


def neighbor_chooser(src: str, modules: Sequence[str]) -> Chooser:
    """Always the next module in ring order (nearest-neighbour streams)."""
    order = list(modules)
    idx = order.index(src)
    dst = order[(idx + 1) % len(order)]
    if dst == src:
        raise ValueError("ring of one module")
    return lambda: dst


def permutation_chooser(src: str, modules: Sequence[str],
                        rng: np.random.Generator,
                        permutation: Optional[List[str]] = None) -> Chooser:
    """A fixed random (or given) permutation destination.

    The permutation is derangement-adjusted so no module maps to itself.
    """
    order = list(modules)
    if permutation is None:
        perm = order.copy()
        # rejection-sample a derangement (cheap at these sizes)
        for _ in range(1000):
            rng.shuffle(perm)
            if all(a != b for a, b in zip(order, perm)):
                break
        else:
            raise RuntimeError("failed to draw a derangement")
        permutation = perm
    mapping = dict(zip(order, permutation))
    if mapping[src] == src:
        raise ValueError(f"permutation maps {src!r} to itself")
    return lambda: mapping[src]
