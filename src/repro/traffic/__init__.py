"""Workload generation.

The surveyed prototypes were exercised with a small video application
(RMBoC, DyNoC), an automotive inner-cabin system (BUS-COM) and
streaming network applications (CoNoChi). None of those bitstreams
exist anymore; this package provides synthetic generators with the same
traffic shapes — periodic streams, TDMA-style real-time frames, bursty
flows — plus the classic synthetic patterns (uniform, hotspot,
permutation) used for saturation and parallelism studies.
"""

from repro.traffic.generators import (
    BurstyGenerator,
    PeriodicStream,
    RandomTraffic,
    TraceReplay,
    TrafficGenerator,
)
from repro.traffic.patterns import (
    hotspot_chooser,
    neighbor_chooser,
    permutation_chooser,
    uniform_chooser,
)
from repro.traffic.apps import automotive_workload, network_workload, video_pipeline
from repro.traffic.trace import capture_trace, compare_on_trace, replay_trace

__all__ = [
    "BurstyGenerator",
    "PeriodicStream",
    "RandomTraffic",
    "TraceReplay",
    "TrafficGenerator",
    "automotive_workload",
    "capture_trace",
    "compare_on_trace",
    "hotspot_chooser",
    "neighbor_chooser",
    "network_workload",
    "permutation_chooser",
    "replay_trace",
    "uniform_chooser",
    "video_pipeline",
]
