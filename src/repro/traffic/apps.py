"""Application-shaped workloads mirroring the prototypes' demos.

Each factory wires generators onto an already built architecture and
returns them; callers run the simulator and read the generators'
latency/deadline accounting.
"""

from __future__ import annotations

from typing import List, Optional

from repro.arch.base import CommArchitecture
from repro.sim import make_rng
from repro.traffic.generators import (
    BurstyGenerator,
    PeriodicStream,
    RandomTraffic,
    TrafficGenerator,
)
from repro.traffic.patterns import hotspot_chooser, uniform_chooser


def video_pipeline(
    arch: CommArchitecture,
    frame_bytes: int = 240,
    period: int = 200,
    stop: Optional[int] = None,
) -> List[PeriodicStream]:
    """The RMBoC/DyNoC proof-of-concept shape: a linear video pipeline
    (capture -> filter -> scale -> display) streaming fixed-size tiles
    stage to stage every ``period`` cycles."""
    modules = list(arch.modules)
    if len(modules) < 2:
        raise ValueError("pipeline needs at least two modules")
    gens: List[PeriodicStream] = []
    for i in range(len(modules) - 1):
        gens.append(
            PeriodicStream(
                name=f"video.stage{i}",
                port=arch.ports[modules[i]],
                dst=modules[i + 1],
                period=period,
                payload_bytes=frame_bytes,
                phase=0,
                stop=stop,
            )
        )
    arch.sim.add_all(gens)
    return gens


def automotive_workload(
    arch: CommArchitecture,
    control_period: int = 64,
    control_bytes: int = 8,
    deadline: int = 200,
    infotainment_bytes: int = 192,
    infotainment_rate: float = 0.02,
    seed: int = 7,
    stop: Optional[int] = None,
) -> List[TrafficGenerator]:
    """The BUS-COM shape: hard-periodic control frames with deadlines
    (inner-cabin functions) plus background infotainment bursts."""
    modules = list(arch.modules)
    if len(modules) < 2:
        raise ValueError("need at least two modules")
    gens: List[TrafficGenerator] = []
    # Control loops: module i sends a small frame to module (i+1) % n.
    for i, src in enumerate(modules):
        dst = modules[(i + 1) % len(modules)]
        gens.append(
            PeriodicStream(
                name=f"auto.ctrl{i}",
                port=arch.ports[src],
                dst=dst,
                period=control_period,
                payload_bytes=control_bytes,
                phase=i % control_period,
                deadline=deadline,
                stop=stop,
            )
        )
    # Infotainment: sporadic larger transfers from the first module.
    rng = make_rng(seed, "auto", "infotainment")
    gens.append(
        RandomTraffic(
            name="auto.infotainment",
            port=arch.ports[modules[0]],
            chooser=uniform_chooser(modules[0], modules, rng),
            rng=make_rng(seed, "auto", "inject"),
            rate=infotainment_rate,
            payload_bytes=infotainment_bytes,
            stop=stop,
        )
    )
    arch.sim.add_all(gens)
    return gens


def network_workload(
    arch: CommArchitecture,
    sink: Optional[str] = None,
    packet_bytes: int = 108,
    p_on: float = 0.05,
    p_off: float = 0.2,
    slot_cycles: int = 48,
    hot_fraction: float = 0.6,
    seed: int = 11,
    stop: Optional[int] = None,
) -> List[TrafficGenerator]:
    """The CoNoChi shape: bursty streaming flows with a hot egress
    module (packets sized so the 3-word header costs ~10 %, the
    survey's effective-bandwidth figure)."""
    modules = list(arch.modules)
    if len(modules) < 2:
        raise ValueError("need at least two modules")
    sink = sink or modules[-1]
    gens: List[TrafficGenerator] = []
    for src in modules:
        if src == sink:
            continue
        rng_choose = make_rng(seed, "net", src, "choose")
        rng_state = make_rng(seed, "net", src, "state")
        gens.append(
            BurstyGenerator(
                name=f"net.{src}",
                port=arch.ports[src],
                chooser=hotspot_chooser(src, modules, rng_choose,
                                        hotspot=sink,
                                        hot_fraction=hot_fraction),
                rng=rng_state,
                p_on=p_on,
                p_off=p_off,
                slot_cycles=slot_cycles,
                payload_bytes=packet_bytes,
                stop=stop,
            )
        )
    arch.sim.add_all(gens)
    return gens
