"""Trace capture and cross-architecture replay.

A *trace* is the architecture-neutral record of a workload: (cycle,
src, dst, payload) tuples. Capturing one from a finished run and
replaying it on a different interconnect is the cleanest
apples-to-apples comparison the taxonomy allows — identical offered
traffic, different fabric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.arch.base import CommArchitecture, MessageLog
from repro.traffic.generators import TraceReplay

TraceTuple = Tuple[int, str, str, int]  # (cycle, src, dst, payload_bytes)


def capture_trace(log: MessageLog) -> List[TraceTuple]:
    """Extract the injected workload from a message log (sorted)."""
    return sorted(
        (m.created_cycle, m.src, m.dst, m.payload_bytes)
        for m in log.messages
    )


def replay_trace(arch: CommArchitecture, trace: Sequence[TraceTuple],
                 max_cycles: int = 5_000_000) -> "ReplayResult":
    """Replay a captured trace on (another) architecture and run to
    completion. Source/destination module names must exist on ``arch``."""
    modules = set(arch.modules)
    by_src: Dict[str, List[Tuple[int, str, int]]] = {}
    for cycle, src, dst, nbytes in trace:
        if src not in modules or dst not in modules:
            raise KeyError(
                f"trace references module {src!r}->{dst!r} not present "
                f"on {arch.KEY}"
            )
        by_src.setdefault(src, []).append((cycle, dst, nbytes))
    replayers = [
        TraceReplay(f"replay.{src}", arch.ports[src], entries)
        for src, entries in sorted(by_src.items())
    ]
    arch.sim.add_all(replayers)
    horizon = max((c for c, *_ in trace), default=0) + 1
    arch.sim.run_until(lambda s: s.cycle >= horizon)
    arch.sim.run_until(
        lambda s: arch.log.all_delivered() and arch.idle(),
        max_cycles=max_cycles,
    )
    lats = arch.log.latencies()
    return ReplayResult(
        arch_key=arch.KEY,
        messages=arch.log.total,
        mean_latency=sum(lats) / len(lats) if lats else float("nan"),
        max_latency=max(lats) if lats else 0,
        completion_cycle=arch.sim.cycle,
    )


@dataclass(frozen=True)
class ReplayResult:
    arch_key: str
    messages: int
    mean_latency: float
    max_latency: int
    completion_cycle: int


def compare_on_trace(trace: Sequence[TraceTuple],
                     arch_names: Sequence[str] = ("rmboc", "buscom",
                                                  "dynoc", "conochi"),
                     num_modules: int = 4,
                     width: int = 32) -> Dict[str, ReplayResult]:
    """Replay one trace on several fresh architectures."""
    from repro.arch import build_architecture

    return {
        name: replay_trace(
            build_architecture(name, num_modules=num_modules, width=width),
            trace,
        )
        for name in arch_names
    }
