"""Traffic generators: clocked components injecting through ArchPorts."""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.arch.base import ArchPort, Message
from repro.sim import SLEEP, Component, Simulator


class TrafficGenerator(Component):
    """Base class: tracks every message it injected and supports a
    [start, stop) activity window."""

    def __init__(self, name: str, port: ArchPort,
                 start: int = 0, stop: Optional[int] = None):
        super().__init__(name)
        self.port = port
        self.start = start
        self.stop = stop
        self.sent: List[Message] = []

    # ------------------------------------------------------------------
    def active(self, cycle: int) -> bool:
        return cycle >= self.start and (self.stop is None or cycle < self.stop)

    def _inject(self, dst: str, payload_bytes: int, tag: str = "") -> Message:
        msg = self.port.send(dst, payload_bytes, tag=tag)
        self.sent.append(msg)
        return msg

    def all_delivered(self) -> bool:
        return all(m.delivered for m in self.sent)

    def latencies(self) -> List[int]:
        return [m.latency for m in self.sent if m.delivered]

    def tick(self, sim: Simulator):
        cycle = sim.cycle
        if self.stop is not None and cycle >= self.stop:
            return SLEEP  # window closed for good
        if cycle < self.start:
            return self.start  # doze until the window opens
        self.generate(cycle)
        return self.next_activity(cycle)

    def generate(self, cycle: int) -> None:
        raise NotImplementedError

    def next_activity(self, cycle: int):
        """Quiescence hint after generating at ``cycle``: the next cycle
        this generator could possibly inject.  The default (None) keeps
        the generator ticking every active cycle; deterministic
        subclasses override it with their next firing cycle."""
        return None


class RandomTraffic(TrafficGenerator):
    """Bernoulli open-loop injection: each cycle, with probability
    ``rate``, send ``payload_bytes`` to ``chooser()``."""

    def __init__(self, name: str, port: ArchPort,
                 chooser: Callable[[], str], rng: np.random.Generator,
                 rate: float, payload_bytes: int = 64,
                 start: int = 0, stop: Optional[int] = None):
        super().__init__(name, port, start, stop)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate {rate} outside [0, 1]")
        if payload_bytes < 1:
            raise ValueError("payload_bytes must be >= 1")
        self.chooser = chooser
        self.rng = rng
        self.rate = rate
        self.payload_bytes = payload_bytes

    def generate(self, cycle: int) -> None:
        if self.rng.random() < self.rate:
            self._inject(self.chooser(), self.payload_bytes)


class PeriodicStream(TrafficGenerator):
    """Fixed-rate stream: every ``period`` cycles, one ``payload_bytes``
    message to a fixed destination — a pipeline stage's output."""

    def __init__(self, name: str, port: ArchPort, dst: str,
                 period: int, payload_bytes: int,
                 phase: int = 0, start: int = 0, stop: Optional[int] = None,
                 deadline: Optional[int] = None):
        super().__init__(name, port, start, stop)
        if period < 1:
            raise ValueError("period must be >= 1")
        if payload_bytes < 1:
            raise ValueError("payload_bytes must be >= 1")
        self.dst = dst
        self.period = period
        self.payload_bytes = payload_bytes
        self.phase = phase % period
        self.deadline = deadline

    def generate(self, cycle: int) -> None:
        if (cycle - self.start) % self.period == self.phase:
            self._inject(self.dst, self.payload_bytes, tag="stream")

    def next_activity(self, cycle: int):
        gap = (self.phase - (cycle - self.start)) % self.period
        nxt = cycle + (gap or self.period)
        if self.stop is not None and nxt >= self.stop:
            return SLEEP
        return nxt

    # -- real-time accounting -------------------------------------------
    def deadline_misses(self) -> int:
        """Messages whose latency exceeded the deadline (requires one)."""
        if self.deadline is None:
            raise ValueError(f"{self.name}: no deadline configured")
        return sum(
            1 for m in self.sent if m.delivered and m.latency > self.deadline
        )

    def deadline_met_ratio(self) -> float:
        if self.deadline is None:
            raise ValueError(f"{self.name}: no deadline configured")
        done = [m for m in self.sent if m.delivered]
        if not done:
            return 1.0
        return 1.0 - self.deadline_misses() / len(done)


class BurstyGenerator(TrafficGenerator):
    """Two-state on/off (Markov-modulated) source: in ON state, inject
    one packet per ``slot_cycles``; dwell times are geometric in slots.

    ``slot_cycles`` decimates the generator's clock so the offered load
    (duty_cycle / slot_cycles packets per cycle) can be matched to the
    serialization time of a packet instead of overrunning the network.
    """

    def __init__(self, name: str, port: ArchPort,
                 chooser: Callable[[], str], rng: np.random.Generator,
                 p_on: float, p_off: float, payload_bytes: int = 64,
                 slot_cycles: int = 1,
                 start: int = 0, stop: Optional[int] = None):
        super().__init__(name, port, start, stop)
        for label, p in (("p_on", p_on), ("p_off", p_off)):
            if not 0.0 < p <= 1.0:
                raise ValueError(f"{label} {p} outside (0, 1]")
        if slot_cycles < 1:
            raise ValueError(f"slot_cycles must be >= 1, got {slot_cycles}")
        self.chooser = chooser
        self.rng = rng
        self.p_on = p_on      # OFF -> ON transition probability
        self.p_off = p_off    # ON -> OFF transition probability
        self.payload_bytes = payload_bytes
        self.slot_cycles = slot_cycles
        self._on = False

    def generate(self, cycle: int) -> None:
        if (cycle - self.start) % self.slot_cycles:
            return
        if self._on:
            self._inject(self.chooser(), self.payload_bytes, tag="burst")
            if self.rng.random() < self.p_off:
                self._on = False
        elif self.rng.random() < self.p_on:
            self._on = True

    def next_activity(self, cycle: int):
        # RNG draws happen only at slot boundaries, so sleeping between
        # them consumes the random stream identically to ticking through
        gap = (self.start - cycle) % self.slot_cycles
        nxt = cycle + (gap or self.slot_cycles)
        if self.stop is not None and nxt >= self.stop:
            return SLEEP
        return nxt

    @property
    def duty_cycle(self) -> float:
        """Long-run ON fraction: p_on / (p_on + p_off)."""
        return self.p_on / (self.p_on + self.p_off)

    @property
    def offered_packets_per_cycle(self) -> float:
        return self.duty_cycle / self.slot_cycles


class TraceReplay(TrafficGenerator):
    """Replay an explicit (cycle, dst, payload_bytes) trace."""

    def __init__(self, name: str, port: ArchPort,
                 trace: Sequence[Tuple[int, str, int]],
                 start: int = 0, stop: Optional[int] = None):
        super().__init__(name, port, start, stop)
        self.trace = sorted(trace)
        self._idx = 0

    def generate(self, cycle: int) -> None:
        while self._idx < len(self.trace) and self.trace[self._idx][0] <= cycle:
            _, dst, nbytes = self.trace[self._idx]
            self._inject(dst, nbytes, tag="trace")
            self._idx += 1

    def next_activity(self, cycle: int):
        if self._idx >= len(self.trace):
            return SLEEP  # trace exhausted: nothing left to inject
        return max(self.trace[self._idx][0], cycle + 1)

    def exhausted(self) -> bool:
        return self._idx >= len(self.trace)
