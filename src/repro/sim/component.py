"""Component base class for the synchronous kernel."""

from __future__ import annotations

from typing import Optional, Protocol, Union, runtime_checkable

from repro.sim.engine import SLEEP, SimError, Simulator

#: what ``tick`` may return: None (tick next cycle), SLEEP, or a wake cycle
QuiescenceHint = Optional[Union[int, type(SLEEP)]]


@runtime_checkable
class Channel(Protocol):
    """Anything a component may :meth:`Component.watch`: an object that
    wakes subscribers when a write is staged on it.  The kernel's
    :class:`~repro.sim.channel.Wire`, :class:`~repro.sim.channel.PulseWire`
    and :class:`~repro.sim.channel.FIFO` all satisfy this protocol, and
    type checkers verify subscriptions against it."""

    def subscribe(self, component: "Component") -> None: ...

    def unsubscribe(self, component: "Component") -> None: ...


class Component:
    """A clocked hardware block.

    Subclasses implement :meth:`tick`, which runs once per cycle and must
    only *read* committed state and *stage* writes (``Wire.drive``,
    ``FIFO.push``). Mutating plain Python attributes inside ``tick`` is
    allowed only for state private to the component, since no other
    component may observe it in the same cycle.

    Quiescence protocol (optional)
    ------------------------------
    ``tick`` may return a hint to the activity-driven scheduler:

    * ``None`` — tick again next cycle (the default; any component that
      ignores the protocol keeps today's semantics);
    * :data:`repro.sim.SLEEP` — quiescent: skip this component's ticks
      until something wakes it;
    * an ``int`` cycle number — quiescent until that cycle (an absolute
      wake time; earlier wake-ups may still occur).

    Wake sources are: a watched channel being driven or pushed
    (:meth:`watch`), the timed hint coming due, or an explicit
    :meth:`wake` call.  Scheduled simulator events fire regardless of
    sleep but do **not** implicitly wake components — an event that
    makes a sleeping component relevant again must call its
    :meth:`wake` (the channel primitives and the architecture
    backends' submit paths already do).

    **Contract:** while a component reports quiescence, its ``tick``
    must be an observable no-op — then spurious or early wake-ups are
    always harmless, and fast-path runs are bit-identical to slow-path
    runs (the golden-equivalence guarantee).
    """

    # the kernel-owned fields live in slots: the scheduler touches them
    # every tick, and slot access skips the instance dict. Subclasses
    # (which declare no __slots__) still get a __dict__ of their own.
    __slots__ = ("name", "_sim", "_order", "_asleep", "_wake_at",
                 "_wake_reason", "_pending_wake", "_ticks", "_tick_base",
                 "__weakref__")

    def __init__(self, name: str):
        self.name = name
        self._sim: Optional[Simulator] = None
        # scheduler bookkeeping, owned by Simulator
        self._order: int = -1
        self._asleep: bool = False
        self._wake_at: Optional[int] = None
        self._wake_reason: int = 0
        self._pending_wake: Optional[int] = None
        self._ticks: int = 0
        self._tick_base: int = 0

    # ------------------------------------------------------------------
    def bind(self, sim: Simulator) -> None:
        """Called by ``Simulator.add``; a component belongs to one simulator."""
        if self._sim is not None and self._sim is not sim:
            raise SimError(f"component {self.name!r} already bound to a simulator")
        self._sim = sim

    @property
    def sim(self) -> Simulator:
        if self._sim is None:
            raise SimError(f"component {self.name!r} is not registered")
        return self._sim

    @property
    def now(self) -> int:
        """The current cycle number."""
        return self.sim.cycle

    # ------------------------------------------------------------------
    @property
    def asleep(self) -> bool:
        """Whether the scheduler currently has this component sleeping."""
        return self._asleep

    def wake(self) -> None:
        """Return this component to the runnable set (no-op when awake
        or unbound). Safe to call from anywhere, including other
        components' ticks — the woken component runs next cycle."""
        if self._sim is not None:
            self._sim.wake(self)

    def watch(self, channel: Channel) -> None:
        """Subscribe to a channel: any ``Wire.drive``/``FIFO.push`` on it
        wakes this component (the staged value is visible next cycle,
        which is exactly when the woken component ticks)."""
        channel.subscribe(self)

    def unwatch(self, channel: Channel) -> None:
        """Drop a :meth:`watch` subscription (no-op when not subscribed)."""
        channel.unsubscribe(self)

    # ------------------------------------------------------------------
    def tick(self, sim: Simulator) -> "QuiescenceHint":
        """Advance the component by one clock cycle."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"
