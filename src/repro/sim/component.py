"""Component base class for the synchronous kernel."""

from __future__ import annotations

from typing import Optional

from repro.sim.engine import SimError, Simulator


class Component:
    """A clocked hardware block.

    Subclasses implement :meth:`tick`, which runs once per cycle and must
    only *read* committed state and *stage* writes (``Wire.drive``,
    ``FIFO.push``). Mutating plain Python attributes inside ``tick`` is
    allowed only for state private to the component, since no other
    component may observe it in the same cycle.
    """

    def __init__(self, name: str):
        self.name = name
        self._sim: Optional[Simulator] = None

    # ------------------------------------------------------------------
    def bind(self, sim: Simulator) -> None:
        """Called by ``Simulator.add``; a component belongs to one simulator."""
        if self._sim is not None and self._sim is not sim:
            raise SimError(f"component {self.name!r} already bound to a simulator")
        self._sim = sim

    @property
    def sim(self) -> Simulator:
        if self._sim is None:
            raise SimError(f"component {self.name!r} is not registered")
        return self._sim

    @property
    def now(self) -> int:
        """The current cycle number."""
        return self.sim.cycle

    # ------------------------------------------------------------------
    def tick(self, sim: Simulator) -> None:
        """Advance the component by one clock cycle."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"
