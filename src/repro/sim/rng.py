"""Deterministic, stream-isolated random number generation.

Every stochastic element of an experiment derives its generator from a
single root seed plus a string path (e.g. ``("traffic", "module3")``),
so adding a new consumer never perturbs the draws of existing ones —
the standard reproducibility discipline for simulation studies.
"""

from __future__ import annotations

import zlib
from typing import Dict, Sequence

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy-less installs only
    np = None  # type: ignore[assignment]


def _stream_key(parts: Sequence[str]) -> int:
    """Stable 32-bit key for a stream path (Python's hash() is salted)."""
    return zlib.crc32("/".join(parts).encode("utf-8"))


def make_rng(seed: int, *stream: str) -> "np.random.Generator":
    """Return a generator for ``seed`` specialized to a named stream.

    The draws are PCG64 streams — there is no pure-Python stand-in
    that reproduces them bit for bit, so stochastic experiments
    require the ``[fast]`` extra rather than silently diverging.
    """
    if np is None:
        raise ImportError(
            "seeded rng streams need numpy: pip install repro[fast]"
        )
    ss = np.random.SeedSequence([seed & 0xFFFFFFFF, _stream_key(stream)])
    return np.random.Generator(np.random.PCG64(ss))


def spawn_rngs(seed: int, names: Sequence[str], *prefix: str) -> Dict[str, "np.random.Generator"]:
    """Create one independent generator per name under a common prefix."""
    return {name: make_rng(seed, *prefix, name) for name in names}
