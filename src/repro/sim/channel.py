"""Sequential interconnect primitives: wires and FIFOs with commit semantics.

These model flip-flop-backed structures. During a cycle, components stage
writes; the staged values become observable only after the simulator's
commit phase. Reads always return the value committed at the end of the
*previous* cycle, which is what any synchronous consumer would sample.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Iterator, List, Optional

from repro.sim.engine import SimError, Simulator

_UNSET = object()


class Wire:
    """A registered signal: holds its value until re-driven.

    Double-driving in one cycle raises — two hardware drivers on one net
    is a design error we want tests to catch.
    """

    def __init__(self, sim: Simulator, name: str, init: Any = None):
        self.name = name
        self.value = init
        self._next: Any = _UNSET
        sim.register_sequential(self)

    def drive(self, value: Any) -> None:
        if self._next is not _UNSET:
            raise SimError(f"wire {self.name!r} driven twice in one cycle")
        self._next = value

    def driven(self) -> bool:
        """Whether the wire has already been driven this cycle."""
        return self._next is not _UNSET

    def _commit(self) -> None:
        if self._next is not _UNSET:
            self.value = self._next
            self._next = _UNSET

    def __repr__(self) -> str:  # pragma: no cover
        return f"Wire({self.name!r}, value={self.value!r})"


class PulseWire(Wire):
    """A wire that self-clears to ``default`` every cycle unless driven.

    Models combinational strobes latched for exactly one cycle
    (e.g. a grant line or a valid flag).
    """

    def __init__(self, sim: Simulator, name: str, default: Any = None):
        super().__init__(sim, name, init=default)
        self._default = default

    def _commit(self) -> None:
        if self._next is _UNSET:
            self.value = self._default
        else:
            self.value = self._next
            self._next = _UNSET


class FIFO:
    """A bounded FIFO with registered push: pushes appear next cycle.

    ``pop``/``peek`` act on the committed queue, so a value pushed in
    cycle *t* is poppable from cycle *t+1* — one cycle of latency, as a
    synchronous FIFO has. Pops are not staged: only one consumer owns a
    FIFO's read port, so intra-cycle pop visibility is private anyway.
    """

    def __init__(self, sim: Simulator, name: str, capacity: int = 0):
        if capacity < 0:
            raise SimError(f"FIFO {self.name if hasattr(self, 'name') else name!r}: "
                           f"negative capacity {capacity}")
        self.name = name
        self.capacity = capacity  # 0 means unbounded
        self._queue: Deque[Any] = deque()
        self._staged: List[Any] = []
        sim.register_sequential(self)

    # -- write port -----------------------------------------------------
    def can_push(self, n: int = 1) -> bool:
        """Conservative full check: counts both committed and staged items."""
        if self.capacity == 0:
            return True
        return len(self._queue) + len(self._staged) + n <= self.capacity

    def push(self, item: Any) -> None:
        if not self.can_push():
            raise SimError(f"FIFO {self.name!r} overflow (capacity {self.capacity})")
        self._staged.append(item)

    def try_push(self, item: Any) -> bool:
        if self.can_push():
            self._staged.append(item)
            return True
        return False

    # -- read port ------------------------------------------------------
    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._queue)

    def peek(self) -> Optional[Any]:
        return self._queue[0] if self._queue else None

    def pop(self) -> Any:
        if not self._queue:
            raise SimError(f"FIFO {self.name!r} underflow")
        return self._queue.popleft()

    def try_pop(self) -> Optional[Any]:
        return self._queue.popleft() if self._queue else None

    def clear(self) -> None:
        """Drop committed and staged contents (reconfiguration flush)."""
        self._queue.clear()
        self._staged.clear()

    @property
    def pending(self) -> int:
        """Number of items staged this cycle (not yet visible)."""
        return len(self._staged)

    @property
    def occupancy(self) -> int:
        """Committed plus staged items — total buffered load."""
        return len(self._queue) + len(self._staged)

    def _commit(self) -> None:
        if self._staged:
            self._queue.extend(self._staged)
            self._staged.clear()

    def __repr__(self) -> str:  # pragma: no cover
        return f"FIFO({self.name!r}, len={len(self._queue)}, cap={self.capacity})"
