"""Sequential interconnect primitives: wires and FIFOs with commit semantics.

These model flip-flop-backed structures. During a cycle, components stage
writes; the staged values become observable only after the simulator's
commit phase. Reads always return the value committed at the end of the
*previous* cycle, which is what any synchronous consumer would sample.

All three primitives participate in the kernel's dirty-set commit: they
register themselves with the simulator on the first staged write of a
cycle, so the commit phase touches only elements that actually changed.
They also carry a subscriber list (see :meth:`Wire.subscribe` /
:meth:`Component.watch`) so that staging a write wakes any sleeping
consumer — the staged value becomes visible next cycle, exactly when the
woken consumer ticks.

Write ownership
---------------

Determinism additionally assumes each channel has one writer per cycle:
a :class:`Wire` enforces this itself (double-drive raises), but a
:class:`FIFO` silently interleaves staged pushes in tick order, and a
second producer makes the committed item order scheduler-dependent.
None of that is policed here — the hot path stays free of per-write
bookkeeping.  Ownership is checked statically by the access-graph rules
QL007/QL008 (``repro lint``) and dynamically by the opt-in race
detector (``Simulator(sanitize="race")``, SAN004/SAN005 in
:mod:`repro.lint.runtime`), which instruments these classes by subclass
swap exactly like the contract sanitizer.
"""

from __future__ import annotations

from collections import deque
from typing import (
    TYPE_CHECKING,
    Any,
    Deque,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
)

from repro.sim.engine import SimError, Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.component import Component

_UNSET = object()


class _Subscribable:
    """Dirty-set registration and subscriber wake-ups, shared by all
    channel primitives.  ``_dirty_flag`` doubles as the marker telling
    ``Simulator.register_sequential`` that this element participates in
    dirty tracking (elements without it are committed every cycle)."""

    _sim: Simulator
    _dirty_flag = False

    def _init_channel(self, sim: Simulator) -> None:
        self._sim = sim
        # wake order is the deterministic subscription order (the list);
        # the set only backs the O(1) duplicate check in subscribe()
        self._waiters: List["Component"] = []
        self._waiter_set: Set["Component"] = set()
        sim.register_sequential(self)
        sanitizer = getattr(sim, "sanitizer", None)
        if sanitizer is not None:
            sanitizer.adopt(self)

    def subscribe(self, component: "Component") -> None:
        """Wake ``component`` whenever a write is staged on this channel."""
        if component not in self._waiter_set:
            self._waiter_set.add(component)
            self._waiters.append(component)

    def unsubscribe(self, component: "Component") -> None:
        if component in self._waiter_set:
            self._waiter_set.discard(component)
            self._waiters.remove(component)

    def _mark_dirty(self) -> None:
        if not self._dirty_flag:
            self._dirty_flag = True
            self._sim._dirty.append(self)

    def _staged(self) -> None:
        """Record a staged write: enter the dirty set and schedule
        watchers for the cycle the value becomes visible."""
        self._mark_dirty()
        if self._waiters:
            visible_at = self._sim.cycle + 1
            for component in self._waiters:
                self._sim.wake_at(component, visible_at)


class Wire(_Subscribable):
    """A registered signal: holds its value until re-driven.

    Double-driving in one cycle raises — two hardware drivers on one net
    is a design error we want tests to catch.
    """

    def __init__(self, sim: Simulator, name: str, init: Any = None):
        self.name = name
        self.value = init
        self._next: Any = _UNSET
        self._init_channel(sim)

    def drive(self, value: Any) -> None:
        if self._next is not _UNSET:
            raise SimError(f"wire {self.name!r} driven twice in one cycle")
        self._next = value
        self._staged()

    def driven(self) -> bool:
        """Whether the wire has already been driven this cycle."""
        return self._next is not _UNSET

    def _commit(self) -> bool:
        if self._next is not _UNSET:
            self.value = self._next
            self._next = _UNSET
        return False

    def __repr__(self) -> str:  # pragma: no cover
        return f"Wire({self.name!r}, value={self.value!r})"


class PulseWire(Wire):
    """A wire that self-clears to ``default`` every cycle unless driven.

    Models combinational strobes latched for exactly one cycle
    (e.g. a grant line or a valid flag).
    """

    def __init__(self, sim: Simulator, name: str, default: Any = None):
        super().__init__(sim, name, init=default)
        self._default = default

    def _commit(self) -> bool:
        if self._next is _UNSET:
            self.value = self._default
            return False
        self.value = self._next
        self._next = _UNSET
        # stay in the dirty set one more cycle so the self-clear commits
        return True


class FIFO(_Subscribable):
    """A bounded FIFO with registered push: pushes appear next cycle.

    ``pop``/``peek`` act on the committed queue, so a value pushed in
    cycle *t* is poppable from cycle *t+1* — one cycle of latency, as a
    synchronous FIFO has. Pops are not staged: only one consumer owns a
    FIFO's read port, so intra-cycle pop visibility is private anyway.
    """

    def __init__(self, sim: Simulator, name: str, capacity: int = 0):
        self.name = name
        if capacity < 0:
            raise SimError(f"FIFO {name!r}: negative capacity {capacity}")
        self.capacity = capacity  # 0 means unbounded
        self._queue: Deque[Any] = deque()
        self._staged_items: List[Any] = []
        self._init_channel(sim)

    # -- write port -----------------------------------------------------
    def can_push(self, n: int = 1) -> bool:
        """Conservative full check for staging ``n`` more items this
        cycle: counts both committed and staged items.  Pair an
        ``n > 1`` check with :meth:`push_all`, which re-validates the
        whole batch — ``push`` stages exactly one item."""
        if n < 1:
            raise SimError(
                f"FIFO {self.name!r}: can_push(n) needs n >= 1, got {n}")
        if self.capacity == 0:
            return True
        return len(self._queue) + len(self._staged_items) + n <= self.capacity

    def push(self, item: Any) -> None:
        if not self.can_push():
            raise SimError(f"FIFO {self.name!r} overflow (capacity {self.capacity})")
        self._staged_items.append(item)
        self._staged()

    def try_push(self, item: Any) -> bool:
        if self.can_push():
            self._staged_items.append(item)
            self._staged()
            return True
        return False

    def push_all(self, items: Iterable[Any]) -> None:
        """Stage a whole batch atomically: either capacity admits every
        item (committed + already staged + batch) or nothing is staged.

        This is the batched counterpart to ``can_push(n)`` — checking
        ``can_push(n)`` and then calling single-item ``push`` in a loop
        is also safe (each push re-checks), but ``push_all`` keeps the
        check and the staging in one step so callers cannot overcommit
        between them."""
        batch = list(items)
        if not batch:
            return
        if not self.can_push(len(batch)):
            raise SimError(
                f"FIFO {self.name!r} overflow: cannot stage {len(batch)} "
                f"item(s) on top of {self.occupancy} buffered "
                f"(capacity {self.capacity})")
        self._staged_items.extend(batch)
        self._staged()

    # -- read port ------------------------------------------------------
    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._queue)

    def peek(self) -> Optional[Any]:
        return self._queue[0] if self._queue else None

    def pop(self) -> Any:
        if not self._queue:
            raise SimError(f"FIFO {self.name!r} underflow")
        return self._queue.popleft()

    def try_pop(self) -> Optional[Any]:
        return self._queue.popleft() if self._queue else None

    def clear(self) -> None:
        """Drop committed and staged contents (reconfiguration flush)."""
        self._queue.clear()
        self._staged_items.clear()

    @property
    def pending(self) -> int:
        """Number of items staged this cycle (not yet visible)."""
        return len(self._staged_items)

    @property
    def occupancy(self) -> int:
        """Committed plus staged items — total buffered load."""
        return len(self._queue) + len(self._staged_items)

    def _commit(self) -> bool:
        if self._staged_items:
            self._queue.extend(self._staged_items)
            self._staged_items.clear()
        return False

    def __repr__(self) -> str:  # pragma: no cover
        return f"FIFO({self.name!r}, len={len(self._queue)}, cap={self.capacity})"
