"""Engine selection and the hybrid vectorizing simulator.

``VecSimulator`` *is* a :class:`repro.sim.engine.Simulator` — same
three-phase cycle, same activity-driven fast path, same commit
discipline.  The only difference is a flag: architectures probe
``getattr(sim, "vectorized", False)`` at construction time and, when it
is set, install their compiled-tick batch kernel (swapping hot plain
containers for the SoA structures in :mod:`repro.sim.vec.store`).
Components that never install a kernel keep running their object tick
inside the very same cycle loop — hybrid execution — so quiescence
fast-forward, telemetry guards, the sanitizer and fault hooks all keep
working unchanged.

Engine choice is explicit (``make_simulator(engine=...)``, the CLI's
``--engine`` flags) or ambient via the ``REPRO_SIM_ENGINE`` environment
variable; the default stays the pure-Python object kernel.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

from repro.sim.engine import SimError, Simulator

#: environment switch for the default engine ("object" or "vec")
ENGINE_ENV = "REPRO_SIM_ENGINE"

#: recognised engine names, in preference order for documentation
ENGINES: Tuple[str, ...] = ("object", "vec")


def engine_default() -> str:
    """The engine used when callers pass ``engine=None``."""
    name = os.environ.get(ENGINE_ENV, "object").strip().lower()
    return name if name in ENGINES else "object"


def resolve_engine(engine: Optional[str]) -> str:
    """Validate an explicit engine name (None means the ambient default)."""
    if engine is None:
        return engine_default()
    name = engine.strip().lower()
    if name not in ENGINES:
        raise SimError(
            f"unknown engine {engine!r}: expected one of {', '.join(ENGINES)}"
        )
    return name


class VecSimulator(Simulator):
    """A :class:`Simulator` whose architectures vectorize themselves.

    ``vectorized`` is the single flag the rest of the system keys on:
    it is True only when numpy is importable, so on a numpy-less
    install a ``VecSimulator`` degrades to a plain object-kernel run
    (the documented pure-Python fallback) instead of failing.
    ``vec_kernels`` records the installed batch kernels for
    introspection and tests.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        from repro.sim.vec import HAVE_NUMPY

        self.vectorized = HAVE_NUMPY
        self.vec_kernels: List[object] = []

    def register_vec_kernel(self, kernel: object) -> None:
        """Record a batch kernel installed by an architecture."""
        self.vec_kernels.append(kernel)

    def flush_kernels(self) -> None:
        """Replay every kernel's deferred per-cycle accounting through
        the last executed cycle (see :meth:`BatchKernel.flush`), so a
        snapshot taken now equals the object path's."""
        for kernel in self.vec_kernels:
            kernel.flush(self.cycle)

    def run(self, cycles: int) -> None:
        super().run(cycles)
        self.flush_kernels()

    def run_until(self, predicate, max_cycles=None) -> int:
        result = super().run_until(predicate, max_cycles=max_cycles)
        self.flush_kernels()
        return result


def make_simulator(name: str = "sim", engine: Optional[str] = None,
                   **kwargs) -> Simulator:
    """Build a simulator for the chosen engine.

    ``engine=None`` defers to :data:`ENGINE_ENV` (default ``object``);
    ``"vec"`` returns a :class:`VecSimulator`, ``"object"`` a plain
    :class:`Simulator`.  All other keyword arguments pass through to
    the simulator constructor.
    """
    resolved = resolve_engine(engine)
    if resolved == "vec":
        return VecSimulator(name=name, **kwargs)
    return Simulator(name=name, **kwargs)
