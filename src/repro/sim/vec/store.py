"""Struct-of-arrays state stores: contiguous arrays, integer handles.

Every structure here is the SoA counterpart of a hot object-kernel
structure, designed so the *same* model code drives both backends:

* :class:`WireBank` / :class:`PulseBank` / :class:`FifoBank` pack many
  wires/FIFOs into contiguous numpy arrays addressed by integer handle,
  with the exact commit semantics of :class:`repro.sim.channel.Wire`,
  :class:`~repro.sim.channel.PulseWire` and
  :class:`~repro.sim.channel.FIFO` (staged writes, double-drive errors,
  one-cycle visibility, pulse self-clear) and per-handle ``Ref`` shims
  satisfying the :class:`~repro.sim.component.Channel` protocol for
  ``Component.watch``.
* :class:`IntervalSet`, :class:`EventQueue` and :class:`CountdownSet`
  are *list-compatible* (``append``/``remove``/iteration/truthiness
  match the plain-list usage in the architecture models) so a batch
  kernel can swap them in without touching the object-path helper code,
  then run their bulk operations (due extraction, interval occupancy
  counting, batched countdowns) vectorized.

All structures require numpy (:func:`repro.sim.vec.require_numpy`);
they are only constructed when a :class:`~repro.sim.vec.VecSimulator`
actually vectorizes.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.sim.engine import SimError, Simulator

try:
    import numpy as np
except ImportError:  # pragma: no cover - guarded by require_numpy
    np = None  # type: ignore[assignment]

_GROW = 1.5
_MIN_CAP = 16


def _grown(arr, needed: int):
    cap = max(_MIN_CAP, int(len(arr) * _GROW), needed)
    out = np.empty(cap, dtype=arr.dtype)
    out[: len(arr)] = arr
    return out


# ======================================================================
# channel banks
# ======================================================================
class _BankRef:
    """Per-handle shim satisfying the Channel protocol (watch/unwatch)."""

    __slots__ = ("bank", "handle")

    def __init__(self, bank: "_Bank", handle: int):
        self.bank = bank
        self.handle = handle

    def subscribe(self, component) -> None:
        self.bank.subscribe(self.handle, component)

    def unsubscribe(self, component) -> None:
        self.bank.unsubscribe(self.handle, component)


class WireRef(_BankRef):
    """Single-wire view of a :class:`WireBank` handle."""

    def drive(self, value: int) -> None:
        self.bank.drive(self.handle, value)

    @property
    def value(self) -> int:
        return self.bank.value(self.handle)

    def driven(self) -> bool:
        return self.bank.driven(self.handle)


class FifoRef(_BankRef):
    """Single-FIFO view of a :class:`FifoBank` handle."""

    def push(self, item: int) -> None:
        self.bank.push(self.handle, item)

    def pop(self) -> int:
        return self.bank.pop(self.handle)

    def peek(self) -> Optional[int]:
        return self.bank.peek(self.handle)

    def can_push(self, n: int = 1) -> bool:
        return self.bank.can_push(self.handle, n)

    def __len__(self) -> int:
        return self.bank.occupancy(self.handle)


class _Bank:
    """Shared machinery: one sequential element covering all handles,
    dirty-set participation, and per-handle subscriber wake-ups."""

    _dirty_flag = False

    def __init__(self, sim: Simulator, name: str, n: int):
        if n < 1:
            raise SimError(f"bank {name!r}: need n >= 1 handles, got {n}")
        self.name = name
        self.n = n
        self._sim = sim
        self._waiters: Dict[int, List[Any]] = {}
        sim.register_sequential(self)

    def _check(self, handle: int) -> None:
        if not 0 <= handle < self.n:
            raise SimError(
                f"bank {self.name!r}: handle {handle} outside 0..{self.n - 1}"
            )

    def subscribe(self, handle: int, component) -> None:
        self._check(handle)
        waiters = self._waiters.setdefault(handle, [])
        if component not in waiters:
            waiters.append(component)

    def unsubscribe(self, handle: int, component) -> None:
        waiters = self._waiters.get(handle)
        if waiters and component in waiters:
            waiters.remove(component)

    def _mark_dirty(self) -> None:
        if not self._dirty_flag:
            self._dirty_flag = True
            self._sim._dirty.append(self)

    def _staged(self, handle: int) -> None:
        self._mark_dirty()
        waiters = self._waiters.get(handle)
        if waiters:
            visible_at = self._sim.cycle + 1
            for component in waiters:
                self._sim.wake_at(component, visible_at)


class WireBank(_Bank):
    """``n`` registered wires as one contiguous int64 array.

    Semantics match :class:`repro.sim.channel.Wire` per handle: reads
    return last-committed values, a staged drive becomes visible next
    cycle, and double-driving one handle in one cycle raises.
    """

    def __init__(self, sim: Simulator, name: str, n: int, init: int = 0):
        super().__init__(sim, name, n)
        self._values = np.full(n, init, dtype=np.int64)
        self._staged_vals = np.zeros(n, dtype=np.int64)
        self._staged_mask = np.zeros(n, dtype=bool)

    def ref(self, handle: int) -> WireRef:
        self._check(handle)
        return WireRef(self, handle)

    def value(self, handle: int) -> int:
        self._check(handle)
        return int(self._values[handle])

    @property
    def values(self) -> "np.ndarray":
        """The committed values (read-only view)."""
        view = self._values[: self.n]
        view.flags.writeable = False
        return view

    def driven(self, handle: int) -> bool:
        self._check(handle)
        return bool(self._staged_mask[handle])

    def drive(self, handle: int, value: int) -> None:
        self._check(handle)
        if self._staged_mask[handle]:
            raise SimError(
                f"bank {self.name!r}: handle {handle} driven twice in one cycle"
            )
        self._staged_vals[handle] = value
        self._staged_mask[handle] = True
        self._staged(handle)

    def drive_many(self, handles: Sequence[int], values: Sequence[int]) -> None:
        """Stage a batch of drives in one array operation."""
        idx = np.asarray(handles, dtype=np.int64)
        if idx.size == 0:
            return
        if idx.min() < 0 or idx.max() >= self.n:
            raise SimError(f"bank {self.name!r}: handle outside 0..{self.n - 1}")
        if self._staged_mask[idx].any() or len(np.unique(idx)) != idx.size:
            raise SimError(
                f"bank {self.name!r}: batch double-drives a handle")
        self._staged_vals[idx] = np.asarray(values, dtype=np.int64)
        self._staged_mask[idx] = True
        self._mark_dirty()
        for handle in idx.tolist():
            waiters = self._waiters.get(handle)
            if waiters:
                visible_at = self._sim.cycle + 1
                for component in waiters:
                    self._sim.wake_at(component, visible_at)

    def _commit(self) -> bool:
        m = self._staged_mask
        if m.any():
            self._values[m] = self._staged_vals[m]
            m[:] = False
        return False


class PulseBank(WireBank):
    """``n`` pulse wires: each handle self-clears to ``default`` one
    cycle after being driven (see :class:`repro.sim.channel.PulseWire`)."""

    def __init__(self, sim: Simulator, name: str, n: int, default: int = 0):
        super().__init__(sim, name, n, init=default)
        self._default = default
        self._active = np.zeros(n, dtype=bool)

    def _commit(self) -> bool:
        m = self._staged_mask
        clear = self._active & ~m
        if clear.any():
            self._values[clear] = self._default
        if m.any():
            self._values[m] = self._staged_vals[m]
        # handles set this commit must self-clear next commit
        self._active, m = m.copy(), None
        self._staged_mask[:] = False
        return bool(self._active.any())


class FifoBank(_Bank):
    """``n`` bounded int FIFOs as one ``(n, capacity)`` ring array.

    Pushes are staged (visible next cycle), pops act on the committed
    queue — the :class:`repro.sim.channel.FIFO` discipline per handle.
    """

    def __init__(self, sim: Simulator, name: str, n: int, capacity: int):
        super().__init__(sim, name, n)
        if capacity < 1:
            raise SimError(
                f"bank {name!r}: capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring = np.zeros((n, capacity), dtype=np.int64)
        self._head = np.zeros(n, dtype=np.int64)
        self._count = np.zeros(n, dtype=np.int64)
        self._staged_items = np.zeros((n, capacity), dtype=np.int64)
        self._staged_count = np.zeros(n, dtype=np.int64)

    def ref(self, handle: int) -> FifoRef:
        self._check(handle)
        return FifoRef(self, handle)

    def can_push(self, handle: int, n: int = 1) -> bool:
        self._check(handle)
        if n < 1:
            raise SimError(
                f"bank {self.name!r}: can_push(n) needs n >= 1, got {n}")
        return int(self._count[handle] + self._staged_count[handle]) + n \
            <= self.capacity

    def push(self, handle: int, item: int) -> None:
        if not self.can_push(handle):
            raise SimError(
                f"bank {self.name!r}: handle {handle} overflow "
                f"(capacity {self.capacity})")
        self._staged_items[handle, self._staged_count[handle]] = item
        self._staged_count[handle] += 1
        self._staged(handle)

    def occupancy(self, handle: int) -> int:
        self._check(handle)
        return int(self._count[handle])

    @property
    def occupancies(self) -> "np.ndarray":
        """Committed depth of every FIFO (read-only view)."""
        view = self._count[: self.n]
        view.flags.writeable = False
        return view

    def peek(self, handle: int) -> Optional[int]:
        self._check(handle)
        if self._count[handle] == 0:
            return None
        return int(self._ring[handle, self._head[handle]])

    def pop(self, handle: int) -> int:
        self._check(handle)
        if self._count[handle] == 0:
            raise SimError(f"bank {self.name!r}: handle {handle} underflow")
        value = int(self._ring[handle, self._head[handle]])
        self._head[handle] = (self._head[handle] + 1) % self.capacity
        self._count[handle] -= 1
        return value

    def _commit(self) -> bool:
        staged = np.flatnonzero(self._staged_count)
        for handle in staged.tolist():
            k = int(self._staged_count[handle])
            pos = (self._head[handle] + self._count[handle]
                   + np.arange(k)) % self.capacity
            self._ring[handle, pos] = self._staged_items[handle, :k]
            self._count[handle] += k
            self._staged_count[handle] = 0
        return False


# ======================================================================
# timed structures for batch kernels
# ======================================================================
class IntervalSet:
    """Link/router occupancy intervals ``(start, end, id)`` as SoA arrays.

    List-compatible with the architectures' plain-list usage (append of
    3-tuples, iteration yielding the tuples, truthiness), plus the bulk
    operations a batch kernel needs: pruning, distinct-id occupancy at
    one cycle, and per-cycle distinct-id occupancy over a whole stretch
    in one array program.
    """

    __slots__ = ("name", "_starts", "_ends", "_ids", "_n")

    def __init__(self, name: str,
                 items: Sequence[Tuple[int, int, int]] = ()):
        self.name = name
        self._starts = np.empty(_MIN_CAP, dtype=np.int64)
        self._ends = np.empty(_MIN_CAP, dtype=np.int64)
        self._ids = np.empty(_MIN_CAP, dtype=np.int64)
        self._n = 0
        for item in items:
            self.append(item)

    def append(self, item: Tuple[int, int, int]) -> None:
        start, end, ident = item
        n = self._n
        if n == len(self._starts):
            self._starts = _grown(self._starts, n + 1)
            self._ends = _grown(self._ends, n + 1)
            self._ids = _grown(self._ids, n + 1)
        self._starts[n] = start
        self._ends[n] = end
        self._ids[n] = ident
        self._n = n + 1

    def __len__(self) -> int:
        return self._n

    def __bool__(self) -> bool:
        return self._n > 0

    def __iter__(self) -> Iterator[Tuple[int, int, int]]:
        for i in range(self._n):
            yield (int(self._starts[i]), int(self._ends[i]),
                   int(self._ids[i]))

    def prune(self, now: int) -> None:
        """Drop intervals with ``end <= now`` (already off the wire)."""
        n = self._n
        if n == 0:
            return
        keep = np.flatnonzero(self._ends[:n] > now)
        m = keep.size
        if m != n:
            self._starts[:m] = self._starts[keep]
            self._ends[:m] = self._ends[keep]
            self._ids[:m] = self._ids[keep]
            self._n = m

    def count_distinct_at(self, now: int) -> int:
        """Distinct ids with an interval covering ``now``."""
        n = self._n
        if n == 0:
            return 0
        s, e = self._starts[:n], self._ends[:n]
        mask = (s <= now) & (now < e)
        if not mask.any():
            return 0
        return int(np.unique(self._ids[:n][mask]).size)

    def active_counts(self, t0: int, t1: int) -> "np.ndarray":
        """Per-cycle distinct-id counts over cycles ``t0 .. t1-1``.

        The vectorized replay behind parallelism back-fill: intervals of
        one id are merged (a packet streaming over successive links must
        count once per cycle, exactly like the object kernel's per-cycle
        distinct-id set), then a +1/-1 difference array is accumulated
        and cumulatively summed — O(intervals + stretch) instead of the
        object kernel's O(intervals x stretch).
        """
        span = t1 - t0
        if span <= 0:
            return np.zeros(0, dtype=np.int64)
        diff = np.zeros(span + 1, dtype=np.int64)
        n = self._n
        if n == 0:
            return diff[:span]
        s = np.maximum(self._starts[:n], t0)
        e = np.minimum(self._ends[:n], t1)
        keep = s < e
        if not keep.any():
            return diff[:span]
        s, e, ids = s[keep], e[keep], self._ids[:n][keep]
        order = np.lexsort((s, ids))
        s, e, ids = s[order], e[order], ids[order]
        # merge per-id overlapping/adjacent-in-time intervals, then mark
        cur_id = cur_s = cur_e = None
        for i in range(ids.size):
            if cur_id is not None and ids[i] == cur_id and s[i] <= cur_e:
                if e[i] > cur_e:
                    cur_e = e[i]
                continue
            if cur_id is not None:
                diff[cur_s - t0] += 1
                diff[cur_e - t0] -= 1
            cur_id, cur_s, cur_e = ids[i], s[i], e[i]
        diff[cur_s - t0] += 1
        diff[cur_e - t0] -= 1
        return np.cumsum(diff[:span])

    def max_end(self) -> Optional[int]:
        if self._n == 0:
            return None
        return int(self._ends[: self._n].max())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IntervalSet({self.name!r}, n={self._n})"


class EventQueue:
    """Timed payloads ``(ready_cycle, ...)`` with insertion order kept.

    ``append`` takes the architectures' existing tuples (index 0 is the
    ready cycle); :meth:`pop_due` extracts everything due in insertion
    order with one mask instead of the object kernel's scan-and-remove,
    and :meth:`min_ready` gives the batch kernel its wake hint.
    """

    __slots__ = ("name", "_ready", "_items", "_n")

    def __init__(self, name: str, items: Sequence[Tuple] = ()):
        self.name = name
        self._ready = np.empty(_MIN_CAP, dtype=np.int64)
        self._items: List[Tuple] = []
        self._n = 0
        for item in items:
            self.append(item)

    def append(self, item: Tuple) -> None:
        n = self._n
        if n == len(self._ready):
            self._ready = _grown(self._ready, n + 1)
        self._ready[n] = item[0]
        self._items.append(item)
        self._n = n + 1

    def remove(self, item: Tuple) -> None:
        idx = self._items.index(item)
        del self._items[idx]
        n = self._n
        self._ready[idx:n - 1] = self._ready[idx + 1:n]
        self._n = n - 1

    def __len__(self) -> int:
        return self._n

    def __bool__(self) -> bool:
        return self._n > 0

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self._items)

    def pop_due(self, now: int) -> List[Tuple]:
        """Remove and return every item with ``ready <= now``, in
        insertion order (matching the object kernel's scan order)."""
        n = self._n
        if n == 0:
            return []
        ready = self._ready[:n]
        mask = ready <= now
        if not mask.any():
            return []
        items = self._items
        due = [items[i] for i in np.flatnonzero(mask).tolist()]
        keep = np.flatnonzero(~mask)
        m = keep.size
        self._ready[:m] = ready[keep]
        self._items = [items[i] for i in keep.tolist()]
        self._n = m
        return due

    def min_ready(self) -> Optional[int]:
        if self._n == 0:
            return None
        return int(self._ready[: self._n].min())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventQueue({self.name!r}, n={self._n})"


class CountdownSet:
    """Items with a per-item countdown (e.g. words left on a lane).

    The authoritative counts live in one int64 array so a whole skipped
    stretch decrements in one subtraction; the wrapped items' own
    counter attribute is kept in sync so object-path helper code that
    reads it (and the hybrid fallback) sees consistent state.
    """

    __slots__ = ("name", "attr", "_counts", "_items", "_n")

    def __init__(self, name: str, attr: str, items: Sequence[Any] = ()):
        self.name = name
        self.attr = attr
        self._counts = np.empty(_MIN_CAP, dtype=np.int64)
        self._items: List[Any] = []
        self._n = 0
        for item in items:
            self.append(item)

    def append(self, item: Any) -> None:
        n = self._n
        if n == len(self._counts):
            self._counts = _grown(self._counts, n + 1)
        self._counts[n] = getattr(item, self.attr)
        self._items.append(item)
        self._n = n + 1

    def remove(self, item: Any) -> None:
        idx = self._items.index(item)
        del self._items[idx]
        n = self._n
        self._counts[idx:n - 1] = self._counts[idx + 1:n]
        self._n = n - 1

    def __len__(self) -> int:
        return self._n

    def __bool__(self) -> bool:
        return self._n > 0

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    #: below this population, plain-Python loops over the (always in
    #: sync) item attributes beat numpy's per-call overhead — the
    #: per-cycle hot path of a busy-but-small fabric
    _SMALL = 32

    def decrement(self, by: int = 1) -> None:
        """Run every countdown down ``by`` cycles (none may cross zero
        except by exactly reaching it — the caller's hint guarantees
        no finish lies strictly inside a replayed stretch)."""
        n = self._n
        if n == 0 or by == 0:
            return
        attr = self.attr
        counts = self._counts
        if n <= self._SMALL:
            for i, item in enumerate(self._items):
                c = getattr(item, attr) - by
                setattr(item, attr, c)
                counts[i] = c
            return
        counts[:n] -= by
        for i, item in enumerate(self._items):
            setattr(item, attr, int(counts[i]))

    def take_finished(self) -> List[Any]:
        """Remove and return items whose countdown reached zero, in
        insertion order."""
        n = self._n
        if n == 0:
            return []
        items = self._items
        if n <= self._SMALL:
            attr = self.attr
            done = [it for it in items if getattr(it, attr) <= 0]
            if not done:
                return []
            counts = self._counts
            keep = [i for i, it in enumerate(items)
                    if getattr(it, attr) > 0]
            for j, i in enumerate(keep):
                counts[j] = counts[i]
            self._items = [items[i] for i in keep]
            self._n = len(keep)
            return done
        counts = self._counts[:n]
        mask = counts <= 0
        if not mask.any():
            return []
        done = [items[i] for i in np.flatnonzero(mask).tolist()]
        keep = np.flatnonzero(~mask)
        m = keep.size
        self._counts[:m] = counts[keep]
        self._items = [items[i] for i in keep.tolist()]
        self._n = m
        return done

    def min_count(self) -> Optional[int]:
        n = self._n
        if n == 0:
            return None
        if n <= self._SMALL:
            attr = self.attr
            return min(getattr(it, attr) for it in self._items)
        return int(self._counts[:n].min())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CountdownSet({self.name!r}, n={self._n})"
