"""The compiled-tick batch-kernel contract.

A *batch kernel* replaces one architecture's per-cycle object ``tick``
with an array program over the SoA stores.  The contract a component
must satisfy to install one (enforced statically by lint rule QL006 and
dynamically by the vec==object golden-equivalence suite):

``VEC_FIELDS``
    Class attribute: the ``self._x`` containers the kernel swaps for
    SoA structures.  The object-path tick may mutate hot state **only**
    through these fields (or ``VEC_SHARED``) — QL006 flags anything
    else, because state the kernel does not know about would silently
    drift between backends.

``VEC_SHARED``
    Class attribute: additional ``self._x`` state the object tick
    mutates that the kernel deliberately shares as-is (scalars and
    small dicts the batch replay updates arithmetically, stats/
    telemetry handles, RNG state).

Installation
    The architecture's ``__init__`` ends with ``self._init_vec()``
    (see :class:`repro.arch.base.CommArchitecture`); when
    ``sim.vectorized`` is set, ``_make_vec_kernel()`` returns the
    kernel and ``tick`` dispatches to it.  Everything outside ``tick``
    — fault hooks, event-phase callbacks, submit paths — keeps running
    the object code against the swapped containers, which is why the
    SoA structures are list-compatible.

Equivalence rules
    * A kernel's ``tick`` must leave *exactly* the state and statistics
      the object tick would have left at the same cycle: counters,
      histogram sample streams, trace events, delivery order.
    * Cross-cycle batching (returning a wake hint beyond ``now + 1``
      and replaying the skipped stretch arithmetically on the next
      tick) is only legal when the skipped ticks are deterministic
      from the state at sleep time.  State stashed *at sleep time*
      must drive the replay — live state may have been changed by
      event-phase fault hooks while the component slept.
    * Back-filled parallelism samples rely on the zero-filter
      invariant: ``_note_parallelism`` records only nonzero counts,
      and the object kernel is awake whenever the count is nonzero,
      so filtering zeros from a replayed stretch reproduces the object
      sample stream exactly regardless of where the object path slept.
    * When ``sim.telemetering`` is true the kernel must fall back to
      the object path's per-cycle hint (telemetry records per-tick
      queue depths and link busy counts); vectorized scans inside one
      tick remain legal.
    * Journey stamps (``sim.journeying`` — :mod:`repro.obs.journey`)
      need **no** kernel fallback: every stamp site lives on an
      object-code path (submits, grant/route/launch/serve decisions,
      transfer completions, deliveries) that both backends execute at
      identical cycles — the same invariant that already makes the
      delivery stream and ``latency.message`` histogram bit-identical.
      A kernel may therefore keep its cross-cycle batching with
      journeys on; the journey-record equality suite
      (``tests/obs/test_journey.py``) enforces this per architecture.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.sim.engine import Simulator

#: method names that synchronize kernel state back into the object-path
#: containers.  Object-path code that reads a ``VEC_FIELDS`` attribute
#: outside the tick path must call one of these first — lint rule QL010
#: (:mod:`repro.lint.race`) uses this tuple as its flush-site metadata,
#: so a renamed flush entry point must be reflected here.
VEC_FLUSH_SITES: Tuple[str, ...] = ("flush", "flush_kernels")

try:
    import numpy as np
except ImportError:  # pragma: no cover - guarded by sim.vectorized
    np = None  # type: ignore[assignment]


class BatchKernel:
    """Base class for per-architecture compiled-tick kernels.

    Holds the back-references and the shared back-fill helper; concrete
    kernels implement :meth:`tick` (and usually an ``install`` step in
    their constructor that swaps the architecture's hot containers for
    SoA structures from :mod:`repro.sim.vec.store`).
    """

    def __init__(self, arch) -> None:
        self.arch = arch
        self.sim: Simulator = arch._sim
        self._const_buf = None  # lazily grown np.full cache

    # ------------------------------------------------------------------
    def tick(self, sim: Simulator):
        """Run one (possibly stretch-replaying) vectorized tick; returns
        the architecture's quiescence hint."""
        raise NotImplementedError

    def flush(self, now: int) -> None:
        """Bring replayed accounting up to date through cycle ``now - 1``
        (the last cycle that has actually executed).

        A kernel sleeping through a busy stretch defers its per-cycle
        samples until the wake tick; if the run ends inside the stretch
        the object path would still have recorded every executed cycle.
        :meth:`VecSimulator.flush_kernels` calls this at ``run`` /
        ``run_until`` boundaries so snapshots taken there are
        bit-identical.  Must be idempotent and must leave the pending
        wake tick replaying only the remainder."""

    # ------------------------------------------------------------------
    def constant_samples(self, n: int, value: float) -> "np.ndarray":
        """``n`` copies of ``value`` as a float64 array, reusing one
        grow-only buffer — the back-fill shape for stretches whose
        parallelism count was constant (a read-only view is returned;
        histogram batch appends only read it)."""
        buf = self._const_buf
        if buf is None or buf.size < n:
            cap = max(64, n)
            buf = self._const_buf = np.empty(cap, dtype=np.float64)
        view = buf[:n]
        view.flags.writeable = True
        view[:] = value
        view.flags.writeable = False
        return view

    def backfill_constant(self, hist, n: int, value: float) -> None:
        """Append ``n`` copies of ``value`` to ``hist``.  Short stretches
        go through per-sample adds — cheaper than array setup below a
        few dozen samples — long ones through the batched append; both
        are bit-identical to the sequential object path."""
        if n < 32:
            add = hist.add
            for _ in range(n):
                add(value)
        else:
            hist.add_batch(self.constant_samples(n, value))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.arch.name!r})"
