"""Struct-of-arrays (SoA) backend for the synchronous kernel.

``repro.sim.vec`` holds the vectorized counterpart of the object
kernel: contiguous numpy arrays with integer handles for the hot
structures (wires, pulse wires, FIFOs, link/router occupancy intervals,
timed event queues, word countdowns), a :class:`VecSimulator` that
architectures detect to install their "compiled tick" batch kernels,
and the engine-selection helpers behind ``repro sweep --engine=vec``.

The backend is a pure optimization with the same golden-equivalence
guarantee as the activity-driven fast path: a vec run is bit-identical
to an object run in :meth:`~repro.sim.stats.StatsRegistry.snapshot`
and in trace fingerprints (see ``tests/sim/test_vec_equivalence.py``).
Components without a batch kernel fall back transparently to the
object kernel inside the same cycle loop (hybrid execution).

numpy is optional at import time: ``pip install repro[fast]`` pulls it
in explicitly, and :data:`HAVE_NUMPY`/:func:`require_numpy` gate every
array path so that the pure-Python object kernel keeps working when it
is absent (``VecSimulator`` then simply never vectorizes).
"""

from __future__ import annotations

try:  # optional [fast] extra — see pyproject.toml
    import numpy as _np  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised via tests' import stub
    HAVE_NUMPY = False


def require_numpy(feature: str = "the vec engine") -> None:
    """Raise a clean, actionable ImportError when numpy is missing."""
    if not HAVE_NUMPY:
        raise ImportError(
            f"{feature} needs numpy, which is not installed. "
            f"Install the fast extra (`pip install repro[fast]`) or plain "
            f"`pip install numpy`; without it the pure-Python object "
            f"kernel (--engine=object) remains fully functional."
        )


from repro.sim.vec.engine import (  # noqa: E402
    ENGINE_ENV,
    ENGINES,
    VecSimulator,
    engine_default,
    make_simulator,
)
from repro.sim.vec.kernels import BatchKernel  # noqa: E402
from repro.sim.vec.store import (  # noqa: E402
    CountdownSet,
    EventQueue,
    FifoBank,
    IntervalSet,
    PulseBank,
    WireBank,
)

__all__ = [
    "BatchKernel",
    "CountdownSet",
    "ENGINE_ENV",
    "ENGINES",
    "EventQueue",
    "FifoBank",
    "HAVE_NUMPY",
    "IntervalSet",
    "PulseBank",
    "VecSimulator",
    "WireBank",
    "engine_default",
    "make_simulator",
    "require_numpy",
]
