"""Measurement primitives: counters, histograms, time series.

All measurement in the reproduction flows through these classes so that
experiments can enumerate every probe via :class:`StatsRegistry` and
reports never reach into model internals.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy-less installs only
    np = None  # type: ignore[assignment]

#: log-bucket resolution: sub-buckets per power of two (relative error
#: of a bucketed percentile is at most ~1/(2*_SUBBUCKETS) ≈ 6%)
_SUBBUCKETS = 8
#: exponent bias keeping positive-value keys positive: frexp exponents
#: span about [-1074, 1024] for doubles, so |e * _SUBBUCKETS| < _BIAS
_BIAS = 16384

#: largest float64 that still represents every smaller non-negative
#: integer exactly; below it, integer-valued sums are associativity-free
_EXACT_SUM_LIMIT = float(2 ** 53)


def log_bucket(value: float) -> int:
    """Map a value onto a signed logarithmic bucket key.

    Keys order the same way values do, so sorted bucket keys walk the
    distribution in value order: negative values get negative keys,
    zero gets its own bucket (key 0), positive values positive keys.
    The mapping uses ``frexp`` (exact integer arithmetic on the float
    representation), so it is deterministic across runs and platforms.
    """
    if value == 0:
        return 0
    m, e = math.frexp(abs(value))
    sub = int((m - 0.5) * 2 * _SUBBUCKETS)
    if sub >= _SUBBUCKETS:  # m == nextafter(1, 0) rounding guard
        sub = _SUBBUCKETS - 1
    # e may be negative (|value| < 0.5); the bias keeps the magnitude
    # key positive so the sign of the key is the sign of the value
    key = _BIAS + e * _SUBBUCKETS + sub
    return key if value > 0 else -key


def bucket_value(key: int) -> float:
    """The representative (midpoint) value of a :func:`log_bucket` key."""
    if key == 0:
        return 0.0
    e, sub = divmod(abs(key) - _BIAS, _SUBBUCKETS)
    lo = math.ldexp(0.5 + sub / (2 * _SUBBUCKETS), e)
    hi = math.ldexp(0.5 + (sub + 1) / (2 * _SUBBUCKETS), e)
    mid = (lo + hi) / 2.0
    return mid if key > 0 else -mid


def _percentile(samples: Iterable[float], q: float) -> float:
    """Linear-interpolated percentile, the pure-Python stand-in for
    ``np.percentile`` on numpy-less installs (same method, so results
    agree up to float associativity)."""
    data = sorted(float(v) for v in samples)
    if not data:
        return math.nan
    rank = (len(data) - 1) * (q / 100.0)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return data[lo]
    return data[lo] + (data[hi] - data[lo]) * (rank - lo)


def _log_bucket_array(values: "np.ndarray") -> "np.ndarray":
    """Vectorized :func:`log_bucket` over a float64 array.

    ``np.frexp`` decomposes IEEE doubles exactly like ``math.frexp``
    and ``m - 0.5`` / the power-of-two scale are exact float ops, so
    every element's key equals the scalar function's result.
    """
    out = np.zeros(values.shape, dtype=np.int64)
    nz = values != 0
    if not nz.any():
        return out
    v = values[nz]
    m, e = np.frexp(np.abs(v))
    sub = ((m - 0.5) * (2 * _SUBBUCKETS)).astype(np.int64)
    np.minimum(sub, _SUBBUCKETS - 1, out=sub)
    key = _BIAS + e.astype(np.int64) * _SUBBUCKETS + sub
    np.negative(key, out=key, where=v < 0)
    out[nz] = key
    return out


class StreamingHistogram:
    """A bounded-memory streaming histogram: exact up to a cap.

    The first ``exact_cap`` samples are stored verbatim (percentiles
    are then exact, like :class:`Histogram`); beyond the cap new
    samples fold into logarithmic buckets (:func:`log_bucket`), so
    memory stays O(cap + buckets) however long the run.  Count, sum,
    sum of squares, min and max are tracked exactly in both regimes,
    so ``mean``/``std``/``min``/``max`` never degrade — only
    percentiles become bucketed approximations past the cap.

    This is the storage engine both for the opt-in *bucketed* mode of
    :class:`Histogram` and for the per-flow/per-link fabric telemetry
    in :mod:`repro.obs.flows`.
    """

    __slots__ = ("exact_cap", "_head", "_buckets", "count", "total",
                 "sumsq", "_min", "_max")

    def __init__(self, exact_cap: int = 512):
        if exact_cap < 1:
            raise ValueError(f"exact_cap must be >= 1, got {exact_cap}")
        self.exact_cap = exact_cap
        self._head: List[float] = []
        self._buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.sumsq = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.sumsq += value * value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if len(self._head) < self.exact_cap:
            self._head.append(value)
        else:
            key = log_bucket(value)
            self._buckets[key] = self._buckets.get(key, 0) + 1

    def extend(self, values: Iterable[float]) -> None:
        for v in values:
            self.add(v)

    def add_batch(self, values) -> None:
        """Fold a whole array of samples in, **bit-identical** to the
        same sequence of :meth:`add` calls.

        The one-shot accumulation is only taken when it provably cannot
        round differently from the sequential path: non-negative
        integer-valued samples whose running sums stay below 2**53 are
        associativity-free, so ``sum``/``sumsq`` match exactly (this
        covers the vec kernels' back-filled parallelism counts and
        cycle latencies).  Anything else — negatives, fractions, sums
        near the exact-integer limit — falls back to the per-sample
        loop rather than risk a divergent float total.
        """
        if np is None:
            for v in values:
                self.add(v)
            return
        arr = np.asarray(values, dtype=np.float64).reshape(-1)
        n = int(arr.size)
        if n == 0:
            return
        if n < 16:
            # below this, per-sample adds beat the array machinery
            for v in arr.tolist():
                self.add(v)
            return
        tot = float(arr.sum())
        ssq = float(np.square(arr).sum())
        safe = (
            bool(np.all(arr == np.floor(arr)))
            and float(arr.min()) >= 0.0
            and self.total == math.floor(self.total)
            and self.sumsq == math.floor(self.sumsq)
            and self.total + tot < _EXACT_SUM_LIMIT
            and self.sumsq + ssq < _EXACT_SUM_LIMIT
        )
        if not safe:
            for v in arr.tolist():
                self.add(v)
            return
        self.count += n
        self.total += tot
        self.sumsq += ssq
        lo, hi = float(arr.min()), float(arr.max())
        if lo < self._min:
            self._min = lo
        if hi > self._max:
            self._max = hi
        fill = self.exact_cap - len(self._head)
        if fill > 0:
            take = min(fill, n)
            self._head.extend(arr[:take].tolist())
            arr = arr[take:]
        if arr.size:
            keys, counts = np.unique(_log_bucket_array(arr),
                                     return_counts=True)
            buckets = self._buckets
            for key, cnt in zip(keys.tolist(), counts.tolist()):
                buckets[key] = buckets.get(key, 0) + cnt

    @property
    def exact(self) -> bool:
        """True while every sample is still stored verbatim."""
        return not self._buckets

    @property
    def head(self) -> Tuple[float, ...]:
        """The verbatim-sample prefix (everything, while under the cap)."""
        return tuple(self._head)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    @property
    def std(self) -> float:
        if not self.count:
            return math.nan
        m = self.total / self.count
        return math.sqrt(max(self.sumsq / self.count - m * m, 0.0))

    @property
    def min(self) -> float:
        return self._min if self.count else math.nan

    @property
    def max(self) -> float:
        return self._max if self.count else math.nan

    def percentile(self, q: float) -> float:
        """Exact (interpolated) while under the cap; nearest-rank over
        the retained head plus bucket midpoints once bucketed."""
        if not self.count:
            return math.nan
        if not self._buckets:
            if np is None:
                return _percentile(self._head, q)
            return float(np.percentile(self._head, q))
        pairs = sorted(
            [(v, 1) for v in self._head]
            + [(bucket_value(k), n) for k, n in self._buckets.items()]
        )
        rank = min(self.count, max(1, math.ceil(q / 100.0 * self.count)))
        seen = 0
        for value, n in pairs:
            seen += n
            if seen >= rank:
                return value
        return pairs[-1][0]  # pragma: no cover - rank <= count always hits

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.min,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.max,
        }

    def as_dict(self) -> Dict[str, object]:
        """Deterministic plain-data form (snapshot/JSON-friendly)."""
        return {
            "mode": "bucketed",
            "count": self.count,
            "sum": self.total,
            "sumsq": self.sumsq,
            "min": self._min if self.count else None,
            "max": self._max if self.count else None,
            "head": list(self._head),
            "buckets": {str(k): self._buckets[k]
                        for k in sorted(self._buckets)},
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (f"StreamingHistogram(n={self.count}, "
                f"exact={not self._buckets})")


class Counter:
    """A monotonically increasing event counter."""

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r}: negative increment {n}")
        self.value += n

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name!r}, {self.value})"


class Histogram:
    """A sample store with summary statistics.

    The default *exact* mode keeps every sample (experiments here are
    small enough), so percentiles are exact rather than bucketed
    approximations — and paper tables derived from them are
    bit-identical run to run.  The opt-in *bucketed* mode
    (``Histogram(name, mode="bucketed")``) delegates storage to a
    :class:`StreamingHistogram`, bounding memory for long-running
    traffic experiments: count/mean/std/min/max stay exact, while
    percentiles become log-bucketed approximations once the sample
    count passes the exact cap.
    """

    MODES = ("exact", "bucketed")

    def __init__(self, name: str, mode: str = "exact",
                 exact_cap: int = 4096):
        if mode not in self.MODES:
            raise ValueError(
                f"histogram {name!r}: unknown mode {mode!r} "
                f"(expected one of {self.MODES})"
            )
        self.name = name
        self.mode = mode
        self._stream: Optional[StreamingHistogram] = (
            StreamingHistogram(exact_cap) if mode == "bucketed" else None
        )
        self._samples: List[float] = []

    def add(self, value: float) -> None:
        if self._stream is not None:
            self._stream.add(value)
        else:
            self._samples.append(float(value))

    def extend(self, values: Iterable[float]) -> None:
        if self._stream is not None:
            self._stream.extend(values)
        else:
            self._samples.extend(float(v) for v in values)

    def add_batch(self, values) -> None:
        """Append an array of samples in one call, bit-identical to
        per-sample :meth:`add` (the vec kernels' record path)."""
        if self._stream is not None:
            self._stream.add_batch(values)
            return
        if np is None:
            self._samples.extend(float(v) for v in values)
            return
        arr = np.asarray(values, dtype=np.float64).reshape(-1)
        if arr.size:
            self._samples.extend(arr.tolist())

    @property
    def count(self) -> int:
        if self._stream is not None:
            return self._stream.count
        return len(self._samples)

    @property
    def samples(self) -> Tuple[float, ...]:
        """All samples (exact mode) or the verbatim head retained
        before bucketing began (bucketed mode)."""
        if self._stream is not None:
            return self._stream.head
        return tuple(self._samples)

    @property
    def total(self) -> float:
        """Sum of all samples (exact in both modes)."""
        if self._stream is not None:
            return self._stream.total
        return float(sum(self._samples))

    @property
    def mean(self) -> float:
        if self._stream is not None:
            return self._stream.mean
        if not self._samples:
            return math.nan
        if np is None:
            return math.fsum(self._samples) / len(self._samples)
        return float(np.mean(self._samples))

    @property
    def std(self) -> float:
        if self._stream is not None:
            return self._stream.std
        if not self._samples:
            return math.nan
        if np is None:
            m = math.fsum(self._samples) / len(self._samples)
            var = math.fsum((v - m) ** 2 for v in self._samples)
            return math.sqrt(var / len(self._samples))
        return float(np.std(self._samples))

    @property
    def min(self) -> float:
        if self._stream is not None:
            return self._stream.min
        return min(self._samples) if self._samples else math.nan

    @property
    def max(self) -> float:
        if self._stream is not None:
            return self._stream.max
        return max(self._samples) if self._samples else math.nan

    def percentile(self, q: float) -> float:
        if self._stream is not None:
            return self._stream.percentile(q)
        if not self._samples:
            return math.nan
        if np is None:
            return _percentile(self._samples, q)
        return float(np.percentile(self._samples, q))

    def _snapshot_state(self) -> object:
        """Snapshot form: the full sample list (exact mode) or the
        deterministic streaming-state dict (bucketed mode)."""
        if self._stream is not None:
            return self._stream.as_dict()
        return list(self._samples)

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.min,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.max,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.3g})"


class TimeSeries:
    """(cycle, value) samples, e.g. link utilization over time."""

    def __init__(self, name: str):
        self.name = name
        self._cycles: List[int] = []
        self._values: List[float] = []

    def record(self, cycle: int, value: float) -> None:
        if self._cycles and cycle < self._cycles[-1]:
            raise ValueError(
                f"time series {self.name!r}: non-monotonic cycle {cycle}"
            )
        self._cycles.append(cycle)
        self._values.append(float(value))

    @property
    def cycles(self) -> "np.ndarray":
        if np is None:
            raise ImportError(
                "TimeSeries array views need numpy: pip install repro[fast]"
            )
        return np.asarray(self._cycles, dtype=np.int64)

    @property
    def values(self) -> "np.ndarray":
        if np is None:
            raise ImportError(
                "TimeSeries array views need numpy: pip install repro[fast]"
            )
        return np.asarray(self._values, dtype=np.float64)

    def __len__(self) -> int:
        return len(self._cycles)

    def window_mean(self, start: int, end: int) -> float:
        """Mean of samples with start <= cycle < end."""
        if np is None:
            hits = [v for c, v in zip(self._cycles, self._values)
                    if start <= c < end]
            return math.fsum(hits) / len(hits) if hits else math.nan
        c = self.cycles
        mask = (c >= start) & (c < end)
        if not mask.any():
            return math.nan
        return float(self.values[mask].mean())


class StatsRegistry:
    """Namespaced factory for probes; one per simulator."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._series: Dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def histogram(self, name: str, mode: Optional[str] = None,
                  exact_cap: int = 4096) -> Histogram:
        """Get or create a histogram.  ``mode`` selects the storage on
        first creation ("exact" default, "bucketed" bounded); passing a
        conflicting mode for an existing histogram raises."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = Histogram(name, mode=mode or "exact",
                             exact_cap=exact_cap)
            self._histograms[name] = hist
        elif mode is not None and hist.mode != mode:
            raise ValueError(
                f"histogram {name!r} already exists with mode "
                f"{hist.mode!r}, requested {mode!r}"
            )
        return hist

    def series(self, name: str) -> TimeSeries:
        if name not in self._series:
            self._series[name] = TimeSeries(name)
        return self._series[name]

    def counters(self, prefix: str = "") -> Dict[str, int]:
        return {
            k: c.value for k, c in sorted(self._counters.items())
            if k.startswith(prefix)
        }

    def histograms(self, prefix: str = "") -> Dict[str, Histogram]:
        return {
            k: h for k, h in sorted(self._histograms.items())
            if k.startswith(prefix)
        }

    def get_counter(self, name: str) -> Optional[Counter]:
        return self._counters.get(name)

    def get_histogram(self, name: str) -> Optional[Histogram]:
        return self._histograms.get(name)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A deep, plain-data snapshot of every probe.

        Counters become ints, histograms their full ordered sample
        lists (or, in bucketed mode, their deterministic streaming
        state), time series their (cycles, values) lists.  Two runs are
        behaviourally identical iff their snapshots compare equal —
        this is what the fast-path golden-equivalence tests assert.
        """
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "histograms": {
                k: h._snapshot_state()
                for k, h in sorted(self._histograms.items())
            },
            "series": {
                k: (list(s._cycles), list(s._values))
                for k, s in sorted(self._series.items())
            },
        }


class CounterSnapshot:
    """Windowed counter deltas: snapshot, run, diff.

    The E6/E11-style experiments measure "what happened during phase
    X"; diffing two snapshots gives exactly that without resetting the
    live registry.
    """

    def __init__(self, registry: "StatsRegistry", prefix: str = ""):
        self.registry = registry
        self.prefix = prefix
        self._baseline = registry.counters(prefix)

    def delta(self) -> Dict[str, int]:
        """Counter increments since the snapshot (new counters included)."""
        now = self.registry.counters(self.prefix)
        return {
            name: value - self._baseline.get(name, 0)
            for name, value in now.items()
            if value != self._baseline.get(name, 0)
        }

    def rebase(self) -> None:
        """Make the current values the new baseline."""
        self._baseline = self.registry.counters(self.prefix)
