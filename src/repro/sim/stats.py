"""Measurement primitives: counters, histograms, time series.

All measurement in the reproduction flows through these classes so that
experiments can enumerate every probe via :class:`StatsRegistry` and
reports never reach into model internals.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np


class Counter:
    """A monotonically increasing event counter."""

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r}: negative increment {n}")
        self.value += n

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name!r}, {self.value})"


class Histogram:
    """An exact sample store with summary statistics.

    Samples are kept in full (experiments here are small enough) so
    percentiles are exact rather than bucketed approximations.
    """

    def __init__(self, name: str):
        self.name = name
        self._samples: List[float] = []

    def add(self, value: float) -> None:
        self._samples.append(float(value))

    def extend(self, values: Iterable[float]) -> None:
        self._samples.extend(float(v) for v in values)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> Tuple[float, ...]:
        return tuple(self._samples)

    @property
    def mean(self) -> float:
        return float(np.mean(self._samples)) if self._samples else math.nan

    @property
    def std(self) -> float:
        return float(np.std(self._samples)) if self._samples else math.nan

    @property
    def min(self) -> float:
        return min(self._samples) if self._samples else math.nan

    @property
    def max(self) -> float:
        return max(self._samples) if self._samples else math.nan

    def percentile(self, q: float) -> float:
        if not self._samples:
            return math.nan
        return float(np.percentile(self._samples, q))

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.min,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.max,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.3g})"


class TimeSeries:
    """(cycle, value) samples, e.g. link utilization over time."""

    def __init__(self, name: str):
        self.name = name
        self._cycles: List[int] = []
        self._values: List[float] = []

    def record(self, cycle: int, value: float) -> None:
        if self._cycles and cycle < self._cycles[-1]:
            raise ValueError(
                f"time series {self.name!r}: non-monotonic cycle {cycle}"
            )
        self._cycles.append(cycle)
        self._values.append(float(value))

    @property
    def cycles(self) -> np.ndarray:
        return np.asarray(self._cycles, dtype=np.int64)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._values, dtype=np.float64)

    def __len__(self) -> int:
        return len(self._cycles)

    def window_mean(self, start: int, end: int) -> float:
        """Mean of samples with start <= cycle < end."""
        c = self.cycles
        mask = (c >= start) & (c < end)
        if not mask.any():
            return math.nan
        return float(self.values[mask].mean())


class StatsRegistry:
    """Namespaced factory for probes; one per simulator."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._series: Dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def series(self, name: str) -> TimeSeries:
        if name not in self._series:
            self._series[name] = TimeSeries(name)
        return self._series[name]

    def counters(self, prefix: str = "") -> Dict[str, int]:
        return {
            k: c.value for k, c in sorted(self._counters.items())
            if k.startswith(prefix)
        }

    def histograms(self, prefix: str = "") -> Dict[str, Histogram]:
        return {
            k: h for k, h in sorted(self._histograms.items())
            if k.startswith(prefix)
        }

    def get_counter(self, name: str) -> Optional[Counter]:
        return self._counters.get(name)

    def get_histogram(self, name: str) -> Optional[Histogram]:
        return self._histograms.get(name)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A deep, plain-data snapshot of every probe.

        Counters become ints, histograms their full ordered sample
        lists, time series their (cycles, values) lists.  Two runs are
        behaviourally identical iff their snapshots compare equal —
        this is what the fast-path golden-equivalence tests assert.
        """
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "histograms": {
                k: list(h._samples) for k, h in sorted(self._histograms.items())
            },
            "series": {
                k: (list(s._cycles), list(s._values))
                for k, s in sorted(self._series.items())
            },
        }


class CounterSnapshot:
    """Windowed counter deltas: snapshot, run, diff.

    The E6/E11-style experiments measure "what happened during phase
    X"; diffing two snapshots gives exactly that without resetting the
    live registry.
    """

    def __init__(self, registry: "StatsRegistry", prefix: str = ""):
        self.registry = registry
        self.prefix = prefix
        self._baseline = registry.counters(prefix)

    def delta(self) -> Dict[str, int]:
        """Counter increments since the snapshot (new counters included)."""
        now = self.registry.counters(self.prefix)
        return {
            name: value - self._baseline.get(name, 0)
            for name, value in now.items()
            if value != self._baseline.get(name, 0)
        }

    def rebase(self) -> None:
        """Make the current values the new baseline."""
        self._baseline = self.registry.counters(self.prefix)
