"""Bounded exponential backoff, shared across retry paths.

Three subsystems retry with exponential backoff: the reconfiguration
manager's bitstream-corruption retries, RMBoC's fault-escalated
channel re-setup (``fault_backoff_cap``), and the control plane's
guarded actuation pipeline.  They must all agree on the same bounded
formula so a retry storm can never grow an unbounded wait, and any
jitter must come from a deterministic stream so same-seed runs stay
byte-identical.

``bounded_backoff`` reproduces the historical formulas bit-for-bit:

* ``base * (1 << (attempt - 1))`` shifted growth,
* the shift clamped at ``shift_cap`` so the doubling cannot overflow,
* the result clamped at ``cap`` when one is given.

``deterministic_jitter`` derives a small offset from a crc32 of the
caller-supplied stream parts (the same keying scheme as
:func:`repro.sim.rng.make_rng`'s ``_stream_key``), so it needs no
numpy and no RNG object: the same ``(span, parts)`` always yields the
same offset, and distinct parts decorrelate retry times that would
otherwise collide in lockstep.
"""

from __future__ import annotations

import zlib
from typing import Optional

__all__ = ["bounded_backoff", "deterministic_jitter"]

#: default clamp on the exponent so ``1 << n`` stays a small int
DEFAULT_SHIFT_CAP = 16


def bounded_backoff(base: int, attempt: int, *,
                    cap: Optional[int] = None,
                    shift_cap: int = DEFAULT_SHIFT_CAP) -> int:
    """Backoff (in cycles) before retry number ``attempt`` (1-based).

    ``base * 2**(attempt-1)``, with the exponent clamped to
    ``shift_cap`` and the product clamped to ``cap`` when given.
    ``attempt <= 1`` yields ``base`` — callers never wait a negative
    or zero-shifted amount for their first retry.
    """
    if base < 0:
        raise ValueError(f"backoff base must be >= 0, got {base}")
    shift = min(max(attempt - 1, 0), shift_cap)
    backoff = base * (1 << shift)
    if cap is not None:
        backoff = min(backoff, cap)
    return backoff


def deterministic_jitter(span: int, *parts: object) -> int:
    """A stable pseudo-random offset in ``[0, span)``.

    Derived from a crc32 over the stream parts (rule name, target,
    attempt number, ...), matching the stream-keying discipline of
    :func:`repro.sim.rng.make_rng` without requiring numpy.  ``span <=
    1`` always yields 0.
    """
    if span <= 1:
        return 0
    key = "/".join(str(p) for p in parts)
    return zlib.crc32(key.encode()) % span
