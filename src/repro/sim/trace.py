"""Event tracing: an opt-in protocol/transaction log with spans.

Attach a :class:`Tracer` to a simulator and every instrumented model
point (``sim.emit(...)``) records a timestamped event — circuit
requests, TDMA frame launches, route decisions, reconfiguration
phases.  *Spans* add duration to the picture: ``sim.span(...)`` (a
context manager) and the ``sim.span_begin`` / ``sim.span_end`` pair
record begin/end cycles for things that take time — an RMBoC circuit
lifetime, a TDMA frame on the wire, a DyNoC surround-routing detour, a
reconfiguration phase.

Tracing is off by default.  With no tracer attached, ``sim.emit`` costs
one attribute test, and the hot emit sites additionally guard on the
``sim.tracing`` flag so not even the keyword-argument dict is built.

Capacity is bounded by ``max_events``.  ``keep`` selects which side of
a too-long run survives:

* ``"head"`` — keep the *first* ``max_events`` events and drop the
  newest (the historical behaviour);
* ``"tail"`` — a ring buffer: evict the oldest so the *end* of the run
  — usually the interesting part — stays observable.

``dropped`` counts evictions accurately in both modes.  Events and
spans are bounded independently (each by ``max_events``).

Typical use::

    sim.tracer = Tracer(max_events=10_000, keep="tail")
    ...run...
    for ev in sim.tracer.query(kind="establish"):
        print(ev)
    for sp in sim.tracer.query_spans(kind="circuit"):
        print(sp.duration, sp.data)
    print(sim.tracer.render_timeline(kinds={"request", "establish"}))

Exporters for Chrome trace-event / Perfetto JSON and Prometheus text
live in :mod:`repro.obs`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Deque,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)


@dataclass(frozen=True)
class TraceEvent:
    cycle: int
    source: str    # emitting component ("rmboc", "reconfig", ...)
    kind: str      # event kind ("request", "frame", "route", ...)
    data: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        payload = " ".join(f"{k}={v}" for k, v in self.data.items())
        return f"[{self.cycle:>8}] {self.source}.{self.kind} {payload}"


@dataclass(frozen=True)
class SpanEvent:
    """A duration event: something that began and ended on the sim clock."""

    begin: int
    end: int
    source: str
    kind: str
    data: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> int:
        """Cycles covered (end - begin; 0 for a same-cycle span)."""
        return self.end - self.begin

    def __str__(self) -> str:
        payload = " ".join(f"{k}={v}" for k, v in self.data.items())
        return (f"[{self.begin:>8}..{self.end:>8}] "
                f"{self.source}.{self.kind} {payload}")


class Tracer:
    """Bounded in-memory event/span store with simple querying."""

    def __init__(self, max_events: int = 100_000, keep: str = "head"):
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        if keep not in ("head", "tail"):
            raise ValueError(f"keep must be 'head' or 'tail', got {keep!r}")
        self.max_events = max_events
        self.keep = keep
        self._events: Deque[TraceEvent] = deque()
        self._spans: Deque[SpanEvent] = deque()
        # open spans by (source, kind, key): (begin cycle, begin data)
        self._open: Dict[Tuple[str, str, Hashable],
                         Tuple[int, Dict[str, Any]]] = {}
        self.dropped = 0
        self.dropped_spans = 0
        #: span_end calls that matched no open span (wiring bugs show here)
        self.unmatched_span_ends = 0

    # ------------------------------------------------------------------
    # point events
    # ------------------------------------------------------------------
    def record(self, cycle: int, source: str, kind: str,
               data: Dict[str, Any]) -> None:
        if len(self._events) >= self.max_events:
            self.dropped += 1
            if self.keep == "head":
                return
            self._events.popleft()
        self._events.append(TraceEvent(cycle, source, kind, data))

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    def begin_span(self, cycle: int, source: str, kind: str,
                   key: Hashable = None,
                   data: Optional[Dict[str, Any]] = None) -> None:
        """Open a span; ``key`` distinguishes concurrent spans of the
        same (source, kind).  Re-beginning an open span restarts it."""
        self._open[(source, kind, key)] = (cycle, dict(data or {}))

    def end_span(self, cycle: int, source: str, kind: str,
                 key: Hashable = None,
                 data: Optional[Dict[str, Any]] = None) -> None:
        """Close an open span and record it (end data wins on key
        clashes).  Ends with no matching begin are counted and dropped."""
        opened = self._open.pop((source, kind, key), None)
        if opened is None:
            self.unmatched_span_ends += 1
            return
        begin, merged = opened
        if data:
            merged.update(data)
        self.add_span(begin, cycle, source, kind, merged)

    def add_span(self, begin: int, end: int, source: str, kind: str,
                 data: Optional[Dict[str, Any]] = None) -> None:
        """Record a span whose begin/end are already known (e.g. a TDMA
        frame whose duration is computed at launch)."""
        if len(self._spans) >= self.max_events:
            self.dropped_spans += 1
            if self.keep == "head":
                return
            self._spans.popleft()
        self._spans.append(SpanEvent(begin, end, source, kind,
                                     dict(data or {})))

    def open_spans(self) -> List[Tuple[str, str, Hashable, int]]:
        """Still-open spans as (source, kind, key, begin_cycle) — useful
        when a run ends mid-protocol."""
        return [(s, k, key, begin)
                for (s, k, key), (begin, _) in self._open.items()]

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    @property
    def spans(self) -> List[SpanEvent]:
        return list(self._spans)

    def query(self, source: Optional[str] = None,
              kind: Optional[str] = None,
              since: int = 0,
              until: Optional[int] = None,
              **data_filters: Any) -> List[TraceEvent]:
        """Events matching all given criteria (data fields by equality)."""
        out = []
        for ev in self._events:
            if source is not None and ev.source != source:
                continue
            if kind is not None and ev.kind != kind:
                continue
            if ev.cycle < since:
                continue
            if until is not None and ev.cycle >= until:
                continue
            if any(ev.data.get(k) != v for k, v in data_filters.items()):
                continue
            out.append(ev)
        return out

    def query_spans(self, source: Optional[str] = None,
                    kind: Optional[str] = None,
                    since: int = 0,
                    until: Optional[int] = None,
                    **data_filters: Any) -> List[SpanEvent]:
        """Spans matching all given criteria (cycle window on ``begin``)."""
        out = []
        for sp in self._spans:
            if source is not None and sp.source != source:
                continue
            if kind is not None and sp.kind != kind:
                continue
            if sp.begin < since:
                continue
            if until is not None and sp.begin >= until:
                continue
            if any(sp.data.get(k) != v for k, v in data_filters.items()):
                continue
            out.append(sp)
        return out

    def kinds(self) -> Set[str]:
        return {ev.kind for ev in self._events}

    def span_kinds(self) -> Set[str]:
        return {sp.kind for sp in self._spans}

    def clear(self) -> None:
        self._events.clear()
        self._spans.clear()
        self._open.clear()
        self.dropped = 0
        self.dropped_spans = 0
        self.unmatched_span_ends = 0

    # ------------------------------------------------------------------
    def render_timeline(self, kinds: Optional[Iterable[str]] = None,
                        limit: int = 200) -> str:
        """Human-readable chronological dump (optionally filtered)."""
        wanted = set(kinds) if kinds is not None else None
        lines = []
        for ev in self._events:
            if wanted is not None and ev.kind not in wanted:
                continue
            lines.append(str(ev))
            if len(lines) >= limit:
                lines.append(f"... (truncated at {limit} lines)")
                break
        if self.dropped:
            side = "newest" if self.keep == "head" else "oldest"
            lines.append(
                f"... ({self.dropped} {side} events dropped at capacity)"
            )
        return "\n".join(lines)
