"""Event tracing: an opt-in protocol/transaction log.

Attach a :class:`Tracer` to a simulator and every instrumented model
point (`sim.emit(...)`) records a timestamped event — circuit requests,
TDMA frame launches, route decisions, reconfiguration phases. Tracing
is off by default and costs one attribute test per emit when disabled.

Typical use::

    sim.tracer = Tracer(max_events=10_000)
    ...run...
    for ev in sim.tracer.query(kind="establish"):
        print(ev)
    print(sim.tracer.render_timeline(kinds={"request", "establish"}))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set


@dataclass(frozen=True)
class TraceEvent:
    cycle: int
    source: str    # emitting component ("rmboc", "reconfig", ...)
    kind: str      # event kind ("request", "frame", "route", ...)
    data: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        payload = " ".join(f"{k}={v}" for k, v in self.data.items())
        return f"[{self.cycle:>8}] {self.source}.{self.kind} {payload}"


class Tracer:
    """Bounded in-memory event store with simple querying."""

    def __init__(self, max_events: int = 100_000):
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.max_events = max_events
        self._events: List[TraceEvent] = []
        self.dropped = 0

    # ------------------------------------------------------------------
    def record(self, cycle: int, source: str, kind: str,
               data: Dict[str, Any]) -> None:
        if len(self._events) >= self.max_events:
            self.dropped += 1
            return
        self._events.append(TraceEvent(cycle, source, kind, data))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def query(self, source: Optional[str] = None,
              kind: Optional[str] = None,
              since: int = 0,
              until: Optional[int] = None,
              **data_filters: Any) -> List[TraceEvent]:
        """Events matching all given criteria (data fields by equality)."""
        out = []
        for ev in self._events:
            if source is not None and ev.source != source:
                continue
            if kind is not None and ev.kind != kind:
                continue
            if ev.cycle < since:
                continue
            if until is not None and ev.cycle >= until:
                continue
            if any(ev.data.get(k) != v for k, v in data_filters.items()):
                continue
            out.append(ev)
        return out

    def kinds(self) -> Set[str]:
        return {ev.kind for ev in self._events}

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0

    # ------------------------------------------------------------------
    def render_timeline(self, kinds: Optional[Iterable[str]] = None,
                        limit: int = 200) -> str:
        """Human-readable chronological dump (optionally filtered)."""
        wanted = set(kinds) if kinds is not None else None
        lines = []
        for ev in self._events:
            if wanted is not None and ev.kind not in wanted:
                continue
            lines.append(str(ev))
            if len(lines) >= limit:
                lines.append(f"... (truncated at {limit} lines)")
                break
        if self.dropped:
            lines.append(f"... ({self.dropped} events dropped at capacity)")
        return "\n".join(lines)
