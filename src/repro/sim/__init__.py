"""Synchronous cycle-level simulation kernel.

The kernel models a fully synchronous digital system the way RTL does:

* every :class:`~repro.sim.component.Component` has a ``tick`` method that
  is invoked once per clock cycle and may only *stage* new values onto
  :class:`~repro.sim.channel.Wire` / :class:`~repro.sim.channel.FIFO`
  objects;
* after every component has ticked, the simulator *commits* all staged
  state in one step, which makes the kernel insensitive to component
  evaluation order — exactly like a bank of flip-flops on a clock edge.

A small scheduled-event facility (``Simulator.at`` / ``Simulator.after``)
models asynchronous control actions such as partial reconfiguration,
which in hardware are driven by a configuration port rather than the
user clock.

The kernel is activity-driven by default: components may return
:data:`SLEEP` (or a wake cycle) from ``tick`` to leave the hot loop
while idle, and only channels with staged writes are committed.  See
``repro.sim.engine`` for the fast path and its equivalence guarantee.
"""

from repro.sim.channel import FIFO, PulseWire, Wire
from repro.sim.component import Channel, Component, QuiescenceHint
from repro.sim.engine import SLEEP, KernelMetrics, SimError, Simulator
from repro.sim.rng import make_rng, spawn_rngs
from repro.sim.stats import (
    Counter,
    CounterSnapshot,
    Histogram,
    StatsRegistry,
    StreamingHistogram,
    TimeSeries,
)
from repro.sim.trace import SpanEvent, TraceEvent, Tracer
from repro.sim.vec import (
    ENGINE_ENV,
    ENGINES,
    VecSimulator,
    engine_default,
    make_simulator,
)

__all__ = [
    "Channel",
    "Component",
    "ENGINES",
    "ENGINE_ENV",
    "VecSimulator",
    "engine_default",
    "make_simulator",
    "Counter",
    "CounterSnapshot",
    "FIFO",
    "Histogram",
    "KernelMetrics",
    "PulseWire",
    "QuiescenceHint",
    "SLEEP",
    "SimError",
    "Simulator",
    "SpanEvent",
    "StatsRegistry",
    "StreamingHistogram",
    "TimeSeries",
    "TraceEvent",
    "Tracer",
    "Wire",
    "make_rng",
    "spawn_rngs",
]
