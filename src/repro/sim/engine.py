"""The synchronous simulator core.

The :class:`Simulator` advances a global clock. Each cycle proceeds in
three strictly ordered phases:

1. **events** — callbacks scheduled for this cycle fire (configuration
   port actions, workload phase changes, test instrumentation);
2. **tick** — every registered component's ``tick`` runs; components read
   only *committed* state and stage writes;
3. **commit** — all registered sequential elements latch their staged
   state.

Because components see only committed state, the result of a cycle never
depends on component registration order; this is asserted by the
property tests in ``tests/sim/test_engine_properties.py``.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Iterable, List, Optional, Tuple

from repro.sim.stats import StatsRegistry


class SimError(RuntimeError):
    """Raised for structural misuse of the simulation kernel."""


class Simulator:
    """A synchronous, deterministic cycle-level simulator.

    Parameters
    ----------
    name:
        Label used in error messages and reports.
    max_cycles:
        Hard safety bound; :meth:`run_until` raises :class:`SimError`
        when the bound is exceeded, which turns livelocks in a model
        into test failures instead of hangs.
    """

    def __init__(self, name: str = "sim", max_cycles: int = 10_000_000):
        self.name = name
        self.cycle = 0
        self.max_cycles = max_cycles
        self.stats = StatsRegistry()
        #: optional repro.sim.trace.Tracer; emit() is a no-op while None
        self.tracer = None
        self._components: List["Component"] = []
        self._sequentials: List[object] = []
        self._events: List[Tuple[int, int, Callable[["Simulator"], None]]] = []
        self._event_seq = itertools.count()
        self._running = False
        self._stopped = False

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def add(self, component: "Component") -> "Component":
        """Register a component; returns it for chaining."""
        from repro.sim.component import Component

        if not isinstance(component, Component):
            raise SimError(f"{component!r} is not a Component")
        self._components.append(component)
        component.bind(self)
        return component

    def add_all(self, components: Iterable["Component"]) -> None:
        for c in components:
            self.add(c)

    def remove(self, component: "Component") -> None:
        """Unregister a component (used when a module is reconfigured out)."""
        try:
            self._components.remove(component)
        except ValueError:
            raise SimError(f"{component.name!r} is not registered") from None

    def register_sequential(self, element: object) -> None:
        """Register an object exposing ``_commit()`` to be latched each cycle."""
        if not hasattr(element, "_commit"):
            raise SimError(f"{element!r} has no _commit method")
        self._sequentials.append(element)

    def unregister_sequential(self, element: object) -> None:
        try:
            self._sequentials.remove(element)
        except ValueError:
            pass

    @property
    def components(self) -> Tuple["Component", ...]:
        return tuple(self._components)

    # ------------------------------------------------------------------
    # event scheduling
    # ------------------------------------------------------------------
    def at(self, cycle: int, fn: Callable[["Simulator"], None]) -> None:
        """Schedule ``fn(sim)`` to run at the start of ``cycle``."""
        if cycle < self.cycle:
            raise SimError(
                f"cannot schedule event at cycle {cycle}; now at {self.cycle}"
            )
        heapq.heappush(self._events, (cycle, next(self._event_seq), fn))

    def after(self, delay: int, fn: Callable[["Simulator"], None]) -> None:
        """Schedule ``fn(sim)`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimError(f"negative delay {delay}")
        self.at(self.cycle + delay, fn)

    def stop(self) -> None:
        """Request the current ``run``/``run_until`` loop to end after this cycle."""
        self._stopped = True

    def emit(self, source: str, kind: str, **data: object) -> None:
        """Record a trace event when a tracer is attached (else no-op)."""
        if self.tracer is not None:
            self.tracer.record(self.cycle, source, kind, data)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the simulation by exactly one clock cycle."""
        if self._running:
            raise SimError("re-entrant step() — do not step from inside tick()")
        self._running = True
        try:
            while self._events and self._events[0][0] <= self.cycle:
                _, _, fn = heapq.heappop(self._events)
                fn(self)
            # Snapshot: events and ticks may add/remove components; changes
            # take effect next cycle, matching reconfiguration semantics.
            for component in list(self._components):
                component.tick(self)
            for element in self._sequentials:
                element._commit()
            self.cycle += 1
        finally:
            self._running = False

    def run(self, cycles: int) -> None:
        """Run for ``cycles`` clock cycles (or until :meth:`stop`)."""
        self._stopped = False
        end = self.cycle + cycles
        while self.cycle < end and not self._stopped:
            self.step()

    def run_for_time(self, seconds: float, clock_hz: float) -> int:
        """Run the number of cycles covering ``seconds`` of wall time at
        ``clock_hz`` (e.g. one video frame at the architecture's f_max);
        returns the cycles run."""
        if seconds < 0 or clock_hz <= 0:
            raise SimError("run_for_time needs seconds >= 0 and clock > 0")
        cycles = int(round(seconds * clock_hz))
        self.run(cycles)
        return cycles

    def run_until(
        self,
        predicate: Callable[["Simulator"], bool],
        max_cycles: Optional[int] = None,
    ) -> int:
        """Run until ``predicate(sim)`` holds; return the cycle it held at.

        Raises :class:`SimError` when the cycle bound is exceeded, so a
        deadlocked model fails loudly.
        """
        bound = self.max_cycles if max_cycles is None else self.cycle + max_cycles
        self._stopped = False
        while not predicate(self):
            if self.cycle >= bound or self._stopped:
                raise SimError(
                    f"{self.name}: run_until exceeded {bound} cycles "
                    f"(now {self.cycle})"
                )
            self.step()
        return self.cycle

    def drain(self, idle_predicate: Callable[["Simulator"], bool], patience: int = 64,
              max_cycles: Optional[int] = None) -> int:
        """Run until ``idle_predicate`` holds for ``patience`` consecutive cycles.

        Useful to flush in-flight packets after a workload stops injecting.
        """
        streak = 0

        def _pred(sim: "Simulator") -> bool:
            nonlocal streak
            streak = streak + 1 if idle_predicate(sim) else 0
            return streak >= patience

        return self.run_until(_pred, max_cycles=max_cycles)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator({self.name!r}, cycle={self.cycle}, "
            f"components={len(self._components)})"
        )
