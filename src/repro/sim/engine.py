"""The synchronous simulator core.

The :class:`Simulator` advances a global clock. Each cycle proceeds in
three strictly ordered phases:

1. **events** — callbacks scheduled for this cycle fire (configuration
   port actions, workload phase changes, test instrumentation);
2. **tick** — every *runnable* registered component's ``tick`` runs;
   components read only *committed* state and stage writes;
3. **commit** — sequential elements with staged state latch it.

Because components see only committed state, the result of a cycle never
depends on component registration order; this is asserted by the
property tests in ``tests/sim/test_engine_properties.py``.

Activity-driven fast path
-------------------------

By default the kernel is *activity-driven*: a component whose ``tick``
returns a quiescence hint (:data:`SLEEP` or a future wake cycle) leaves
the hot tick loop until it is woken again — by a watched channel being
driven/pushed, by an explicit :meth:`Component.wake`, or by its timed
wake coming due.  Likewise the commit phase walks only the *dirty set*
of elements with staged writes instead of every registered sequential,
and :meth:`Simulator.run` fast-forwards the clock over fully quiescent
stretches straight to the next scheduled event or timed wake.

The fast path is a pure optimization with a golden-equivalence
guarantee (see ``tests/sim/test_fastpath_equivalence.py``): a model
obeying the quiescence contract — *a tick while quiescent is an
observable no-op, and spurious wake-ups are harmless* — produces
bit-identical cycle counts and statistics with the fast path on or
off.  Disable it for debugging with ``Simulator(fast_path=False)`` or
``REPRO_SIM_FASTPATH=0`` in the environment.
"""

from __future__ import annotations

import heapq
import itertools
import os
from bisect import insort
from typing import Callable, Iterable, List, Optional, Tuple

from repro.sim.stats import StatsRegistry

#: environment switch for the activity-driven fast path ("0" disables)
FASTPATH_ENV = "REPRO_SIM_FASTPATH"

#: environment switch for the runtime contract sanitizer ("1" enables)
SANITIZE_ENV = "REPRO_SIM_SANITIZE"


def fastpath_default() -> bool:
    """The fast-path setting used when ``Simulator(fast_path=None)``."""
    return os.environ.get(FASTPATH_ENV, "1").lower() not in (
        "0", "false", "off", "no",
    )


def sanitize_default() -> bool:
    """The sanitizer setting used when ``Simulator(sanitize=None)``."""
    return os.environ.get(SANITIZE_ENV, "0").lower() in (
        "1", "true", "on", "yes",
    )


class _SleepForever:
    """Singleton quiescence hint: sleep until explicitly woken."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SLEEP"


#: returned from ``Component.tick`` to leave the tick loop until woken
SLEEP = _SleepForever()


class SimError(RuntimeError):
    """Raised for structural misuse of the simulation kernel."""


class Simulator:
    """A synchronous, deterministic cycle-level simulator.

    Parameters
    ----------
    name:
        Label used in error messages and reports.
    max_cycles:
        Hard safety bound; :meth:`run_until` raises :class:`SimError`
        when the bound is exceeded, which turns livelocks in a model
        into test failures instead of hangs.
    fast_path:
        Enable the activity-driven scheduler (sleep/wake, dirty-set
        commits, clock fast-forward).  ``None`` (the default) reads
        :data:`FASTPATH_ENV` and falls back to enabled.
    sanitize:
        Enable the runtime quiescence-contract sanitizer
        (:class:`repro.lint.runtime.Sanitizer`): channel primitives
        record per-component read/write sets and structural contract
        violations raise :class:`repro.lint.runtime.SanitizerError`.
        ``None`` (the default) reads :data:`SANITIZE_ENV` and falls
        back to disabled.
    """

    def __init__(self, name: str = "sim", max_cycles: int = 10_000_000,
                 fast_path: Optional[bool] = None,
                 sanitize: Optional[bool] = None):
        self.name = name
        self.cycle = 0
        self.max_cycles = max_cycles
        self.stats = StatsRegistry()
        #: optional repro.sim.trace.Tracer; emit() is a no-op while None
        self.tracer = None
        self.fast_path = fastpath_default() if fast_path is None else fast_path
        self.sanitize = sanitize_default() if sanitize is None else sanitize
        #: the component whose tick is currently executing (None during
        #: events, commits, and outside step()) — read by the sanitizer
        self._ticking: Optional["Component"] = None
        if self.sanitize:
            from repro.lint.runtime import Sanitizer

            self.sanitizer: Optional["Sanitizer"] = Sanitizer(self)
        else:
            self.sanitizer = None
        self._components: List["Component"] = []
        self._sequentials: List[object] = []
        self._events: List[Tuple[int, int, Callable[["Simulator"], None]]] = []
        self._event_seq = itertools.count()
        self._order_seq = itertools.count()
        self._running = False
        self._stopped = False
        # activity-driven scheduling state: awake components in
        # registration order, timed wakes, and the per-cycle dirty set.
        self._runnable: List[Tuple[int, "Component"]] = []
        self._wake_heap: List[Tuple[int, int, "Component"]] = []
        self._dirty: List[object] = []
        # sequentials that do not participate in dirty tracking (no
        # ``_dirty_flag`` attribute) are committed every cycle.
        self._eager_sequentials: List[object] = []

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def add(self, component: "Component") -> "Component":
        """Register a component; returns it for chaining."""
        from repro.sim.component import Component

        if not isinstance(component, Component):
            raise SimError(f"{component!r} is not a Component")
        self._components.append(component)
        component.bind(self)
        component._order = next(self._order_seq)
        component._asleep = False
        component._wake_at = None
        component._pending_wake = None
        # orders grow monotonically, so append preserves sorted order
        self._runnable.append((component._order, component))
        return component

    def add_all(self, components: Iterable["Component"]) -> None:
        for c in components:
            self.add(c)

    def remove(self, component: "Component") -> None:
        """Unregister a component (used when a module is reconfigured out)."""
        try:
            self._components.remove(component)
        except ValueError:
            raise SimError(f"{component.name!r} is not registered") from None
        if component._asleep:
            component._asleep = False
            component._wake_at = None
        else:
            try:
                self._runnable.remove((component._order, component))
            except ValueError:  # pragma: no cover - defensive
                pass
        component._pending_wake = None
        if self.sanitizer is not None:
            self.sanitizer.forget(component)

    def register_sequential(self, element: object) -> None:
        """Register an object exposing ``_commit()`` to be latched each cycle.

        Elements exposing a ``_dirty_flag`` attribute (the channel
        primitives) are committed only on cycles where they staged a
        write; anything else is committed every cycle.
        """
        if not hasattr(element, "_commit"):
            raise SimError(f"{element!r} has no _commit method")
        self._sequentials.append(element)
        if not hasattr(element, "_dirty_flag"):
            self._eager_sequentials.append(element)

    def unregister_sequential(self, element: object) -> None:
        try:
            self._sequentials.remove(element)
        except ValueError:
            return
        try:
            self._eager_sequentials.remove(element)
        except ValueError:
            pass
        try:
            self._dirty.remove(element)
        except ValueError:
            pass

    @property
    def components(self) -> Tuple["Component", ...]:
        return tuple(self._components)

    # ------------------------------------------------------------------
    # sleep / wake scheduling
    # ------------------------------------------------------------------
    def wake(self, component: "Component") -> None:
        """Return a sleeping component to the runnable set (no-op when
        it is already awake)."""
        if not component._asleep:
            return
        component._asleep = False
        component._wake_at = None
        insort(self._runnable, (component._order, component))

    def wake_at(self, component: "Component", cycle: int) -> None:
        """Guarantee ``component`` is runnable at ``cycle``.

        Used by the channel primitives: a value staged in cycle *t*
        becomes visible at *t+1*, so subscribers are scheduled for
        *t+1*.  If the component is currently awake, the request is
        remembered so that a sleep hint returned *this same cycle*
        cannot overshoot it — otherwise a consumer could declare
        quiescence in the very cycle a producer staged data for it and
        never observe the write.
        """
        if component._asleep:
            if cycle <= self.cycle:
                self.wake(component)
            elif component._wake_at is None or cycle < component._wake_at:
                component._wake_at = cycle
                heapq.heappush(self._wake_heap,
                               (cycle, component._order, component))
        else:
            pending = component._pending_wake
            if pending is None or cycle < pending:
                component._pending_wake = cycle

    def _request_sleep(self, component: "Component", hint: object) -> None:
        """Apply a quiescence hint returned by ``tick``."""
        if hint is SLEEP:
            wake_at: Optional[int] = None
        elif isinstance(hint, int) and not isinstance(hint, bool):
            wake_at = hint
        else:
            raise SimError(
                f"component {component.name!r}: invalid quiescence hint "
                f"{hint!r} (expected None, SLEEP or a wake cycle)"
            )
        # a watched channel staged data this cycle: the subscriber must
        # run when it becomes visible, whatever its own hint says
        pending = component._pending_wake
        component._pending_wake = None
        if pending is not None and (wake_at is None or pending < wake_at):
            wake_at = pending
        if wake_at is not None and wake_at <= self.cycle + 1:
            return  # it would be woken for the very next cycle anyway
        try:
            self._runnable.remove((component._order, component))
        except ValueError:
            return  # removed from the simulator during this cycle
        component._asleep = True
        component._wake_at = wake_at
        if wake_at is not None:
            heapq.heappush(self._wake_heap,
                           (wake_at, component._order, component))

    @property
    def quiescent(self) -> bool:
        """True when no component is runnable and nothing awaits commit —
        the clock may fast-forward to the next event or timed wake."""
        return (not self._runnable and not self._dirty
                and not self._eager_sequentials)

    def next_activity(self) -> Optional[int]:
        """Earliest future cycle with a scheduled event or a timed wake
        (None when neither exists)."""
        candidates = []
        if self._events:
            candidates.append(self._events[0][0])
        if self._wake_heap:
            candidates.append(self._wake_heap[0][0])
        return min(candidates) if candidates else None

    # ------------------------------------------------------------------
    # event scheduling
    # ------------------------------------------------------------------
    def at(self, cycle: int, fn: Callable[["Simulator"], None]) -> None:
        """Schedule ``fn(sim)`` to run at the start of ``cycle``."""
        if cycle < self.cycle:
            raise SimError(
                f"cannot schedule event at cycle {cycle}; now at {self.cycle}"
            )
        heapq.heappush(self._events, (cycle, next(self._event_seq), fn))

    def after(self, delay: int, fn: Callable[["Simulator"], None]) -> None:
        """Schedule ``fn(sim)`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimError(f"negative delay {delay}")
        self.at(self.cycle + delay, fn)

    def stop(self) -> None:
        """Request the current ``run``/``run_until`` loop to end after this cycle."""
        self._stopped = True

    @property
    def stopped(self) -> bool:
        """Whether the last run loop ended because of a :meth:`stop` request."""
        return self._stopped

    def emit(self, source: str, kind: str, **data: object) -> None:
        """Record a trace event when a tracer is attached (else no-op)."""
        if self.tracer is not None:
            self.tracer.record(self.cycle, source, kind, data)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the simulation by exactly one clock cycle."""
        if self._running:
            raise SimError("re-entrant step() — do not step from inside tick()")
        self._running = True
        try:
            cycle = self.cycle
            wakes = self._wake_heap
            while wakes and wakes[0][0] <= cycle:
                _, _, component = heapq.heappop(wakes)
                # lazy invalidation: the entry is live only if it still
                # matches the component's current sleep state
                if (component._asleep and component._wake_at is not None
                        and component._wake_at <= cycle):
                    self.wake(component)
            while self._events and self._events[0][0] <= cycle:
                _, _, fn = heapq.heappop(self._events)
                fn(self)
            sanitizer = self.sanitizer
            if self.fast_path:
                # Snapshot: ticks may add/remove/wake components; changes
                # take effect next cycle, matching reconfiguration
                # semantics (removals still tick out this cycle).
                if self._runnable:
                    for entry in list(self._runnable):
                        component = entry[1]
                        if (component._pending_wake is not None
                                and component._pending_wake <= cycle):
                            component._pending_wake = None  # satisfied by this tick
                        if sanitizer is None:
                            hint = component.tick(self)
                        else:
                            self._ticking = component
                            try:
                                hint = component.tick(self)
                            finally:
                                self._ticking = None
                            sanitizer.on_tick_end(component, hint)
                        if hint is not None:
                            self._request_sleep(component, hint)
                for element in self._eager_sequentials:
                    element._commit()
                if self._dirty:
                    dirty, self._dirty = self._dirty, []
                    for element in dirty:
                        element._dirty_flag = False
                        if element._commit():
                            # e.g. a PulseWire that must self-clear
                            element._mark_dirty()
            else:
                for component in list(self._components):
                    if sanitizer is None:
                        component.tick(self)
                    else:
                        self._ticking = component
                        try:
                            hint = component.tick(self)
                        finally:
                            self._ticking = None
                        sanitizer.on_tick_end(component, hint)
                if self._dirty:
                    for element in self._dirty:
                        element._dirty_flag = False
                    self._dirty.clear()
                for element in self._sequentials:
                    element._commit()
            if sanitizer is not None:
                sanitizer.end_cycle()
            self.cycle += 1
        finally:
            self._running = False

    def run(self, cycles: int) -> None:
        """Run for ``cycles`` clock cycles (or until :meth:`stop`).

        With the fast path enabled, fully quiescent stretches are
        skipped in one clock jump to the next scheduled event or timed
        wake — nothing can change during them, so no cycle is stepped.
        """
        self._stopped = False
        end = self.cycle + cycles
        while self.cycle < end and not self._stopped:
            if self.fast_path and self.quiescent:
                nxt = self.next_activity()
                target = end if nxt is None else min(nxt, end)
                if target > self.cycle:
                    self.cycle = target
                    continue
            self.step()

    def run_for_time(self, seconds: float, clock_hz: float) -> int:
        """Run the number of cycles covering ``seconds`` of wall time at
        ``clock_hz`` (e.g. one video frame at the architecture's f_max);
        returns the cycles run."""
        if seconds < 0 or clock_hz <= 0:
            raise SimError("run_for_time needs seconds >= 0 and clock > 0")
        cycles = int(round(seconds * clock_hz))
        self.run(cycles)
        return cycles

    def run_until(
        self,
        predicate: Callable[["Simulator"], bool],
        max_cycles: Optional[int] = None,
    ) -> int:
        """Run until ``predicate(sim)`` holds; return the cycle it held at.

        Raises :class:`SimError` when the cycle bound is exceeded, so a
        deadlocked model fails loudly.  A :meth:`stop` request instead
        ends the loop cleanly after the stopping cycle and returns the
        current cycle — check :attr:`stopped` to distinguish it from the
        predicate holding.

        The predicate is evaluated at every cycle (it may depend on
        ``sim.cycle`` itself, as :meth:`drain` does), so the clock is
        never jumped here; quiescent cycles still cost O(1) each.
        """
        bound = self.max_cycles if max_cycles is None else self.cycle + max_cycles
        self._stopped = False
        while not predicate(self):
            if self._stopped:
                return self.cycle
            if self.cycle >= bound:
                raise SimError(
                    f"{self.name}: run_until exceeded {bound} cycles "
                    f"(now {self.cycle})"
                )
            self.step()
        return self.cycle

    def drain(self, idle_predicate: Callable[["Simulator"], bool], patience: int = 64,
              max_cycles: Optional[int] = None) -> int:
        """Run until ``idle_predicate`` holds for ``patience`` consecutive cycles.

        Useful to flush in-flight packets after a workload stops injecting.
        """
        streak = 0

        def _pred(sim: "Simulator") -> bool:
            nonlocal streak
            streak = streak + 1 if idle_predicate(sim) else 0
            return streak >= patience

        return self.run_until(_pred, max_cycles=max_cycles)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator({self.name!r}, cycle={self.cycle}, "
            f"components={len(self._components)})"
        )
