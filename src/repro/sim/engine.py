"""The synchronous simulator core.

The :class:`Simulator` advances a global clock. Each cycle proceeds in
three strictly ordered phases:

1. **events** — callbacks scheduled for this cycle fire (configuration
   port actions, workload phase changes, test instrumentation);
2. **tick** — every *runnable* registered component's ``tick`` runs;
   components read only *committed* state and stage writes;
3. **commit** — sequential elements with staged state latch it.

Because components see only committed state, the result of a cycle never
depends on component registration order; this is asserted by the
property tests in ``tests/sim/test_engine_properties.py``.

Activity-driven fast path
-------------------------

By default the kernel is *activity-driven*: a component whose ``tick``
returns a quiescence hint (:data:`SLEEP` or a future wake cycle) leaves
the hot tick loop until it is woken again — by a watched channel being
driven/pushed, by an explicit :meth:`Component.wake`, or by its timed
wake coming due.  Likewise the commit phase walks only the *dirty set*
of elements with staged writes instead of every registered sequential,
and :meth:`Simulator.run` fast-forwards the clock over fully quiescent
stretches straight to the next scheduled event or timed wake.

The fast path is a pure optimization with a golden-equivalence
guarantee (see ``tests/sim/test_fastpath_equivalence.py``): a model
obeying the quiescence contract — *a tick while quiescent is an
observable no-op, and spurious wake-ups are harmless* — produces
bit-identical cycle counts and statistics with the fast path on or
off.  Disable it for debugging with ``Simulator(fast_path=False)`` or
``REPRO_SIM_FASTPATH=0`` in the environment.
"""

from __future__ import annotations

import heapq
import itertools
import os
from bisect import insort
from heapq import heappop, heappush
from contextlib import contextmanager
from time import perf_counter
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.sim.stats import StatsRegistry

#: environment switch for the activity-driven fast path ("0" disables)
FASTPATH_ENV = "REPRO_SIM_FASTPATH"

#: environment switch for the runtime contract sanitizer ("1" enables;
#: "race"/"2" also arms the race detector, "record" its non-raising mode)
SANITIZE_ENV = "REPRO_SIM_SANITIZE"

#: environment switch for the wall-clock profiler ("1" enables)
PROFILE_ENV = "REPRO_SIM_PROFILE"


def fastpath_default() -> bool:
    """The fast-path setting used when ``Simulator(fast_path=None)``."""
    return os.environ.get(FASTPATH_ENV, "1").lower() not in (
        "0", "false", "off", "no",
    )


def sanitize_default() -> object:
    """The sanitizer setting used when ``Simulator(sanitize=None)``.

    ``REPRO_SIM_SANITIZE=1`` enables the contract sanitizer
    (SAN001–SAN003); ``=race`` (or ``2``) additionally arms the race
    detector (SAN004/SAN005, see :mod:`repro.lint.runtime`);
    ``=record`` arms it in non-raising record mode.
    """
    raw = os.environ.get(SANITIZE_ENV, "0").lower()
    if raw in ("race", "2"):
        return "race"
    if raw == "record":
        return "record"
    return raw in ("1", "true", "on", "yes")


def profile_default() -> bool:
    """The profiler setting used when ``Simulator(profile=None)``."""
    return os.environ.get(PROFILE_ENV, "0").lower() in (
        "1", "true", "on", "yes",
    )


#: hook called with every newly constructed Simulator (or None).
#: Installed by :class:`repro.obs.session.ObservationSession` so the
#: ``repro trace`` / ``repro profile`` CLI can observe simulators built
#: deep inside experiment harnesses without threading parameters through.
_NEW_SIM_HOOK: Optional[Callable[["Simulator"], None]] = None


def set_new_sim_hook(
    hook: Optional[Callable[["Simulator"], None]],
) -> Optional[Callable[["Simulator"], None]]:
    """Install ``hook`` (None to clear); returns the previous hook."""
    global _NEW_SIM_HOOK
    prev = _NEW_SIM_HOOK
    _NEW_SIM_HOOK = hook
    return prev


#: indices into :attr:`KernelMetrics.wakes` (see docs/kernel.md)
WAKE_TIMED, WAKE_CHANNEL, WAKE_EXPLICIT, WAKE_PENDING = range(4)

WAKE_REASONS = ("timed", "channel", "explicit", "pending")


class KernelMetrics:
    """Scheduler self-metrics: what the activity-driven kernel did.

    These describe the *kernel that ran* — wakes, sleeps, fast-forward
    jumps, dirty-set commit sizes, tick counts — so they legitimately
    differ between ``fast_path=True`` and ``fast_path=False`` runs of
    the same model.  They are therefore kept out of
    :meth:`StatsRegistry.snapshot` (the golden-equivalence comparator)
    and exported separately (see :mod:`repro.obs`).

    ``cycles_stepped`` and ``ticks_total`` are *derived* totals: to keep
    the hot tick loop free of per-cycle accounting they are recomputed
    from the clock and the per-component tick counters whenever the
    metrics are read through :attr:`Simulator.kmetrics`.
    """

    __slots__ = ("wakes", "sleeps", "ff_jumps", "ff_cycles_skipped",
                 "commit_batches", "commit_elements", "commit_max",
                 "cycles_stepped", "ticks_total", "retired_ticks")

    def __init__(self) -> None:
        # wake transitions (asleep -> runnable) by reason index
        self.wakes = [0, 0, 0, 0]
        self.sleeps = 0
        self.ff_jumps = 0
        self.ff_cycles_skipped = 0
        self.commit_batches = 0
        self.commit_elements = 0
        self.commit_max = 0
        self.cycles_stepped = 0
        self.ticks_total = 0
        # tick counts harvested from components removed mid-run
        self.retired_ticks: Dict[str, int] = {}

    @property
    def wakes_total(self) -> int:
        return sum(self.wakes)

    def wakes_by_reason(self) -> Dict[str, int]:
        return dict(zip(WAKE_REASONS, self.wakes))

    def as_dict(self) -> Dict[str, object]:
        """Plain-data form for exporters (stable key order)."""
        out: Dict[str, object] = {
            "cycles_stepped": self.cycles_stepped,
            "ticks_total": self.ticks_total,
            "sleeps": self.sleeps,
            "wakes_total": self.wakes_total,
            "ff_jumps": self.ff_jumps,
            "ff_cycles_skipped": self.ff_cycles_skipped,
            "commit_batches": self.commit_batches,
            "commit_elements": self.commit_elements,
            "commit_max": self.commit_max,
        }
        for reason, count in zip(WAKE_REASONS, self.wakes):
            out[f"wakes_{reason}"] = count
        return out


class _SleepForever:
    """Singleton quiescence hint: sleep until explicitly woken."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SLEEP"


#: returned from ``Component.tick`` to leave the tick loop until woken
SLEEP = _SleepForever()


class SimError(RuntimeError):
    """Raised for structural misuse of the simulation kernel."""


class Simulator:
    """A synchronous, deterministic cycle-level simulator.

    Parameters
    ----------
    name:
        Label used in error messages and reports.
    max_cycles:
        Hard safety bound; :meth:`run_until` raises :class:`SimError`
        when the bound is exceeded, which turns livelocks in a model
        into test failures instead of hangs.
    fast_path:
        Enable the activity-driven scheduler (sleep/wake, dirty-set
        commits, clock fast-forward).  ``None`` (the default) reads
        :data:`FASTPATH_ENV` and falls back to enabled.
    sanitize:
        Enable the runtime quiescence-contract sanitizer
        (:class:`repro.lint.runtime.Sanitizer`): channel primitives
        record per-component read/write sets and structural contract
        violations raise :class:`repro.lint.runtime.SanitizerError`.
        ``"race"`` additionally arms the per-cycle write-ownership race
        detector (SAN004/SAN005); ``"record"`` arms it in non-raising,
        violation-accumulating mode.  ``None`` (the default) reads
        :data:`SANITIZE_ENV` (``1``/``race``/``record``) and falls back
        to disabled.
    profile:
        Enable the opt-in wall-clock profiler
        (:class:`repro.obs.profile.Profiler`): each component tick,
        the event callbacks and the commit phase are timed with
        ``perf_counter`` and attributed by name.  Wall-time results are
        host-dependent and are never part of
        :meth:`StatsRegistry.snapshot`.  ``None`` (the default) reads
        :data:`PROFILE_ENV` and falls back to disabled, where the cost
        is a single ``is None`` test per step.
    """

    def __init__(self, name: str = "sim", max_cycles: int = 10_000_000,
                 fast_path: Optional[bool] = None,
                 sanitize: Union[bool, str, None] = None,
                 profile: Optional[bool] = None):
        self.name = name
        self.cycle = 0
        self.max_cycles = max_cycles
        self.stats = StatsRegistry()
        #: scheduler self-metrics (never part of stats.snapshot())
        self._kmetrics = KernelMetrics()
        #: optional repro.sim.trace.Tracer; emit() is a no-op while None
        self._tracer = None
        #: cheap guard for hot emit/span sites (kept in sync with tracer)
        self.tracing = False
        #: optional repro.obs.flows.FlowTelemetry collector
        self._telemetry = None
        #: cheap guard for hot telemetry sites (synced with telemetry),
        #: mirroring ``tracing``: instrumented fabrics test this single
        #: bool so the telemetry-off hot path is unchanged
        self.telemetering = False
        #: optional repro.obs.journey.JourneyRecorder
        self._journey = None
        #: cheap guard for hot journey stamp sites (synced with journey),
        #: mirroring ``tracing``/``telemetering``: a journeys-off run
        #: executes one dead boolean test per stamp site and stays
        #: bit-identical to pre-journey traces
        self.journeying = False
        #: optional repro.control.ControlLoop (set by the loop itself
        #: on attach; exporters discover the action log through it)
        self.control = None
        self.fast_path = fastpath_default() if fast_path is None else fast_path
        self.sanitize = sanitize_default() if sanitize is None else sanitize
        self.profile = profile_default() if profile is None else profile
        if self.profile:
            from repro.obs.profile import Profiler

            self._profiler: Optional["Profiler"] = Profiler()
        else:
            self._profiler = None
        #: the component whose tick is currently executing (None during
        #: events, commits, and outside step()) — read by the sanitizer
        self._ticking: Optional["Component"] = None
        if self.sanitize:
            from repro.lint.runtime import Sanitizer

            # sanitize=True -> contract checks only; sanitize="race" /
            # "record" additionally arms the SAN004/SAN005 race detector
            race = self.sanitize if isinstance(self.sanitize, str) else False
            self._sanitizer: Optional["Sanitizer"] = Sanitizer(self, race=race)
        else:
            self._sanitizer = None
        # True while neither sanitizer nor profiler is attached: step()
        # then takes a tick loop with no per-tick instrumentation checks
        self._plain = self._profiler is None and self._sanitizer is None
        self._components: List["Component"] = []
        self._sequentials: List[object] = []
        self._events: List[Tuple[int, int, Callable[["Simulator"], None]]] = []
        self._event_seq = itertools.count()
        self._order_seq = itertools.count()
        self._running = False
        self._stopped = False
        # activity-driven scheduling state: awake components in
        # registration order, timed wakes, and the per-cycle dirty set.
        self._runnable: List[Tuple[int, "Component"]] = []
        self._wake_heap: List[Tuple[int, int, "Component"]] = []
        self._dirty: List[object] = []
        # sequentials that do not participate in dirty tracking (no
        # ``_dirty_flag`` attribute) are committed every cycle.
        self._eager_sequentials: List[object] = []
        # slow-path cycle counter: with the fast path off every
        # registered component ticks every cycle, so per-component tick
        # counts are derived as ``_slow_ticks - _tick_base`` instead of
        # paying a per-tick increment in the slow loop.
        self._slow_ticks = 0
        if _NEW_SIM_HOOK is not None:
            _NEW_SIM_HOOK(self)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def tracer(self):
        """The attached :class:`repro.sim.trace.Tracer` (or None)."""
        return self._tracer

    @tracer.setter
    def tracer(self, tracer) -> None:
        self._tracer = tracer
        self.tracing = tracer is not None

    @property
    def telemetry(self):
        """The attached :class:`repro.obs.flows.FlowTelemetry` (or None).

        Fabric instrumentation guards on :attr:`telemetering` exactly
        like trace sites guard on :attr:`tracing`::

            if sim.telemetering:
                sim.telemetry.record_flow(sim.cycle, src, dst, latency)

        Telemetry observes model state but never writes to
        :attr:`stats`, so a telemetry-on run stays bit-identical to a
        telemetry-off run in :meth:`StatsRegistry.snapshot`.
        """
        return self._telemetry

    @telemetry.setter
    def telemetry(self, telemetry) -> None:
        self._telemetry = telemetry
        self.telemetering = telemetry is not None

    @property
    def journey(self):
        """The attached :class:`repro.obs.journey.JourneyRecorder` (or
        None).

        Hop stamp sites guard on :attr:`journeying` exactly like trace
        sites guard on :attr:`tracing`::

            if sim.journeying:
                sim.journey.stamp_to(msg.mid, "link_transit", arrival)

        Journeys observe model state but never write to :attr:`stats`,
        so a journeys-on run stays bit-identical to a journeys-off run
        in :meth:`StatsRegistry.snapshot`.
        """
        return self._journey

    @journey.setter
    def journey(self, journey) -> None:
        self._journey = journey
        self.journeying = journey is not None

    @property
    def profiler(self):
        """The attached :class:`repro.obs.profile.Profiler` (or None)."""
        return self._profiler

    @profiler.setter
    def profiler(self, profiler) -> None:
        self._profiler = profiler
        self._plain = profiler is None and self._sanitizer is None

    @property
    def sanitizer(self):
        """The attached :class:`repro.lint.runtime.Sanitizer` (or None)."""
        return self._sanitizer

    @sanitizer.setter
    def sanitizer(self, sanitizer) -> None:
        self._sanitizer = sanitizer
        self._plain = sanitizer is None and self._profiler is None

    @property
    def kmetrics(self) -> KernelMetrics:
        """Scheduler self-metrics (see :class:`KernelMetrics`).

        The derived totals — ``cycles_stepped`` (every cycle advance is
        either a stepped cycle or part of a fast-forward jump) and
        ``ticks_total`` (retired plus live per-component tick counts) —
        are synced here on access so the hot loop never maintains them.
        """
        m = self._kmetrics
        m.cycles_stepped = self.cycle - m.ff_cycles_skipped
        m.ticks_total = sum(self.tick_counts().values())
        return m

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def add(self, component: "Component") -> "Component":
        """Register a component; returns it for chaining."""
        from repro.sim.component import Component

        if not isinstance(component, Component):
            raise SimError(f"{component!r} is not a Component")
        self._components.append(component)
        component.bind(self)
        component._order = next(self._order_seq)
        component._asleep = False
        component._wake_at = None
        component._wake_reason = WAKE_TIMED
        component._pending_wake = None
        component._ticks = 0
        component._tick_base = self._slow_ticks
        # orders grow monotonically, so append preserves sorted order
        self._runnable.append((component._order, component))
        return component

    def add_all(self, components: Iterable["Component"]) -> None:
        for c in components:
            self.add(c)

    def remove(self, component: "Component") -> None:
        """Unregister a component (used when a module is reconfigured out)."""
        try:
            self._components.remove(component)
        except ValueError:
            raise SimError(f"{component.name!r} is not registered") from None
        if component._asleep:
            component._asleep = False
            component._wake_at = None
        else:
            try:
                self._runnable.remove((component._order, component))
            except ValueError:  # pragma: no cover - defensive
                pass
        component._pending_wake = None
        # keep the removed component's tick count observable
        total = (component._ticks
                 + self._slow_ticks - component._tick_base)
        if total:
            retired = self._kmetrics.retired_ticks
            retired[component.name] = (
                retired.get(component.name, 0) + total
            )
        if self._sanitizer is not None:
            self._sanitizer.forget(component)

    def register_sequential(self, element: object) -> None:
        """Register an object exposing ``_commit()`` to be latched each cycle.

        Elements exposing a ``_dirty_flag`` attribute (the channel
        primitives) are committed only on cycles where they staged a
        write; anything else is committed every cycle.
        """
        if not hasattr(element, "_commit"):
            raise SimError(f"{element!r} has no _commit method")
        self._sequentials.append(element)
        if not hasattr(element, "_dirty_flag"):
            self._eager_sequentials.append(element)

    def unregister_sequential(self, element: object) -> None:
        try:
            self._sequentials.remove(element)
        except ValueError:
            return
        try:
            self._eager_sequentials.remove(element)
        except ValueError:
            pass
        try:
            self._dirty.remove(element)
        except ValueError:
            pass

    @property
    def components(self) -> Tuple["Component", ...]:
        return tuple(self._components)

    # ------------------------------------------------------------------
    # sleep / wake scheduling
    # ------------------------------------------------------------------
    def wake(self, component: "Component") -> None:
        """Return a sleeping component to the runnable set (no-op when
        it is already awake)."""
        self._wake(component, WAKE_EXPLICIT)

    def _wake(self, component: "Component", reason: int) -> None:
        if not component._asleep:
            return
        component._asleep = False
        component._wake_at = None
        self._kmetrics.wakes[reason] += 1
        insort(self._runnable, (component._order, component))

    def wake_at(self, component: "Component", cycle: int) -> None:
        """Guarantee ``component`` is runnable at ``cycle``.

        Used by the channel primitives: a value staged in cycle *t*
        becomes visible at *t+1*, so subscribers are scheduled for
        *t+1*.  If the component is currently awake, the request is
        remembered so that a sleep hint returned *this same cycle*
        cannot overshoot it — otherwise a consumer could declare
        quiescence in the very cycle a producer staged data for it and
        never observe the write.
        """
        if component._asleep:
            if cycle <= self.cycle:
                self._wake(component, WAKE_CHANNEL)
            elif component._wake_at is None or cycle < component._wake_at:
                component._wake_at = cycle
                component._wake_reason = WAKE_CHANNEL
                heappush(self._wake_heap,
                         (cycle, component._order, component))
        else:
            pending = component._pending_wake
            if pending is None or cycle < pending:
                component._pending_wake = cycle

    def _request_sleep(self, component: "Component", hint: object) -> None:
        """Apply a quiescence hint returned by ``tick``."""
        if type(hint) is int:  # exact match first: the hot case
            wake_at: Optional[int] = hint
        elif hint is SLEEP:
            wake_at = None
        elif isinstance(hint, int) and not isinstance(hint, bool):
            wake_at = hint
        else:
            raise SimError(
                f"component {component.name!r}: invalid quiescence hint "
                f"{hint!r} (expected None, SLEEP or a wake cycle)"
            )
        # a watched channel staged data this cycle: the subscriber must
        # run when it becomes visible, whatever its own hint says
        reason = WAKE_TIMED
        pending = component._pending_wake
        if pending is not None:
            component._pending_wake = None
            if wake_at is None or pending < wake_at:
                wake_at = pending
                reason = WAKE_PENDING
        if wake_at is not None and wake_at <= self.cycle + 1:
            if reason == WAKE_PENDING:
                self._kmetrics.wakes[WAKE_PENDING] += 1
            return  # it would be woken for the very next cycle anyway
        try:
            self._runnable.remove((component._order, component))
        except ValueError:
            return  # removed from the simulator during this cycle
        component._asleep = True
        component._wake_at = wake_at
        self._kmetrics.sleeps += 1
        if wake_at is not None:
            component._wake_reason = reason
            heappush(self._wake_heap,
                     (wake_at, component._order, component))

    @property
    def quiescent(self) -> bool:
        """True when no component is runnable and nothing awaits commit —
        the clock may fast-forward to the next event or timed wake."""
        return (not self._runnable and not self._dirty
                and not self._eager_sequentials)

    def next_activity(self) -> Optional[int]:
        """Earliest future cycle with a scheduled event or a timed wake
        (None when neither exists)."""
        candidates = []
        if self._events:
            candidates.append(self._events[0][0])
        if self._wake_heap:
            candidates.append(self._wake_heap[0][0])
        return min(candidates) if candidates else None

    # ------------------------------------------------------------------
    # event scheduling
    # ------------------------------------------------------------------
    def at(self, cycle: int, fn: Callable[["Simulator"], None]) -> None:
        """Schedule ``fn(sim)`` to run at the start of ``cycle``."""
        if cycle < self.cycle:
            raise SimError(
                f"cannot schedule event at cycle {cycle}; now at {self.cycle}"
            )
        heapq.heappush(self._events, (cycle, next(self._event_seq), fn))

    def after(self, delay: int, fn: Callable[["Simulator"], None]) -> None:
        """Schedule ``fn(sim)`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimError(f"negative delay {delay}")
        self.at(self.cycle + delay, fn)

    def stop(self) -> None:
        """Request the current ``run``/``run_until`` loop to end after this cycle."""
        self._stopped = True

    @property
    def stopped(self) -> bool:
        """Whether the last run loop ended because of a :meth:`stop` request."""
        return self._stopped

    def emit(self, source: str, kind: str, **data: object) -> None:
        """Record a trace event when a tracer is attached (else no-op).

        Hot emit sites additionally guard on :attr:`tracing` so the
        keyword-argument dict is never built while tracing is off::

            if sim.tracing:
                sim.emit("dynoc", "route", mid=..., at=...)
        """
        if self._tracer is not None:
            self._tracer.record(self.cycle, source, kind, data)

    # ------------------------------------------------------------------
    # spans (duration events; see repro.sim.trace and repro.obs)
    # ------------------------------------------------------------------
    def span_begin(self, source: str, kind: str, key: Hashable = None,
                   **data: object) -> None:
        """Open a span at the current cycle; close it with
        :meth:`span_end` using the same (source, kind, key)."""
        if self._tracer is not None:
            self._tracer.begin_span(self.cycle, source, kind, key, data)

    def span_end(self, source: str, kind: str, key: Hashable = None,
                 **data: object) -> None:
        """Close an open span at the current cycle (no-op without a
        matching :meth:`span_begin`; the tracer counts the mismatch)."""
        if self._tracer is not None:
            self._tracer.end_span(self.cycle, source, kind, key, data)

    def span_event(self, source: str, kind: str, begin: int, end: int,
                   **data: object) -> None:
        """Record a span whose begin/end cycles are already known."""
        if self._tracer is not None:
            self._tracer.add_span(begin, end, source, kind, data)

    @contextmanager
    def span(self, source: str, kind: str, **data: object):
        """Context manager form: the span covers the cycles the body
        advanced the clock over (e.g. wrapping a ``run`` call)."""
        if self._tracer is None:
            yield
            return
        begin = self.cycle
        try:
            yield
        finally:
            self._tracer.add_span(begin, self.cycle, source, kind, data)

    # ------------------------------------------------------------------
    # kernel self-metrics helpers
    # ------------------------------------------------------------------
    def tick_counts(self) -> Dict[str, int]:
        """Per-component tick counts (registered plus removed ones)."""
        out = dict(self._kmetrics.retired_ticks)
        slow = self._slow_ticks
        for component in self._components:
            out[component.name] = (out.get(component.name, 0)
                                   + component._ticks
                                   + slow - component._tick_base)
        return out

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _tick_instrumented(self, component: "Component", sanitizer,
                           profiler) -> object:
        """Tick one component under the sanitizer and/or profiler."""
        if profiler is not None:
            t0 = perf_counter()
        if sanitizer is None:
            hint = component.tick(self)
        else:
            self._ticking = component
            try:
                hint = component.tick(self)
            finally:
                self._ticking = None
            sanitizer.on_tick_end(component, hint)
        if profiler is not None:
            profiler.add(component.name, perf_counter() - t0)
        return hint

    def step(self) -> None:
        """Advance the simulation by exactly one clock cycle."""
        if self._running:
            raise SimError("re-entrant step() — do not step from inside tick()")
        self._running = True
        try:
            cycle = self.cycle
            wakes = self._wake_heap
            while wakes and wakes[0][0] <= cycle:
                _, _, component = heappop(wakes)
                # lazy invalidation: the entry is live only if it still
                # matches the component's current sleep state
                if (component._asleep and component._wake_at is not None
                        and component._wake_at <= cycle):
                    component._asleep = False
                    component._wake_at = None
                    self._kmetrics.wakes[component._wake_reason] += 1
                    insort(self._runnable, (component._order, component))
            if self._plain:
                events = self._events
                while events and events[0][0] <= cycle:
                    _, _, fn = heappop(events)
                    fn(self)
                if self.fast_path:
                    # Snapshot: ticks may add/remove/wake components;
                    # changes take effect next cycle, matching
                    # reconfiguration semantics (removals still tick out
                    # this cycle).
                    if self._runnable:
                        request_sleep = self._request_sleep
                        for _, component in list(self._runnable):
                            component._ticks += 1
                            if (component._pending_wake is not None
                                    and component._pending_wake <= cycle):
                                component._pending_wake = None  # satisfied
                            hint = component.tick(self)
                            if hint is not None:
                                request_sleep(component, hint)
                    for element in self._eager_sequentials:
                        element._commit()
                    if self._dirty:
                        self._commit_dirty()
                else:
                    # _slow_ticks is bumped before the snapshot: a
                    # component added by an event callback ticks this
                    # cycle (it is in the snapshot), one added from a
                    # tick does not.
                    self._slow_ticks += 1
                    for component in list(self._components):
                        component.tick(self)
                    if self._dirty:
                        for element in self._dirty:
                            element._dirty_flag = False
                        self._dirty.clear()
                    for element in self._sequentials:
                        element._commit()
            else:
                self._step_instrumented(cycle)
            self.cycle += 1
        finally:
            self._running = False

    def _commit_dirty(self) -> None:
        """Commit and clear the dirty set (fast path, per-batch metrics)."""
        dirty, self._dirty = self._dirty, []
        metrics = self._kmetrics
        n = len(dirty)
        metrics.commit_batches += 1
        metrics.commit_elements += n
        if n > metrics.commit_max:
            metrics.commit_max = n
        for element in dirty:
            element._dirty_flag = False
            if element._commit():
                # e.g. a PulseWire that must self-clear
                element._mark_dirty()

    def _step_instrumented(self, cycle: int) -> None:
        """The events/tick/commit phases with sanitizer and/or profiler
        attached — split out so the plain hot path carries none of the
        instrumentation checks."""
        sanitizer = self._sanitizer
        profiler = self._profiler
        events = self._events
        if profiler is None:
            while events and events[0][0] <= cycle:
                _, _, fn = heappop(events)
                fn(self)
        else:
            while events and events[0][0] <= cycle:
                _, _, fn = heappop(events)
                t0 = perf_counter()
                fn(self)
                profiler.add("kernel.events", perf_counter() - t0)
        if self.fast_path:
            if self._runnable:
                for _, component in list(self._runnable):
                    component._ticks += 1
                    if (component._pending_wake is not None
                            and component._pending_wake <= cycle):
                        component._pending_wake = None  # satisfied
                    hint = self._tick_instrumented(component, sanitizer,
                                                   profiler)
                    if hint is not None:
                        self._request_sleep(component, hint)
            if profiler is not None:
                t0 = perf_counter()
            for element in self._eager_sequentials:
                element._commit()
            if self._dirty:
                self._commit_dirty()
            if profiler is not None:
                profiler.add("kernel.commit", perf_counter() - t0)
        else:
            self._slow_ticks += 1
            for component in list(self._components):
                self._tick_instrumented(component, sanitizer, profiler)
            if profiler is not None:
                t0 = perf_counter()
            if self._dirty:
                for element in self._dirty:
                    element._dirty_flag = False
                self._dirty.clear()
            for element in self._sequentials:
                element._commit()
            if profiler is not None:
                profiler.add("kernel.commit", perf_counter() - t0)
        if sanitizer is not None:
            sanitizer.end_cycle()

    def run(self, cycles: int) -> None:
        """Run for ``cycles`` clock cycles (or until :meth:`stop`).

        With the fast path enabled, fully quiescent stretches are
        skipped in one clock jump to the next scheduled event or timed
        wake — nothing can change during them, so no cycle is stepped.
        """
        self._stopped = False
        end = self.cycle + cycles
        fast = self.fast_path
        step = self.step
        while self.cycle < end and not self._stopped:
            # inline `self.quiescent` — a property call per cycle is
            # measurable at this loop's frequency
            if (fast and not self._runnable and not self._dirty
                    and not self._eager_sequentials):
                # inline `self.next_activity()`: one jump per quiescent
                # stretch makes the call overhead visible in idle-heavy
                # workloads
                events = self._events
                heap = self._wake_heap
                if events:
                    nxt = events[0][0]
                    if heap and heap[0][0] < nxt:
                        nxt = heap[0][0]
                elif heap:
                    nxt = heap[0][0]
                else:
                    nxt = None
                target = end if nxt is None else min(nxt, end)
                if target > self.cycle:
                    metrics = self._kmetrics
                    metrics.ff_jumps += 1
                    metrics.ff_cycles_skipped += target - self.cycle
                    self.cycle = target
                    continue
            step()

    def run_for_time(self, seconds: float, clock_hz: float) -> int:
        """Run the number of cycles covering ``seconds`` of wall time at
        ``clock_hz`` (e.g. one video frame at the architecture's f_max);
        returns the cycles run."""
        if seconds < 0 or clock_hz <= 0:
            raise SimError("run_for_time needs seconds >= 0 and clock > 0")
        cycles = int(round(seconds * clock_hz))
        self.run(cycles)
        return cycles

    def run_until(
        self,
        predicate: Callable[["Simulator"], bool],
        max_cycles: Optional[int] = None,
    ) -> int:
        """Run until ``predicate(sim)`` holds; return the cycle it held at.

        Raises :class:`SimError` when the cycle bound is exceeded, so a
        deadlocked model fails loudly.  A :meth:`stop` request instead
        ends the loop cleanly after the stopping cycle and returns the
        current cycle — check :attr:`stopped` to distinguish it from the
        predicate holding.

        The predicate is evaluated at every cycle (it may depend on
        ``sim.cycle`` itself, as :meth:`drain` does), so the clock is
        never jumped here; quiescent cycles still cost O(1) each.
        """
        bound = self.max_cycles if max_cycles is None else self.cycle + max_cycles
        self._stopped = False
        while not predicate(self):
            if self._stopped:
                return self.cycle
            if self.cycle >= bound:
                raise SimError(
                    f"{self.name}: run_until exceeded {bound} cycles "
                    f"(now {self.cycle})"
                )
            self.step()
        return self.cycle

    def drain(self, idle_predicate: Callable[["Simulator"], bool], patience: int = 64,
              max_cycles: Optional[int] = None) -> int:
        """Run until ``idle_predicate`` holds for ``patience`` consecutive cycles.

        Useful to flush in-flight packets after a workload stops injecting.
        """
        streak = 0

        def _pred(sim: "Simulator") -> bool:
            nonlocal streak
            streak = streak + 1 if idle_predicate(sim) else 0
            return streak >= patience

        return self.run_until(_pred, max_cycles=max_cycles)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator({self.name!r}, cycle={self.cycle}, "
            f"components={len(self._components)})"
        )
