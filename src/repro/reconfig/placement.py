"""Online 2D placement for rectangular modules.

The NoC architectures allow arbitrary rectangular modules anywhere on
the array; this module provides the online placer the survey's §1 calls
one of the open problems of DPR design. Implemented as a scanline
first-fit / best-fit over an occupancy grid — adequate for the system
sizes the paper discusses and fully deterministic, so experiments are
reproducible.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy-less installs only
    np = None  # type: ignore[assignment]

from repro.fabric.geometry import Rect


class _Grid:
    """Pure-Python stand-in for the boolean occupancy grids on
    numpy-less installs: just enough of numpy's 2-D slicing surface
    (region reads, region/cell assignment, ``any``/``sum``/``|``/``~``)
    for the placer, at list-of-lists speed."""

    __slots__ = ("rows", "cols", "cells")

    def __init__(self, rows: int, cols: int, cells=None):
        self.rows = rows
        self.cols = cols
        self.cells = cells or [[False] * cols for _ in range(rows)]

    def _span(self, key):
        ys, xs = key
        if isinstance(ys, int):
            ys = slice(ys, ys + 1)
        if isinstance(xs, int):
            xs = slice(xs, xs + 1)
        return (range(*ys.indices(self.rows)),
                range(*xs.indices(self.cols)))

    def __getitem__(self, key) -> "_Grid":
        ys, xs = self._span(key)
        sub = [[self.cells[y][x] for x in xs] for y in ys]
        return _Grid(len(sub), len(sub[0]) if sub else 0, sub)

    def __setitem__(self, key, value) -> None:
        ys, xs = self._span(key)
        value = bool(value)
        for y in ys:
            row = self.cells[y]
            for x in xs:
                row[x] = value

    def any(self) -> bool:
        return any(any(row) for row in self.cells)

    def sum(self) -> int:
        return sum(sum(row) for row in self.cells)

    def __or__(self, other: "_Grid") -> "_Grid":
        return _Grid(self.rows, self.cols,
                     [[a or b for a, b in zip(ra, rb)]
                      for ra, rb in zip(self.cells, other.cells)])

    def __invert__(self) -> "_Grid":
        return _Grid(self.rows, self.cols,
                     [[not v for v in row] for row in self.cells])


def _bool_grid(rows: int, cols: int):
    if np is None:
        return _Grid(rows, cols)
    return np.zeros((rows, cols), dtype=bool)


class PlacementError(RuntimeError):
    """No feasible position for a placement request."""


class FreeRectPlacer:
    """Occupancy-grid placer for rectangular modules.

    Parameters
    ----------
    cols, rows:
        Placement area in cells (PEs or tiles).
    margin:
        Cells to keep free between any module and the area border
        (DyNoC's "completely surrounded by routers" rule uses 1).
    gap:
        Cells to keep free between modules (1 guarantees router
        corridors between obstacles for S-XY).
    forbidden:
        Cells never available (CoNoChi infrastructure tiles).
    """

    def __init__(self, cols: int, rows: int, margin: int = 0, gap: int = 0,
                 forbidden: Iterable[Tuple[int, int]] = ()):
        if cols < 1 or rows < 1:
            raise ValueError("degenerate placement area")
        if margin < 0 or gap < 0:
            raise ValueError("margin and gap must be >= 0")
        self.cols = cols
        self.rows = rows
        self.margin = margin
        self.gap = gap
        self._occupied = _bool_grid(rows, cols)
        self._blocked = _bool_grid(rows, cols)
        for (x, y) in forbidden:
            self._blocked[y, x] = True
        self._placements: Dict[str, Rect] = {}

    # ------------------------------------------------------------------
    def _candidate_ok(self, rect: Rect) -> bool:
        m = self.margin
        if rect.x < m or rect.y < m:
            return False
        if rect.x2 > self.cols - m or rect.y2 > self.rows - m:
            return False
        # blocked cells may not intersect the rect itself
        if self._blocked[rect.y:rect.y2, rect.x:rect.x2].any():
            return False
        # occupied cells may not intersect the rect grown by `gap`
        g = self.gap
        y0, y1 = max(0, rect.y - g), min(self.rows, rect.y2 + g)
        x0, x1 = max(0, rect.x - g), min(self.cols, rect.x2 + g)
        return not self._occupied[y0:y1, x0:x1].any()

    def find(self, w: int, h: int, strategy: str = "first") -> Optional[Rect]:
        """Find a position for a ``w x h`` module.

        ``first``: bottom-left scan order. ``best``: position minimizing
        distance to the area's lower-left corner (keeps free space
        contiguous, a classic online heuristic).
        """
        if w < 1 or h < 1:
            raise ValueError("degenerate module footprint")
        best: Optional[Rect] = None
        best_score = None
        for y in range(self.rows - h + 1):
            for x in range(self.cols - w + 1):
                rect = Rect(x, y, w, h)
                if not self._candidate_ok(rect):
                    continue
                if strategy == "first":
                    return rect
                score = x * x + y * y
                if best_score is None or score < best_score:
                    best, best_score = rect, score
        if strategy not in ("first", "best"):
            raise ValueError(f"unknown strategy {strategy!r}")
        return best

    def place(self, name: str, w: int, h: int,
              strategy: str = "first") -> Rect:
        """Find a position and commit it."""
        if name in self._placements:
            raise PlacementError(f"module {name!r} already placed")
        rect = self.find(w, h, strategy)
        if rect is None:
            raise PlacementError(
                f"no {w}x{h} position free (margin={self.margin}, "
                f"gap={self.gap})"
            )
        self.commit(name, rect)
        return rect

    def commit(self, name: str, rect: Rect, force: bool = False) -> None:
        """Commit an externally chosen position.

        ``force=True`` skips the margin/gap rules and only rejects
        out-of-bounds or overlapping positions — used to seed a placer
        with pre-existing placements that follow different rules (e.g.
        DyNoC 1x1 modules, which keep their router and need no margin).
        """
        if name in self._placements:
            raise PlacementError(f"module {name!r} already placed")
        if force:
            if rect.x2 > self.cols or rect.y2 > self.rows:
                raise PlacementError(f"{rect} outside the placement area")
            region = self._occupied[rect.y:rect.y2, rect.x:rect.x2]
            blocked = self._blocked[rect.y:rect.y2, rect.x:rect.x2]
            if region.any() or blocked.any():
                raise PlacementError(f"{rect} overlaps existing content")
        elif not self._candidate_ok(rect):
            raise PlacementError(f"position {rect} infeasible for {name!r}")
        self._occupied[rect.y:rect.y2, rect.x:rect.x2] = True
        self._placements[name] = rect

    def remove(self, name: str) -> Rect:
        rect = self._placements.pop(name, None)
        if rect is None:
            raise PlacementError(f"module {name!r} is not placed")
        self._occupied[rect.y:rect.y2, rect.x:rect.x2] = False
        return rect

    # ------------------------------------------------------------------
    @property
    def placements(self) -> Dict[str, Rect]:
        return dict(self._placements)

    @property
    def free_cells(self) -> int:
        return int((~(self._occupied | self._blocked)).sum())

    def utilization(self) -> float:
        usable = (~self._blocked).sum()
        return float(self._occupied.sum() / usable) if usable else 0.0
