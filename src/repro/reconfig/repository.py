"""Module repository: bitstream variants and fit-based selection.

Real DPR systems keep a library of pre-implemented module variants —
the same function synthesized for different footprints and speeds — and
pick at runtime whichever variant fits the free region. This module
provides that catalog plus the selection policy the examples and the
system facade use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.reconfig.module import ModuleSpec


class RepositoryError(KeyError):
    """A repository lookup or load failed.

    Subclasses :class:`KeyError` (hence :class:`LookupError`) so callers
    that catch the builtin hierarchy keep working; carries the function
    name it was raised for and renders its message verbatim instead of
    KeyError's repr-quoting.
    """

    def __init__(self, message: str, function: Optional[str] = None):
        super().__init__(message)
        self.function = function

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


#: fields every serialized bitstream record must carry
_RECORD_FIELDS = ("function", "name", "width", "height", "slices",
                  "performance", "bitstream_bytes")


@dataclass(frozen=True)
class Variant:
    """One implementation of a function."""

    spec: ModuleSpec
    #: relative performance of this implementation (higher = faster);
    #: used to break ties among fitting variants
    performance: float = 1.0
    #: partial-bitstream size in bytes (for repository statistics)
    bitstream_bytes: int = 0

    def __post_init__(self) -> None:
        if self.performance <= 0:
            raise ValueError("performance must be positive")
        if self.bitstream_bytes < 0:
            raise ValueError("bitstream_bytes must be >= 0")


class ModuleRepository:
    """Catalog of functions, each with one or more variants."""

    def __init__(self) -> None:
        self._functions: Dict[str, List[Variant]] = {}

    # ------------------------------------------------------------------
    def add(self, function: str, variant: Variant) -> None:
        """Register a variant; names must be unique per function."""
        variants = self._functions.setdefault(function, [])
        if any(v.spec.name == variant.spec.name for v in variants):
            raise ValueError(
                f"function {function!r} already has a variant named "
                f"{variant.spec.name!r}"
            )
        variants.append(variant)

    def add_specs(self, function: str, specs: Iterable[ModuleSpec],
                  performance: float = 1.0) -> None:
        for spec in specs:
            self.add(function, Variant(spec, performance=performance))

    # ------------------------------------------------------------------
    @property
    def functions(self) -> List[str]:
        return sorted(self._functions)

    def variants(self, function: str) -> List[Variant]:
        if function not in self._functions:
            known = ", ".join(self.functions) or "none registered"
            raise RepositoryError(
                f"unknown function {function!r} (known: {known})",
                function=function,
            )
        return list(self._functions[function])

    # ------------------------------------------------------------------
    def load(self, records: Iterable[Dict[str, object]]) -> int:
        """Ingest serialized bitstream records (e.g. from a JSON
        manifest), validating each before anything is added.

        Every record must carry exactly the fields a bitstream catalog
        entry needs: function, name, width, height, slices, performance,
        bitstream_bytes. Errors name the offending function/record so a
        bad manifest reads like a diagnosis, not a traceback.
        Returns the number of variants added.
        """
        records = list(records)
        for i, rec in enumerate(records):
            if not isinstance(rec, dict):
                raise RepositoryError(
                    f"record #{i} is not a mapping: {rec!r}")
            function = rec.get("function")
            missing = [f for f in _RECORD_FIELDS if f not in rec]
            if missing:
                raise RepositoryError(
                    f"record #{i} ({function!r}) is missing "
                    f"field(s): {', '.join(missing)}",
                    function=function if isinstance(function, str) else None,
                )
            unknown = sorted(set(rec) - set(_RECORD_FIELDS))
            if unknown:
                raise RepositoryError(
                    f"record #{i} ({function!r}) has unknown "
                    f"field(s): {', '.join(unknown)}",
                    function=function if isinstance(function, str) else None,
                )
            if not isinstance(function, str) or not function:
                raise RepositoryError(
                    f"record #{i}: function must be a non-empty string, "
                    f"got {function!r}")
        added = 0
        for i, rec in enumerate(records):
            function = rec["function"]
            try:
                spec = ModuleSpec(rec["name"], width=rec["width"],
                                  height=rec["height"], slices=rec["slices"])
                variant = Variant(spec, performance=rec["performance"],
                                  bitstream_bytes=rec["bitstream_bytes"])
                self.add(function, variant)
            except (TypeError, ValueError) as exc:
                raise RepositoryError(
                    f"record #{i} ({function!r}): {exc}",
                    function=function,
                ) from exc
            added += 1
        return added

    def total_bitstream_bytes(self) -> int:
        return sum(
            v.bitstream_bytes
            for variants in self._functions.values()
            for v in variants
        )

    # ------------------------------------------------------------------
    def select(self, function: str, max_slices: Optional[int] = None,
               max_width: Optional[int] = None,
               max_height: Optional[int] = None) -> Variant:
        """The fastest variant satisfying every given constraint.

        Raises :class:`LookupError` when nothing fits, listing what was
        considered — a selection failure should read like a diagnosis.
        """
        candidates = []
        rejected: List[str] = []
        for variant in self.variants(function):
            spec = variant.spec
            if max_slices is not None and spec.slices > max_slices:
                rejected.append(f"{spec.name}: {spec.slices} slices "
                                f"> {max_slices}")
                continue
            if max_width is not None and spec.width > max_width:
                rejected.append(f"{spec.name}: width {spec.width} "
                                f"> {max_width}")
                continue
            if max_height is not None and spec.height > max_height:
                rejected.append(f"{spec.name}: height {spec.height} "
                                f"> {max_height}")
                continue
            candidates.append(variant)
        if not candidates:
            detail = "; ".join(rejected) if rejected else "no variants"
            raise RepositoryError(
                f"no variant of {function!r} fits ({detail})",
                function=function,
            )
        return max(candidates, key=lambda v: (v.performance,
                                              -v.spec.slices))

    def select_for_region(self, function: str, region_slices: int,
                          region_w: Optional[int] = None,
                          region_h: Optional[int] = None) -> Variant:
        """Convenience: constraints from a concrete region."""
        return self.select(function, max_slices=region_slices,
                           max_width=region_w, max_height=region_h)
