"""Module repository: bitstream variants and fit-based selection.

Real DPR systems keep a library of pre-implemented module variants —
the same function synthesized for different footprints and speeds — and
pick at runtime whichever variant fits the free region. This module
provides that catalog plus the selection policy the examples and the
system facade use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.reconfig.module import ModuleSpec


@dataclass(frozen=True)
class Variant:
    """One implementation of a function."""

    spec: ModuleSpec
    #: relative performance of this implementation (higher = faster);
    #: used to break ties among fitting variants
    performance: float = 1.0
    #: partial-bitstream size in bytes (for repository statistics)
    bitstream_bytes: int = 0

    def __post_init__(self) -> None:
        if self.performance <= 0:
            raise ValueError("performance must be positive")
        if self.bitstream_bytes < 0:
            raise ValueError("bitstream_bytes must be >= 0")


class ModuleRepository:
    """Catalog of functions, each with one or more variants."""

    def __init__(self) -> None:
        self._functions: Dict[str, List[Variant]] = {}

    # ------------------------------------------------------------------
    def add(self, function: str, variant: Variant) -> None:
        """Register a variant; names must be unique per function."""
        variants = self._functions.setdefault(function, [])
        if any(v.spec.name == variant.spec.name for v in variants):
            raise ValueError(
                f"function {function!r} already has a variant named "
                f"{variant.spec.name!r}"
            )
        variants.append(variant)

    def add_specs(self, function: str, specs: Iterable[ModuleSpec],
                  performance: float = 1.0) -> None:
        for spec in specs:
            self.add(function, Variant(spec, performance=performance))

    # ------------------------------------------------------------------
    @property
    def functions(self) -> List[str]:
        return sorted(self._functions)

    def variants(self, function: str) -> List[Variant]:
        if function not in self._functions:
            raise KeyError(f"unknown function {function!r}")
        return list(self._functions[function])

    def total_bitstream_bytes(self) -> int:
        return sum(
            v.bitstream_bytes
            for variants in self._functions.values()
            for v in variants
        )

    # ------------------------------------------------------------------
    def select(self, function: str, max_slices: Optional[int] = None,
               max_width: Optional[int] = None,
               max_height: Optional[int] = None) -> Variant:
        """The fastest variant satisfying every given constraint.

        Raises :class:`LookupError` when nothing fits, listing what was
        considered — a selection failure should read like a diagnosis.
        """
        candidates = []
        rejected: List[str] = []
        for variant in self.variants(function):
            spec = variant.spec
            if max_slices is not None and spec.slices > max_slices:
                rejected.append(f"{spec.name}: {spec.slices} slices "
                                f"> {max_slices}")
                continue
            if max_width is not None and spec.width > max_width:
                rejected.append(f"{spec.name}: width {spec.width} "
                                f"> {max_width}")
                continue
            if max_height is not None and spec.height > max_height:
                rejected.append(f"{spec.name}: height {spec.height} "
                                f"> {max_height}")
                continue
            candidates.append(variant)
        if not candidates:
            detail = "; ".join(rejected) if rejected else "no variants"
            raise LookupError(
                f"no variant of {function!r} fits ({detail})"
            )
        return max(candidates, key=lambda v: (v.performance,
                                              -v.spec.slices))

    def select_for_region(self, function: str, region_slices: int,
                          region_w: Optional[int] = None,
                          region_h: Optional[int] = None) -> Variant:
        """Convenience: constraints from a concrete region."""
        return self.select(function, max_slices=region_slices,
                           max_width=region_w, max_height=region_h)
