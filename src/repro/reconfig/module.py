"""Hardware-module descriptors.

A :class:`ModuleSpec` is everything the placement and reconfiguration
machinery needs to know about a module: its footprint (in CLBs for slot
systems, PEs/tiles for the NoCs), its logic demand, and a label for the
bitstream repository. Functional behaviour lives with the workload
generators — the interconnect does not care what a module computes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ModuleSpec:
    """A reconfigurable hardware module.

    Attributes
    ----------
    name:
        Unique module identifier (also its logical address on CoNoChi).
    width, height:
        Footprint in placement units (CLB columns x rows for slot
        systems, PEs for DyNoC, tiles for CoNoChi). Slot systems ignore
        ``height`` — a slot is full-height by construction.
    slices:
        Logic demand, used for fit checks against region capacity.
    """

    name: str
    width: int = 1
    height: int = 1
    slices: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("module name must be non-empty")
        if self.width < 1 or self.height < 1:
            raise ValueError(f"{self.name}: degenerate footprint")
        if self.slices < 0:
            raise ValueError(f"{self.name}: negative slice demand")

    @property
    def cells(self) -> int:
        return self.width * self.height

    def fits_in_slices(self, capacity: int) -> bool:
        return self.slices <= capacity
