"""Free-space defragmentation for 2D placements.

After many installs and removals a reconfigurable area fragments: total
free cells abound but no rectangle fits the next module — the §1
online-placement problem in its chronic form. This module measures
fragmentation and plans *move sequences* (each a remove + re-place of
one module) that consolidate free space until a target footprint fits.

Moves are planned greedily toward the bottom-left (the classic
compaction heuristic) and executed through whatever callable the caller
provides — CoNoChi's ``migrate_module``, DyNoC's detach/attach through
the reconfiguration manager, or a dry run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.fabric.geometry import Rect
from repro.reconfig.placement import FreeRectPlacer, PlacementError


@dataclass(frozen=True)
class Move:
    """One planned relocation."""

    module: str
    src: Rect
    dst: Rect

    @property
    def distance(self) -> int:
        return abs(self.dst.x - self.src.x) + abs(self.dst.y - self.src.y)


def largest_free_rectangle(placer: FreeRectPlacer) -> Optional[Rect]:
    """The largest-area rectangle placeable right now (margin/gap rules
    included). O(cols^2 * rows^2) brute force — fine at fabric sizes."""
    best: Optional[Rect] = None
    max_w = placer.cols
    max_h = placer.rows
    for h in range(max_h, 0, -1):
        for w in range(max_w, 0, -1):
            if best is not None and w * h <= best.area_clbs:
                continue
            rect = placer.find(w, h)
            if rect is not None:
                best = Rect(rect.x, rect.y, w, h)
    return best


def fragmentation(placer: FreeRectPlacer) -> float:
    """1 - (largest placeable rectangle / free cells).

    0 means all free space is one usable block; values toward 1 mean
    plenty of free cells but nothing contiguous.
    """
    free = placer.free_cells
    if free == 0:
        return 0.0
    largest = largest_free_rectangle(placer)
    usable = largest.area_clbs if largest is not None else 0
    return 1.0 - usable / free


def plan_compaction(placer: FreeRectPlacer, target_w: int, target_h: int,
                    max_moves: int = 16) -> List[Move]:
    """Plan moves until a ``target_w x target_h`` rectangle fits.

    Returns the (possibly empty) move list; raises
    :class:`PlacementError` when no plan within ``max_moves`` exists.
    The plan is computed on a scratch copy — the caller's placer is not
    touched.
    """
    scratch = FreeRectPlacer(placer.cols, placer.rows,
                             margin=placer.margin, gap=placer.gap)
    for name, rect in placer.placements.items():
        scratch.commit(name, rect, force=True)

    moves: List[Move] = []
    while scratch.find(target_w, target_h) is None:
        if len(moves) >= max_moves:
            raise PlacementError(
                f"no {target_w}x{target_h} fit within {max_moves} moves"
            )
        move = _best_single_move(scratch)
        if move is None:
            raise PlacementError(
                f"compaction stuck: no module can move to improve fit "
                f"for {target_w}x{target_h}"
            )
        scratch.remove(move.module)
        scratch.commit(move.module, move.dst)
        moves.append(move)
    return moves


def _best_single_move(placer: FreeRectPlacer) -> Optional[Move]:
    """Move the module whose relocation most enlarges the largest free
    rectangle; ties prefer short moves. Returns None if nothing helps."""
    baseline = largest_free_rectangle(placer)
    baseline_area = baseline.area_clbs if baseline else 0
    best: Optional[Tuple[int, int, Move]] = None  # (-gain, distance, move)
    for name, src in placer.placements.items():
        placer.remove(name)
        candidate = placer.find(src.w, src.h, strategy="best")
        if candidate is not None and candidate != src:
            placer.commit(name, candidate)
            after = largest_free_rectangle(placer)
            gain = (after.area_clbs if after else 0) - baseline_area
            placer.remove(name)
            if gain > 0:
                move = Move(name, src, candidate)
                key = (-gain, move.distance, move)
                if best is None or key[:2] < best[:2]:
                    best = (key[0], key[1], move)
        placer.commit(name, src, force=True)
    return best[2] if best else None


def execute_plan(placer: FreeRectPlacer, moves: List[Move],
                 relocate: Callable[[str, Rect, Rect], None]) -> None:
    """Apply a plan: for each move, call ``relocate(module, src, dst)``
    (the architecture-side action) and update the placer."""
    for move in moves:
        relocate(move.module, move.src, move.dst)
        placer.remove(move.module)
        placer.commit(move.module, move.dst)
